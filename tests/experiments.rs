//! Shape checks for the paper's experiments: "who wins, and in which
//! direction" assertions that must hold on every run. These use reduced
//! optimization budgets so they are runnable inside the normal test suite;
//! the `ams-bench` binaries regenerate the full tables.

use finfet_ams_place::netlist::benchmarks;
use finfet_ams_place::place::{baseline, Placer, PlacerConfig};
use finfet_ams_place::route::{route, RouterConfig};
use finfet_ams_place::sim::{analyze_buf, extract, Tech, VcoModel};

fn quick_cfg() -> PlacerConfig {
    let mut c = PlacerConfig::default();
    c.optimize.k_iter = 1;
    c.optimize.conflict_budget = Some(20_000);
    c
}

#[test]
fn table2_statistics_match_the_paper() {
    let buf = benchmarks::buf();
    assert_eq!(
        (
            buf.regions().len(),
            buf.cells().len(),
            buf.nets().iter().filter(|n| !n.virtual_net).count()
        ),
        (1, 42, 66)
    );
    let vco = benchmarks::vco();
    assert_eq!(
        (
            vco.regions().len(),
            vco.cells().len(),
            vco.nets().iter().filter(|n| !n.virtual_net).count()
        ),
        (2, 110, 71)
    );
}

#[test]
fn table3_and_table4_shapes_buf() {
    // One pair of quick placements feeds both the Table III geometry checks
    // and the Table IV timing-variability checks.
    let w_design = benchmarks::buf();
    let w = Placer::new(&w_design, quick_cfg())
        .expect("encode")
        .place()
        .expect("place w/");
    w.verify(&w_design).expect("legal w/");

    let wo_design = benchmarks::buf().without_constraints();
    let wo = Placer::new(&wo_design, quick_cfg().without_ams_constraints())
        .expect("encode")
        .place()
        .expect("place w/o");
    wo.verify(&wo_design).expect("legal w/o");

    let manual = baseline::manual_surrogate(
        &w_design,
        baseline::BaselineConfig {
            utilization: 0.40,
            aspect_ratio: 1.0,
        },
    );

    // Table III: both automated arms share the Eq. 2 die; manual is larger.
    assert_eq!(w.area_grid(), wo.area_grid());
    assert!(
        manual.area_grid() > w.area_grid(),
        "manual {} must exceed automated {}",
        manual.area_grid(),
        w.area_grid()
    );

    // Routability: both arms must route without meaningful overflow.
    let rw = route(&w_design, &w, RouterConfig::default());
    let rwo = route(&wo_design, &wo, RouterConfig::default());
    assert_eq!(rw.overflow, 0);
    assert_eq!(rwo.overflow, 0);

    // Table IV: timing must be sane on both arms; variability must not be
    // meaningfully worse with constraints (the mirrored tree equalizes the
    // per-lane wiring).
    let nets_w = extract(&w_design, &w, &rw, &Tech::n5());
    let rep_w = analyze_buf(&w_design, &nets_w, &Tech::n5());
    let nets_wo = extract(&wo_design, &wo, &rwo, &Tech::n5());
    let rep_wo = analyze_buf(&wo_design, &nets_wo, &Tech::n5());

    assert!(rep_w.total_avg_ps > 0.0 && rep_wo.total_avg_ps > 0.0);
    assert!(
        rep_w.total_sd_ps <= rep_wo.total_sd_ps * 1.25,
        "constrained SD {} should not exceed unconstrained {} meaningfully",
        rep_w.total_sd_ps,
        rep_wo.total_sd_ps
    );
    for s in rep_w.stages.iter().chain(rep_wo.stages.iter()) {
        assert!(s.rise_avg_ps > 0.0 && s.fall_avg_ps > 0.0);
    }
}

#[test]
#[ignore = "several minutes: full VCO arms; run with --ignored or use the table6 binary"]
fn table6_shape_vco() {
    let w_design = benchmarks::vco();
    let w = Placer::new(&w_design, quick_cfg())
        .expect("encode")
        .place()
        .expect("place w/");
    let rw = route(&w_design, &w, RouterConfig::default());
    let nets_w = extract(&w_design, &w, &rw, &Tech::n5());
    let model_w = VcoModel::from_layout(&w_design, &nets_w, Tech::n5());

    let manual = baseline::manual_surrogate(
        &w_design,
        baseline::BaselineConfig {
            utilization: 0.68,
            aspect_ratio: 1.3,
        },
    );
    let rm = route(&w_design, &manual, RouterConfig::default());
    let nets_m = extract(&w_design, &manual, &rm, &Tech::n5());
    let model_m = VcoModel::from_layout(&w_design, &nets_m, Tech::n5());

    for v in [0.65, 0.75, 0.90] {
        let pw = model_w.evaluate(v, 3);
        let pm = model_m.evaluate(v, 3);
        // The automated layout has shorter phase routes → faster.
        assert!(
            pw.frequency_ghz >= pm.frequency_ghz,
            "at {v} V: w/ {} GHz vs manual {} GHz",
            pw.frequency_ghz,
            pm.frequency_ghz
        );
    }
}

//! Process-level crash recovery: the real thing. A journaled `amsplace
//! serve` is killed dead (fault-injected `abort()` — `SIGKILL`'s
//! std-only stand-in: no destructors, no flushes) at a journal barrier,
//! then restarted with `--resume`, and the typed client must see every
//! job again: the mid-solve one re-run to completion, the idempotency
//! key still deduplicating.
//!
//! The in-process fault matrix (corrupt tails, shed-under-saturation,
//! retry storms, crash images at other barriers) lives in
//! `crates/serve/tests/chaos.rs`; this test pins the end-to-end loop
//! through the binary, the CLI flags, and a real process death.

use std::io::{BufRead, BufReader};
use std::net::SocketAddr;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use finfet_ams_place::netlist::benchmarks::{self, SyntheticParams};
use finfet_ams_place::netlist::json::Json;
use finfet_ams_place::place::api::{JobOptions, JobStatus, PlaceRequest};
use finfet_ams_place::serve::client;

/// A spawned server process, killed on drop so a failing test never
/// leaks a background `amsplace`.
struct ServerProc {
    child: Child,
    addr: SocketAddr,
}

impl ServerProc {
    /// Spawns `amsplace serve` on an ephemeral port and parses the bound
    /// address from the startup banner.
    fn spawn(journal_dir: &PathBuf, resume: bool, fault: Option<&str>) -> ServerProc {
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_amsplace"));
        cmd.arg("serve")
            .arg("--bind")
            .arg("127.0.0.1:0")
            .arg("--workers")
            .arg("1")
            .arg("--journal-dir")
            .arg(journal_dir)
            .stdout(Stdio::piped())
            .stderr(Stdio::null());
        if resume {
            cmd.arg("--resume");
        }
        match fault {
            Some(spec) => cmd.env("AMSPLACE_FAULT", spec),
            None => cmd.env_remove("AMSPLACE_FAULT"),
        };
        let mut child = cmd.spawn().expect("spawn amsplace serve");

        let stdout = child.stdout.take().expect("piped stdout");
        let mut lines = BufReader::new(stdout).lines();
        let addr = loop {
            let line = lines
                .next()
                .expect("server exited before printing its banner")
                .expect("read banner line");
            if let Some(rest) = line.split("http://").nth(1) {
                let addr = rest
                    .split_whitespace()
                    .next()
                    .and_then(|a| {
                        a.trim_end_matches(|c: char| !c.is_ascii_digit())
                            .parse()
                            .ok()
                    })
                    .expect("banner carries the bound address");
                break addr;
            }
        };
        // Keep draining stdout so the child never blocks on a full pipe.
        std::thread::spawn(move || for _ in lines {});
        ServerProc { child, addr }
    }

    /// Blocks until the process exits (the fault-injected abort).
    fn wait_for_death(&mut self, deadline: Duration) {
        let t0 = Instant::now();
        loop {
            match self.child.try_wait().expect("try_wait") {
                Some(status) => {
                    assert!(!status.success(), "the fault plan aborts, never exits 0");
                    return;
                }
                None => {
                    assert!(
                        t0.elapsed() < deadline,
                        "server did not die within {deadline:?}"
                    );
                    std::thread::sleep(Duration::from_millis(25));
                }
            }
        }
    }

    fn shutdown(mut self) {
        let _ = client::post(self.addr, "/v1/shutdown", None);
        let t0 = Instant::now();
        while self.child.try_wait().expect("try_wait").is_none() {
            if t0.elapsed() > Duration::from_secs(30) {
                let _ = self.child.kill();
                break;
            }
            std::thread::sleep(Duration::from_millis(25));
        }
    }
}

impl Drop for ServerProc {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn quick_request(key: &str) -> PlaceRequest {
    // A small synthetic instance: the binary under test is a debug
    // build, where the named benchmarks solve orders of magnitude
    // slower than anything this test is trying to observe.
    PlaceRequest {
        design: benchmarks::synthetic(SyntheticParams {
            regions: 2,
            cells_per_region: 6,
            nets: 10,
            net_degree: 3,
            symmetry_pairs: 1,
            ..Default::default()
        }),
        options: JobOptions {
            quick: true,
            ..JobOptions::default()
        },
        idempotency_key: Some(key.to_string()),
    }
}

fn wait_done(addr: SocketAddr, id: u64, deadline: Duration) -> Json {
    let t0 = Instant::now();
    loop {
        let view = client::get(addr, &format!("/v1/jobs/{id}"))
            .expect("poll over loopback")
            .body;
        let status = view
            .field("status")
            .and_then(Json::as_str)
            .and_then(JobStatus::parse)
            .expect("status");
        if status.is_terminal() {
            assert_eq!(status, JobStatus::Done, "{}", view.pretty());
            return view;
        }
        assert!(
            t0.elapsed() < deadline,
            "job {id} still {status:?} after {deadline:?}"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
}

#[test]
fn sigkill_at_the_start_barrier_then_resume_recovers_every_job() {
    let journal_dir =
        std::env::temp_dir().join(format!("amsplace-chaos-proc-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&journal_dir);

    // Arm the kill for the first worker pickup: the instant the Started
    // record is durable, the process dies — no response ever reaches a
    // client, the solver is mid-flight.
    let mut doomed = ServerProc::spawn(&journal_dir, false, Some("kill:start:1"));
    let request = quick_request("proc-key");
    // The worker may pick the job up — and abort the process — before
    // the accept reply is on the wire, so a reset here is legitimate:
    // it is precisely the "client never learned its job id" crash. The
    // abort can also land mid-write, truncating the reply body — treat
    // a reply without a parseable id the same way. The journal is
    // fresh, so the id is deterministically 1 in every case.
    let job_id = match client::post(doomed.addr, "/v1/jobs", Some(&request.to_json())) {
        Ok(reply) => {
            assert_eq!(reply.status, 202, "{}", reply.body.pretty());
            reply
                .body
                .field("job_id")
                .and_then(Json::as_u64)
                .unwrap_or(1)
        }
        Err(_) => 1,
    };

    doomed.wait_for_death(Duration::from_secs(120));

    // Restart on the same journal. Default policy re-runs the job the
    // dead process had picked up: zero lost jobs.
    let server = ServerProc::spawn(&journal_dir, true, None);
    let done = wait_done(server.addr, job_id, Duration::from_secs(300));
    assert_eq!(
        done.field("response")
            .and_then(|r| r.field("status"))
            .and_then(Json::as_str),
        Some("done")
    );

    // The retried submit with the same idempotency key lands on the
    // recovered job — one solve total across both process lifetimes.
    let retried = client::post(server.addr, "/v1/jobs", Some(&request.to_json()))
        .expect("retried submit after recovery");
    assert_eq!(retried.status, 202, "{}", retried.body.pretty());
    assert_eq!(
        retried.body.field("deduplicated").and_then(Json::as_bool),
        Some(true)
    );
    assert_eq!(
        retried.body.field("job_id").and_then(Json::as_u64),
        Some(job_id)
    );

    // And the journal surface is live on the stats endpoint.
    let stats = client::get(server.addr, "/v1/stats").expect("stats").body;
    assert!(
        !stats.field("journal").expect("journaling on").is_null(),
        "{}",
        stats.pretty()
    );

    server.shutdown();
    let _ = std::fs::remove_dir_all(&journal_dir);
}

#[test]
fn resume_is_required_on_a_used_journal() {
    let journal_dir =
        std::env::temp_dir().join(format!("amsplace-chaos-noresume-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&journal_dir);

    // First life: journal a completed job, clean shutdown.
    let server = ServerProc::spawn(&journal_dir, false, None);
    let accepted = client::post(
        server.addr,
        "/v1/jobs",
        Some(&quick_request("noresume-key").to_json()),
    )
    .expect("submit");
    assert_eq!(accepted.status, 202);
    let job_id = accepted
        .body
        .field("job_id")
        .and_then(Json::as_u64)
        .unwrap();
    wait_done(server.addr, job_id, Duration::from_secs(300));
    server.shutdown();

    // Second life without --resume: must refuse to start.
    let output = Command::new(env!("CARGO_BIN_EXE_amsplace"))
        .arg("serve")
        .arg("--bind")
        .arg("127.0.0.1:0")
        .arg("--journal-dir")
        .arg(&journal_dir)
        .env_remove("AMSPLACE_FAULT")
        .output()
        .expect("run amsplace serve");
    assert!(!output.status.success());
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("--resume"), "stderr: {stderr}");

    let _ = std::fs::remove_dir_all(&journal_dir);
}

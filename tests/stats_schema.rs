//! Golden-schema test for `amsplace --stats-json`: downstream dashboards
//! parse this document, so the field set is a contract. Adding a field
//! means updating the goldens here *and* the consumers; removing or
//! renaming one is a breaking change this test is meant to catch.

use finfet_ams_place::netlist::json::Json;
use std::collections::BTreeSet;
use std::process::Command;

const TOP_LEVEL_FIELDS: &[&str] = &[
    "area_um2",
    "certify",
    "closure",
    "conflicts",
    "design",
    "die",
    "families",
    "hpwl_trace",
    "hpwl_um",
    "iterations",
    "lowering_ms",
    "outcome",
    "outcome_detail",
    "presolve",
    "rungs",
    "runtime_ms",
    "sat_clauses",
    "sat_vars",
    "schema_version",
    "threads",
    "warm",
    "winner",
    "workers",
];

const WORKER_FIELDS: &[&str] = &[
    "conflicts",
    "decisions",
    "exported",
    "id",
    "imported",
    "panic_message",
    "panicked",
    "restarts",
];

const CERTIFY_FIELDS: &[&str] = &["cnf_clauses", "model_violations", "proof_steps"];

const FAMILY_FIELDS: &[&str] = &["clauses", "constraints", "family"];

const PRESOLVE_FIELDS: &[&str] = &[
    "clauses_saved",
    "passes",
    "ran",
    "vars_saved_bits",
    "verdict",
];

const PRESOLVE_PASS_FIELDS: &[&str] = &["detail", "pass", "verdict"];

const CLOSURE_FIELDS: &[&str] = &[
    "drc_clean",
    "hot_windows",
    "iterations",
    "ran",
    "routed_wl_trend",
];

const CLOSURE_WINDOW_FIELDS: &[&str] = &["x", "y"];

fn keys(doc: &Json) -> BTreeSet<String> {
    match doc {
        Json::Obj(map) => map.keys().cloned().collect(),
        other => panic!("expected a JSON object, got {other:?}"),
    }
}

fn run_amsplace(extra: &[&str]) -> Json {
    run_amsplace_with(&["synthetic"], extra)
}

fn run_amsplace_with(head: &[&str], extra: &[&str]) -> Json {
    let dir = std::env::temp_dir().join(format!("amsplace_schema_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let stats = dir.join(format!("stats_{}_{}.json", head.len(), extra.len()));
    let status = Command::new(env!("CARGO_BIN_EXE_amsplace"))
        .args(head)
        .arg("--quick")
        .args(["--stats-json", stats.to_str().expect("utf-8 temp path")])
        .args(extra)
        .status()
        .expect("amsplace runs");
    assert!(status.success(), "amsplace failed: {status:?}");
    let text = std::fs::read_to_string(&stats).expect("stats file written");
    std::fs::remove_file(&stats).ok();
    Json::parse(&text).expect("stats file is valid JSON")
}

#[test]
fn stats_json_matches_the_golden_schema() {
    let doc = run_amsplace(&[]);
    let expected: BTreeSet<String> = TOP_LEVEL_FIELDS.iter().map(|s| s.to_string()).collect();
    assert_eq!(
        keys(&doc),
        expected,
        "top-level stats-json field set changed — update goldens and consumers"
    );

    let Json::Obj(map) = &doc else { unreachable!() };
    assert_eq!(
        map["schema_version"],
        Json::uint(finfet_ams_place::place::api::SCHEMA_VERSION),
        "schema_version must match the API surface"
    );
    // A cold CLI run never reports warm-solver reuse; the field is a
    // contract for the service, present-but-null locally.
    assert!(matches!(map["warm"], Json::Null));
    assert!(matches!(map["design"], Json::Str(_)));
    assert!(matches!(map["outcome"], Json::Str(_)));
    assert!(matches!(map["iterations"], Json::Num(_)));
    assert!(matches!(map["hpwl_trace"], Json::Arr(_)));
    assert_eq!(
        keys(&map["die"]),
        ["h", "w"].iter().map(|s| s.to_string()).collect()
    );
    // Certify was off, so the field must be present but null.
    assert!(matches!(map["certify"], Json::Null));

    // A feasible run takes no recovery rungs, but the field is a contract.
    let Json::Arr(rungs) = &map["rungs"] else {
        panic!("rungs must be an array");
    };
    assert!(rungs.is_empty(), "feasible run reported recovery rungs");

    let Json::Arr(families) = &map["families"] else {
        panic!("families must be an array");
    };
    assert!(
        !families.is_empty(),
        "per-family constraint stats must be populated"
    );
    let expected_family: BTreeSet<String> = FAMILY_FIELDS.iter().map(|s| s.to_string()).collect();
    for f in families {
        assert_eq!(keys(f), expected_family, "per-family field set changed");
    }

    let Json::Arr(workers) = &map["workers"] else {
        panic!("workers must be an array");
    };
    let expected_worker: BTreeSet<String> = WORKER_FIELDS.iter().map(|s| s.to_string()).collect();
    for w in workers {
        assert_eq!(keys(w), expected_worker, "per-worker field set changed");
    }

    // A plain placement never runs the closure loop: the object keeps its
    // constant shape with `ran: false`, like `presolve` when disabled.
    assert_closure_shape(&map["closure"]);
    let Json::Obj(cl) = &map["closure"] else {
        unreachable!()
    };
    assert_eq!(cl["ran"], Json::Bool(false));
    assert_eq!(cl["iterations"], Json::Num(0.0));
    assert_eq!(cl["drc_clean"], Json::Bool(false));
    assert!(matches!(&cl["hot_windows"], Json::Arr(v) if v.is_empty()));
    assert!(matches!(&cl["routed_wl_trend"], Json::Arr(v) if v.is_empty()));

    // Presolve runs by default: the object is filled, the feasible verdict
    // recorded, and both analyzer passes reported.
    assert_presolve_shape(&map["presolve"]);
    let Json::Obj(ps) = &map["presolve"] else {
        unreachable!()
    };
    assert_eq!(ps["ran"], Json::Bool(true));
    assert_eq!(ps["verdict"], Json::str("feasible"));
    let Json::Arr(passes) = &ps["passes"] else {
        panic!("passes must be an array");
    };
    assert_eq!(passes.len(), 2, "domain + capacity passes expected");
}

fn assert_presolve_shape(ps: &Json) {
    let expected: BTreeSet<String> = PRESOLVE_FIELDS.iter().map(|s| s.to_string()).collect();
    assert_eq!(keys(ps), expected, "presolve field set changed");
    let Json::Obj(map) = ps else { unreachable!() };
    let expected_pass: BTreeSet<String> =
        PRESOLVE_PASS_FIELDS.iter().map(|s| s.to_string()).collect();
    let Json::Arr(passes) = &map["passes"] else {
        panic!("presolve.passes must be an array");
    };
    for p in passes {
        assert_eq!(keys(p), expected_pass, "presolve pass field set changed");
    }
}

fn assert_closure_shape(cl: &Json) {
    let expected: BTreeSet<String> = CLOSURE_FIELDS.iter().map(|s| s.to_string()).collect();
    assert_eq!(keys(cl), expected, "closure field set changed");
    let Json::Obj(map) = cl else { unreachable!() };
    assert!(matches!(map["ran"], Json::Bool(_)));
    assert!(matches!(map["drc_clean"], Json::Bool(_)));
    let Json::Arr(windows) = &map["hot_windows"] else {
        panic!("closure.hot_windows must be an array");
    };
    let expected_window: BTreeSet<String> = CLOSURE_WINDOW_FIELDS
        .iter()
        .map(|s| s.to_string())
        .collect();
    for w in windows {
        assert_eq!(keys(w), expected_window, "closure window field set changed");
    }
    assert!(matches!(&map["routed_wl_trend"], Json::Arr(_)));
}

#[test]
fn closure_runs_fill_the_closure_object() {
    let doc = run_amsplace_with(&["close", "synthetic"], &["--max-iters", "3"]);
    let Json::Obj(map) = &doc else {
        panic!("stats must be an object")
    };
    assert_closure_shape(&map["closure"]);
    let Json::Obj(cl) = &map["closure"] else {
        unreachable!()
    };
    assert_eq!(cl["ran"], Json::Bool(true));
    let Json::Num(iterations) = cl["iterations"] else {
        panic!("closure.iterations must be a number");
    };
    assert!(iterations >= 1.0, "a closure run reports its iterations");
    let Json::Arr(trend) = &cl["routed_wl_trend"] else {
        unreachable!()
    };
    assert_eq!(
        trend.len(),
        iterations as usize,
        "one routed-WL sample per iteration"
    );
}

#[test]
fn disabled_presolve_keeps_the_schema_stable() {
    let doc = run_amsplace(&["--no-presolve"]);
    let Json::Obj(map) = &doc else {
        panic!("stats must be an object")
    };
    assert_presolve_shape(&map["presolve"]);
    let Json::Obj(ps) = &map["presolve"] else {
        unreachable!()
    };
    assert_eq!(ps["ran"], Json::Bool(false));
    assert_eq!(ps["verdict"], Json::str("skipped"));
}

#[test]
fn certified_runs_fill_the_certify_object() {
    let doc = run_amsplace(&["--certify"]);
    let Json::Obj(map) = &doc else {
        panic!("stats must be an object")
    };
    let expected: BTreeSet<String> = CERTIFY_FIELDS.iter().map(|s| s.to_string()).collect();
    assert_eq!(keys(&map["certify"]), expected, "certify field set changed");
    let Json::Obj(c) = &map["certify"] else {
        unreachable!()
    };
    assert_eq!(c["model_violations"], Json::Num(0.0));
}

#[test]
fn portfolio_runs_report_every_worker() {
    let doc = run_amsplace(&["--threads", "2"]);
    let Json::Obj(map) = &doc else {
        panic!("stats must be an object")
    };
    assert_eq!(map["threads"], Json::Num(2.0));
    let Json::Arr(workers) = &map["workers"] else {
        panic!("workers must be an array");
    };
    assert_eq!(workers.len(), 2);
}

//! Cross-crate integration: netlist → placement → routing → extraction.

use finfet_ams_place::netlist::benchmarks::{self, SyntheticParams};
use finfet_ams_place::place::{Placer, PlacerConfig};
use finfet_ams_place::route::{route, RouterConfig};
use finfet_ams_place::sim::{extract, Tech};

fn place_small(
    seed: u64,
) -> (
    finfet_ams_place::netlist::Design,
    finfet_ams_place::place::Placement,
) {
    let design = benchmarks::synthetic(SyntheticParams {
        cells_per_region: 8,
        nets: 10,
        symmetry_pairs: 1,
        seed,
        ..Default::default()
    });
    let placement = Placer::builder(&design)
        .config(PlacerConfig::fast())
        .build()
        .expect("encode")
        .place()
        .expect("place");
    placement.verify(&design).expect("legal");
    (design, placement)
}

#[test]
fn routed_wirelength_dominates_hpwl() {
    let (design, placement) = place_small(7);
    let routed = route(&design, &placement, RouterConfig::default());
    // The half-perimeter bound is a lower bound on any connecting tree.
    let (hx, hy) = placement.hpwl_grid(&design);
    assert!(
        routed.wirelength >= hx + hy,
        "RWL {} below the HPWL bound {}",
        routed.wirelength,
        hx + hy
    );
    assert_eq!(
        routed.overflow, 0,
        "small design must route congestion-free"
    );
}

#[test]
fn every_net_is_routed_connected() {
    let (design, placement) = place_small(11);
    let routed = route(&design, &placement, RouterConfig::default());
    for n in design.net_ids() {
        if design.net(n).virtual_net || design.net_degree(n) < 2 {
            continue;
        }
        let pins: std::collections::HashSet<_> = design
            .net_connections(n)
            .iter()
            .map(|&(c, pi)| {
                let pin = &design.cell(c).pins[pi];
                let r = placement.cells[c.index()];
                (r.x + pin.dx, r.y + pin.dy)
            })
            .collect();
        if pins.len() < 2 {
            continue; // all pins coincide; nothing to route
        }
        let r = &routed.nets[n.index()];
        assert!(
            !r.wires.is_empty() || !r.vias.is_empty(),
            "net {} with {} distinct pins has no route",
            design.net(n).name,
            pins.len()
        );
    }
}

#[test]
fn extraction_scales_with_route_length() {
    let (design, placement) = place_small(13);
    let routed = route(&design, &placement, RouterConfig::default());
    let nets = extract(&design, &placement, &routed, &Tech::n5());
    for n in design.net_ids() {
        let Some(e) = nets[n.index()].as_ref() else {
            continue;
        };
        assert!(
            e.capacitance > 0.0,
            "net {} has no capacitance",
            design.net(n).name
        );
        // Pin caps alone set a floor.
        let floor = design.net_degree(n) as f64 * Tech::n5().c_pin;
        assert!(e.capacitance >= floor);
        for s in &e.sinks {
            assert!(s.resistance.is_finite() && s.resistance >= 0.0);
        }
    }
    // Cross-check the aggregate: summed net capacitance reconstructs from
    // the route geometry and pin counts exactly.
    let tech = Tech::n5();
    for n in design.net_ids() {
        let Some(e) = nets[n.index()].as_ref() else {
            continue;
        };
        let r = &routed.nets[n.index()];
        let (wx, wy) = r.wirelength_xy();
        let expected = wx as f64 * tech.c_per_track_x
            + wy as f64 * tech.c_per_track_y
            + r.vias.len() as f64 * tech.c_via
            + design.net_connections(n).len() as f64 * tech.c_pin;
        assert!(
            (e.capacitance - expected).abs() < 1e-21,
            "net {} capacitance mismatch",
            design.net(n).name
        );
    }
}

#[test]
fn design_json_roundtrip_preserves_placement_inputs() {
    let design = benchmarks::synthetic(SyntheticParams::default());
    let json = design.to_json();
    let back = finfet_ams_place::netlist::Design::from_json(&json).expect("parse");
    assert_eq!(design, back);
}

#[test]
fn facade_reexports_are_usable() {
    // The facade crate must expose the full stack coherently.
    let design = finfet_ams_place::netlist::benchmarks::buf();
    assert_eq!(design.cells().len(), 42);
    let _cfg = finfet_ams_place::place::PlacerConfig::default();
    let _tech = finfet_ams_place::sim::Tech::n5();
    let mut sat = finfet_ams_place::sat::Solver::new();
    let v = sat.new_var();
    sat.add_clause(&[v.positive()]);
    assert_eq!(sat.solve(), finfet_ams_place::sat::SolveResult::Sat);
    let mut smt = finfet_ams_place::smt::Smt::new();
    let x = smt.bv_var(4, "x");
    let c = smt.eq_const(x, 9);
    smt.assert(c);
    assert_eq!(smt.solve(), finfet_ams_place::smt::SmtResult::Sat);
    assert_eq!(smt.bv_value(x), 9);
}

#!/usr/bin/env bash
# Drives the routing-closure loop (`amsplace close`) over the deterministic
# scenario corpus (ams_place::scenario) and records routed-WL / iteration /
# DRC-clean columns in BENCH_closure.json.
#
#   scripts/corpus.sh smoke           25-scenario always-on CI slice; the
#                                     observed pass/fail + drc_clean verdicts
#                                     are compared against the golden
#                                     manifest scripts/corpus_smoke_manifest.json
#   scripts/corpus.sh smoke --update  refresh the golden manifest instead of
#                                     comparing (commit the result)
#   scripts/corpus.sh full            the whole corpus (1000+ scenarios);
#                                     refreshes BENCH_closure.json with the
#                                     full columns (nightly artifact)
set -euo pipefail
cd "$(dirname "$0")/.."

MODE="${1:-smoke}"
UPDATE="${2:-}"
MANIFEST=scripts/corpus_smoke_manifest.json

cargo build --release -q --bin amsplace
BIN=target/release/amsplace
TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

# The corpus size lives in ams_place::scenario::CORPUS_SIZE; recover it from
# the CLI's own out-of-range diagnostic instead of hardcoding a copy here.
# (`|| true`: the probe exits 1 by design — don't let set -e/pipefail trip.)
CORPUS_SIZE=$("$BIN" close scenario:4294967294 2>&1 \
    | sed -n 's/.*corpus holds \([0-9]*\).*/\1/p' || true)
if [ -z "$CORPUS_SIZE" ]; then
    echo "could not determine the corpus size from the CLI" >&2
    exit 1
fi

case "$MODE" in
smoke)
    # 25 evenly-strided indices: deterministic, spans every sweep radix.
    STRIDE=$((CORPUS_SIZE / 25))
    INDICES=$(seq 0 "$STRIDE" $((STRIDE * 24)))
    ;;
full)
    INDICES=$(seq 0 $((CORPUS_SIZE - 1)))
    ;;
*)
    echo "usage: scripts/corpus.sh [smoke [--update]|full]" >&2
    exit 1
    ;;
esac

: >"$TMP/results.tsv"
for i in $INDICES; do
    set +e
    "$BIN" close "scenario:$i" --quick --max-iters 5 \
        --stats-json "$TMP/s$i.json" >/dev/null 2>&1
    code=$?
    set -e
    echo -e "$i\t$code" >>"$TMP/results.tsv"
done

python3 - "$TMP" "$MODE" "$CORPUS_SIZE" "$MANIFEST" "$UPDATE" <<'EOF'
import json
import pathlib
import sys

tmp = pathlib.Path(sys.argv[1])
mode, corpus_size, manifest_path, update = (
    sys.argv[2],
    int(sys.argv[3]),
    pathlib.Path(sys.argv[4]),
    sys.argv[5],
)

rows = []
for line in (tmp / "results.tsv").read_text().splitlines():
    index, code = map(int, line.split("\t"))
    row = {"index": index, "exit": code}
    stats = tmp / f"s{index}.json"
    if code == 0 and stats.exists():
        closure = json.load(stats.open())["closure"]
        row["iterations"] = closure["iterations"]
        row["drc_clean"] = closure["drc_clean"]
        trend = closure["routed_wl_trend"]
        row["routed_wl"] = trend[-1] if trend else 0
    else:
        row["iterations"] = None
        row["drc_clean"] = False
        row["routed_wl"] = None
    rows.append(row)

closed = [r for r in rows if r["exit"] == 0]
clean = [r for r in closed if r["drc_clean"]]
out = {
    "config": "amsplace close --quick --max-iters 5 (release)",
    "mode": mode,
    "corpus_size": corpus_size,
    "scenarios_run": len(rows),
    "summary": {
        "placed": len(closed),
        "routed_clean": len(clean),
        "infeasible_or_failed": len(rows) - len(closed),
        "mean_iterations": (
            round(sum(r["iterations"] for r in closed) / len(closed), 3)
            if closed
            else None
        ),
        "total_routed_wl": sum(r["routed_wl"] or 0 for r in closed),
    },
    "scenarios": rows,
}
with open("BENCH_closure.json", "w") as f:
    json.dump(out, f, indent=2)
    f.write("\n")
print(json.dumps(out["summary"], indent=2))

if mode == "smoke":
    observed = {
        str(r["index"]): {"exit": r["exit"], "drc_clean": r["drc_clean"]}
        for r in rows
    }
    if update == "--update" or not manifest_path.exists():
        with manifest_path.open("w") as f:
            json.dump(observed, f, indent=2)
            f.write("\n")
        print(f"wrote {manifest_path}")
    else:
        golden = json.load(manifest_path.open())
        if observed != golden:
            for k in sorted(set(golden) | set(observed), key=int):
                if golden.get(k) != observed.get(k):
                    print(
                        f"scenario {k}: golden {golden.get(k)} "
                        f"!= observed {observed.get(k)}",
                        file=sys.stderr,
                    )
            sys.exit("corpus smoke tier diverged from the golden manifest")
        print(f"matches {manifest_path} ({len(golden)} scenarios)")
EOF
echo "wrote BENCH_closure.json ($MODE)"

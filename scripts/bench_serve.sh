#!/usr/bin/env bash
# Measures service throughput on the paper benchmarks (BUF, VCO) via the
# examples/serve_bench harness: jobs/minute for cold solves, exact-cache
# replays, a λ_th sweep that rides the warm-solver pool, and the same
# workload with the durable job journal on (the fsync-per-transition
# durability tax), plus a restart-with-resume check that the rehydrated
# exact cache answers a replayed request. Writes BENCH_serve.json at the
# repo root; CI does not run this — it is a manual/nightly artifact
# refreshed when the service, the cache, or the solver change.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release -q --example serve_bench

TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

echo "==> serve bench (cold / exact replay / lambda sweep / journaled)" >&2
target/release/examples/serve_bench >"$TMP/serve_bench.json"

python3 - "$TMP/serve_bench.json" <<'EOF'
import json
import sys

with open(sys.argv[1]) as f:
    report = json.load(f)

phases = report["phases"]
cache = report["cache"]
for name in ("cold", "exact_replay", "lambda_sweep", "journaled"):
    assert phases[name]["jobs"] > 0, f"{name}: no jobs ran"
    assert phases[name]["jobs_per_minute"] > 0, f"{name}: no throughput"
assert cache["exact_hits"] > 0, "replay phase produced no exact-cache hits"
assert cache["warm_hits"] > 0, "lambda sweep produced no warm-solver reuse"
assert (
    phases["exact_replay"]["jobs_per_minute"] > phases["cold"]["jobs_per_minute"]
), "exact-cache replays must outpace cold solves"
assert report["resume"]["cache_rehydrated_hit"], (
    "the resumed server must answer a replayed request from the journal-"
    "rehydrated exact cache"
)

with open("BENCH_serve.json", "w") as f:
    json.dump(report, f, indent=2)
    f.write("\n")
summary = {
    "jobs_per_minute": {k: round(v["jobs_per_minute"], 2) for k, v in phases.items()},
    "exact_hit_rate": round(cache["exact_hit_rate"], 3),
    "warm_vs_cold_rate": round(cache["warm_vs_cold_rate"], 3),
}
print(json.dumps(summary, indent=2))
EOF
echo "wrote BENCH_serve.json"

#!/usr/bin/env bash
# Measures what the static presolve buys on the paper benchmarks (BUF,
# VCO): CNF size (variables/clauses) and wall time of a --quick placement
# with presolve on (the default) versus --no-presolve. Writes
# BENCH_presolve.json at the repo root; CI does not run this — it is a
# manual/nightly artifact refreshed when the encoders or the analyzer
# change.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release -q --bin amsplace

BIN=target/release/amsplace
TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

for design in buf vco; do
    for mode in presolve no_presolve; do
        flags=()
        if [ "$mode" = no_presolve ]; then
            flags+=(--no-presolve)
        fi
        echo "==> $design ($mode)" >&2
        "$BIN" "$design" --quick ${flags[@]+"${flags[@]}"} \
            --stats-json "$TMP/${design}_${mode}.json" >/dev/null
    done
done

python3 - "$TMP" <<'EOF'
import json
import pathlib
import sys

tmp = pathlib.Path(sys.argv[1])
out = {"config": "--quick, threads=1", "benchmarks": {}}
for design in ("buf", "vco"):
    entry = {}
    for mode in ("presolve", "no_presolve"):
        with open(tmp / f"{design}_{mode}.json") as f:
            d = json.load(f)
        entry[mode] = {
            "sat_vars": d["sat_vars"],
            "sat_clauses": d["sat_clauses"],
            "runtime_ms": d["runtime_ms"],
            "hpwl_um": d["hpwl_um"],
            "presolve": d["presolve"],
        }
    pre = entry["no_presolve"]
    post = entry["presolve"]
    entry["savings"] = {
        "vars": pre["sat_vars"] - post["sat_vars"],
        "clauses": pre["sat_clauses"] - post["sat_clauses"],
        "runtime_ms": pre["runtime_ms"] - post["runtime_ms"],
    }
    assert entry["savings"]["vars"] > 0, f"{design}: presolve pruned no variables"
    assert entry["savings"]["clauses"] > 0, f"{design}: presolve shed no clauses"
    out["benchmarks"][design] = entry

with open("BENCH_presolve.json", "w") as f:
    json.dump(out, f, indent=2)
    f.write("\n")
print(json.dumps({k: v["savings"] for k, v in out["benchmarks"].items()}, indent=2))
EOF
echo "wrote BENCH_presolve.json"

#!/usr/bin/env bash
# The repository's single CI gate: formatting, lints, and tests.
# Run locally before pushing; .github/workflows/ci.yml runs the same steps.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test"
cargo test -q --workspace

echo "==> cargo test (parallel portfolio, AMSPLACE_THREADS=4)"
# Re-runs the placement-facing suites with the portfolio as the default
# solver path, so the multi-threaded dispatch stays covered by CI.
AMSPLACE_THREADS=4 cargo test -q -p ams-place -p finfet-ams-place

echo "==> never-panic suite (randomized designs/configs)"
cargo test -q -p ams-place --test never_panic

echo "==> deadline-bounded portfolio smoke run"
# One end-to-end CLI run: portfolio solving under a wall-clock deadline,
# machine-readable stats out. Exit code 0 covers optimal, anytime, and
# recovered outcomes alike.
cargo run -q --bin amsplace -- synthetic --threads 4 --quick \
    --deadline-ms 30000 --stats-json /tmp/amsplace-smoke.json
grep -q '"outcome"' /tmp/amsplace-smoke.json

echo "All checks passed."

#!/usr/bin/env bash
# The repository's single CI gate: formatting, lints, and tests.
# Run locally before pushing; .github/workflows/ci.yml runs the same steps.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo doc (deny warnings, incl. broken intra-doc links)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace -q

echo "==> cargo test"
cargo test -q --workspace

echo "==> cargo test (parallel portfolio, AMSPLACE_THREADS=4)"
# Re-runs the placement-facing suites with the portfolio as the default
# solver path, so the multi-threaded dispatch stays covered by CI.
AMSPLACE_THREADS=4 cargo test -q -p ams-place -p finfet-ams-place

echo "==> never-panic suite (randomized designs/configs)"
cargo test -q -p ams-place --test never_panic

echo "==> lowering validator (selector-literal discipline, explicit)"
# Also runs under debug_assertions inside the placer after every
# lower/retire/re-lower; this step keeps it an explicit CI contract.
cargo test -q -p ams-place --test presolve validate_lowering

echo "==> presolve infeasibility fast path (zero-conflict UNSAT, exit 2)"
# Without --certify, λ_th = 0 must be rejected by the presolve capacity
# proof — provenance-cited, before any CDCL conflict accrues.
set +e
presolve_out=$(cargo run -q --bin amsplace -- synthetic --quick \
    --lambda-th 0 --max-relax 0 2>&1)
presolve_code=$?
set -e
if [ "$presolve_code" -ne 2 ]; then
    echo "$presolve_out"
    echo "expected exit 2 from the presolve fast path, got $presolve_code"
    exit 1
fi
echo "$presolve_out" | grep -q 'presolve capacity pass'

echo "==> deadline-bounded portfolio smoke run"
# One end-to-end CLI run: portfolio solving under a wall-clock deadline,
# machine-readable stats out. Exit code 0 covers optimal, anytime, and
# recovered outcomes alike.
cargo run -q --bin amsplace -- synthetic --threads 4 --quick \
    --deadline-ms 30000 --stats-json /tmp/amsplace-smoke.json
grep -q '"outcome"' /tmp/amsplace-smoke.json

echo "==> placement-service smoke (serve, submit over loopback, shutdown)"
# One end-to-end service loop: start the server on an ephemeral loopback
# port, submit a job through the typed client path, assert the response
# carries the API schema, and shut the server down cleanly.
cargo build -q --bin amsplace
serve_log=$(mktemp)
target/debug/amsplace serve --bind 127.0.0.1:0 --workers 2 >"$serve_log" &
serve_pid=$!
serve_addr=""
for _ in $(seq 1 100); do
    serve_addr=$(sed -n 's|^amsplace serving on http://\([0-9.:]*\).*|\1|p' "$serve_log")
    [ -n "$serve_addr" ] && break
    sleep 0.1
done
if [ -z "$serve_addr" ]; then
    echo "server never announced its address"
    cat "$serve_log"
    kill "$serve_pid" 2>/dev/null || true
    exit 1
fi
target/debug/amsplace submit synthetic --quick --addr "$serve_addr" \
    --stats-json /tmp/amsplace-serve-smoke.json >/dev/null
grep -q '"schema_version"' /tmp/amsplace-serve-smoke.json
grep -q '"outcome"' /tmp/amsplace-serve-smoke.json
target/debug/amsplace shutdown --addr "$serve_addr" >/dev/null
wait "$serve_pid"
rm -f "$serve_log"

echo "==> crash-recovery smoke (journaled serve, SIGKILL, --resume)"
# Kill -9 a journaled server after one completed job, restart it on the
# same journal with --resume, and assert the WAL replays: the recovery
# banner reports the job as done, and resubmitting with the same
# idempotency key deduplicates onto the recovered job instead of
# solving again.
journal_dir=$(mktemp -d)
serve_log=$(mktemp)
target/debug/amsplace serve --bind 127.0.0.1:0 --workers 1 \
    --journal-dir "$journal_dir" >"$serve_log" &
serve_pid=$!
serve_addr=""
for _ in $(seq 1 100); do
    serve_addr=$(sed -n 's|^amsplace serving on http://\([0-9.:]*\).*|\1|p' "$serve_log")
    [ -n "$serve_addr" ] && break
    sleep 0.1
done
if [ -z "$serve_addr" ]; then
    echo "journaled server never announced its address"
    cat "$serve_log"
    kill "$serve_pid" 2>/dev/null || true
    exit 1
fi
target/debug/amsplace submit synthetic --quick --addr "$serve_addr" \
    --idempotency-key ci-chaos-smoke >/dev/null
kill -9 "$serve_pid"
wait "$serve_pid" 2>/dev/null || true
resume_log=$(mktemp)
target/debug/amsplace serve --bind 127.0.0.1:0 --workers 1 \
    --journal-dir "$journal_dir" --resume >"$resume_log" &
resume_pid=$!
resume_addr=""
for _ in $(seq 1 100); do
    resume_addr=$(sed -n 's|^amsplace serving on http://\([0-9.:]*\).*|\1|p' "$resume_log")
    [ -n "$resume_addr" ] && break
    sleep 0.1
done
if [ -z "$resume_addr" ]; then
    echo "resumed server never announced its address"
    cat "$resume_log"
    kill "$resume_pid" 2>/dev/null || true
    exit 1
fi
resubmit_out=$(target/debug/amsplace submit synthetic --quick \
    --addr "$resume_addr" --idempotency-key ci-chaos-smoke)
echo "$resubmit_out" | grep -q 'deduplicated'
grep -q 'resumed from journal: 1 done' "$resume_log"
target/debug/amsplace shutdown --addr "$resume_addr" >/dev/null
wait "$resume_pid"
rm -f "$serve_log" "$resume_log"
rm -rf "$journal_dir"

echo "==> differential fuzz subset (SMT vs portfolio vs exhaustive reference)"
# The fast subset of the three-way differential harness; the fifty-design
# acceptance run is release-mode (CI release step + nightly).
cargo test -q -p ams-place --test differential

echo "==> routing-closure corpus smoke (25 scenarios vs golden manifest)"
# A deterministic 25-scenario slice of the closure corpus: each scenario
# runs the full place -> route -> tighten loop; the observed pass/fail +
# drc_clean verdicts must match scripts/corpus_smoke_manifest.json. The
# full 1000+-scenario sweep runs nightly (scripts/corpus.sh full).
scripts/corpus.sh smoke

echo "==> certified infeasibility smoke (proof-checked UNSAT, exit 2)"
# λ_th = 0 is unsatisfiable by construction; --certify must turn that into
# a DRAT certificate the in-repo checker validates before exiting 2.
set +e
certify_out=$(cargo run -q --bin amsplace -- synthetic --quick \
    --certify --lambda-th 0 --max-relax 0 2>&1)
certify_code=$?
set -e
if [ "$certify_code" -ne 2 ]; then
    echo "$certify_out"
    echo "expected exit 2 from the certified infeasible run, got $certify_code"
    exit 1
fi
echo "$certify_out" | grep -q 'certificate: UNSAT proof checked'

echo "All checks passed."

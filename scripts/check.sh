#!/usr/bin/env bash
# The repository's single CI gate: formatting, lints, and tests.
# Run locally before pushing; .github/workflows/ci.yml runs the same steps.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test"
cargo test -q --workspace

echo "==> cargo test (parallel portfolio, AMSPLACE_THREADS=4)"
# Re-runs the placement-facing suites with the portfolio as the default
# solver path, so the multi-threaded dispatch stays covered by CI.
AMSPLACE_THREADS=4 cargo test -q -p ams-place -p finfet-ams-place

echo "All checks passed."

//! Regenerates Table II: statistics of the circuit benchmarks.

use ams_netlist::benchmarks;

fn main() {
    println!("### Table II: Statistics of the circuit benchmarks");
    println!("| Benchmark | #Regions | #Cells | #Nets | Tech             |");
    println!("|-----------|----------|--------|-------|------------------|");
    for design in [benchmarks::buf(), benchmarks::vco()] {
        let nets = design.nets().iter().filter(|n| !n.virtual_net).count();
        println!(
            "| {:<9} | {:>8} | {:>6} | {:>5} | 5nm FinFET (sim) |",
            design.name().to_uppercase(),
            design.regions().len(),
            design.cells().len(),
            nets
        );
    }
    println!("\nPaper reference: BUF 1/42/66, VCO 2/110/71.");
}

//! Regenerates Table III: BUF area / HPWL / RWL / via / runtime across the
//! Manual-surrogate, w/o-constraints, and w/-constraints arms.

use ams_bench::{
    paper, presets, print_arm_header, print_ratio_row, quick_mode, run_manual_arm, run_smt_arm,
};
use ams_netlist::benchmarks;

fn main() {
    let cfg = if quick_mode() {
        presets::quick(presets::buf())
    } else {
        presets::buf()
    };

    eprintln!("placing BUF (manual surrogate)...");
    let manual = run_manual_arm(benchmarks::buf(), presets::baseline_buf());
    eprintln!("placing BUF w/o constraints...");
    let wo = run_smt_arm(
        "w/o Cstr.",
        benchmarks::buf().without_constraints(),
        cfg.clone().without_ams_constraints(),
    );
    eprintln!("placing BUF w/ constraints...");
    let w = run_smt_arm("w/ Cstr.", benchmarks::buf(), cfg);

    print_arm_header("Table III (measured): BUF placement metrics");
    print_ratio_row(
        "Area",
        &[
            Some(manual.area_um2()),
            Some(wo.area_um2()),
            Some(w.area_um2()),
        ],
        "µm²",
    );
    print_ratio_row("HPWL", &[None, Some(wo.hpwl_um()), Some(w.hpwl_um())], "µm");
    print_ratio_row("RWL", &[None, Some(wo.rwl_um()), Some(w.rwl_um())], "µm");
    print_ratio_row(
        "VIA",
        &[None, Some(wo.vias() as f64), Some(w.vias() as f64)],
        "",
    );
    print_ratio_row(
        "Runtime",
        &[
            None,
            Some(wo.runtime.as_secs_f64()),
            Some(w.runtime.as_secs_f64()),
        ],
        "s",
    );

    print_arm_header("Table III (paper)");
    let units = ["µm²", "µm", "µm", "", "s"];
    for (row, metric) in ["Area", "HPWL", "RWL", "VIA", "Runtime"].iter().enumerate() {
        print_ratio_row(metric, &paper::TABLE3[row], units[row]);
    }
    println!("\n(*) Manual column is the deterministic hand-layout surrogate (see DESIGN.md).");
    println!(
        "overflow: w/o = {}, w/ = {} (0 = routable)",
        wo.route.overflow, w.route.overflow
    );
}

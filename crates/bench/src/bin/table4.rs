//! Regenerates Table IV: BUF post-layout insertion delays and rise/fall
//! times per stage, across the three evaluation arms.

use ams_bench::{paper, presets, quick_mode, run_manual_arm, run_smt_arm, Arm};
use ams_netlist::benchmarks;
use ams_sim::{analyze_buf, BufTimingReport, Tech};

fn report(arm: &Arm) -> BufTimingReport {
    analyze_buf(&arm.design, &arm.nets, &Tech::n5())
}

fn main() {
    let cfg = if quick_mode() {
        presets::quick(presets::buf())
    } else {
        presets::buf()
    };
    eprintln!("running the three BUF arms...");
    let manual = run_manual_arm(benchmarks::buf(), presets::baseline_buf());
    let wo = run_smt_arm(
        "w/o Cstr.",
        benchmarks::buf().without_constraints(),
        cfg.clone().without_ams_constraints(),
    );
    let w = run_smt_arm("w/ Cstr.", benchmarks::buf(), cfg);
    let (rm, rwo, rw) = (report(&manual), report(&wo), report(&w));

    println!("\n### Table IV (measured): BUF insertion delay and rise/fall times");
    println!("| Stage | Manual* avg/sd (ps) | w/o avg/sd (ps) | w/ avg/sd (ps) | Manual r/f | w/o r/f | w/ r/f |");
    println!("|-------|---------------------|-----------------|----------------|------------|---------|--------|");
    for s in 0..4 {
        println!(
            "| {}     | {:>8.2} / {:<6.3} | {:>7.2} / {:<6.3} | {:>7.2} / {:<6.3} | {:>4.1}/{:<4.1} | {:>4.1}/{:<4.1} | {:>4.1}/{:<4.1} |",
            s + 1,
            rm.stages[s].delay_avg_ps,
            rm.stages[s].delay_sd_ps,
            rwo.stages[s].delay_avg_ps,
            rwo.stages[s].delay_sd_ps,
            rw.stages[s].delay_avg_ps,
            rw.stages[s].delay_sd_ps,
            rm.stages[s].rise_avg_ps,
            rm.stages[s].fall_avg_ps,
            rwo.stages[s].rise_avg_ps,
            rwo.stages[s].fall_avg_ps,
            rw.stages[s].rise_avg_ps,
            rw.stages[s].fall_avg_ps,
        );
    }
    println!(
        "| OUT   | {:>8.2} / {:<6.3} | {:>7.2} / {:<6.3} | {:>7.2} / {:<6.3} | {:>4.1}/{:<4.1} | {:>4.1}/{:<4.1} | {:>4.1}/{:<4.1} |",
        rm.out.delay_avg_ps, rm.out.delay_sd_ps,
        rwo.out.delay_avg_ps, rwo.out.delay_sd_ps,
        rw.out.delay_avg_ps, rw.out.delay_sd_ps,
        rm.out.rise_avg_ps, rm.out.fall_avg_ps,
        rwo.out.rise_avg_ps, rwo.out.fall_avg_ps,
        rw.out.rise_avg_ps, rw.out.fall_avg_ps,
    );
    println!(
        "| Total | {:>8.2} / {:<6.3} | {:>7.2} / {:<6.3} | {:>7.2} / {:<6.3} |            |         |        |",
        rm.total_avg_ps, rm.total_sd_ps,
        rwo.total_avg_ps, rwo.total_sd_ps,
        rw.total_avg_ps, rw.total_sd_ps,
    );

    println!("\n### Table IV (paper, insertion-delay averages in ps)");
    println!("| Stage | Manual | w/o Cstr. | w/ Cstr. |");
    let labels = ["1", "2", "3", "4", "OUT", "Total"];
    for (row, label) in labels.iter().enumerate() {
        let [m, wo_, w_] = paper::TABLE4_DELAY_AVG[row];
        println!("| {label:<5} | {m:>6.1} | {wo_:>9.1} | {w_:>8.1} |");
    }
    println!("\nShape checks: w/ Cstr. total should be lowest and its SDs smallest.");
}

//! Regenerates Table VI: VCO power and oscillation frequency vs. supply.

use ams_bench::{paper, presets, quick_mode, run_manual_arm, run_smt_arm, Arm};
use ams_netlist::benchmarks;
use ams_sim::{Tech, VcoModel};

/// Nominal capacitor trim code used for the supply sweep.
const NOMINAL_CODE: u32 = 3;

fn model(arm: &Arm) -> VcoModel {
    VcoModel::from_layout(&arm.design, &arm.nets, Tech::n5())
}

fn main() {
    let cfg = if quick_mode() {
        presets::quick(presets::vco())
    } else {
        presets::vco()
    };
    eprintln!("running the three VCO arms...");
    let manual = run_manual_arm(benchmarks::vco(), presets::baseline_vco());
    let wo = run_smt_arm(
        "w/o Cstr.",
        benchmarks::vco().without_constraints(),
        cfg.clone().without_ams_constraints(),
    );
    let w = run_smt_arm("w/ Cstr.", benchmarks::vco(), cfg);
    let (mm, mwo, mw) = (model(&manual), model(&wo), model(&w));

    println!("\n### Table VI (measured): VCO power (µW) and frequency (GHz) vs supply");
    println!("| Supply (mV) | Manual* P/f      | w/o Cstr. P/f    | w/ Cstr. P/f     |");
    println!("|-------------|------------------|------------------|------------------|");
    let mut norms = [[0.0f64; 2]; 3];
    for &(mv, _) in &paper::TABLE6 {
        let v = f64::from(mv) / 1000.0;
        let pts = [
            mm.evaluate(v, NOMINAL_CODE),
            mwo.evaluate(v, NOMINAL_CODE),
            mw.evaluate(v, NOMINAL_CODE),
        ];
        println!(
            "| {mv:>11} | {:>7.1} / {:<5.2} | {:>7.1} / {:<5.2} | {:>7.1} / {:<5.2} |",
            pts[0].power_uw,
            pts[0].frequency_ghz,
            pts[1].power_uw,
            pts[1].frequency_ghz,
            pts[2].power_uw,
            pts[2].frequency_ghz,
        );
        for (i, p) in pts.iter().enumerate() {
            norms[i][0] += p.power_uw;
            norms[i][1] += p.frequency_ghz;
        }
    }
    let base = norms[2];
    print!("| Norm.       |");
    for n in norms {
        print!(" {:>7.2} / {:<6.2} |", n[0] / base[0], n[1] / base[1]);
    }
    println!();

    println!("\n### Table VI (paper)");
    println!("| Supply (mV) | Manual P/f       | w/o Cstr. P/f    | w/ Cstr. P/f     |");
    for &(mv, cols) in &paper::TABLE6 {
        println!(
            "| {mv:>11} | {:>7.1} / {:<5.2} | {:>7.1} / {:<5.2} | {:>7.1} / {:<5.2} |",
            cols[0].0, cols[0].1, cols[1].0, cols[1].1, cols[2].0, cols[2].1,
        );
    }
    println!("| Norm.       | 1.02 / 0.98      | 1.00 / 0.88      | 1.00 / 1.00      |");
    println!(
        "\nShape checks: w/ Cstr. fastest at every supply; w/o slowest; powers within a few %."
    );
    println!(
        "phase parasitics (C per stage, fF): manual {:.2}, w/o {:.2}, w/ {:.2}",
        mm.c_parasitic_per_stage * 1e15,
        mwo.c_parasitic_per_stage * 1e15,
        mw.c_parasitic_per_stage * 1e15
    );
}

//! Runs every table/figure binary's logic in sequence — the one-shot
//! "regenerate the whole evaluation" entry point. Prefer the individual
//! binaries when iterating; this exists for end-to-end reproduction runs.

use std::process::Command;

fn main() {
    let quick = ams_bench::quick_mode();
    let exe = std::env::current_exe().expect("own path");
    let dir = exe.parent().expect("bin dir");
    for bin in ["table2", "table3", "table4", "table5", "table6", "fig7"] {
        println!("\n================ {bin} ================");
        let mut cmd = Command::new(dir.join(bin));
        if quick {
            cmd.arg("--quick");
        }
        let status = cmd.status().expect("spawn table binary");
        if !status.success() {
            eprintln!("{bin} failed with {status}");
            std::process::exit(1);
        }
    }
}

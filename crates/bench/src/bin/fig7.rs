//! Regenerates Fig. 7: VCO oscillation frequency vs. supply voltage under
//! every capacitor trim code, for the manual surrogate and the
//! w/-constraints automated layout.

use ams_bench::{presets, quick_mode, run_manual_arm, run_smt_arm};
use ams_netlist::benchmarks;
use ams_sim::{Tech, VcoModel};

fn main() {
    let cfg = if quick_mode() {
        presets::quick(presets::vco())
    } else {
        presets::vco()
    };
    eprintln!("running the Fig. 7 arms...");
    let manual = run_manual_arm(benchmarks::vco(), presets::baseline_vco());
    let w = run_smt_arm("w/ Cstr.", benchmarks::vco(), cfg);
    let mm = VcoModel::from_layout(&manual.design, &manual.nets, Tech::n5());
    let mw = VcoModel::from_layout(&w.design, &w.nets, Tech::n5());

    println!("\n### Fig. 7 (measured): frequency (GHz) vs supply per trim code");
    println!("| code | layout   |  650mV |  700mV |  750mV |  800mV |  850mV |  900mV |");
    println!("|------|----------|--------|--------|--------|--------|--------|--------|");
    for code in 0..=7u32 {
        for (label, m) in [("Manual*", &mm), ("w/ Cstr.", &mw)] {
            print!("| {code:>4} | {label:<8} |");
            for p in m.supply_sweep(code) {
                print!(" {:>6.3} |", p.frequency_ghz);
            }
            println!();
        }
    }
    println!("\nShape checks (as in the paper's Fig. 7):");
    println!("  * every curve increases monotonically with supply;");
    println!("  * higher trim codes sit strictly lower (more capacitance);");
    println!("  * the automated w/-constraints layout is faster than the manual");
    println!("    surrogate at every (code, supply) point.");
}

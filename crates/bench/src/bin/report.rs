//! One-pass evaluation report: runs each benchmark's three arms once and
//! prints every table/figure that depends on them (Tables III+IV from the
//! BUF arms; Tables V+VI and Fig. 7 from the VCO arms), plus Table II.
//!
//! This is what `results/` is generated from; the per-table binaries
//! remain for focused reruns.

use ams_bench::{
    paper, presets, print_arm_header, print_ratio_row, quick_mode, run_manual_arm, run_smt_arm, Arm,
};
use ams_netlist::benchmarks;
use ams_sim::{analyze_buf, Tech, VcoModel};

const NOMINAL_CODE: u32 = 3;

fn main() {
    // ---- Table II ----------------------------------------------------
    println!("### Table II: Statistics of the circuit benchmarks");
    println!("| Benchmark | #Regions | #Cells | #Nets | Tech             |");
    for design in [benchmarks::buf(), benchmarks::vco()] {
        let nets = design.nets().iter().filter(|n| !n.virtual_net).count();
        println!(
            "| {:<9} | {:>8} | {:>6} | {:>5} | 5nm FinFET (sim) |",
            design.name().to_uppercase(),
            design.regions().len(),
            design.cells().len(),
            nets
        );
    }
    println!("Paper: BUF 1/42/66, VCO 2/110/71.");

    // ---- BUF arms ----------------------------------------------------
    let buf_cfg = if quick_mode() {
        presets::quick(presets::buf())
    } else {
        presets::buf()
    };
    eprintln!("[report] BUF manual surrogate...");
    let bm = run_manual_arm(benchmarks::buf(), presets::baseline_buf());
    eprintln!("[report] BUF w/o constraints...");
    let bwo = run_smt_arm(
        "w/o Cstr.",
        benchmarks::buf().without_constraints(),
        buf_cfg.clone().without_ams_constraints(),
    );
    eprintln!("[report] BUF w/ constraints...");
    let bw = run_smt_arm("w/ Cstr.", benchmarks::buf(), buf_cfg);

    print_table3_like(
        "Table III (measured): BUF placement metrics",
        &bm,
        &bwo,
        &bw,
    );
    print_paper_table(&paper::TABLE3, "Table III (paper)");

    // ---- Table IV ------------------------------------------------------
    let tech = Tech::n5();
    let (rm, rwo, rw) = (
        analyze_buf(&bm.design, &bm.nets, &tech),
        analyze_buf(&bwo.design, &bwo.nets, &tech),
        analyze_buf(&bw.design, &bw.nets, &tech),
    );
    println!("\n### Table IV (measured): BUF insertion delay (avg / sd, ps)");
    println!("| Stage | Manual*          | w/o Cstr.        | w/ Cstr.         |");
    for s in 0..4 {
        println!(
            "| {}     | {:>7.2} / {:<6.3} | {:>7.2} / {:<6.3} | {:>7.2} / {:<6.3} |",
            s + 1,
            rm.stages[s].delay_avg_ps,
            rm.stages[s].delay_sd_ps,
            rwo.stages[s].delay_avg_ps,
            rwo.stages[s].delay_sd_ps,
            rw.stages[s].delay_avg_ps,
            rw.stages[s].delay_sd_ps,
        );
    }
    println!(
        "| OUT   | {:>7.2} / {:<6.3} | {:>7.2} / {:<6.3} | {:>7.2} / {:<6.3} |",
        rm.out.delay_avg_ps,
        rm.out.delay_sd_ps,
        rwo.out.delay_avg_ps,
        rwo.out.delay_sd_ps,
        rw.out.delay_avg_ps,
        rw.out.delay_sd_ps,
    );
    println!(
        "| Total | {:>7.2} / {:<6.3} | {:>7.2} / {:<6.3} | {:>7.2} / {:<6.3} |",
        rm.total_avg_ps,
        rm.total_sd_ps,
        rwo.total_avg_ps,
        rwo.total_sd_ps,
        rw.total_avg_ps,
        rw.total_sd_ps,
    );
    println!("\n### Table IV (paper, delay averages ps)");
    println!("| Stage | Manual | w/o  | w/   |");
    for (row, label) in ["1", "2", "3", "4", "OUT", "Total"].iter().enumerate() {
        let [m, wo_, w_] = paper::TABLE4_DELAY_AVG[row];
        println!("| {label:<5} | {m:>6.1} | {wo_:>4.1} | {w_:>4.1} |");
    }

    // ---- VCO arms ------------------------------------------------------
    let vco_cfg = if quick_mode() {
        presets::quick(presets::vco())
    } else {
        presets::vco()
    };
    eprintln!("[report] VCO manual surrogate...");
    let vm = run_manual_arm(benchmarks::vco(), presets::baseline_vco());
    eprintln!("[report] VCO w/o constraints...");
    let vwo = run_smt_arm(
        "w/o Cstr.",
        benchmarks::vco().without_constraints(),
        vco_cfg.clone().without_ams_constraints(),
    );
    eprintln!("[report] VCO w/ constraints...");
    let vw = run_smt_arm("w/ Cstr.", benchmarks::vco(), vco_cfg);

    print_table3_like("Table V (measured): VCO placement metrics", &vm, &vwo, &vw);
    print_paper_table(&paper::TABLE5, "Table V (paper)");

    // ---- Table VI -------------------------------------------------------
    let (mm, mwo, mw) = (
        VcoModel::from_layout(&vm.design, &vm.nets, tech),
        VcoModel::from_layout(&vwo.design, &vwo.nets, tech),
        VcoModel::from_layout(&vw.design, &vw.nets, tech),
    );
    println!("\n### Table VI (measured): VCO power (µW) / frequency (GHz) vs supply");
    println!("| Supply (mV) | Manual*          | w/o Cstr.        | w/ Cstr.         |");
    let mut norms = [[0.0f64; 2]; 3];
    for &(mv, _) in &paper::TABLE6 {
        let v = f64::from(mv) / 1000.0;
        let pts = [
            mm.evaluate(v, NOMINAL_CODE),
            mwo.evaluate(v, NOMINAL_CODE),
            mw.evaluate(v, NOMINAL_CODE),
        ];
        println!(
            "| {mv:>11} | {:>7.1} / {:<5.2}  | {:>7.1} / {:<5.2}  | {:>7.1} / {:<5.2}  |",
            pts[0].power_uw,
            pts[0].frequency_ghz,
            pts[1].power_uw,
            pts[1].frequency_ghz,
            pts[2].power_uw,
            pts[2].frequency_ghz,
        );
        for (i, p) in pts.iter().enumerate() {
            norms[i][0] += p.power_uw;
            norms[i][1] += p.frequency_ghz;
        }
    }
    let base = norms[2];
    print!("| Norm.       |");
    for n in norms {
        print!(" {:>7.2} / {:<5.2}  |", n[0] / base[0], n[1] / base[1]);
    }
    println!();
    println!("\n### Table VI (paper)");
    for &(mv, cols) in &paper::TABLE6 {
        println!(
            "| {mv:>11} | {:>7.1} / {:<5.2}  | {:>7.1} / {:<5.2}  | {:>7.1} / {:<5.2}  |",
            cols[0].0, cols[0].1, cols[1].0, cols[1].1, cols[2].0, cols[2].1,
        );
    }
    println!("| Norm.       | 1.02 / 0.98      | 1.00 / 0.88      | 1.00 / 1.00      |");

    // ---- Fig. 7 ----------------------------------------------------------
    println!("\n### Fig. 7 (measured): frequency (GHz) vs supply per trim code");
    println!("| code | layout   |  650mV |  700mV |  750mV |  800mV |  850mV |  900mV |");
    for code in 0..=7u32 {
        for (label, m) in [("Manual*", &mm), ("w/ Cstr.", &mw)] {
            print!("| {code:>4} | {label:<8} |");
            for p in m.supply_sweep(code) {
                print!(" {:>6.3} |", p.frequency_ghz);
            }
            println!();
        }
    }
    println!(
        "\nphase parasitics (fF/stage): manual {:.2}, w/o {:.2}, w/ {:.2}",
        mm.c_parasitic_per_stage * 1e15,
        mwo.c_parasitic_per_stage * 1e15,
        mw.c_parasitic_per_stage * 1e15
    );
}

fn print_table3_like(title: &str, manual: &Arm, wo: &Arm, w: &Arm) {
    print_arm_header(title);
    print_ratio_row(
        "Area",
        &[
            Some(manual.area_um2()),
            Some(wo.area_um2()),
            Some(w.area_um2()),
        ],
        "µm²",
    );
    print_ratio_row("HPWL", &[None, Some(wo.hpwl_um()), Some(w.hpwl_um())], "µm");
    print_ratio_row("RWL", &[None, Some(wo.rwl_um()), Some(w.rwl_um())], "µm");
    print_ratio_row(
        "VIA",
        &[None, Some(wo.vias() as f64), Some(w.vias() as f64)],
        "",
    );
    print_ratio_row(
        "Runtime",
        &[
            None,
            Some(wo.runtime.as_secs_f64()),
            Some(w.runtime.as_secs_f64()),
        ],
        "s",
    );
    println!(
        "overflow: w/o = {}, w/ = {} (0 = routable)",
        wo.route.overflow, w.route.overflow
    );
}

fn print_paper_table(rows: &[[Option<f64>; 3]; 5], title: &str) {
    print_arm_header(title);
    let units = ["µm²", "µm", "µm", "", "s"];
    for (row, metric) in ["Area", "HPWL", "RWL", "VIA", "Runtime"].iter().enumerate() {
        print_ratio_row(metric, &rows[row], units[row]);
    }
}

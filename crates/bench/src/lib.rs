//! # ams-bench
//!
//! The experiment harness: one binary per table/figure of the paper
//! (`table2` … `table6`, `fig7`, or `all`), each printing paper-reported
//! values next to the values measured on this reproduction.
//!
//! The full pipeline per evaluation arm is: generate benchmark → place
//! (SMT w/ or w/o AMS constraints, or the manual-surrogate packer) → route
//! → extract → analyze.

use ams_netlist::Design;
use ams_place::{baseline, Placement, Placer, PlacerConfig};
use ams_route::{route, RouteResult, RouterConfig};
use ams_sim::{extract, ExtractedNet, Tech};
use std::time::Duration;

/// A fully analyzed evaluation arm.
pub struct Arm {
    /// Label ("Manual*", "w/o Cstr.", "w/ Cstr.").
    pub name: &'static str,
    /// The design variant the arm placed.
    pub design: Design,
    /// Placement result.
    pub placement: Placement,
    /// Routing result.
    pub route: RouteResult,
    /// Extracted parasitics per net.
    pub nets: Vec<Option<ExtractedNet>>,
    /// Placement wall-clock (zero for the manual surrogate).
    pub runtime: Duration,
}

impl Arm {
    /// Die area in µm².
    pub fn area_um2(&self) -> f64 {
        self.placement.area_um2(&self.design)
    }

    /// Pin-based HPWL in µm.
    pub fn hpwl_um(&self) -> f64 {
        self.placement.hpwl_um(&self.design)
    }

    /// Routed wirelength in µm.
    pub fn rwl_um(&self) -> f64 {
        self.route.wirelength_um(self.design.pitch())
    }

    /// Routed via count.
    pub fn vias(&self) -> u64 {
        self.route.vias
    }
}

/// Paper-matched presets for the two benchmarks.
pub mod presets {
    use ams_place::PlacerConfig;

    /// BUF preset: the paper's optimization loop terminates after five
    /// iterations.
    pub fn buf() -> PlacerConfig {
        let mut c = PlacerConfig::default();
        c.optimize.k_iter = 5;
        c.optimize.conflict_budget = Some(150_000);
        c
    }

    /// VCO preset: four iterations.
    pub fn vco() -> PlacerConfig {
        let mut c = PlacerConfig::default();
        c.optimize.k_iter = 4;
        c.optimize.conflict_budget = Some(150_000);
        c
    }

    /// Smaller budgets for smoke runs (`--quick`).
    pub fn quick(mut c: PlacerConfig) -> PlacerConfig {
        c.optimize.k_iter = 1;
        c.optimize.conflict_budget = Some(30_000);
        c
    }

    /// Manual-surrogate packing calibrated so the BUF area ratio lands near
    /// the paper's 1.49× (lands at ~1.39× after row quantization; the area is an input by design —
    /// only its downstream wire/parasitic effects are measured results).
    pub fn baseline_buf() -> ams_place::baseline::BaselineConfig {
        ams_place::baseline::BaselineConfig {
            utilization: 0.44,
            aspect_ratio: 1.0,
        }
    }

    /// Manual-surrogate packing for the VCO (paper ratio 1.23×; row
    /// quantization lands this reproduction at ~1.15×).
    pub fn baseline_vco() -> ams_place::baseline::BaselineConfig {
        ams_place::baseline::BaselineConfig {
            utilization: 0.68,
            aspect_ratio: 1.3,
        }
    }
}

/// Places with the SMT engine and runs the rest of the pipeline.
///
/// # Panics
///
/// Panics if placement fails or the result flunks the legality oracle
/// (the harness treats either as a broken setup).
pub fn run_smt_arm(name: &'static str, design: Design, config: PlacerConfig) -> Arm {
    let placer = Placer::new(&design, config).expect("encoding succeeds");
    let placement = placer.place().expect("placement succeeds");
    placement
        .verify(&design)
        .expect("SMT placement passes the legality oracle");
    finish_arm(name, design, placement)
}

/// Runs the manual-surrogate arm with the given packing calibration.
pub fn run_manual_arm(design: Design, config: baseline::BaselineConfig) -> Arm {
    let placement = baseline::manual_surrogate(&design, config);
    finish_arm("Manual*", design, placement)
}

fn finish_arm(name: &'static str, design: Design, placement: Placement) -> Arm {
    let runtime = placement.stats.runtime;
    let route = route(&design, &placement, RouterConfig::default());
    let nets = extract(&design, &placement, &route, &Tech::n5());
    Arm {
        name,
        design,
        placement,
        route,
        nets,
        runtime,
    }
}

/// Whether `--quick` was passed on the command line.
pub fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--quick")
}

/// Prints one metric row: absolute values with ratios to the final
/// ("w/ Cstr.") column, mirroring the paper's `value (ratio)` format.
pub fn print_ratio_row(metric: &str, values: &[Option<f64>], unit: &str) {
    let base = values.last().copied().flatten().filter(|v| *v != 0.0);
    print!("| {metric:<12} |");
    for v in values {
        match (v, base) {
            (Some(v), Some(b)) => print!(" {v:>10.2} ({:>4.2}) |", v / b),
            (Some(v), None) => print!(" {v:>10.2} (  - ) |"),
            (None, _) => print!(" {:>17} |", "N/A"),
        }
    }
    println!(" {unit}");
}

/// Prints a table header for the standard three-arm comparison.
pub fn print_arm_header(title: &str) {
    println!("\n### {title}");
    println!("| metric       | Manual*           | w/o Cstr.         | w/ Cstr.          | unit");
    println!("|--------------|-------------------|-------------------|-------------------|------");
}

/// The paper's reported numbers, for side-by-side printing.
pub mod paper {
    /// Table III (BUF) rows: area µm², HPWL µm, RWL µm, vias, runtime s;
    /// columns [Manual, w/o, w/], `None` where the paper prints N/A.
    pub const TABLE3: [[Option<f64>; 3]; 5] = [
        [Some(56.64), Some(38.09), Some(38.09)],
        [None, Some(95.07), Some(70.22)],
        [None, Some(134.33), Some(82.90)],
        [None, Some(326.0), Some(300.0)],
        [None, Some(798.54), Some(116.18)],
    ];

    /// Table V (VCO) rows, same layout.
    pub const TABLE5: [[Option<f64>; 3]; 5] = [
        [Some(68.89), Some(56.14), Some(56.14)],
        [None, Some(231.82), Some(147.90)],
        [None, Some(292.32), Some(155.45)],
        [None, Some(576.0), Some(361.0)],
        [None, Some(205.90), Some(110.26)],
    ];

    /// Table VI: supply mV → (power µW, frequency GHz) per arm
    /// [Manual, w/o, w/].
    pub const TABLE6: [(u32, [(f64, f64); 3]); 6] = [
        (650, [(304.4, 3.02), (302.2, 2.76), (300.2, 3.08)]),
        (700, [(398.8, 3.28), (395.1, 2.97), (392.7, 3.34)]),
        (750, [(507.5, 3.49), (501.2, 3.15), (499.6, 3.55)]),
        (800, [(632.4, 3.67), (622.2, 3.28), (621.6, 3.73)]),
        (850, [(774.6, 3.83), (759.7, 3.39), (758.5, 3.88)]),
        (900, [(936.0, 3.96), (912.6, 3.48), (914.4, 4.00)]),
    ];

    /// Table IV: per-stage insertion-delay averages, ps; rows stages 1–4,
    /// OUT, Total; columns [Manual, w/o, w/].
    pub const TABLE4_DELAY_AVG: [[f64; 3]; 6] = [
        [12.3, 10.3, 9.5],
        [12.0, 11.9, 10.5],
        [12.4, 12.3, 11.8],
        [9.4, 11.0, 10.1],
        [35.8, 35.8, 35.2],
        [82.0, 81.4, 77.2],
    ];
}

//! Ablation benchmarks for the design choices DESIGN.md calls out:
//!
//! * pin-density windows on/off (the routability mechanism's cost),
//! * array slot-assignment vs the literal Eq. 9–10 encoding,
//! * assumption freezing on/off in the optimization loop.
//!
//! Plain `Instant` timing; `cargo bench` runs this binary directly via
//! `harness = false`.

use ams_netlist::benchmarks::{self, SyntheticParams};
use ams_place::{Placer, PlacerConfig};
use std::time::Instant;

fn bench(name: &str, iters: u32, mut f: impl FnMut()) {
    f();
    let mut times = Vec::with_capacity(iters as usize);
    for _ in 0..iters {
        let t = Instant::now();
        f();
        times.push(t.elapsed());
    }
    let min = times.iter().min().expect("non-empty");
    let mean = times.iter().sum::<std::time::Duration>() / iters;
    println!("{name:<40} min {min:>12.2?}  mean {mean:>12.2?}  ({iters} iters)");
}

fn buf_quick(budget: u64, k_iter: usize) -> PlacerConfig {
    let mut c = PlacerConfig::default();
    c.optimize.k_iter = k_iter;
    c.optimize.conflict_budget = Some(budget);
    c.optimize.first_conflict_budget = Some(3_000_000);
    c
}

fn bench_pin_density() {
    let design = benchmarks::buf();
    bench("ablation_pin_density/with_pd", 10, || {
        let cfg = buf_quick(0, 0);
        let p = Placer::new(&design, cfg)
            .expect("encode")
            .place()
            .expect("place");
        assert!(p.verify(&design).is_ok());
    });
    bench("ablation_pin_density/without_pd", 10, || {
        let mut cfg = buf_quick(0, 0);
        cfg.pin_density = None;
        let p = Placer::new(&design, cfg)
            .expect("encode")
            .place()
            .expect("place");
        assert!(p.verify(&design).is_ok());
    });
}

fn array_design() -> ams_netlist::Design {
    // A synthetic design with one 8-cell dense array to isolate the array
    // encoding cost without the VCO's scale.
    use ams_netlist::{ArrayConstraint, ArrayPattern, DesignBuilder};
    let mut b = DesignBuilder::new("array_ablation");
    let r = b.add_region("core", 0.6);
    let pg = b.add_power_group("VDD");
    let net = b.add_net("n", 1);
    let caps: Vec<_> = (0..8)
        .map(|i| b.add_cell(format!("cap{i}"), r, 2, 2, pg))
        .collect();
    b.add_pin(caps[0], "p", Some(net), 0, 0);
    b.add_pin(caps[7], "p", Some(net), 0, 0);
    for i in 0..6 {
        let c = b.add_cell(format!("filler{i}"), r, 4, 2, pg);
        b.add_pin(c, "p", Some(net), 0, 0);
    }
    b.add_array(ArrayConstraint {
        name: "bank".into(),
        cells: caps.clone(),
        pattern: ArrayPattern::CommonCentroid {
            group_a: caps[..4].to_vec(),
            group_b: caps[4..].to_vec(),
        },
    });
    b.build().expect("valid")
}

fn bench_array_encoding() {
    let design = array_design();
    bench("ablation_array_encoding/slot_mode", 10, || {
        let mut cfg = PlacerConfig::fast();
        cfg.optimize.k_iter = 0;
        cfg.array_slots = true;
        let p = Placer::new(&design, cfg)
            .expect("encode")
            .place()
            .expect("place");
        assert!(p.verify(&design).is_ok());
    });
    bench("ablation_array_encoding/literal_eq9_eq10", 10, || {
        let mut cfg = PlacerConfig::fast();
        cfg.optimize.k_iter = 0;
        cfg.array_slots = false;
        let p = Placer::new(&design, cfg)
            .expect("encode")
            .place()
            .expect("place");
        assert!(p.verify(&design).is_ok());
    });
}

fn bench_freeze() {
    let design = benchmarks::synthetic(SyntheticParams {
        cells_per_region: 16,
        nets: 20,
        symmetry_pairs: 2,
        seed: 0xF00D,
        ..Default::default()
    });
    for (name, freeze) in [("frozen", true), ("free", false)] {
        bench(&format!("ablation_freeze/{name}"), 10, || {
            let mut cfg = PlacerConfig::fast();
            cfg.optimize.k_iter = 2;
            cfg.optimize.conflict_budget = Some(50_000);
            cfg.optimize.freeze = freeze;
            let p = Placer::new(&design, cfg)
                .expect("encode")
                .place()
                .expect("place");
            assert!(!p.stats.hpwl_trace.is_empty());
        });
    }
}

fn main() {
    bench_pin_density();
    bench_array_encoding();
    bench_freeze();
}

//! Ablation benchmarks for the design choices DESIGN.md calls out:
//!
//! * pin-density windows on/off (the routability mechanism's cost),
//! * array slot-assignment vs the literal Eq. 9–10 encoding,
//! * assumption freezing on/off in the optimization loop,
//! * incremental tightening vs a single solve.

use ams_netlist::benchmarks::{self, SyntheticParams};
use ams_place::{PlacerConfig, SmtPlacer};
use criterion::{criterion_group, criterion_main, Criterion};

fn buf_quick(budget: u64, k_iter: usize) -> PlacerConfig {
    let mut c = PlacerConfig::default();
    c.optimize.k_iter = k_iter;
    c.optimize.conflict_budget = Some(budget);
    c.optimize.first_conflict_budget = Some(3_000_000);
    c
}

fn bench_pin_density(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_pin_density");
    g.sample_size(10);
    let design = benchmarks::buf();
    g.bench_function("buf_first_solve_with_pd", |b| {
        b.iter(|| {
            let cfg = buf_quick(0, 0);
            let p = SmtPlacer::new(&design, cfg).expect("encode").place().expect("place");
            assert!(p.verify(&design).is_ok());
        })
    });
    g.bench_function("buf_first_solve_without_pd", |b| {
        b.iter(|| {
            let mut cfg = buf_quick(0, 0);
            cfg.pin_density = None;
            let p = SmtPlacer::new(&design, cfg).expect("encode").place().expect("place");
            assert!(p.verify(&design).is_ok());
        })
    });
    g.finish();
}

fn array_design() -> ams_netlist::Design {
    // A synthetic design with one 8-cell dense array to isolate the array
    // encoding cost without the VCO's scale.
    use ams_netlist::{ArrayConstraint, ArrayPattern, DesignBuilder};
    let mut b = DesignBuilder::new("array_ablation");
    let r = b.add_region("core", 0.6);
    let pg = b.add_power_group("VDD");
    let net = b.add_net("n", 1);
    let caps: Vec<_> = (0..8)
        .map(|i| b.add_cell(format!("cap{i}"), r, 2, 2, pg))
        .collect();
    b.add_pin(caps[0], "p", Some(net), 0, 0);
    b.add_pin(caps[7], "p", Some(net), 0, 0);
    for i in 0..6 {
        let c = b.add_cell(format!("filler{i}"), r, 4, 2, pg);
        b.add_pin(c, "p", Some(net), 0, 0);
    }
    b.add_array(ArrayConstraint {
        name: "bank".into(),
        cells: caps.clone(),
        pattern: ArrayPattern::CommonCentroid {
            group_a: caps[..4].to_vec(),
            group_b: caps[4..].to_vec(),
        },
    });
    b.build().expect("valid")
}

fn bench_array_encoding(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_array_encoding");
    g.sample_size(10);
    let design = array_design();
    g.bench_function("slot_mode", |b| {
        b.iter(|| {
            let mut cfg = PlacerConfig::fast();
            cfg.optimize.k_iter = 0;
            cfg.array_slots = true;
            let p = SmtPlacer::new(&design, cfg).expect("encode").place().expect("place");
            assert!(p.verify(&design).is_ok());
        })
    });
    g.bench_function("literal_eq9_eq10", |b| {
        b.iter(|| {
            let mut cfg = PlacerConfig::fast();
            cfg.optimize.k_iter = 0;
            cfg.array_slots = false;
            let p = SmtPlacer::new(&design, cfg).expect("encode").place().expect("place");
            assert!(p.verify(&design).is_ok());
        })
    });
    g.finish();
}

fn bench_freeze(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_freeze");
    g.sample_size(10);
    let design = benchmarks::synthetic(SyntheticParams {
        cells_per_region: 16,
        nets: 20,
        symmetry_pairs: 2,
        seed: 0xF00D,
        ..Default::default()
    });
    for (name, freeze) in [("frozen", true), ("free", false)] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let mut cfg = PlacerConfig::fast();
                cfg.optimize.k_iter = 2;
                cfg.optimize.conflict_budget = Some(50_000);
                cfg.optimize.freeze = freeze;
                let p = SmtPlacer::new(&design, cfg).expect("encode").place().expect("place");
                assert!(!p.stats.hpwl_trace.is_empty());
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_pin_density, bench_array_encoding, bench_freeze);
criterion_main!(benches);

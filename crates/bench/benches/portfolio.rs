//! Portfolio speedup benchmark: the same SAT workloads solved with 1, 2,
//! and 4 diversified workers, plus a small placement through the builder.
//!
//! Runs under `cargo bench -p ams-bench --bench portfolio` (no external
//! harness; `harness = false`). On a single hardware core the parallel
//! rows time-slice and mostly measure overhead; on a multi-core host the
//! winner-takes-all race and clause sharing show real wall-clock gains.

use ams_netlist::benchmarks::{self, SyntheticParams};
use ams_place::{Placer, PlacerConfig};
use ams_sat::{Lit, Portfolio, PortfolioConfig, SolveResult, Solver, Var};
use std::time::Instant;

fn bench(name: &str, iters: u32, mut f: impl FnMut()) {
    // One warmup round, then timed rounds.
    f();
    let mut times = Vec::with_capacity(iters as usize);
    for _ in 0..iters {
        let t = Instant::now();
        f();
        times.push(t.elapsed());
    }
    let min = times.iter().min().expect("non-empty");
    let mean = times.iter().sum::<std::time::Duration>() / iters;
    println!("{name:<32} min {min:>12.2?}  mean {mean:>12.2?}  ({iters} iters)");
}

/// Unsatisfiable pigeonhole: n pigeons, n-1 holes.
fn pigeonhole(n: usize) -> Solver {
    let mut s = Solver::new();
    let x: Vec<Vec<Lit>> = (0..n)
        .map(|_| (0..n - 1).map(|_| s.new_var().positive()).collect())
        .collect();
    for row in &x {
        s.add_clause(row);
    }
    for a in 0..n {
        for b in (a + 1)..n {
            for (&la, &lb) in x[a].iter().zip(&x[b]) {
                s.add_clause(&[!la, !lb]);
            }
        }
    }
    s
}

/// Deterministic pseudo-random 3-SAT near the satisfiable ratio.
fn random_3sat(vars: usize, clauses: usize, mut seed: u64) -> Solver {
    let mut s = Solver::new();
    let vs: Vec<Var> = (0..vars).map(|_| s.new_var()).collect();
    let mut next = || {
        seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (seed >> 33) as usize
    };
    for _ in 0..clauses {
        let lits: Vec<Lit> = (0..3)
            .map(|_| {
                let v = vs[next() % vars];
                Lit::new(v, next() % 2 == 0)
            })
            .collect();
        s.add_clause(&lits);
    }
    s
}

fn portfolio(threads: usize) -> Portfolio {
    Portfolio::new(PortfolioConfig {
        threads,
        ..PortfolioConfig::default()
    })
}

fn bench_sat_portfolio() {
    for threads in [1, 2, 4] {
        bench(&format!("portfolio/ph9_unsat/t{threads}"), 3, || {
            let (_, verdict) = portfolio(threads).solve(pigeonhole(9), &[], None);
            assert_eq!(verdict.result, SolveResult::Unsat);
        });
    }
    for threads in [1, 2, 4] {
        bench(&format!("portfolio/3sat_200v_840c/t{threads}"), 3, || {
            let (_, verdict) = portfolio(threads).solve(random_3sat(200, 840, 17), &[], None);
            assert!(verdict.result != SolveResult::Unknown);
        });
    }
}

fn bench_placement_portfolio() {
    let design = benchmarks::synthetic(SyntheticParams {
        cells_per_region: 6,
        nets: 6,
        symmetry_pairs: 1,
        ..Default::default()
    });
    for threads in [1, 2, 4] {
        bench(&format!("portfolio/place_synth/t{threads}"), 3, || {
            let p = Placer::builder(&design)
                .config(PlacerConfig::fast())
                .threads(threads)
                .build()
                .expect("encode")
                .place()
                .expect("place");
            p.verify(&design).expect("legal placement");
        });
    }
}

fn main() {
    bench_sat_portfolio();
    bench_placement_portfolio();
}

//! End-to-end placement benchmarks: encode and solve scaling with design
//! size, plus the BUF encode cost. Plain `Instant` timing; `cargo bench`
//! runs this binary directly via `harness = false`.

use ams_netlist::benchmarks::{self, SyntheticParams};
use ams_place::{Placer, PlacerConfig};
use std::time::Instant;

fn bench(name: &str, iters: u32, mut f: impl FnMut()) {
    f();
    let mut times = Vec::with_capacity(iters as usize);
    for _ in 0..iters {
        let t = Instant::now();
        f();
        times.push(t.elapsed());
    }
    let min = times.iter().min().expect("non-empty");
    let mean = times.iter().sum::<std::time::Duration>() / iters;
    println!("{name:<32} min {min:>12.2?}  mean {mean:>12.2?}  ({iters} iters)");
}

fn quick() -> PlacerConfig {
    let mut c = PlacerConfig::fast();
    c.optimize.k_iter = 0;
    c.optimize.first_conflict_budget = Some(2_000_000);
    c
}

fn bench_scaling() {
    for cells in [8usize, 16, 24] {
        let design = benchmarks::synthetic(SyntheticParams {
            cells_per_region: cells,
            nets: cells + cells / 2,
            symmetry_pairs: 2,
            seed: 0xBEEF,
            ..Default::default()
        });
        bench(&format!("place_first_solve/{cells}"), 10, || {
            let p = Placer::new(&design, quick())
                .expect("encode")
                .place()
                .expect("place");
            assert!(p.hpwl(&design) > 0);
        });
    }
}

fn bench_encode() {
    let buf = benchmarks::buf();
    bench("encode/buf_full_encoding", 10, || {
        let p = Placer::new(&buf, PlacerConfig::default()).expect("encode");
        assert!(p.sat_clauses() > 0);
    });
    let vco = benchmarks::vco();
    bench("encode/vco_full_encoding", 10, || {
        let p = Placer::new(&vco, PlacerConfig::default()).expect("encode");
        assert!(p.sat_vars() > 0);
    });
}

fn main() {
    bench_scaling();
    bench_encode();
}

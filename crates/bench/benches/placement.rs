//! End-to-end placement benchmarks: encode and solve scaling with design
//! size, plus the BUF encode cost.

use ams_netlist::benchmarks::{self, SyntheticParams};
use ams_place::{PlacerConfig, SmtPlacer};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn quick() -> PlacerConfig {
    let mut c = PlacerConfig::fast();
    c.optimize.k_iter = 0;
    c.optimize.first_conflict_budget = Some(2_000_000);
    c
}

fn bench_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("place_first_solve");
    g.sample_size(10);
    for cells in [8usize, 16, 24] {
        let design = benchmarks::synthetic(SyntheticParams {
            cells_per_region: cells,
            nets: cells + cells / 2,
            symmetry_pairs: 2,
            seed: 0xBEEF,
            ..Default::default()
        });
        g.bench_with_input(BenchmarkId::from_parameter(cells), &design, |b, d| {
            b.iter(|| {
                let p = SmtPlacer::new(d, quick()).expect("encode").place().expect("place");
                assert!(p.hpwl(d) > 0);
            })
        });
    }
    g.finish();
}

fn bench_encode(c: &mut Criterion) {
    let mut g = c.benchmark_group("encode");
    g.sample_size(10);
    let buf = benchmarks::buf();
    g.bench_function("buf_full_encoding", |b| {
        b.iter(|| {
            let p = SmtPlacer::new(&buf, PlacerConfig::default()).expect("encode");
            assert!(p.sat_clauses() > 0 || p.sat_vars() >= 0);
        })
    });
    let vco = benchmarks::vco();
    g.bench_function("vco_full_encoding", |b| {
        b.iter(|| {
            let p = SmtPlacer::new(&vco, PlacerConfig::default()).expect("encode");
            assert!(p.sat_vars() >= 0);
        })
    });
    g.finish();
}

criterion_group!(benches, bench_scaling, bench_encode);
criterion_main!(benches);

//! Microbenchmarks of the SAT and SMT substrates.
//!
//! Runs each workload a fixed number of times under `std::time::Instant`
//! and prints min/mean timings (no external harness; `cargo bench` runs
//! this binary directly via `harness = false`).

use ams_sat::{Lit, SolveResult, Solver, Var};
use ams_smt::{Smt, SmtResult};
use std::time::Instant;

fn bench(name: &str, iters: u32, mut f: impl FnMut()) {
    // One warmup round, then timed rounds.
    f();
    let mut times = Vec::with_capacity(iters as usize);
    for _ in 0..iters {
        let t = Instant::now();
        f();
        times.push(t.elapsed());
    }
    let min = times.iter().min().expect("non-empty");
    let mean = times.iter().sum::<std::time::Duration>() / iters;
    println!("{name:<28} min {min:>12.2?}  mean {mean:>12.2?}  ({iters} iters)");
}

/// Unsatisfiable pigeonhole: n pigeons, n-1 holes.
fn pigeonhole(n: usize) -> Solver {
    let mut s = Solver::new();
    let x: Vec<Vec<Lit>> = (0..n)
        .map(|_| (0..n - 1).map(|_| s.new_var().positive()).collect())
        .collect();
    for row in &x {
        s.add_clause(row);
    }
    for a in 0..n {
        for b in (a + 1)..n {
            for (&la, &lb) in x[a].iter().zip(&x[b]) {
                s.add_clause(&[!la, !lb]);
            }
        }
    }
    s
}

/// Deterministic pseudo-random 3-SAT at a satisfiable clause ratio.
fn random_3sat(vars: usize, clauses: usize, mut seed: u64) -> Solver {
    let mut s = Solver::new();
    let vs: Vec<Var> = (0..vars).map(|_| s.new_var()).collect();
    let mut next = || {
        seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (seed >> 33) as usize
    };
    for _ in 0..clauses {
        let lits: Vec<Lit> = (0..3)
            .map(|_| {
                let v = vs[next() % vars];
                Lit::new(v, next() % 2 == 0)
            })
            .collect();
        s.add_clause(&lits);
    }
    s
}

fn bench_sat() {
    bench("sat/pigeonhole_8_unsat", 10, || {
        let mut s = pigeonhole(8);
        assert_eq!(s.solve(), SolveResult::Unsat);
    });
    bench("sat/random3sat_150v_620c", 10, || {
        let mut s = random_3sat(150, 620, 42);
        let _ = s.solve();
    });
}

fn bench_smt() {
    bench("smt/adder_chain_16x12bit", 10, || {
        let mut smt = Smt::new();
        let xs: Vec<_> = (0..16).map(|i| smt.bv_var(12, format!("x{i}"))).collect();
        let total = smt.sum(&xs, 16);
        let want = smt.eq_const(total, 1234);
        smt.assert(want);
        assert_eq!(smt.solve(), SmtResult::Sat);
    });
    bench("smt/mul_factor_12bit", 10, || {
        let mut smt = Smt::new();
        let x = smt.bv_var(12, "x");
        let y = smt.bv_var(12, "y");
        let p = smt.mul(x, y);
        let is = smt.eq_const(p, 3599); // 59 * 61
        let one = smt.bv_const(12, 1);
        let nx = smt.ne(x, one);
        let ny = smt.ne(y, one);
        smt.assert(is);
        smt.assert(nx);
        smt.assert(ny);
        assert_eq!(smt.solve(), SmtResult::Sat);
    });
    bench("smt/pb_counter_60x", 10, || {
        let mut smt = Smt::new();
        let items: Vec<_> = (0..60)
            .map(|i| (smt.bool_var(format!("b{i}")), 1 + (i % 4) as u64))
            .collect();
        smt.assert_at_most(&items, 40);
        assert_eq!(smt.solve(), SmtResult::Sat);
    });
}

fn main() {
    bench_sat();
    bench_smt();
}

//! Microbenchmarks of the SAT and SMT substrates.

use ams_sat::{Lit, SolveResult, Solver, Var};
use ams_smt::{Smt, SmtResult};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

/// Unsatisfiable pigeonhole: n pigeons, n-1 holes.
fn pigeonhole(n: usize) -> Solver {
    let mut s = Solver::new();
    let x: Vec<Vec<Lit>> = (0..n)
        .map(|_| (0..n - 1).map(|_| s.new_var().positive()).collect())
        .collect();
    for row in &x {
        s.add_clause(row);
    }
    for j in 0..n - 1 {
        for a in 0..n {
            for b in (a + 1)..n {
                s.add_clause(&[!x[a][j], !x[b][j]]);
            }
        }
    }
    s
}

/// Deterministic pseudo-random 3-SAT at a satisfiable clause ratio.
fn random_3sat(vars: usize, clauses: usize, mut seed: u64) -> Solver {
    let mut s = Solver::new();
    let vs: Vec<Var> = (0..vars).map(|_| s.new_var()).collect();
    let mut next = || {
        seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        (seed >> 33) as usize
    };
    for _ in 0..clauses {
        let lits: Vec<Lit> = (0..3)
            .map(|_| {
                let v = vs[next() % vars];
                Lit::new(v, next() % 2 == 0)
            })
            .collect();
        s.add_clause(&lits);
    }
    s
}

fn bench_sat(c: &mut Criterion) {
    let mut g = c.benchmark_group("sat");
    g.sample_size(10);
    g.bench_function("pigeonhole_8_unsat", |b| {
        b.iter_batched(
            || pigeonhole(8),
            |mut s| assert_eq!(s.solve(), SolveResult::Unsat),
            BatchSize::SmallInput,
        )
    });
    g.bench_function("random3sat_150v_620c", |b| {
        b.iter_batched(
            || random_3sat(150, 620, 42),
            |mut s| {
                let _ = s.solve();
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_smt(c: &mut Criterion) {
    let mut g = c.benchmark_group("smt");
    g.sample_size(10);
    g.bench_function("adder_chain_16x12bit", |b| {
        b.iter(|| {
            let mut smt = Smt::new();
            let xs: Vec<_> = (0..16).map(|i| smt.bv_var(12, format!("x{i}"))).collect();
            let total = smt.sum(&xs, 16);
            let want = smt.eq_const(total, 1234);
            smt.assert(want);
            assert_eq!(smt.solve(), SmtResult::Sat);
        })
    });
    g.bench_function("mul_factor_12bit", |b| {
        b.iter(|| {
            let mut smt = Smt::new();
            let x = smt.bv_var(12, "x");
            let y = smt.bv_var(12, "y");
            let p = smt.mul(x, y);
            let is = smt.eq_const(p, 3599); // 59 * 61
            let one = smt.bv_const(12, 1);
            let nx = smt.ne(x, one);
            let ny = smt.ne(y, one);
            smt.assert(is);
            smt.assert(nx);
            smt.assert(ny);
            assert_eq!(smt.solve(), SmtResult::Sat);
        })
    });
    g.bench_function("pb_counter_60x", |b| {
        b.iter(|| {
            let mut smt = Smt::new();
            let items: Vec<_> = (0..60)
                .map(|i| (smt.bool_var(format!("b{i}")), 1 + (i % 4) as u64))
                .collect();
            smt.assert_at_most(&items, 40);
            assert_eq!(smt.solve(), SmtResult::Sat);
        })
    });
    g.finish();
}

criterion_group!(benches, bench_sat, bench_smt);
criterion_main!(benches);

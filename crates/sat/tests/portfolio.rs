//! Portfolio integration tests: verdict agreement across thread counts and
//! prompt cancellation, both externally triggered and winner-triggered.

use ams_sat::{Lit, Portfolio, PortfolioConfig, SolveResult, Solver};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Unsatisfiable pigeonhole: n pigeons, n-1 holes.
fn pigeonhole(n: usize) -> Solver {
    let mut s = Solver::new();
    let x: Vec<Vec<Lit>> = (0..n)
        .map(|_| (0..n - 1).map(|_| s.new_var().positive()).collect())
        .collect();
    for row in &x {
        s.add_clause(row);
    }
    for a in 0..n {
        for b in (a + 1)..n {
            for (&la, &lb) in x[a].iter().zip(&x[b]) {
                s.add_clause(&[!la, !lb]);
            }
        }
    }
    s
}

/// Deterministic pseudo-random 3-SAT.
fn random_3sat(vars: usize, clauses: usize, mut seed: u64) -> Solver {
    let mut s = Solver::new();
    let vs: Vec<_> = (0..vars).map(|_| s.new_var()).collect();
    let mut next = || {
        seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (seed >> 33) as usize
    };
    for _ in 0..clauses {
        let lits: Vec<Lit> = (0..3)
            .map(|_| {
                let v = vs[next() % vars];
                Lit::new(v, next() % 2 == 0)
            })
            .collect();
        s.add_clause(&lits);
    }
    s
}

fn portfolio(threads: usize) -> Portfolio {
    Portfolio::new(PortfolioConfig {
        threads,
        ..PortfolioConfig::default()
    })
}

#[test]
fn verdicts_agree_across_thread_counts() {
    let instances: Vec<(Solver, SolveResult)> = vec![
        (pigeonhole(7), SolveResult::Unsat),
        (random_3sat(120, 380, 11), SolveResult::Sat),
    ];
    for (base, expected) in instances {
        for threads in [1, 2, 4] {
            let (winner, verdict) = portfolio(threads).solve(base.clone(), &[], None);
            assert_eq!(verdict.result, expected, "threads={threads}");
            assert_eq!(verdict.workers.len(), threads);
            assert_eq!(
                verdict.workers[verdict.winner].result,
                Some(expected),
                "winner stats must carry the verdict"
            );
            if expected == SolveResult::Sat {
                // The winning solver must expose a readable model.
                let winner = winner.expect("a worker survived");
                let _ = winner.value(ams_sat::Var::from_index(0));
            }
        }
    }
}

#[test]
fn losing_workers_stop_after_a_verdict() {
    // Hard enough that no worker finishes within the winner's margin, so
    // losers must be cancelled mid-search rather than completing.
    let base = pigeonhole(9);
    let (_, verdict) = portfolio(4).solve(base, &[], None);
    assert_eq!(verdict.result, SolveResult::Unsat);
    let finished = verdict
        .workers
        .iter()
        .filter(|w| matches!(w.result, Some(SolveResult::Sat | SolveResult::Unsat)))
        .count();
    let cancelled = verdict
        .workers
        .iter()
        .filter(|w| w.result == Some(SolveResult::Cancelled))
        .count();
    assert!(finished >= 1, "someone must have won");
    assert_eq!(
        finished + cancelled,
        verdict.workers.len(),
        "every non-winner must be cancelled, not left searching: {:?}",
        verdict.workers
    );
}

#[test]
fn pre_raised_stop_flag_cancels_immediately() {
    let mut base = pigeonhole(10);
    let stop = Arc::new(AtomicBool::new(true));
    base.set_stop_flag(Some(Arc::clone(&stop)));
    let t0 = Instant::now();
    assert_eq!(base.solve(), SolveResult::Cancelled);
    assert!(
        t0.elapsed() < Duration::from_secs(1),
        "a raised flag must cancel at the first quiescent point"
    );
    // The solver stays usable once the flag clears.
    stop.store(false, Ordering::Relaxed);
    base.set_conflict_budget(Some(10));
    assert_eq!(base.solve(), SolveResult::Unknown);
}

#[test]
fn clause_sharing_reaches_peers() {
    // A conflict-rich instance so low-LBD clauses actually flow.
    let base = pigeonhole(8);
    let (_, verdict) = portfolio(4).solve(base, &[], None);
    assert_eq!(verdict.result, SolveResult::Unsat);
    let exported: u64 = verdict.workers.iter().map(|w| w.exported).sum();
    assert!(
        exported > 0,
        "no clauses were shared: {:?}",
        verdict.workers
    );
}

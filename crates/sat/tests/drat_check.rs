//! End-to-end certified solving: every UNSAT verdict of the CDCL core —
//! sequential, incremental, under assumptions, and from the parallel
//! portfolio — must come with a DRAT proof that the in-repo backward
//! checker accepts.

use ams_sat::{drat, Lit, Portfolio, PortfolioConfig, ProofLog, SolveResult, Solver};

/// SplitMix64; local copy to keep ams-sat dependency-free.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: usize) -> usize {
        ((u128::from(self.next()) * bound as u128) >> 64) as usize
    }

    fn bool(&mut self) -> bool {
        self.next() & 1 == 1
    }
}

fn vars(s: &mut Solver, n: usize) -> Vec<Lit> {
    (0..n).map(|_| s.new_var().positive()).collect()
}

/// Pigeonhole principle PHP(pigeons, holes): unsatisfiable whenever
/// `pigeons > holes`, and requires real resolution work — a classic
/// certification stress test.
fn pigeonhole(s: &mut Solver, pigeons: usize, holes: usize) {
    let p: Vec<Vec<Lit>> = (0..pigeons).map(|_| vars(s, holes)).collect();
    for row in &p {
        s.add_clause(row); // every pigeon sits somewhere
    }
    for h in 0..holes {
        for (i, pi) in p.iter().enumerate() {
            for pj in &p[i + 1..] {
                s.add_clause(&[!pi[h], !pj[h]]); // no hole hosts two
            }
        }
    }
}

fn certified_unsat(proof: &ProofLog, target: &[Lit]) -> drat::CheckStats {
    let snapshot = proof.snapshot(target);
    drat::check(&snapshot).expect("solver UNSAT verdict must be certifiable")
}

#[test]
fn pigeonhole_refutation_is_certified() {
    let mut s = Solver::new();
    let proof = ProofLog::new();
    s.set_proof(Some(proof.clone()));
    pigeonhole(&mut s, 6, 5);
    assert_eq!(s.solve(), SolveResult::Unsat);
    let stats = certified_unsat(&proof, &[]);
    assert!(
        stats.verified_additions > 0,
        "a real derivation was checked"
    );
    assert!(stats.core_clauses > 0, "original clauses participate");
}

#[test]
fn unsat_under_assumptions_yields_checkable_core_clause() {
    // Formula: a → b, b → c. Assume a and ¬c: UNSAT with core {a, ¬c}.
    let mut s = Solver::new();
    let proof = ProofLog::new();
    s.set_proof(Some(proof.clone()));
    let v = vars(&mut s, 3);
    s.add_clause(&[!v[0], v[1]]);
    s.add_clause(&[!v[1], v[2]]);
    assert_eq!(s.solve_with(&[v[0], !v[2]]), SolveResult::Unsat);
    let core = s.failed_assumptions().to_vec();
    assert!(!core.is_empty());
    let target: Vec<Lit> = core.iter().map(|&l| !l).collect();
    certified_unsat(&proof, &target);
}

#[test]
fn incremental_rounds_accumulate_one_valid_proof() {
    // SAT round, then clauses that flip the formula UNSAT: the proof log
    // spans both rounds and still checks.
    let mut s = Solver::new();
    let proof = ProofLog::new();
    s.set_proof(Some(proof.clone()));
    let v = vars(&mut s, 4);
    s.add_clause(&[v[0], v[1]]);
    s.add_clause(&[v[2], v[3]]);
    assert_eq!(s.solve(), SolveResult::Sat);
    for &a in &v {
        s.add_clause(&[!a]);
    }
    s.add_clause(&[v[0], v[1], v[2], v[3]]);
    assert_eq!(s.solve(), SolveResult::Unsat);
    certified_unsat(&proof, &[]);
}

#[test]
fn contradictory_units_are_certified() {
    let mut s = Solver::new();
    let proof = ProofLog::new();
    s.set_proof(Some(proof.clone()));
    let v = vars(&mut s, 1);
    assert!(s.add_clause(&[v[0]]));
    assert!(!s.add_clause(&[!v[0]]));
    assert_eq!(s.solve(), SolveResult::Unsat);
    certified_unsat(&proof, &[]);
}

#[test]
fn portfolio_shared_log_certifies_unsat() {
    let mut base = Solver::new();
    let proof = ProofLog::new();
    base.set_proof(Some(proof.clone()));
    pigeonhole(&mut base, 6, 5);
    let portfolio = Portfolio::new(PortfolioConfig {
        threads: 4,
        share_lbd_max: 6,
        seed: 7,
        panic_inject_mask: 0,
    });
    let (winner, verdict) = portfolio.solve(base, &[], None);
    assert_eq!(verdict.result, SolveResult::Unsat);
    assert!(winner.is_some());
    let stats = certified_unsat(&proof, &[]);
    assert!(stats.additions > 0);
}

#[test]
fn random_unsat_formulas_are_always_certified() {
    // Random 3-SAT at a clause density deep in the UNSAT regime, mixed
    // with looser satisfiable instances; every UNSAT verdict must check.
    let mut rng = Rng(0xDA7E_2022);
    let mut unsat_seen = 0;
    for round in 0..40 {
        let n = 8 + rng.below(10);
        let dense = round % 2 == 0;
        let m = if dense { n * 6 } else { n * 3 };
        let mut s = Solver::new();
        let proof = ProofLog::new();
        s.set_proof(Some(proof.clone()));
        let v = vars(&mut s, n);
        for _ in 0..m {
            let mut c = Vec::new();
            for _ in 0..3 {
                let lit = v[rng.below(n)];
                c.push(if rng.bool() { lit } else { !lit });
            }
            s.add_clause(&c);
        }
        if s.solve() == SolveResult::Unsat {
            unsat_seen += 1;
            certified_unsat(&proof, &[]);
        }
    }
    assert!(
        unsat_seen >= 5,
        "expected several UNSAT rounds, got {unsat_seen}"
    );
}

#[test]
fn proof_logging_does_not_change_verdicts() {
    let mut rng = Rng(0x05EED);
    for _ in 0..20 {
        let n = 6 + rng.below(8);
        let m = n * 4;
        let mut clauses = Vec::new();
        for _ in 0..m {
            let mut c = Vec::new();
            for _ in 0..3 {
                let vi = rng.below(n);
                let pos = rng.bool();
                c.push((vi, pos));
            }
            clauses.push(c);
        }
        let run = |with_proof: bool| {
            let mut s = Solver::new();
            if with_proof {
                s.set_proof(Some(ProofLog::new()));
            }
            let v = vars(&mut s, n);
            for c in &clauses {
                let lits: Vec<Lit> = c
                    .iter()
                    .map(|&(vi, pos)| if pos { v[vi] } else { !v[vi] })
                    .collect();
                s.add_clause(&lits);
            }
            s.solve()
        };
        assert_eq!(run(false), run(true));
    }
}

#[test]
fn drat_text_export_covers_the_derivation() {
    let mut s = Solver::new();
    let proof = ProofLog::new();
    s.set_proof(Some(proof.clone()));
    pigeonhole(&mut s, 4, 3);
    assert_eq!(s.solve(), SolveResult::Unsat);
    let snap = proof.snapshot(&[]);
    let dimacs = snap.to_dimacs();
    assert!(dimacs.starts_with("p cnf "));
    let drat_text = snap.to_drat();
    assert!(drat_text.ends_with("0\n"));
    // One line per step plus the terminal empty-clause line.
    assert_eq!(drat_text.lines().count(), snap.steps.len() + 1);
}

//! Property tests: CDCL agrees with brute force on random small formulas,
//! and stays consistent under incremental use.

use ams_sat::{Lit, SolveResult, Solver, Var};
use proptest::prelude::*;

/// A small random CNF as (num_vars, clauses of literal codes).
#[derive(Debug, Clone)]
struct Cnf {
    num_vars: usize,
    clauses: Vec<Vec<(usize, bool)>>,
}

fn cnf_strategy(max_vars: usize, max_clauses: usize) -> impl Strategy<Value = Cnf> {
    (2..=max_vars).prop_flat_map(move |nv| {
        let clause = proptest::collection::vec((0..nv, any::<bool>()), 1..=4);
        proptest::collection::vec(clause, 1..=max_clauses)
            .prop_map(move |clauses| Cnf { num_vars: nv, clauses })
    })
}

fn brute_force_sat(cnf: &Cnf) -> bool {
    let n = cnf.num_vars;
    assert!(n <= 16, "brute force limited to 16 vars");
    'assign: for bits in 0u32..(1 << n) {
        for clause in &cnf.clauses {
            let sat = clause
                .iter()
                .any(|&(v, pos)| ((bits >> v) & 1 == 1) == pos);
            if !sat {
                continue 'assign;
            }
        }
        return true;
    }
    false
}

fn build_solver(cnf: &Cnf) -> (Solver, Vec<Var>) {
    let mut solver = Solver::new();
    let vars: Vec<Var> = (0..cnf.num_vars).map(|_| solver.new_var()).collect();
    for clause in &cnf.clauses {
        let lits: Vec<Lit> = clause.iter().map(|&(v, pos)| Lit::new(vars[v], pos)).collect();
        solver.add_clause(&lits);
    }
    (solver, vars)
}

fn model_satisfies(solver: &Solver, cnf: &Cnf, vars: &[Var]) -> bool {
    cnf.clauses.iter().all(|clause| {
        clause
            .iter()
            .any(|&(v, pos)| solver.value(vars[v]) == pos)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn agrees_with_brute_force(cnf in cnf_strategy(10, 40)) {
        let expected = brute_force_sat(&cnf);
        let (mut solver, vars) = build_solver(&cnf);
        let result = solver.solve();
        match result {
            SolveResult::Sat => {
                prop_assert!(expected, "CDCL said SAT, brute force says UNSAT");
                prop_assert!(model_satisfies(&solver, &cnf, &vars), "model does not satisfy CNF");
            }
            SolveResult::Unsat => prop_assert!(!expected, "CDCL said UNSAT, brute force says SAT"),
            SolveResult::Unknown => prop_assert!(false, "no budget was set"),
        }
    }

    #[test]
    fn assumptions_match_hardcoding(cnf in cnf_strategy(8, 24), fixed in proptest::collection::vec(any::<bool>(), 2)) {
        // Solving under assumptions must agree with adding them as units.
        let (mut s_assume, vars) = build_solver(&cnf);
        let assumptions: Vec<Lit> = fixed
            .iter()
            .enumerate()
            .map(|(i, &pos)| Lit::new(vars[i], pos))
            .collect();
        let r_assume = s_assume.solve_with(&assumptions);

        let (mut s_hard, vars2) = build_solver(&cnf);
        let mut consistent = true;
        for (i, &pos) in fixed.iter().enumerate() {
            consistent &= s_hard.add_clause(&[Lit::new(vars2[i], pos)]);
        }
        let r_hard = if consistent { s_hard.solve() } else { SolveResult::Unsat };
        prop_assert_eq!(r_assume, r_hard);
    }

    #[test]
    fn incremental_solving_is_consistent(cnf in cnf_strategy(8, 30)) {
        // Solve after each clause; once UNSAT, must stay UNSAT.
        let mut solver = Solver::new();
        let vars: Vec<Var> = (0..cnf.num_vars).map(|_| solver.new_var()).collect();
        let mut was_unsat = false;
        for (i, clause) in cnf.clauses.iter().enumerate() {
            let lits: Vec<Lit> = clause.iter().map(|&(v, pos)| Lit::new(vars[v], pos)).collect();
            solver.add_clause(&lits);
            let r = solver.solve();
            if was_unsat {
                prop_assert_eq!(r, SolveResult::Unsat, "UNSAT must be sticky");
            }
            was_unsat = r == SolveResult::Unsat;
            let prefix = Cnf { num_vars: cnf.num_vars, clauses: cnf.clauses[..=i].to_vec() };
            prop_assert_eq!(r == SolveResult::Sat, brute_force_sat(&prefix));
        }
    }

    #[test]
    fn failed_core_is_sound(cnf in cnf_strategy(8, 24), polarity in proptest::collection::vec(any::<bool>(), 8)) {
        let (mut solver, vars) = build_solver(&cnf);
        let assumptions: Vec<Lit> = vars
            .iter()
            .zip(&polarity)
            .map(|(&v, &pos)| Lit::new(v, pos))
            .collect();
        if solver.solve_with(&assumptions) == SolveResult::Unsat {
            let core: Vec<Lit> = solver.failed_assumptions().to_vec();
            for l in &core {
                prop_assert!(assumptions.contains(l), "core literal {:?} not among assumptions", l);
            }
            // The core alone must already be unsatisfiable with the formula.
            let (mut s2, vars2) = build_solver(&cnf);
            let remapped: Vec<Lit> = core
                .iter()
                .map(|l| Lit::new(vars2[l.var().index()], l.is_positive()))
                .collect();
            prop_assert_eq!(s2.solve_with(&remapped), SolveResult::Unsat, "core is not a core");
        }
    }
}

//! Variable and literal newtypes.

use std::fmt;
use std::ops::Not;

/// A propositional variable, numbered densely from zero.
///
/// Variables are created with [`crate::Solver::new_var`]; constructing one by
/// index is only meaningful against the solver that allocated it.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Var(u32);

impl Var {
    /// Creates a variable from its dense index.
    #[inline]
    pub fn from_index(index: usize) -> Var {
        debug_assert!(index < u32::MAX as usize / 2);
        Var(index as u32)
    }

    /// The dense index of this variable.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The positive literal of this variable.
    #[inline]
    pub fn positive(self) -> Lit {
        Lit::new(self, true)
    }

    /// The negative literal of this variable.
    #[inline]
    pub fn negative(self) -> Lit {
        Lit::new(self, false)
    }
}

impl fmt::Debug for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// A literal: a variable together with a polarity.
///
/// Encoded as `2 * var + (positive ? 0 : 1)` so literals index watcher lists
/// directly. The layout is `repr(transparent)` over `u32`, which the clause
/// arena relies on to reinterpret its storage as literal slices.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(transparent)]
pub struct Lit(u32);

impl Lit {
    /// Creates a literal over `var` with the given polarity.
    #[inline]
    pub fn new(var: Var, positive: bool) -> Lit {
        Lit(var.0 << 1 | u32::from(!positive))
    }

    /// Reconstructs a literal from its dense code (see [`Lit::code`]).
    #[inline]
    pub fn from_code(code: usize) -> Lit {
        Lit(code as u32)
    }

    /// The dense code of this literal, usable as an array index.
    #[inline]
    pub fn code(self) -> usize {
        self.0 as usize
    }

    /// The underlying variable.
    #[inline]
    pub fn var(self) -> Var {
        Var(self.0 >> 1)
    }

    /// Whether this is the positive literal of its variable.
    #[inline]
    pub fn is_positive(self) -> bool {
        self.0 & 1 == 0
    }
}

impl Not for Lit {
    type Output = Lit;

    #[inline]
    fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

impl fmt::Debug for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_positive() {
            write!(f, "v{}", self.0 >> 1)
        } else {
            write!(f, "!v{}", self.0 >> 1)
        }
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// Three-valued assignment state of a variable or literal.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Lbool {
    /// Assigned true.
    True,
    /// Assigned false.
    False,
    /// Unassigned.
    #[default]
    Undef,
}

impl Lbool {
    /// Converts a concrete boolean.
    #[inline]
    pub fn from_bool(b: bool) -> Lbool {
        if b {
            Lbool::True
        } else {
            Lbool::False
        }
    }

    /// Negates a defined value; `Undef` stays `Undef`.
    #[inline]
    pub fn negate(self) -> Lbool {
        match self {
            Lbool::True => Lbool::False,
            Lbool::False => Lbool::True,
            Lbool::Undef => Lbool::Undef,
        }
    }

    /// Whether the value is defined (not `Undef`).
    #[inline]
    pub fn is_defined(self) -> bool {
        self != Lbool::Undef
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lit_roundtrip() {
        let v = Var::from_index(7);
        let p = v.positive();
        let n = v.negative();
        assert_eq!(p.var(), v);
        assert_eq!(n.var(), v);
        assert!(p.is_positive());
        assert!(!n.is_positive());
        assert_eq!(!p, n);
        assert_eq!(!!p, p);
        assert_eq!(Lit::from_code(p.code()), p);
    }

    #[test]
    fn lit_codes_are_dense() {
        let v0 = Var::from_index(0);
        let v1 = Var::from_index(1);
        assert_eq!(v0.positive().code(), 0);
        assert_eq!(v0.negative().code(), 1);
        assert_eq!(v1.positive().code(), 2);
        assert_eq!(v1.negative().code(), 3);
    }

    #[test]
    fn lbool_negate() {
        assert_eq!(Lbool::True.negate(), Lbool::False);
        assert_eq!(Lbool::False.negate(), Lbool::True);
        assert_eq!(Lbool::Undef.negate(), Lbool::Undef);
        assert!(Lbool::True.is_defined());
        assert!(!Lbool::Undef.is_defined());
    }
}

//! DRAT/DRUP proof logging and an in-repo backward proof checker.
//!
//! An UNSAT answer from a CDCL solver is only as trustworthy as the solver
//! itself. This module turns UNSAT verdicts into *checkable certificates*:
//! the solver records every learnt-clause addition and deletion into a
//! [`ProofLog`], and [`check`] replays the derivation backwards with reverse
//! unit propagation (RUP), verifying that the claimed conclusion really
//! follows from the original clause set.
//!
//! # Proof format
//!
//! The captured [`Proof`] is the clausal DRUP fragment of DRAT:
//!
//! * `clauses` — the original CNF exactly as handed to
//!   [`Solver::add_clause`](crate::Solver::add_clause) (pre-normalization,
//!   so the certificate speaks about the formula the caller asserted);
//! * `steps` — an ordered log of [`ProofStep::Add`] (learnt, imported, or
//!   terminal clauses) and [`ProofStep::Delete`] (database reduction,
//!   root-level simplification) entries;
//! * `target` — the claimed consequence: the empty clause for a refutation,
//!   or the clause of negated failed assumptions for UNSAT under
//!   assumptions.
//!
//! Only RUP steps are emitted (the solver never performs RAT inferences),
//! which keeps the checker simple and — crucially — makes the proof
//! *monotone*: every added clause is entailed by the original formula, so a
//! checker may soundly ignore deletions and tolerate duplicate additions.
//! That monotonicity is what lets a parallel portfolio share one interleaved
//! log: each worker's learnt clause is RUP with respect to its own clause
//! database, which is always a subset of "original formula + log prefix"
//! provided clauses are logged before they are exported to peers.
//!
//! # Checker algorithm
//!
//! [`check`] is a backward DRUP checker in the style of `drat-trim`:
//!
//! 1. replay the step list forwards, building one clause record per
//!    addition and resolving deletions against active records (unmatched
//!    deletions are counted and ignored — sound, see above);
//! 2. verify the `target` clause is RUP with respect to the final database,
//!    marking every clause used as a propagation antecedent as *needed*;
//! 3. walk the steps backwards: additions are removed from the database and
//!    RUP-checked (against the strictly earlier database) only if needed,
//!    deletions are re-activated;
//! 4. on success, report how much of the proof and formula was actually
//!    used ([`CheckStats`]).
//!
//! Unit propagation uses two watched literals per clause, so checking cost
//! is proportional to the needed core rather than the full log.

use crate::lit::{Lbool, Lit};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

// ---------------------------------------------------------------------------
// Proof capture
// ---------------------------------------------------------------------------

/// One derivation step of a DRAT proof.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProofStep {
    /// A clause addition: learnt, imported from a portfolio peer, or the
    /// terminal (empty / negated-assumption) clause.
    Add(Vec<Lit>),
    /// A clause deletion (database reduction or root simplification).
    Delete(Vec<Lit>),
}

/// A complete captured proof: original CNF, derivation steps, and the
/// claimed conclusion.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Proof {
    /// Original clauses, verbatim as asserted.
    pub clauses: Vec<Vec<Lit>>,
    /// Additions and deletions, in emission order.
    pub steps: Vec<ProofStep>,
    /// The claimed consequence: empty for a refutation of `clauses`,
    /// otherwise the clause of negated failed assumptions.
    pub target: Vec<Lit>,
}

impl Proof {
    /// Number of addition steps.
    pub fn additions(&self) -> usize {
        self.steps
            .iter()
            .filter(|s| matches!(s, ProofStep::Add(_)))
            .count()
    }

    /// Serializes the original clauses in DIMACS CNF format.
    pub fn to_dimacs(&self) -> String {
        let nv = self.max_var_count();
        let mut out = format!("p cnf {} {}\n", nv, self.clauses.len());
        for c in &self.clauses {
            push_clause_line(&mut out, c, "");
        }
        out
    }

    /// Serializes the derivation steps (plus the terminal `target` clause)
    /// in the standard textual DRAT format, consumable by external
    /// checkers such as `drat-trim`.
    pub fn to_drat(&self) -> String {
        let mut out = String::new();
        for s in &self.steps {
            match s {
                ProofStep::Add(c) => push_clause_line(&mut out, c, ""),
                ProofStep::Delete(c) => push_clause_line(&mut out, c, "d "),
            }
        }
        if !self.target.is_empty() {
            push_clause_line(&mut out, &self.target, "");
        }
        out.push_str("0\n");
        out
    }

    fn max_var_count(&self) -> usize {
        let mut nv = 0usize;
        for c in self.clauses.iter().chain(std::iter::once(&self.target)) {
            for l in c {
                nv = nv.max(l.var().index() + 1);
            }
        }
        for s in &self.steps {
            let (ProofStep::Add(c) | ProofStep::Delete(c)) = s;
            for l in c {
                nv = nv.max(l.var().index() + 1);
            }
        }
        nv
    }
}

fn push_clause_line(out: &mut String, c: &[Lit], prefix: &str) {
    out.push_str(prefix);
    for l in c {
        let v = (l.var().index() + 1) as i64;
        let d = if l.is_positive() { v } else { -v };
        out.push_str(&d.to_string());
        out.push(' ');
    }
    out.push_str("0\n");
}

#[derive(Debug, Default)]
struct ProofInner {
    clauses: Vec<Vec<Lit>>,
    steps: Vec<ProofStep>,
    log_deletions: bool,
}

/// A shared, thread-safe proof sink.
///
/// Cloning a `ProofLog` clones the *handle*: all clones append to the same
/// log. The parallel portfolio relies on this — every diversified worker
/// clone of a [`Solver`](crate::Solver) inherits the handle, producing one
/// interleaved (and still valid, by RUP monotonicity) derivation.
///
/// Deletion logging is on by default and should be switched off with
/// [`ProofLog::set_log_deletions`] before sharing the log between workers:
/// a deletion by one worker does not remove the clause from its peers, so
/// honoring it could orphan a peer's later derivation.
#[derive(Clone, Debug, Default)]
pub struct ProofLog {
    inner: Arc<Mutex<ProofInner>>,
}

impl ProofLog {
    /// Creates an empty log with deletion logging enabled.
    pub fn new() -> ProofLog {
        ProofLog {
            inner: Arc::new(Mutex::new(ProofInner {
                clauses: Vec::new(),
                steps: Vec::new(),
                log_deletions: true,
            })),
        }
    }

    /// Records an original clause, verbatim.
    pub fn log_original(&self, lits: &[Lit]) {
        self.inner.lock().unwrap().clauses.push(lits.to_vec());
    }

    /// Records a derived clause addition.
    pub fn log_addition(&self, lits: &[Lit]) {
        self.inner
            .lock()
            .unwrap()
            .steps
            .push(ProofStep::Add(lits.to_vec()));
    }

    /// Records a clause deletion (no-op while deletion logging is off).
    pub fn log_deletion(&self, lits: &[Lit]) {
        let mut inner = self.inner.lock().unwrap();
        if inner.log_deletions {
            inner.steps.push(ProofStep::Delete(lits.to_vec()));
        }
    }

    /// Enables or disables deletion logging. Must be disabled while several
    /// solvers share this log (see the type-level docs).
    pub fn set_log_deletions(&self, on: bool) {
        self.inner.lock().unwrap().log_deletions = on;
    }

    /// Number of original clauses captured so far.
    pub fn num_clauses(&self) -> usize {
        self.inner.lock().unwrap().clauses.len()
    }

    /// Number of derivation steps captured so far.
    pub fn num_steps(&self) -> usize {
        self.inner.lock().unwrap().steps.len()
    }

    /// Snapshots the log into a standalone [`Proof`] claiming the given
    /// target clause (empty = refutation).
    pub fn snapshot(&self, target: &[Lit]) -> Proof {
        let inner = self.inner.lock().unwrap();
        Proof {
            clauses: inner.clauses.clone(),
            steps: inner.steps.clone(),
            target: target.to_vec(),
        }
    }
}

// ---------------------------------------------------------------------------
// Backward DRUP checker
// ---------------------------------------------------------------------------

/// Outcome statistics of a successful [`check`] run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CheckStats {
    /// Addition steps in the proof.
    pub additions: usize,
    /// Additions that were actually RUP-verified (the needed core).
    pub verified_additions: usize,
    /// Original clauses used somewhere in the verified derivation.
    pub core_clauses: usize,
    /// Deletion steps honored during replay.
    pub deletions: usize,
    /// Deletion steps with no matching active clause (ignored; sound for
    /// RUP-only proofs).
    pub ignored_deletions: usize,
    /// Literals propagated across all RUP checks.
    pub propagations: u64,
}

/// Why a proof was rejected.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CheckError {
    /// The clause introduced by step `step` is not RUP with respect to the
    /// clause database at that point. `step == steps.len()` denotes the
    /// final `target` clause itself.
    NotRup { step: usize },
}

impl std::fmt::Display for CheckError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckError::NotRup { step } => {
                write!(
                    f,
                    "proof step {step} is not a reverse-unit-propagation consequence"
                )
            }
        }
    }
}

impl std::error::Error for CheckError {}

/// Verifies that `proof.target` follows from `proof.clauses` via the logged
/// derivation. An empty target certifies unsatisfiability of the clause
/// set; a non-empty target certifies that its negation (a conjunction of
/// assumption literals) is inconsistent with the clause set.
pub fn check(proof: &Proof) -> Result<CheckStats, CheckError> {
    Checker::new(proof).run(proof)
}

struct Rec {
    lits: Vec<Lit>,
    active: bool,
    needed: bool,
    original: bool,
}

struct Checker {
    recs: Vec<Rec>,
    /// Watch lists per literal code; entries are record indices and are
    /// never removed (inactive records are skipped during propagation so
    /// that backward re-activation finds them watched).
    watches: Vec<Vec<u32>>,
    /// Records of length one, propagated at the start of every RUP check.
    units: Vec<u32>,
    /// Records of length zero (a logged empty clause is an immediate
    /// conflict whenever active).
    empties: Vec<u32>,
    assigns: Vec<Lbool>,
    reason: Vec<Option<u32>>,
    var_seen: Vec<bool>,
    trail: Vec<Lit>,
    stats: CheckStats,
}

impl Checker {
    fn new(proof: &Proof) -> Checker {
        let mut num_vars = 0usize;
        {
            let mut see = |c: &[Lit]| {
                for l in c {
                    num_vars = num_vars.max(l.var().index() + 1);
                }
            };
            for c in &proof.clauses {
                see(c);
            }
            for s in &proof.steps {
                let (ProofStep::Add(c) | ProofStep::Delete(c)) = s;
                see(c);
            }
            see(&proof.target);
        }
        Checker {
            recs: Vec::with_capacity(proof.clauses.len() + proof.steps.len()),
            watches: vec![Vec::new(); 2 * num_vars],
            units: Vec::new(),
            empties: Vec::new(),
            assigns: vec![Lbool::Undef; num_vars],
            reason: vec![None; num_vars],
            var_seen: vec![false; num_vars],
            trail: Vec::new(),
            stats: CheckStats::default(),
        }
    }

    fn add_record(&mut self, lits: &[Lit], original: bool) -> u32 {
        let idx = self.recs.len() as u32;
        // Drop duplicate literals; keep complementary pairs (a tautology is
        // trivially RUP and never propagates harmfully).
        let mut ls = lits.to_vec();
        ls.sort_unstable();
        ls.dedup();
        match ls.len() {
            0 => self.empties.push(idx),
            1 => self.units.push(idx),
            _ => {
                self.watches[ls[0].code()].push(idx);
                self.watches[ls[1].code()].push(idx);
            }
        }
        self.recs.push(Rec {
            lits: ls,
            active: true,
            needed: false,
            original,
        });
        idx
    }

    fn run(&mut self, proof: &Proof) -> Result<CheckStats, CheckError> {
        // Forward replay: one record per original clause and per addition;
        // deletions deactivate the most recent matching active record.
        for c in &proof.clauses {
            self.add_record(c, true);
        }
        let mut by_key: HashMap<Vec<Lit>, Vec<u32>> = HashMap::new();
        for i in 0..self.recs.len() {
            by_key
                .entry(self.recs[i].lits.clone())
                .or_default()
                .push(i as u32);
        }
        // `actions[i]` remembers what step `i` did, for the backward walk.
        let mut actions: Vec<Option<u32>> = Vec::with_capacity(proof.steps.len());
        let mut is_add: Vec<bool> = Vec::with_capacity(proof.steps.len());
        for s in &proof.steps {
            match s {
                ProofStep::Add(c) => {
                    self.stats.additions += 1;
                    let idx = self.add_record(c, false);
                    by_key
                        .entry(self.recs[idx as usize].lits.clone())
                        .or_default()
                        .push(idx);
                    actions.push(Some(idx));
                    is_add.push(true);
                }
                ProofStep::Delete(c) => {
                    let mut key = c.to_vec();
                    key.sort_unstable();
                    key.dedup();
                    let hit = by_key.get_mut(&key).and_then(|v| {
                        let pos = v.iter().rposition(|&i| self.recs[i as usize].active);
                        pos.map(|p| v[p])
                    });
                    match hit {
                        Some(idx) => {
                            self.recs[idx as usize].active = false;
                            self.stats.deletions += 1;
                            actions.push(Some(idx));
                        }
                        None => {
                            self.stats.ignored_deletions += 1;
                            actions.push(None);
                        }
                    }
                    is_add.push(false);
                }
            }
        }

        // The claimed conclusion must be RUP in the final database.
        if !self.rup(&proof.target) {
            return Err(CheckError::NotRup {
                step: proof.steps.len(),
            });
        }

        // Backward walk: un-apply each step; RUP-check needed additions
        // against the strictly earlier database.
        for i in (0..proof.steps.len()).rev() {
            match (is_add[i], actions[i]) {
                (true, Some(idx)) => {
                    self.recs[idx as usize].active = false;
                    if self.recs[idx as usize].needed {
                        self.stats.verified_additions += 1;
                        let lits = self.recs[idx as usize].lits.clone();
                        if !self.rup(&lits) {
                            return Err(CheckError::NotRup { step: i });
                        }
                    }
                }
                (false, Some(idx)) => self.recs[idx as usize].active = true,
                _ => {}
            }
        }

        self.stats.core_clauses = self.recs.iter().filter(|r| r.original && r.needed).count();
        Ok(self.stats)
    }

    /// Is `clause` a reverse-unit-propagation consequence of the active
    /// records? On success, marks every antecedent record as needed.
    fn rup(&mut self, clause: &[Lit]) -> bool {
        debug_assert!(self.trail.is_empty());
        let mut confl: Option<u32> = None;

        // An active empty clause is an immediate conflict.
        for k in 0..self.empties.len() {
            let idx = self.empties[k];
            if self.recs[idx as usize].active {
                confl = Some(idx);
                break;
            }
        }

        // Assume the negation of the candidate clause.
        if confl.is_none() {
            for &l in clause {
                match self.value(!l) {
                    Lbool::True => {}
                    Lbool::False => {
                        // The clause is a tautology: ¬C is contradictory.
                        self.undo();
                        return true;
                    }
                    Lbool::Undef => self.assign(!l, None),
                }
            }
        }

        // Propagate active unit records.
        if confl.is_none() {
            for k in 0..self.units.len() {
                let idx = self.units[k];
                if !self.recs[idx as usize].active {
                    continue;
                }
                let l = self.recs[idx as usize].lits[0];
                match self.value(l) {
                    Lbool::True => {}
                    Lbool::False => {
                        confl = Some(idx);
                        break;
                    }
                    Lbool::Undef => self.assign(l, Some(idx)),
                }
            }
        }

        if confl.is_none() {
            confl = self.propagate();
        }

        match confl {
            Some(c) => {
                self.mark_antecedents(c);
                self.undo();
                true
            }
            None => {
                self.undo();
                false
            }
        }
    }

    fn value(&self, l: Lit) -> Lbool {
        Self::value_in(&self.assigns, l)
    }

    fn value_in(assigns: &[Lbool], l: Lit) -> Lbool {
        match assigns[l.var().index()] {
            Lbool::Undef => Lbool::Undef,
            Lbool::True => {
                if l.is_positive() {
                    Lbool::True
                } else {
                    Lbool::False
                }
            }
            Lbool::False => {
                if l.is_positive() {
                    Lbool::False
                } else {
                    Lbool::True
                }
            }
        }
    }

    fn assign(&mut self, l: Lit, reason: Option<u32>) {
        self.assigns[l.var().index()] = if l.is_positive() {
            Lbool::True
        } else {
            Lbool::False
        };
        self.reason[l.var().index()] = reason;
        self.trail.push(l);
    }

    /// Two-watched-literal unit propagation over the active records.
    fn propagate(&mut self) -> Option<u32> {
        let mut qhead = 0usize;
        while qhead < self.trail.len() {
            let p = self.trail[qhead];
            qhead += 1;
            let false_lit = !p;
            let mut wi = 0usize;
            'watchers: while wi < self.watches[false_lit.code()].len() {
                let idx = self.watches[false_lit.code()][wi];
                if !self.recs[idx as usize].active {
                    wi += 1;
                    continue;
                }
                // Make the false literal the second watch.
                let rec = &mut self.recs[idx as usize];
                if rec.lits[0] == false_lit {
                    rec.lits.swap(0, 1);
                }
                if rec.lits[1] != false_lit {
                    // Stale entry from an earlier watch move; drop it.
                    self.watches[false_lit.code()].swap_remove(wi);
                    continue;
                }
                let first = rec.lits[0];
                if Self::value_in(&self.assigns, first) == Lbool::True {
                    wi += 1;
                    continue;
                }
                // Look for a replacement watch.
                for k in 2..rec.lits.len() {
                    if Self::value_in(&self.assigns, rec.lits[k]) != Lbool::False {
                        rec.lits.swap(1, k);
                        let new_watch = rec.lits[1];
                        self.watches[new_watch.code()].push(idx);
                        self.watches[false_lit.code()].swap_remove(wi);
                        continue 'watchers;
                    }
                }
                // No replacement: unit or conflict.
                match self.value(first) {
                    Lbool::False => return Some(idx),
                    _ => {
                        self.stats.propagations += 1;
                        self.assign(first, Some(idx));
                    }
                }
                wi += 1;
            }
        }
        None
    }

    /// Marks every record reachable through propagation reasons from the
    /// conflicting record as needed.
    fn mark_antecedents(&mut self, confl: u32) {
        let mut stack = vec![confl];
        let mut seen_vars: Vec<usize> = Vec::new();
        while let Some(r) = stack.pop() {
            self.recs[r as usize].needed = true;
            for k in 0..self.recs[r as usize].lits.len() {
                let vi = self.recs[r as usize].lits[k].var().index();
                if !self.var_seen[vi] {
                    self.var_seen[vi] = true;
                    seen_vars.push(vi);
                    if let Some(r2) = self.reason[vi] {
                        stack.push(r2);
                    }
                }
            }
        }
        for vi in seen_vars {
            self.var_seen[vi] = false;
        }
    }

    fn undo(&mut self) {
        for l in self.trail.drain(..) {
            self.assigns[l.var().index()] = Lbool::Undef;
            self.reason[l.var().index()] = None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lit::Var;

    fn lit(i: i32) -> Lit {
        let v = Var::from_index((i.unsigned_abs() - 1) as usize);
        if i > 0 {
            v.positive()
        } else {
            !v.positive()
        }
    }

    fn clause(ls: &[i32]) -> Vec<Lit> {
        ls.iter().map(|&i| lit(i)).collect()
    }

    /// The classic R(1,2) proof: from (a∨b), (a∨¬b), (¬a∨b), (¬a∨¬b)
    /// derive a, then ⊥.
    fn tiny_unsat_proof() -> Proof {
        Proof {
            clauses: vec![
                clause(&[1, 2]),
                clause(&[1, -2]),
                clause(&[-1, 2]),
                clause(&[-1, -2]),
            ],
            steps: vec![ProofStep::Add(clause(&[1])), ProofStep::Add(clause(&[]))],
            target: vec![],
        }
    }

    #[test]
    fn valid_refutation_passes() {
        let stats = check(&tiny_unsat_proof()).expect("valid proof");
        assert_eq!(stats.additions, 2);
        assert_eq!(stats.verified_additions, 2);
        assert!(stats.core_clauses >= 3);
    }

    #[test]
    fn bogus_addition_is_rejected() {
        let mut p = tiny_unsat_proof();
        // Replace the derived unit with an unrelated clause that does not
        // follow by unit propagation; the final empty clause then fails.
        p.steps[0] = ProofStep::Add(clause(&[3]));
        let err = check(&p).unwrap_err();
        assert!(matches!(err, CheckError::NotRup { .. }));
    }

    #[test]
    fn deleting_a_needed_clause_is_rejected() {
        let mut p = tiny_unsat_proof();
        p.steps.insert(0, ProofStep::Delete(clause(&[1, 2])));
        assert!(check(&p).is_err());
    }

    #[test]
    fn unmatched_deletions_are_ignored() {
        let mut p = tiny_unsat_proof();
        p.steps.insert(0, ProofStep::Delete(clause(&[7, 8])));
        let stats = check(&p).expect("still valid");
        assert_eq!(stats.ignored_deletions, 1);
    }

    #[test]
    fn duplicate_additions_are_tolerated() {
        let mut p = tiny_unsat_proof();
        p.steps.insert(1, ProofStep::Add(clause(&[1])));
        let stats = check(&p).expect("duplicates are sound");
        assert_eq!(stats.additions, 3);
    }

    #[test]
    fn assumption_target_is_checked() {
        // Formula: (¬a ∨ ¬b). Claimed: assumptions {a, b} fail, i.e. the
        // clause (¬a ∨ ¬b) is a consequence — no derivation steps needed.
        let p = Proof {
            clauses: vec![clause(&[-1, -2])],
            steps: vec![],
            target: clause(&[-1, -2]),
        };
        let stats = check(&p).expect("target follows directly");
        assert_eq!(stats.core_clauses, 1);
    }

    #[test]
    fn unsupported_target_is_rejected() {
        let p = Proof {
            clauses: vec![clause(&[1, 2])],
            steps: vec![],
            target: clause(&[1]),
        };
        assert!(check(&p).is_err());
    }

    #[test]
    fn satisfiable_formula_has_no_refutation() {
        let p = Proof {
            clauses: vec![clause(&[1, 2]), clause(&[-1, 2])],
            steps: vec![ProofStep::Add(clause(&[2]))],
            target: vec![],
        };
        // The derived unit is fine, but ⊥ does not follow.
        let err = check(&p).unwrap_err();
        assert_eq!(err, CheckError::NotRup { step: 1 });
    }

    #[test]
    fn tautological_target_is_trivially_rup() {
        let p = Proof {
            clauses: vec![],
            steps: vec![],
            target: clause(&[1, -1]),
        };
        assert!(check(&p).is_ok());
    }

    #[test]
    fn drat_serialization_round_trips_signs() {
        let p = tiny_unsat_proof();
        let drat = p.to_drat();
        assert!(drat.contains("1 0\n"));
        let dimacs = p.to_dimacs();
        assert!(dimacs.starts_with("p cnf 2 4"));
        assert!(dimacs.contains("-1 -2 0"));
    }
}

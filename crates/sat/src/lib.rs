//! # ams-sat
//!
//! An incremental CDCL SAT solver, the decision-procedure substrate for the
//! `finfet-ams-place` placement stack (standing in for the SAT core of Z3 in
//! the DATE 2022 paper this workspace reproduces).
//!
//! Features: two-watched-literal propagation, first-UIP learning with
//! recursive clause minimization, VSIDS + phase saving, Luby restarts,
//! LBD-ordered learnt-database reduction, solving under assumptions with
//! failed-assumption cores, conflict/propagation budgets, cooperative
//! cancellation ([`Solver::set_stop_flag`]), and a diversified parallel
//! [`Portfolio`] with learnt-clause sharing.
//!
//! ## Example
//!
//! ```
//! use ams_sat::{Solver, SolveResult};
//!
//! let mut solver = Solver::new();
//! let x = solver.new_var().positive();
//! let y = solver.new_var().positive();
//! solver.add_clause(&[x, y]);   // x ∨ y
//! solver.add_clause(&[!x, y]);  // ¬x ∨ y
//! assert_eq!(solver.solve(), SolveResult::Sat);
//! assert!(solver.lit_model(y));
//! ```

mod clause;
pub mod drat;
mod heap;
mod lit;
mod luby;
mod portfolio;
mod solver;

pub use clause::{ClauseDb, ClauseRef};
pub use drat::{CheckError, CheckStats, Proof, ProofLog, ProofStep};
pub use heap::VarHeap;
pub use lit::{Lbool, Lit, Var};
pub use luby::luby;
pub use portfolio::{Portfolio, PortfolioConfig, PortfolioVerdict, WorkerStats};
pub use solver::{ClauseExchange, SolveResult, Solver, Stats, StopCause};

//! Incremental CDCL SAT solver.
//!
//! A MiniSat-lineage conflict-driven clause-learning solver:
//!
//! * two-watched-literal propagation with blocker literals,
//! * first-UIP conflict analysis with recursive clause minimization,
//! * exponential VSIDS variable activities with phase saving,
//! * Luby restarts,
//! * learnt-database reduction ordered by (LBD, activity),
//! * incremental solving under assumptions with failed-assumption cores,
//! * conflict/propagation budgets for anytime use.

use crate::clause::{ClauseDb, ClauseRef};
use crate::drat::ProofLog;
use crate::heap::VarHeap;
use crate::lit::{Lbool, Lit, Var};
use crate::luby::luby;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Result of a [`Solver::solve`] call.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SolveResult {
    /// A satisfying assignment was found; read it with [`Solver::value`].
    Sat,
    /// The formula (under the given assumptions) is unsatisfiable; when
    /// assumptions were used, [`Solver::failed_assumptions`] gives a core.
    Unsat,
    /// A budget expired before a verdict was reached.
    Unknown,
    /// The stop flag ([`Solver::set_stop_flag`]) was raised before a
    /// verdict was reached — another portfolio worker won, or the caller
    /// cancelled the solve. The solver stays usable.
    Cancelled,
}

/// Why the last `solve` call stopped without a verdict.
///
/// Set whenever [`Solver::solve_with`] returns [`SolveResult::Unknown`]
/// (and by the portfolio driver when every worker dies); read it with
/// [`Solver::stop_cause`] to distinguish a budget expiry from a
/// wall-clock deadline.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StopCause {
    /// The conflict budget ([`Solver::set_conflict_budget`]) ran out.
    ConflictBudget,
    /// The propagation budget ([`Solver::set_propagation_budget`]) ran out.
    PropagationBudget,
    /// The wall-clock deadline ([`Solver::set_deadline`]) passed.
    Deadline,
    /// Every portfolio worker panicked; reported by
    /// [`crate::Portfolio::solve`], never by a lone solver.
    AllWorkersPanicked,
}

/// Learnt-clause exchange between cooperating solvers.
///
/// A portfolio driver installs one endpoint per worker with
/// [`Solver::set_exchange`]; the solver offers every learnt clause through
/// [`ClauseExchange::export`] and drains peer clauses at quiescent points
/// (decision level zero, between restarts) through
/// [`ClauseExchange::import`]. Imported clauses must be logical
/// consequences of the shared formula — learnt clauses always are,
/// regardless of the assumptions in effect when they were derived.
pub trait ClauseExchange: Send {
    /// Offers a freshly learnt clause with its literal-block distance;
    /// returns whether the endpoint shared it with peers.
    fn export(&mut self, lits: &[Lit], lbd: u32) -> bool;

    /// Drains clauses received from peers since the last call.
    fn import(&mut self) -> Vec<Vec<Lit>>;
}

/// Search statistics, cumulative across `solve` calls.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Stats {
    /// Number of conflicts encountered.
    pub conflicts: u64,
    /// Number of decisions made.
    pub decisions: u64,
    /// Number of literals propagated.
    pub propagations: u64,
    /// Number of restarts performed.
    pub restarts: u64,
    /// Number of learnt clauses currently retained.
    pub learnts: u64,
    /// Number of `solve` calls.
    pub solves: u64,
    /// Learnt clauses exported through the [`ClauseExchange`] endpoint.
    pub shared_exported: u64,
    /// Peer clauses imported through the [`ClauseExchange`] endpoint.
    pub shared_imported: u64,
}

#[derive(Clone, Copy, Debug)]
struct Watcher {
    cref: ClauseRef,
    blocker: Lit,
}

/// The CDCL solver.
///
/// # Examples
///
/// ```
/// use ams_sat::{Solver, SolveResult};
///
/// let mut solver = Solver::new();
/// let a = solver.new_var().positive();
/// let b = solver.new_var().positive();
/// solver.add_clause(&[a, b]);
/// solver.add_clause(&[!a, b]);
/// assert_eq!(solver.solve(), SolveResult::Sat);
/// assert!(solver.value(b.var()));
/// // The same solver can be re-solved under assumptions:
/// assert_eq!(solver.solve_with(&[!b]), SolveResult::Unsat);
/// assert_eq!(solver.failed_assumptions(), &[!b]);
/// ```
pub struct Solver {
    db: ClauseDb,
    clauses: Vec<ClauseRef>,
    learnts: Vec<ClauseRef>,
    watches: Vec<Vec<Watcher>>,

    assigns: Vec<Lbool>,
    polarity: Vec<bool>,
    user_polarity: Vec<Option<bool>>,
    reason: Vec<Option<ClauseRef>>,
    level: Vec<u32>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,

    activity: Vec<f64>,
    var_inc: f64,
    order: VarHeap,
    cla_inc: f32,

    ok: bool,
    model: Vec<Lbool>,
    conflict_core: Vec<Lit>,
    assumptions: Vec<Lit>,

    seen: Vec<bool>,
    analyze_stack: Vec<(Lit, usize)>,
    analyze_toclear: Vec<Lit>,

    conflict_budget: Option<u64>,
    propagation_budget: Option<u64>,
    /// Wall-clock deadline; checked precisely at quiescent points and
    /// coarsely (every [`DEADLINE_CHECK_INTERVAL`] conflicts/decisions)
    /// inside the search to stay off the hot path.
    deadline: Option<Instant>,
    /// Countdown until the next coarse deadline check.
    deadline_check_in: u32,
    /// Why the last solve returned [`SolveResult::Unknown`], if it did.
    last_stop_cause: Option<StopCause>,

    max_learnts: f64,
    /// Root-trail length at the last `simplify`, so simplification only
    /// reruns when new top-level facts exist.
    simplified_at: usize,
    stats: Stats,

    // Diversification knobs (portfolio workers vary these; the defaults
    // reproduce the historical single-thread behaviour bit-for-bit).
    var_decay: f64,
    restart_base: u64,
    /// Xorshift state for random branching; branching is deterministic
    /// when `rand_freq == 0.0` (the default).
    rand_state: u64,
    rand_freq: f64,

    /// Cooperative cancellation, polled at quiescent points of the search.
    stop: Option<Arc<AtomicBool>>,
    /// Learnt-clause exchange endpoint (portfolio mode).
    exchange: Option<Box<dyn ClauseExchange>>,
    /// DRAT proof sink; `None` (the default) makes logging zero-cost.
    /// Cloning the solver shares the sink, so a portfolio of clones
    /// produces one interleaved proof.
    proof: Option<ProofLog>,
}

const VAR_DECAY: f64 = 0.95;
/// Conflicts/decisions between coarse wall-clock reads during search.
/// Small enough that a deadline overshoot stays in the sub-millisecond
/// range, large enough that `Instant::now` never shows up in profiles.
const DEADLINE_CHECK_INTERVAL: u32 = 64;
const CLAUSE_DECAY: f32 = 0.999;
const RESTART_BASE: u64 = 256;
const LEARNT_FRACTION: f64 = 1.0;
const LEARNT_GROWTH: f64 = 1.3;

impl Default for Solver {
    fn default() -> Self {
        Solver::new()
    }
}

impl std::fmt::Debug for Solver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Solver")
            .field("vars", &self.num_vars())
            .field("clauses", &self.clauses.len())
            .field("learnts", &self.learnts.len())
            .field("ok", &self.ok)
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl Clone for Solver {
    /// Clones the full solver state (clauses, learnts, activities, phases,
    /// statistics). The [`ClauseExchange`] endpoint is *not* cloned — the
    /// copy starts detached — while a stop flag, if set, is shared with
    /// the clone.
    fn clone(&self) -> Solver {
        Solver {
            db: self.db.clone(),
            clauses: self.clauses.clone(),
            learnts: self.learnts.clone(),
            watches: self.watches.clone(),
            assigns: self.assigns.clone(),
            polarity: self.polarity.clone(),
            user_polarity: self.user_polarity.clone(),
            reason: self.reason.clone(),
            level: self.level.clone(),
            trail: self.trail.clone(),
            trail_lim: self.trail_lim.clone(),
            qhead: self.qhead,
            activity: self.activity.clone(),
            var_inc: self.var_inc,
            order: self.order.clone(),
            cla_inc: self.cla_inc,
            ok: self.ok,
            model: self.model.clone(),
            conflict_core: self.conflict_core.clone(),
            assumptions: self.assumptions.clone(),
            seen: self.seen.clone(),
            analyze_stack: self.analyze_stack.clone(),
            analyze_toclear: self.analyze_toclear.clone(),
            conflict_budget: self.conflict_budget,
            propagation_budget: self.propagation_budget,
            deadline: self.deadline,
            deadline_check_in: self.deadline_check_in,
            last_stop_cause: self.last_stop_cause,
            max_learnts: self.max_learnts,
            simplified_at: self.simplified_at,
            stats: self.stats,
            var_decay: self.var_decay,
            restart_base: self.restart_base,
            rand_state: self.rand_state,
            rand_freq: self.rand_freq,
            stop: self.stop.clone(),
            exchange: None,
            proof: self.proof.clone(),
        }
    }
}

impl Solver {
    /// Creates an empty solver.
    pub fn new() -> Solver {
        Solver {
            db: ClauseDb::new(),
            clauses: Vec::new(),
            learnts: Vec::new(),
            watches: Vec::new(),
            assigns: Vec::new(),
            polarity: Vec::new(),
            user_polarity: Vec::new(),
            reason: Vec::new(),
            level: Vec::new(),
            trail: Vec::new(),
            trail_lim: Vec::new(),
            qhead: 0,
            activity: Vec::new(),
            var_inc: 1.0,
            order: VarHeap::new(),
            cla_inc: 1.0,
            ok: true,
            model: Vec::new(),
            conflict_core: Vec::new(),
            assumptions: Vec::new(),
            seen: Vec::new(),
            analyze_stack: Vec::new(),
            analyze_toclear: Vec::new(),
            conflict_budget: None,
            propagation_budget: None,
            deadline: None,
            deadline_check_in: DEADLINE_CHECK_INTERVAL,
            last_stop_cause: None,
            max_learnts: 0.0,
            simplified_at: 0,
            stats: Stats::default(),
            var_decay: VAR_DECAY,
            restart_base: RESTART_BASE,
            rand_state: 0,
            rand_freq: 0.0,
            stop: None,
            exchange: None,
            proof: None,
        }
    }

    /// Allocates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var::from_index(self.assigns.len());
        self.assigns.push(Lbool::Undef);
        self.polarity.push(false);
        self.user_polarity.push(None);
        self.reason.push(None);
        self.level.push(0);
        self.activity.push(0.0);
        self.seen.push(false);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.order.insert(v, &self.activity);
        v
    }

    /// Number of allocated variables.
    pub fn num_vars(&self) -> usize {
        self.assigns.len()
    }

    /// Number of problem (non-learnt) clauses retained.
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// Cumulative search statistics.
    pub fn stats(&self) -> Stats {
        let mut s = self.stats;
        s.learnts = self.learnts.len() as u64;
        s
    }

    /// Suggests an initial polarity for `v`, used the first time the solver
    /// branches on it (phase saving takes over afterwards). Useful for warm
    /// starts from a previous model.
    pub fn set_polarity_hint(&mut self, v: Var, positive: bool) {
        self.user_polarity[v.index()] = Some(positive);
        self.polarity[v.index()] = positive;
    }

    /// Limits the next `solve` calls to roughly `conflicts` conflicts;
    /// `None` removes the limit. Budgets are measured from the call, not
    /// cumulatively.
    pub fn set_conflict_budget(&mut self, conflicts: Option<u64>) {
        self.conflict_budget = conflicts;
    }

    /// Limits the next `solve` calls to roughly `props` propagations.
    pub fn set_propagation_budget(&mut self, props: Option<u64>) {
        self.propagation_budget = props;
    }

    /// Installs (or clears) a wall-clock deadline for the next `solve`
    /// calls. Once the instant passes, `solve` returns
    /// [`SolveResult::Unknown`] with [`Solver::stop_cause`] reporting
    /// [`StopCause::Deadline`]; the solver stays valid and reusable.
    ///
    /// The clock is read precisely at quiescent points and only every few
    /// dozen conflicts/decisions inside the search, so the overshoot past
    /// the deadline is bounded but nonzero. With no deadline installed the
    /// solver never reads the clock, preserving bit-for-bit determinism.
    pub fn set_deadline(&mut self, deadline: Option<Instant>) {
        self.deadline = deadline;
    }

    /// Why the last `solve` stopped without a verdict — `Some` exactly
    /// when it returned [`SolveResult::Unknown`].
    pub fn stop_cause(&self) -> Option<StopCause> {
        self.last_stop_cause
    }

    // --- portfolio hooks ------------------------------------------------

    /// Installs (or clears) a cooperative stop flag. While the flag reads
    /// `true`, `solve` returns [`SolveResult::Cancelled`] at the next
    /// quiescent point; the solver state stays valid and reusable.
    pub fn set_stop_flag(&mut self, stop: Option<Arc<AtomicBool>>) {
        self.stop = stop;
    }

    /// Installs (or clears) a learnt-clause exchange endpoint.
    pub fn set_exchange(&mut self, exchange: Option<Box<dyn ClauseExchange>>) {
        self.exchange = exchange;
    }

    /// Installs (or clears) a DRAT proof sink. While installed, every
    /// original clause, learnt/imported clause addition, and clause
    /// deletion is recorded, so that an UNSAT verdict can be validated with
    /// [`drat::check`](crate::drat::check). Logging imposes no cost when no
    /// sink is installed.
    pub fn set_proof(&mut self, proof: Option<ProofLog>) {
        self.proof = proof;
    }

    /// The installed proof sink, if any.
    pub fn proof(&self) -> Option<&ProofLog> {
        self.proof.as_ref()
    }

    /// Sets the VSIDS activity decay factor (clamped to `[0.5, 0.999]`);
    /// lower values make the search more greedy, a portfolio
    /// diversification axis.
    pub fn set_var_decay(&mut self, decay: f64) {
        self.var_decay = decay.clamp(0.5, 0.999);
    }

    /// Sets the base conflict interval of the Luby restart sequence
    /// (clamped to at least 1).
    pub fn set_restart_base(&mut self, base: u64) {
        self.restart_base = base.max(1);
    }

    /// Enables random branching: with probability `freq` a decision picks a
    /// uniformly random entry of the branch heap instead of the VSIDS
    /// maximum. `freq == 0.0` (the default) is fully deterministic.
    pub fn set_random_branch(&mut self, seed: u64, freq: f64) {
        // Xorshift needs a nonzero state.
        self.rand_state = seed | 1;
        self.rand_freq = freq.clamp(0.0, 1.0);
    }

    /// Overwrites every variable's saved phase with pseudo-random values
    /// derived from `seed` — the polarity diversification axis. Explicit
    /// [`Solver::set_polarity_hint`] values are preserved.
    pub fn randomize_phases(&mut self, seed: u64) {
        let mut state = seed | 1;
        for (vi, p) in self.polarity.iter_mut().enumerate() {
            if self.user_polarity[vi].is_none() {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                *p = state & 1 == 1;
            }
        }
    }

    /// Sets every variable's saved phase to `positive` (unless pinned by
    /// [`Solver::set_polarity_hint`]) — the cheap "all-true / all-false
    /// default polarity" diversification axis.
    pub fn set_default_polarity(&mut self, positive: bool) {
        for (vi, p) in self.polarity.iter_mut().enumerate() {
            if self.user_polarity[vi].is_none() {
                *p = positive;
            }
        }
    }

    #[inline]
    fn stop_requested(&self) -> bool {
        self.stop
            .as_ref()
            .is_some_and(|s| s.load(Ordering::Relaxed))
    }

    fn next_rand(&mut self) -> u64 {
        self.rand_state ^= self.rand_state << 13;
        self.rand_state ^= self.rand_state >> 7;
        self.rand_state ^= self.rand_state << 17;
        self.rand_state
    }

    /// Drains the exchange endpoint and attaches the received clauses.
    /// Must be called at decision level zero; imported clauses are logical
    /// consequences of the shared formula, so attaching them preserves
    /// equivalence.
    fn import_shared(&mut self) {
        debug_assert_eq!(self.decision_level(), 0);
        let Some(exchange) = self.exchange.as_mut() else {
            return;
        };
        let incoming = exchange.import();
        for lits in incoming {
            self.stats.shared_imported += 1;
            // An import is a peer's learnt clause: a *derived* proof step,
            // not part of the original formula. With a portfolio-shared
            // proof sink this re-adds a clause already in the log — a
            // harmless duplicate under RUP checking.
            if let Some(p) = &self.proof {
                p.log_addition(&lits);
            }
            if !self.attach_clause(&lits) {
                break; // root conflict: the solver is now permanently UNSAT
            }
        }
    }

    /// Adds a clause; returns `false` if the formula became trivially
    /// unsatisfiable (the solver is then permanently in the UNSAT state).
    ///
    /// May be called between `solve` calls for incremental use.
    pub fn add_clause(&mut self, lits: &[Lit]) -> bool {
        // Log the clause verbatim (pre-normalization), so a proof speaks
        // about the formula exactly as the caller asserted it.
        if let Some(p) = &self.proof {
            p.log_original(lits);
        }
        self.attach_clause(lits)
    }

    /// [`Solver::add_clause`] minus proof logging of the original.
    fn attach_clause(&mut self, lits: &[Lit]) -> bool {
        debug_assert_eq!(self.decision_level(), 0);
        if !self.ok {
            return false;
        }
        // Normalize: sort, dedup, drop root-false literals, detect tautology
        // and root-satisfied clauses.
        let mut c: Vec<Lit> = lits.to_vec();
        c.sort_unstable();
        c.dedup();
        let mut write = 0;
        for i in 0..c.len() {
            let l = c[i];
            if i + 1 < c.len() && c[i + 1] == !l {
                return true; // tautology: contains l and !l adjacently after sort
            }
            match self.lit_value(l) {
                Lbool::True => return true,
                Lbool::False => {}
                Lbool::Undef => {
                    c[write] = l;
                    write += 1;
                }
            }
        }
        c.truncate(write);
        match c.len() {
            0 => {
                self.ok = false;
                if let Some(p) = &self.proof {
                    p.log_addition(&[]);
                }
                false
            }
            1 => {
                self.unchecked_enqueue(c[0], None);
                self.ok = self.propagate().is_none();
                if !self.ok {
                    if let Some(p) = &self.proof {
                        p.log_addition(&[]);
                    }
                }
                self.ok
            }
            _ => {
                let cref = self.db.alloc(&c, false);
                self.clauses.push(cref);
                self.attach(cref);
                true
            }
        }
    }

    /// Solves the current formula with no assumptions.
    pub fn solve(&mut self) -> SolveResult {
        self.solve_with(&[])
    }

    /// Solves under the given assumption literals.
    ///
    /// On [`SolveResult::Unsat`], [`Solver::failed_assumptions`] returns a
    /// subset of `assumptions` sufficient for unsatisfiability.
    pub fn solve_with(&mut self, assumptions: &[Lit]) -> SolveResult {
        debug_assert_eq!(self.decision_level(), 0);
        #[cfg(debug_assertions)]
        self.check_invariants();
        self.stats.solves += 1;
        self.model.clear();
        self.conflict_core.clear();
        self.last_stop_cause = None;
        if !self.ok {
            return SolveResult::Unsat;
        }
        self.assumptions = assumptions.to_vec();

        if self.max_learnts == 0.0 {
            self.max_learnts = (self.clauses.len() as f64 * LEARNT_FRACTION).max(1000.0);
        }
        let conflict_start = self.stats.conflicts;
        let prop_start = self.stats.propagations;

        let mut restart = 1u64;
        let result = loop {
            // Quiescent point: honor cancellation and merge peer clauses.
            if self.stop_requested() {
                break SolveResult::Cancelled;
            }
            self.import_shared();
            if !self.ok {
                break SolveResult::Unsat;
            }
            if self.deadline_passed() {
                self.last_stop_cause = Some(StopCause::Deadline);
                break SolveResult::Unknown;
            }
            let budget_left = self.budget_left(conflict_start, prop_start);
            if budget_left == Some(0) {
                self.last_stop_cause = Some(self.budget_cause(conflict_start));
                break SolveResult::Unknown;
            }
            let limit = self.restart_base * luby(restart);
            let limit = match budget_left {
                Some(b) => limit.min(b.max(1)),
                None => limit,
            };
            match self.search(limit) {
                Some(r) => break r,
                None => {
                    restart += 1;
                    self.stats.restarts += 1;
                }
            }
        };
        // Terminal lemma for UNSAT under assumptions: the clause of negated
        // failed assumptions is RUP with respect to the live database, and
        // becomes the checkable `target` of the certificate.
        if result == SolveResult::Unsat && !self.conflict_core.is_empty() {
            if let Some(p) = &self.proof {
                let lemma: Vec<Lit> = self.conflict_core.iter().map(|&l| !l).collect();
                p.log_addition(&lemma);
            }
        }
        self.cancel_until(0);
        #[cfg(debug_assertions)]
        self.check_invariants();
        result
    }

    /// Model value of `v` after a [`SolveResult::Sat`] outcome.
    ///
    /// # Panics
    ///
    /// Panics if the last solve did not return `Sat`.
    pub fn value(&self, v: Var) -> bool {
        match self.model[v.index()] {
            Lbool::True => true,
            Lbool::False => false,
            // Variables never touched by the search default to false.
            Lbool::Undef => false,
        }
    }

    /// Model value of a literal after `Sat`.
    pub fn lit_model(&self, l: Lit) -> bool {
        self.value(l.var()) == l.is_positive()
    }

    /// After an `Unsat` outcome of [`Solver::solve_with`], the subset of
    /// assumptions that participated in the refutation.
    pub fn failed_assumptions(&self) -> &[Lit] {
        &self.conflict_core
    }

    /// Whether the formula is already known unsatisfiable without assumptions.
    pub fn is_ok(&self) -> bool {
        self.ok
    }

    // ------------------------------------------------------------------
    // Internals
    // ------------------------------------------------------------------

    /// Which budget is exhausted, given that `budget_left` hit zero.
    fn budget_cause(&self, conflict_start: u64) -> StopCause {
        match self.conflict_budget {
            Some(cb) if self.stats.conflicts - conflict_start >= cb => StopCause::ConflictBudget,
            _ => StopCause::PropagationBudget,
        }
    }

    /// Precise deadline check for quiescent points; no clock read when no
    /// deadline is installed.
    #[inline]
    fn deadline_passed(&self) -> bool {
        self.deadline.is_some_and(|d| Instant::now() >= d)
    }

    /// Coarsened deadline check for the search hot path: reads the clock
    /// only every [`DEADLINE_CHECK_INTERVAL`] calls, and never when no
    /// deadline is installed (keeping deterministic runs clock-free).
    #[inline]
    fn deadline_due(&mut self) -> bool {
        if self.deadline.is_none() {
            return false;
        }
        self.deadline_check_in = self.deadline_check_in.saturating_sub(1);
        if self.deadline_check_in > 0 {
            return false;
        }
        self.deadline_check_in = DEADLINE_CHECK_INTERVAL;
        self.deadline_passed()
    }

    fn budget_left(&self, conflict_start: u64, prop_start: u64) -> Option<u64> {
        let mut left: Option<u64> = None;
        if let Some(cb) = self.conflict_budget {
            left = Some(cb.saturating_sub(self.stats.conflicts - conflict_start));
        }
        if let Some(pb) = self.propagation_budget {
            let pl = if self.stats.propagations - prop_start >= pb {
                0
            } else {
                u64::MAX
            };
            left = Some(left.map_or(pl, |c| c.min(pl)));
        }
        left
    }

    #[inline]
    fn decision_level(&self) -> usize {
        self.trail_lim.len()
    }

    /// Structural invariants, checked in debug builds at the quiescent
    /// points around each solve: trail/level agreement and two-watched-
    /// literal consistency. Compiled out of release builds entirely.
    #[cfg(debug_assertions)]
    fn check_invariants(&self) {
        assert!(self.qhead <= self.trail.len(), "qhead past end of trail");
        assert!(
            self.trail_lim.windows(2).all(|w| w[0] <= w[1]),
            "trail_lim is not monotone"
        );
        for (i, &l) in self.trail.iter().enumerate() {
            assert_eq!(
                self.lit_value(l),
                Lbool::True,
                "trail literal {l:?} is not assigned true"
            );
            // The level recorded for the variable must match the trail
            // segment its literal sits in.
            let segment = self.trail_lim.partition_point(|&lim| lim <= i);
            assert_eq!(
                self.level[l.var().index()] as usize,
                segment,
                "level of {l:?} disagrees with its trail segment"
            );
        }
        // Every watcher sits in the list of a literal whose negation the
        // clause currently watches (positions 0 and 1).
        for (code, watchers) in self.watches.iter().enumerate() {
            let p = Lit::from_code(code);
            for w in watchers {
                let lits = self.db.lits(w.cref);
                assert!(
                    lits.len() >= 2 && (lits[0] == !p || lits[1] == !p),
                    "watch list of {p:?} holds a clause that does not watch {:?}",
                    !p
                );
            }
        }
        // Conversely, every attached clause is watched on both of its
        // first two literals.
        for &cref in self.clauses.iter().chain(&self.learnts) {
            let lits = self.db.lits(cref);
            for &wl in &lits[..2] {
                assert!(
                    self.watches[(!wl).code()].iter().any(|w| w.cref == cref),
                    "attached clause is missing from the watch list of {wl:?}"
                );
            }
        }
        // Branch-order heap sanity: it never outgrows the variable count,
        // and at a quiescent point every unassigned variable must still be
        // available for branching (pick_branch_lit only discards assigned
        // variables; cancel_until reinserts unassigned ones).
        assert!(self.order.len() <= self.num_vars());
        assert!(self.num_vars() > 0 || self.order.is_empty());
        for (vi, &a) in self.assigns.iter().enumerate() {
            if a == Lbool::Undef {
                assert!(
                    self.order.contains(Var::from_index(vi)),
                    "unassigned variable {vi} is missing from the branch heap"
                );
            }
        }
    }

    #[inline]
    fn lit_value(&self, l: Lit) -> Lbool {
        let v = self.assigns[l.var().index()];
        if l.is_positive() {
            v
        } else {
            v.negate()
        }
    }

    fn attach(&mut self, cref: ClauseRef) {
        let (l0, l1) = {
            let lits = self.db.lits(cref);
            (lits[0], lits[1])
        };
        self.watches[(!l0).code()].push(Watcher { cref, blocker: l1 });
        self.watches[(!l1).code()].push(Watcher { cref, blocker: l0 });
    }

    fn detach(&mut self, cref: ClauseRef) {
        let (l0, l1) = {
            let lits = self.db.lits(cref);
            (lits[0], lits[1])
        };
        self.watches[(!l0).code()].retain(|w| w.cref != cref);
        self.watches[(!l1).code()].retain(|w| w.cref != cref);
    }

    fn unchecked_enqueue(&mut self, l: Lit, from: Option<ClauseRef>) {
        debug_assert_eq!(self.lit_value(l), Lbool::Undef);
        let vi = l.var().index();
        self.assigns[vi] = Lbool::from_bool(l.is_positive());
        self.level[vi] = self.decision_level() as u32;
        self.reason[vi] = from;
        self.trail.push(l);
    }

    /// Unit propagation; returns the conflicting clause, if any.
    fn propagate(&mut self) -> Option<ClauseRef> {
        let mut conflict = None;
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            self.stats.propagations += 1;

            let mut ws = std::mem::take(&mut self.watches[p.code()]);
            let mut i = 0;
            let mut kept = 0;
            'watchers: while i < ws.len() {
                let w = ws[i];
                i += 1;
                if self.lit_value(w.blocker) == Lbool::True {
                    ws[kept] = w;
                    kept += 1;
                    continue;
                }
                let cref = w.cref;
                // Ensure the falsified watched literal sits at index 1.
                {
                    let lits = self.db.lits_mut(cref);
                    if lits[0] == !p {
                        lits.swap(0, 1);
                    }
                    debug_assert_eq!(lits[1], !p);
                }
                let first = self.db.lit(cref, 0);
                if first != w.blocker && self.lit_value(first) == Lbool::True {
                    ws[kept] = Watcher {
                        cref,
                        blocker: first,
                    };
                    kept += 1;
                    continue;
                }
                // Look for a non-false replacement watch.
                let len = self.db.len(cref);
                for k in 2..len {
                    let lk = self.db.lit(cref, k);
                    if self.lit_value(lk) != Lbool::False {
                        self.db.lits_mut(cref).swap(1, k);
                        self.watches[(!lk).code()].push(Watcher {
                            cref,
                            blocker: first,
                        });
                        continue 'watchers;
                    }
                }
                // Clause is unit or conflicting under the current trail.
                ws[kept] = Watcher {
                    cref,
                    blocker: first,
                };
                kept += 1;
                if self.lit_value(first) == Lbool::False {
                    conflict = Some(cref);
                    self.qhead = self.trail.len();
                    // Preserve the untraversed suffix of the watcher list.
                    while i < ws.len() {
                        ws[kept] = ws[i];
                        kept += 1;
                        i += 1;
                    }
                } else {
                    self.unchecked_enqueue(first, Some(cref));
                }
            }
            ws.truncate(kept);
            debug_assert!(self.watches[p.code()].is_empty());
            self.watches[p.code()] = ws;
            if conflict.is_some() {
                break;
            }
        }
        conflict
    }

    fn cancel_until(&mut self, target_level: usize) {
        if self.decision_level() <= target_level {
            return;
        }
        let lim = self.trail_lim[target_level];
        for i in (lim..self.trail.len()).rev() {
            let l = self.trail[i];
            let vi = l.var().index();
            self.assigns[vi] = Lbool::Undef;
            self.polarity[vi] = l.is_positive();
            self.reason[vi] = None;
            self.order.insert(l.var(), &self.activity);
        }
        self.trail.truncate(lim);
        self.trail_lim.truncate(target_level);
        self.qhead = self.trail.len();
    }

    fn new_decision_level(&mut self) {
        self.trail_lim.push(self.trail.len());
    }

    fn bump_var(&mut self, v: Var) {
        self.activity[v.index()] += self.var_inc;
        if self.activity[v.index()] > 1e100 {
            for a in self.activity.iter_mut() {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
        self.order.increased(v, &self.activity);
    }

    fn bump_clause(&mut self, cref: ClauseRef) {
        if !self.db.is_learnt(cref) {
            return;
        }
        let act = self.db.activity(cref) + self.cla_inc;
        self.db.set_activity(cref, act);
        if act > 1e20 {
            for &c in &self.learnts {
                let a = self.db.activity(c);
                self.db.set_activity(c, a * 1e-20);
            }
            self.cla_inc *= 1e-20;
        }
    }

    /// First-UIP conflict analysis. Returns the learnt clause (with the
    /// asserting literal first) and the backjump level.
    fn analyze(&mut self, mut confl: ClauseRef) -> (Vec<Lit>, usize) {
        let mut learnt: Vec<Lit> = vec![Lit::from_code(0)]; // placeholder for UIP
        let mut path_count = 0u32;
        let mut p: Option<Lit> = None;
        let mut index = self.trail.len();

        loop {
            self.bump_clause(confl);
            let start = usize::from(p.is_some());
            let clen = self.db.len(confl);
            for k in start..clen {
                let q = self.db.lit(confl, k);
                let vi = q.var().index();
                if !self.seen[vi] && self.level[vi] > 0 {
                    self.seen[vi] = true;
                    self.bump_var(q.var());
                    if self.level[vi] as usize >= self.decision_level() {
                        path_count += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Pick the next trail literal that is part of the conflict graph.
            loop {
                index -= 1;
                if self.seen[self.trail[index].var().index()] {
                    break;
                }
            }
            let pl = self.trail[index];
            self.seen[pl.var().index()] = false;
            path_count -= 1;
            p = Some(pl);
            if path_count == 0 {
                break;
            }
            confl = self.reason[pl.var().index()]
                .expect("non-decision literal on conflict path has a reason");
        }
        learnt[0] = !p.expect("conflict analysis visited at least one literal");

        // Conflict-clause minimization: drop literals implied by the rest.
        self.analyze_toclear = learnt.clone();
        let mut abstract_levels = 0u64;
        for &l in &learnt[1..] {
            abstract_levels |= self.abstract_level(l.var());
        }
        let mut write = 1;
        for i in 1..learnt.len() {
            let l = learnt[i];
            if self.reason[l.var().index()].is_none() || !self.lit_redundant(l, abstract_levels) {
                learnt[write] = l;
                write += 1;
            }
        }
        learnt.truncate(write);
        for l in std::mem::take(&mut self.analyze_toclear) {
            self.seen[l.var().index()] = false;
        }

        // Find the backjump level: highest level among learnt[1..].
        let backjump = if learnt.len() == 1 {
            0
        } else {
            let mut max_i = 1;
            for i in 2..learnt.len() {
                if self.level[learnt[i].var().index()] > self.level[learnt[max_i].var().index()] {
                    max_i = i;
                }
            }
            learnt.swap(1, max_i);
            self.level[learnt[1].var().index()] as usize
        };
        (learnt, backjump)
    }

    #[inline]
    fn abstract_level(&self, v: Var) -> u64 {
        1u64 << (self.level[v.index()] & 63)
    }

    /// Whether `l` is implied by the other literals of the learnt clause
    /// (iterative version of MiniSat's `litRedundant`).
    fn lit_redundant(&mut self, l: Lit, abstract_levels: u64) -> bool {
        self.analyze_stack.clear();
        self.analyze_stack.push((l, 0));
        let toclear_base = self.analyze_toclear.len();

        while let Some((p, k)) = self.analyze_stack.pop() {
            let cref = self.reason[p.var().index()].expect("stacked literal has a reason");
            let clen = self.db.len(cref);
            if k + 1 < clen {
                self.analyze_stack.push((p, k + 1));
                let q = self.db.lit(cref, k + 1);
                let vi = q.var().index();
                if !self.seen[vi] && self.level[vi] > 0 {
                    if self.reason[vi].is_some()
                        && (self.abstract_level(q.var()) & abstract_levels) != 0
                    {
                        self.seen[vi] = true;
                        self.analyze_stack.push((q, 0));
                        self.analyze_toclear.push(q);
                    } else {
                        // Not redundant: undo the marks added in this walk.
                        for ql in self.analyze_toclear.drain(toclear_base..) {
                            self.seen[ql.var().index()] = false;
                        }
                        return false;
                    }
                }
            }
        }
        true
    }

    /// Computes the failed-assumption core given the falsified assumption
    /// `p`, storing it in `conflict_core`.
    fn analyze_final(&mut self, p: Lit) {
        self.conflict_core.clear();
        self.conflict_core.push(!p);
        if self.decision_level() == 0 {
            return;
        }
        self.seen[p.var().index()] = true;
        for i in (self.trail_lim[0]..self.trail.len()).rev() {
            let l = self.trail[i];
            let vi = l.var().index();
            if !self.seen[vi] {
                continue;
            }
            match self.reason[vi] {
                Some(cref) => {
                    let clen = self.db.len(cref);
                    for k in 1..clen {
                        let q = self.db.lit(cref, k);
                        if self.level[q.var().index()] > 0 {
                            self.seen[q.var().index()] = true;
                        }
                    }
                }
                None => {
                    // A decision inside the assumption prefix: report the
                    // assumption literal itself.
                    self.conflict_core.push(l);
                }
            }
            self.seen[vi] = false;
        }
        self.seen[p.var().index()] = false;
    }

    fn record_learnt(&mut self, learnt: &[Lit]) {
        // Proof before export: a shared portfolio log stays valid only if a
        // clause is in the log before any peer can import (and re-log) it.
        if let Some(p) = &self.proof {
            p.log_addition(learnt);
        }
        if learnt.len() == 1 {
            if let Some(exchange) = self.exchange.as_mut() {
                if exchange.export(learnt, 1) {
                    self.stats.shared_exported += 1;
                }
            }
            self.unchecked_enqueue(learnt[0], None);
            return;
        }
        let cref = self.db.alloc(learnt, true);
        let lbd = self.compute_lbd(learnt);
        if let Some(exchange) = self.exchange.as_mut() {
            if exchange.export(learnt, lbd) {
                self.stats.shared_exported += 1;
            }
        }
        self.db.set_lbd(cref, lbd);
        self.db.set_activity(cref, self.cla_inc);
        self.learnts.push(cref);
        self.attach(cref);
        self.unchecked_enqueue(learnt[0], Some(cref));
    }

    fn compute_lbd(&mut self, lits: &[Lit]) -> u32 {
        // Count distinct decision levels; uses `seen` scratch over levels via
        // a small sort-free approach (levels fit in a Vec we dedup).
        let mut levels: Vec<u32> = lits.iter().map(|l| self.level[l.var().index()]).collect();
        levels.sort_unstable();
        levels.dedup();
        levels.len() as u32
    }

    fn reduce_db(&mut self) {
        // Sort learnts so the most valuable (low LBD, high activity) come
        // first; drop the worse half, keeping locked and binary clauses.
        let db = &self.db;
        self.learnts.sort_by(|&a, &b| {
            db.lbd(a)
                .cmp(&db.lbd(b))
                .then(db.activity(b).partial_cmp(&db.activity(a)).expect("finite"))
        });
        let keep_from = self.learnts.len() / 2;
        let mut removed = Vec::new();
        let mut kept = Vec::with_capacity(keep_from);
        for i in 0..self.learnts.len() {
            let cref = self.learnts[i];
            if i >= keep_from
                && self.db.len(cref) > 2
                && !self.is_locked(cref)
                && self.db.lbd(cref) > 2
            {
                removed.push(cref);
            } else {
                kept.push(cref);
            }
        }
        if removed.is_empty() {
            return;
        }
        self.learnts = kept;
        for cref in removed {
            if let Some(p) = &self.proof {
                p.log_deletion(self.db.lits(cref));
            }
            self.detach(cref);
            self.db.delete(cref);
        }
        self.maybe_collect_garbage();
    }

    fn is_locked(&self, cref: ClauseRef) -> bool {
        let first = self.db.lit(cref, 0);
        self.lit_value(first) == Lbool::True && self.reason[first.var().index()] == Some(cref)
    }

    fn maybe_collect_garbage(&mut self) {
        if self.db.wasted() * 3 < self.db.len_words() {
            return;
        }
        let reloc = self.db.collect();
        for list in self.watches.iter_mut() {
            for w in list.iter_mut() {
                w.cref = reloc[&w.cref];
            }
        }
        for r in self.reason.iter_mut() {
            if let Some(c) = r {
                // Reasons of root-level assignments may reference clauses
                // already deleted by simplification; they are never
                // traversed again, so dropping the reference is safe.
                *r = reloc.get(c).copied();
            }
        }
        for c in self.clauses.iter_mut() {
            *c = reloc[c];
        }
        for c in self.learnts.iter_mut() {
            *c = reloc[c];
        }
    }

    /// Removes root-satisfied clauses and root-false literals. Called at
    /// decision level zero between restarts.
    fn simplify(&mut self) {
        debug_assert_eq!(self.decision_level(), 0);
        if self.trail.len() == self.simplified_at {
            return; // no new root facts since the last sweep
        }
        self.simplified_at = self.trail.len();
        for list_kind in 0..2 {
            let list = if list_kind == 0 {
                std::mem::take(&mut self.clauses)
            } else {
                std::mem::take(&mut self.learnts)
            };
            let mut kept = Vec::with_capacity(list.len());
            'clauses: for cref in list {
                let len = self.db.len(cref);
                for k in 0..len {
                    if self.lit_value(self.db.lit(cref, k)) == Lbool::True {
                        if !self.is_locked(cref) {
                            if let Some(p) = &self.proof {
                                p.log_deletion(self.db.lits(cref));
                            }
                            self.detach(cref);
                            self.db.delete(cref);
                            continue 'clauses;
                        }
                        break;
                    }
                }
                kept.push(cref);
            }
            if list_kind == 0 {
                self.clauses = kept;
            } else {
                self.learnts = kept;
            }
        }
        self.maybe_collect_garbage();
    }

    fn pick_branch_lit(&mut self) -> Option<Lit> {
        // Random branching (diversification): with probability `rand_freq`
        // decide on a uniformly random heap entry instead of the VSIDS max.
        // The chosen variable stays in the heap; `pop_max` skips assigned
        // variables, so no bookkeeping is needed.
        if self.rand_freq > 0.0 && !self.order.is_empty() {
            let coin = (self.next_rand() >> 11) as f64 / (1u64 << 53) as f64;
            if coin < self.rand_freq {
                let idx = self.next_rand() as usize % self.order.len();
                if let Some(v) = self.order.get(idx) {
                    if self.assigns[v.index()] == Lbool::Undef {
                        self.stats.decisions += 1;
                        return Some(Lit::new(v, self.polarity[v.index()]));
                    }
                }
            }
        }
        while let Some(v) = self.order.pop_max(&self.activity) {
            if self.assigns[v.index()] == Lbool::Undef {
                self.stats.decisions += 1;
                return Some(Lit::new(v, self.polarity[v.index()]));
            }
        }
        None
    }

    /// Runs CDCL until a verdict, a restart (`None`), or conflict budget.
    fn search(&mut self, conflict_limit: u64) -> Option<SolveResult> {
        let mut conflicts_here = 0u64;
        loop {
            if let Some(confl) = self.propagate() {
                self.stats.conflicts += 1;
                conflicts_here += 1;
                if self.decision_level() == 0 {
                    self.ok = false;
                    if let Some(p) = &self.proof {
                        p.log_addition(&[]);
                    }
                    return Some(SolveResult::Unsat);
                }
                if self.stop_requested() {
                    self.cancel_until(0);
                    return Some(SolveResult::Cancelled);
                }
                if self.deadline_due() {
                    self.last_stop_cause = Some(StopCause::Deadline);
                    self.cancel_until(0);
                    return Some(SolveResult::Unknown);
                }
                let (learnt, backjump) = self.analyze(confl);
                // Never backjump into the assumption prefix shallower than
                // needed: cancel_until handles the standard case; assumption
                // literals are re-established by the decision loop below.
                self.cancel_until(backjump);
                self.record_learnt(&learnt);
                self.var_inc /= self.var_decay;
                self.cla_inc /= CLAUSE_DECAY;

                if self.learnts.len() as f64 >= self.max_learnts + self.trail.len() as f64 {
                    self.max_learnts *= LEARNT_GROWTH;
                    self.reduce_db();
                }
            } else {
                if conflicts_here >= conflict_limit {
                    self.cancel_until(0);
                    return None; // restart
                }
                if self.stop_requested() {
                    self.cancel_until(0);
                    return Some(SolveResult::Cancelled);
                }
                if self.deadline_due() {
                    self.last_stop_cause = Some(StopCause::Deadline);
                    self.cancel_until(0);
                    return Some(SolveResult::Unknown);
                }
                if self.decision_level() == 0 {
                    self.simplify();
                }
                // Establish assumptions, then decide.
                let next = loop {
                    if self.decision_level() < self.assumptions.len() {
                        let a = self.assumptions[self.decision_level()];
                        match self.lit_value(a) {
                            Lbool::True => {
                                // Already implied: introduce an empty level.
                                self.new_decision_level();
                                continue;
                            }
                            Lbool::False => {
                                self.analyze_final(!a);
                                return Some(SolveResult::Unsat);
                            }
                            Lbool::Undef => break Some(a),
                        }
                    } else {
                        break self.pick_branch_lit();
                    }
                };
                match next {
                    None => {
                        // All variables assigned: model found.
                        self.model = self.assigns.clone();
                        return Some(SolveResult::Sat);
                    }
                    Some(l) => {
                        self.new_decision_level();
                        self.unchecked_enqueue(l, None);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nvars(s: &mut Solver, n: usize) -> Vec<Lit> {
        (0..n).map(|_| s.new_var().positive()).collect()
    }

    #[test]
    fn trivial_sat() {
        let mut s = Solver::new();
        let v = nvars(&mut s, 2);
        assert!(s.add_clause(&[v[0]]));
        assert!(s.add_clause(&[!v[0], v[1]]));
        assert_eq!(s.solve(), SolveResult::Sat);
        assert!(s.value(v[0].var()));
        assert!(s.value(v[1].var()));
    }

    #[test]
    fn trivial_unsat() {
        let mut s = Solver::new();
        let v = nvars(&mut s, 1);
        assert!(s.add_clause(&[v[0]]));
        assert!(!s.add_clause(&[!v[0]]));
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn empty_clause_is_unsat() {
        let mut s = Solver::new();
        assert!(!s.add_clause(&[]));
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn pigeonhole_two_in_one_is_unsat() {
        // 2 pigeons, 1 hole.
        let mut s = Solver::new();
        let p = nvars(&mut s, 2);
        s.add_clause(&[p[0]]);
        s.add_clause(&[p[1]]);
        s.add_clause(&[!p[0], !p[1]]);
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn pigeonhole_3_pigeons_2_holes() {
        // x[i][j]: pigeon i in hole j. Each pigeon somewhere; no two share.
        let mut s = Solver::new();
        let x: Vec<Vec<Lit>> = (0..3)
            .map(|_| (0..2).map(|_| s.new_var().positive()).collect())
            .collect();
        for row in &x {
            s.add_clause(&[row[0], row[1]]);
        }
        for i1 in 0..3 {
            for i2 in (i1 + 1)..3 {
                for (&a, &b) in x[i1].iter().zip(&x[i2]) {
                    s.add_clause(&[!a, !b]);
                }
            }
        }
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn assumptions_flip_outcome() {
        let mut s = Solver::new();
        let v = nvars(&mut s, 2);
        s.add_clause(&[v[0], v[1]]);
        assert_eq!(s.solve_with(&[!v[0], !v[1]]), SolveResult::Unsat);
        assert!(!s.failed_assumptions().is_empty());
        // Solver remains usable and SAT without assumptions.
        assert_eq!(s.solve(), SolveResult::Sat);
        assert_eq!(s.solve_with(&[!v[0]]), SolveResult::Sat);
        assert!(s.value(v[1].var()));
    }

    #[test]
    fn failed_assumption_core_is_subset() {
        let mut s = Solver::new();
        let v = nvars(&mut s, 4);
        s.add_clause(&[!v[0], v[1]]);
        s.add_clause(&[!v[1], v[2]]);
        // v[3] is irrelevant.
        assert_eq!(s.solve_with(&[v[0], !v[2], v[3]]), SolveResult::Unsat);
        let core = s.failed_assumptions().to_vec();
        assert!(!core.is_empty());
        for l in &core {
            assert!(
                [v[0], !v[2], v[3]].contains(l),
                "core literal {l:?} not an assumption"
            );
        }
        assert!(!core.contains(&v[3]), "irrelevant assumption in core");
    }

    #[test]
    fn incremental_add_after_solve() {
        let mut s = Solver::new();
        let v = nvars(&mut s, 3);
        s.add_clause(&[v[0], v[1], v[2]]);
        assert_eq!(s.solve(), SolveResult::Sat);
        s.add_clause(&[!v[0]]);
        s.add_clause(&[!v[1]]);
        assert_eq!(s.solve(), SolveResult::Sat);
        assert!(s.value(v[2].var()));
        s.add_clause(&[!v[2]]);
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn conflict_budget_yields_unknown_on_hard_instance() {
        // A hard unsat pigeonhole instance with a tiny budget.
        let n = 9; // 9 pigeons, 8 holes
        let mut s = Solver::new();
        let x: Vec<Vec<Lit>> = (0..n)
            .map(|_| (0..n - 1).map(|_| s.new_var().positive()).collect())
            .collect();
        for row in &x {
            s.add_clause(row);
        }
        for i1 in 0..n {
            for i2 in (i1 + 1)..n {
                for (&a, &b) in x[i1].iter().zip(&x[i2]) {
                    s.add_clause(&[!a, !b]);
                }
            }
        }
        s.set_conflict_budget(Some(10));
        assert_eq!(s.solve(), SolveResult::Unknown);
        s.set_conflict_budget(None);
    }

    /// Hard unsat pigeonhole: `n` pigeons, `n - 1` holes.
    fn pigeonhole(n: usize) -> Solver {
        let mut s = Solver::new();
        let x: Vec<Vec<Lit>> = (0..n)
            .map(|_| (0..n - 1).map(|_| s.new_var().positive()).collect())
            .collect();
        for row in &x {
            s.add_clause(row);
        }
        for i1 in 0..n {
            for i2 in (i1 + 1)..n {
                for (&a, &b) in x[i1].iter().zip(&x[i2]) {
                    s.add_clause(&[!a, !b]);
                }
            }
        }
        s
    }

    #[test]
    fn expired_deadline_yields_unknown_with_cause() {
        let mut s = pigeonhole(9);
        s.set_deadline(Some(Instant::now()));
        assert_eq!(s.solve(), SolveResult::Unknown);
        assert_eq!(s.stop_cause(), Some(StopCause::Deadline));
        // Clearing the deadline makes the solver fully usable again, and a
        // verdict clears the cause.
        s.set_deadline(None);
        s.set_conflict_budget(Some(10));
        assert_eq!(s.solve(), SolveResult::Unknown);
        assert_eq!(s.stop_cause(), Some(StopCause::ConflictBudget));
        s.set_conflict_budget(None);
        assert_eq!(s.solve(), SolveResult::Unsat);
        assert_eq!(s.stop_cause(), None);
    }

    #[test]
    fn deadline_interrupts_a_running_search() {
        let mut s = pigeonhole(10);
        let deadline = std::time::Duration::from_millis(30);
        s.set_deadline(Some(Instant::now() + deadline));
        let t0 = Instant::now();
        assert_eq!(s.solve(), SolveResult::Unknown);
        assert_eq!(s.stop_cause(), Some(StopCause::Deadline));
        assert!(
            t0.elapsed() < std::time::Duration::from_secs(5),
            "the coarse check must fire well before the instance is solved"
        );
    }

    #[test]
    fn propagation_budget_cause_is_reported() {
        let mut s = pigeonhole(9);
        s.set_propagation_budget(Some(1));
        assert_eq!(s.solve(), SolveResult::Unknown);
        assert_eq!(s.stop_cause(), Some(StopCause::PropagationBudget));
    }

    #[test]
    fn polarity_hint_steers_first_model() {
        let mut s = Solver::new();
        let v = nvars(&mut s, 1);
        s.set_polarity_hint(v[0].var(), true);
        assert_eq!(s.solve(), SolveResult::Sat);
        assert!(s.value(v[0].var()));
        let mut s2 = Solver::new();
        let w = nvars(&mut s2, 1);
        s2.set_polarity_hint(w[0].var(), false);
        assert_eq!(s2.solve(), SolveResult::Sat);
        assert!(!s2.value(w[0].var()));
    }

    #[test]
    fn tautology_is_ignored() {
        let mut s = Solver::new();
        let v = nvars(&mut s, 1);
        assert!(s.add_clause(&[v[0], !v[0]]));
        assert_eq!(s.num_clauses(), 0);
        assert_eq!(s.solve(), SolveResult::Sat);
    }

    #[test]
    fn stats_accumulate() {
        let mut s = Solver::new();
        let v = nvars(&mut s, 3);
        s.add_clause(&[v[0], v[1]]);
        s.add_clause(&[!v[0], v[2]]);
        s.solve();
        let st = s.stats();
        assert_eq!(st.solves, 1);
        s.solve();
        assert_eq!(s.stats().solves, 2);
    }
}

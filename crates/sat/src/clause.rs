//! Clause storage arena.
//!
//! Clauses live in one contiguous `Vec<u32>`; a [`ClauseRef`] is an offset
//! into it. Each clause is laid out as
//!
//! ```text
//! [header][len][lit0][lit1]...[litN-1]([activity])
//! ```
//!
//! where the trailing activity word exists only for learnt clauses. Deleted
//! clauses are tombstoned and reclaimed by [`ClauseDb::collect`], which
//! returns a relocation table so the solver can patch watcher lists and
//! reason references.

use crate::lit::Lit;
use std::collections::HashMap;

/// Reference to a clause inside a [`ClauseDb`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct ClauseRef(u32);

impl ClauseRef {
    #[inline]
    fn offset(self) -> usize {
        self.0 as usize
    }
}

const LEARNT_BIT: u32 = 1 << 31;
const DELETED_BIT: u32 = 1 << 30;
const LBD_MASK: u32 = DELETED_BIT - 1;

/// Arena of clauses with tombstone deletion and compacting collection.
#[derive(Debug, Default, Clone)]
pub struct ClauseDb {
    data: Vec<u32>,
    wasted: usize,
}

impl ClauseDb {
    /// Creates an empty arena.
    pub fn new() -> ClauseDb {
        ClauseDb::default()
    }

    /// Number of 32-bit words currently wasted by tombstoned clauses.
    pub fn wasted(&self) -> usize {
        self.wasted
    }

    /// Total number of 32-bit words in the arena.
    pub fn len_words(&self) -> usize {
        self.data.len()
    }

    /// Allocates a clause; `lits` must contain at least two literals
    /// (unit and empty clauses are handled by the solver directly).
    pub fn alloc(&mut self, lits: &[Lit], learnt: bool) -> ClauseRef {
        debug_assert!(lits.len() >= 2);
        let at = self.data.len();
        let header = if learnt { LEARNT_BIT } else { 0 };
        self.data.push(header);
        self.data.push(lits.len() as u32);
        self.data.extend(lits.iter().map(|l| l.code() as u32));
        if learnt {
            self.data.push(1.0f32.to_bits());
        }
        ClauseRef(at as u32)
    }

    #[inline]
    fn header(&self, cref: ClauseRef) -> u32 {
        self.data[cref.offset()]
    }

    /// Number of literals in the clause.
    #[inline]
    pub fn len(&self, cref: ClauseRef) -> usize {
        self.data[cref.offset() + 1] as usize
    }

    /// Whether the arena contains no clauses.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The literals of the clause.
    #[inline]
    pub fn lits(&self, cref: ClauseRef) -> &[Lit] {
        let len = self.len(cref);
        let start = cref.offset() + 2;
        // SAFETY: `Lit` is `repr(transparent)` over `u32`, and these words
        // were written by `alloc` from `Lit::code()` values.
        unsafe {
            std::slice::from_raw_parts(self.data[start..start + len].as_ptr() as *const Lit, len)
        }
    }

    /// Mutable access to the literals of the clause.
    #[inline]
    pub fn lits_mut(&mut self, cref: ClauseRef) -> &mut [Lit] {
        let len = self.len(cref);
        let start = cref.offset() + 2;
        // SAFETY: see `lits`.
        unsafe {
            std::slice::from_raw_parts_mut(
                self.data[start..start + len].as_mut_ptr() as *mut Lit,
                len,
            )
        }
    }

    /// A single literal of the clause.
    #[inline]
    pub fn lit(&self, cref: ClauseRef, i: usize) -> Lit {
        Lit::from_code(self.data[cref.offset() + 2 + i] as usize)
    }

    /// Whether the clause was learnt during search.
    #[inline]
    pub fn is_learnt(&self, cref: ClauseRef) -> bool {
        self.header(cref) & LEARNT_BIT != 0
    }

    /// Whether the clause has been tombstoned.
    #[inline]
    pub fn is_deleted(&self, cref: ClauseRef) -> bool {
        self.header(cref) & DELETED_BIT != 0
    }

    /// Literal-block distance recorded for a learnt clause.
    #[inline]
    pub fn lbd(&self, cref: ClauseRef) -> u32 {
        self.header(cref) & LBD_MASK
    }

    /// Records the literal-block distance of a learnt clause.
    #[inline]
    pub fn set_lbd(&mut self, cref: ClauseRef, lbd: u32) {
        let h = self.header(cref);
        self.data[cref.offset()] = (h & !LBD_MASK) | (lbd & LBD_MASK);
    }

    /// Activity of a learnt clause.
    #[inline]
    pub fn activity(&self, cref: ClauseRef) -> f32 {
        debug_assert!(self.is_learnt(cref));
        let len = self.len(cref);
        f32::from_bits(self.data[cref.offset() + 2 + len])
    }

    /// Sets the activity of a learnt clause.
    #[inline]
    pub fn set_activity(&mut self, cref: ClauseRef, act: f32) {
        debug_assert!(self.is_learnt(cref));
        let len = self.len(cref);
        self.data[cref.offset() + 2 + len] = act.to_bits();
    }

    /// Tombstones the clause; its storage is reclaimed by [`Self::collect`].
    pub fn delete(&mut self, cref: ClauseRef) {
        debug_assert!(!self.is_deleted(cref));
        let words = self.clause_words(cref);
        self.data[cref.offset()] |= DELETED_BIT;
        self.wasted += words;
    }

    fn clause_words(&self, cref: ClauseRef) -> usize {
        2 + self.len(cref) + usize::from(self.is_learnt(cref))
    }

    /// Compacts the arena, dropping tombstoned clauses. Returns the
    /// relocation table mapping old references to new ones.
    pub fn collect(&mut self) -> HashMap<ClauseRef, ClauseRef> {
        let mut reloc = HashMap::new();
        let mut new_data = Vec::with_capacity(self.data.len() - self.wasted);
        let mut at = 0usize;
        while at < self.data.len() {
            let cref = ClauseRef(at as u32);
            let words = self.clause_words(cref);
            if !self.is_deleted(cref) {
                let new_ref = ClauseRef(new_data.len() as u32);
                new_data.extend_from_slice(&self.data[at..at + words]);
                reloc.insert(cref, new_ref);
            }
            at += words;
        }
        self.data = new_data;
        self.wasted = 0;
        reloc
    }

    /// Iterates over all live clause references.
    pub fn iter(&self) -> ClauseIter<'_> {
        ClauseIter { db: self, at: 0 }
    }
}

/// Iterator over live clauses in a [`ClauseDb`].
#[derive(Debug)]
pub struct ClauseIter<'a> {
    db: &'a ClauseDb,
    at: usize,
}

impl Iterator for ClauseIter<'_> {
    type Item = ClauseRef;

    fn next(&mut self) -> Option<ClauseRef> {
        while self.at < self.db.data.len() {
            let cref = ClauseRef(self.at as u32);
            self.at += self.db.clause_words(cref);
            if !self.db.is_deleted(cref) {
                return Some(cref);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lit::Var;

    fn lits(idx: &[(usize, bool)]) -> Vec<Lit> {
        idx.iter()
            .map(|&(v, p)| Lit::new(Var::from_index(v), p))
            .collect()
    }

    #[test]
    fn alloc_and_read_back() {
        let mut db = ClauseDb::new();
        let c = lits(&[(0, true), (1, false), (2, true)]);
        let cref = db.alloc(&c, false);
        assert_eq!(db.len(cref), 3);
        assert_eq!(db.lits(cref), &c[..]);
        assert!(!db.is_learnt(cref));
        assert!(!db.is_deleted(cref));
    }

    #[test]
    fn learnt_activity_roundtrip() {
        let mut db = ClauseDb::new();
        let cref = db.alloc(&lits(&[(0, true), (1, true)]), true);
        assert!(db.is_learnt(cref));
        db.set_activity(cref, 3.5);
        assert_eq!(db.activity(cref), 3.5);
        db.set_lbd(cref, 7);
        assert_eq!(db.lbd(cref), 7);
        assert!(db.is_learnt(cref));
        assert!(!db.is_deleted(cref));
    }

    #[test]
    fn delete_and_collect_relocates() {
        let mut db = ClauseDb::new();
        let a = db.alloc(&lits(&[(0, true), (1, true)]), false);
        let b = db.alloc(&lits(&[(2, true), (3, true), (4, false)]), true);
        let c = db.alloc(&lits(&[(5, false), (6, true)]), false);
        db.delete(a);
        let reloc = db.collect();
        assert!(!reloc.contains_key(&a));
        let nb = reloc[&b];
        let nc = reloc[&c];
        assert_eq!(db.lits(nb), &lits(&[(2, true), (3, true), (4, false)])[..]);
        assert_eq!(db.lits(nc), &lits(&[(5, false), (6, true)])[..]);
        assert!(db.is_learnt(nb));
        assert_eq!(db.wasted(), 0);
    }

    #[test]
    fn iter_skips_deleted() {
        let mut db = ClauseDb::new();
        let a = db.alloc(&lits(&[(0, true), (1, true)]), false);
        let b = db.alloc(&lits(&[(2, true), (3, true)]), false);
        db.delete(a);
        let live: Vec<_> = db.iter().collect();
        assert_eq!(live, vec![b]);
    }
}

//! Parallel portfolio solving.
//!
//! A [`Portfolio`] runs N diversified clones of a base [`Solver`]
//! concurrently on the same formula and assumptions, and returns the first
//! SAT/UNSAT verdict. Workers differ along four axes:
//!
//! * restart cadence (Luby base interval),
//! * VSIDS activity decay,
//! * saved-phase initialization (default phases vs. seeded random phases),
//! * random-branching frequency (seeded xorshift).
//!
//! Worker 0 is always the undiversified baseline, so a portfolio's search
//! space strictly contains the sequential solver's. Workers exchange short
//! learnt clauses (LBD ≤ [`PortfolioConfig::share_lbd_max`]) over `mpsc`
//! channels, importing at quiescent points (decision level zero, between
//! restarts); learnt clauses are consequences of the shared formula
//! regardless of assumptions, so sharing is sound even under Algorithm-1
//! freeze assumptions. The first worker with a verdict raises a shared
//! [`AtomicBool`] stop flag that the others honor at their next quiescent
//! point. Every worker runs under [`std::panic::catch_unwind`], so a
//! crashing worker only removes itself from the race; the solve fails
//! (with [`crate::StopCause::AllWorkersPanicked`]) only when no worker
//! survives.
//!
//! Verdicts are deterministic — every worker decides the same formula — but
//! *which* model (and which worker) wins can vary run-to-run with thread
//! scheduling. Callers needing bit-for-bit reproducibility use one thread,
//! which bypasses this module entirely.

use crate::lit::Lit;
use crate::solver::{ClauseExchange, SolveResult, Solver, StopCause};
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{Arc, Mutex};

/// Portfolio tuning knobs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PortfolioConfig {
    /// Number of workers; `1` means pure sequential solving.
    pub threads: usize,
    /// Learnt clauses with LBD at most this are broadcast to peers;
    /// `0` disables sharing.
    pub share_lbd_max: u32,
    /// Base seed for the per-worker diversification streams.
    pub seed: u64,
    /// Test-only fault injection: a threaded worker whose id bit is set in
    /// this mask panics instead of solving, exercising the panic-isolation
    /// path. Ignored by the sequential (`threads <= 1`) path. Leave at `0`.
    #[doc(hidden)]
    pub panic_inject_mask: u64,
}

impl Default for PortfolioConfig {
    fn default() -> PortfolioConfig {
        PortfolioConfig {
            threads: 1,
            share_lbd_max: 4,
            seed: 0x5EED,
            panic_inject_mask: 0,
        }
    }
}

/// Per-worker search counters for one portfolio solve.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct WorkerStats {
    /// Worker index (0 is the undiversified baseline).
    pub id: usize,
    /// Conflicts this worker hit before stopping.
    pub conflicts: u64,
    /// Decisions this worker made.
    pub decisions: u64,
    /// Restarts this worker performed.
    pub restarts: u64,
    /// Learnt clauses this worker broadcast to peers.
    pub exported: u64,
    /// Peer clauses this worker imported.
    pub imported: u64,
    /// This worker's own outcome — losing workers typically report
    /// [`SolveResult::Cancelled`]. `None` in aggregates that span
    /// multiple solve calls, and for workers that panicked.
    pub result: Option<SolveResult>,
    /// Whether this worker's thread panicked. The race continues with the
    /// survivors; the counters of a panicked worker read zero because its
    /// solver state was lost in the unwind.
    pub panicked: bool,
    /// The panic payload, when it carried a message.
    pub panic_message: Option<String>,
}

/// Outcome of a [`Portfolio::solve`] call.
#[derive(Clone, Debug)]
pub struct PortfolioVerdict {
    /// The verdict. [`SolveResult::Unknown`] means every surviving worker
    /// exhausted its budget or deadline (or every worker panicked — see
    /// [`PortfolioVerdict::cause`]); [`SolveResult::Cancelled`] means the
    /// external stop flag was raised before any verdict.
    pub result: SolveResult,
    /// Index of the worker whose verdict won (the lowest-id surviving
    /// worker when none did, `0` when every worker panicked).
    pub winner: usize,
    /// Why the solve stopped without a verdict; `Some` exactly when
    /// `result` is [`SolveResult::Unknown`].
    pub cause: Option<StopCause>,
    /// Per-worker counters, indexed by worker id.
    pub workers: Vec<WorkerStats>,
}

/// One worker's clause-sharing endpoint: broadcast on export, drain a
/// private inbox on import.
struct BusEndpoint {
    peers: Vec<Sender<Vec<Lit>>>,
    inbox: Receiver<Vec<Lit>>,
    share_lbd_max: u32,
}

/// Clauses longer than this are never shared even at low LBD; glue-level
/// LBD with many literals is rare and expensive to copy N ways.
const SHARE_MAX_LEN: usize = 30;

impl ClauseExchange for BusEndpoint {
    fn export(&mut self, lits: &[Lit], lbd: u32) -> bool {
        if lbd > self.share_lbd_max || lits.len() > SHARE_MAX_LEN {
            return false;
        }
        let mut shared = false;
        for peer in &self.peers {
            // A hung-up peer already finished; its loss is harmless.
            shared |= peer.send(lits.to_vec()).is_ok();
        }
        shared
    }

    fn import(&mut self) -> Vec<Vec<Lit>> {
        // try_recv stops on Empty or Disconnected alike; a hung-up peer
        // already finished and its remaining clauses are harmless to drop.
        let mut out = Vec::new();
        while let Ok(lits) = self.inbox.try_recv() {
            out.push(lits);
        }
        out
    }
}

/// A diversified parallel portfolio over clones of one [`Solver`].
///
/// # Examples
///
/// ```
/// use ams_sat::{Portfolio, PortfolioConfig, SolveResult, Solver};
///
/// let mut base = Solver::new();
/// let a = base.new_var().positive();
/// let b = base.new_var().positive();
/// base.add_clause(&[a, b]);
/// base.add_clause(&[!a, b]);
///
/// let portfolio = Portfolio::new(PortfolioConfig {
///     threads: 2,
///     ..PortfolioConfig::default()
/// });
/// let (winner, verdict) = portfolio.solve(base, &[], None);
/// assert_eq!(verdict.result, SolveResult::Sat);
/// let winner = winner.expect("at least one worker survived");
/// assert!(winner.lit_model(b));
/// assert_eq!(verdict.workers.len(), 2);
/// ```
#[derive(Clone, Debug, Default)]
pub struct Portfolio {
    config: PortfolioConfig,
}

impl Portfolio {
    /// Creates a portfolio with the given configuration.
    pub fn new(config: PortfolioConfig) -> Portfolio {
        Portfolio { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &PortfolioConfig {
        &self.config
    }

    /// Solves `base` under `assumptions` with `threads` diversified
    /// workers and returns the winning worker's solver (model, failed
    /// assumptions, and learnt clauses intact) together with the verdict.
    ///
    /// Workers run under [`std::panic::catch_unwind`]: a panicking worker
    /// is recorded in its [`WorkerStats`] (`panicked` + `panic_message`)
    /// and the race continues with the survivors. The returned solver is
    /// `None` only when *every* worker panicked — the verdict is then
    /// [`SolveResult::Unknown`] with [`StopCause::AllWorkersPanicked`].
    ///
    /// An optional external `stop` flag cancels the whole portfolio; the
    /// call then returns [`SolveResult::Cancelled`]. With `threads <= 1`
    /// the base solver runs sequentially on the calling thread —
    /// bit-for-bit identical to calling [`Solver::solve_with`] directly.
    pub fn solve(
        &self,
        base: Solver,
        assumptions: &[Lit],
        stop: Option<&Arc<AtomicBool>>,
    ) -> (Option<Solver>, PortfolioVerdict) {
        let threads = self.config.threads.max(1);
        if threads == 1 {
            return self.solve_sequential(base, assumptions, stop);
        }

        // Cloned workers share the base's proof sink (if any); a deletion
        // by one worker must not be honored against the interleaved log,
        // because the clause is still live inside its peers.
        if let Some(proof) = base.proof() {
            proof.set_log_deletions(false);
        }

        // Counters are cumulative per solver; subtract the base's so each
        // worker reports only this solve.
        let base_counters = base.stats();

        // Clause-sharing bus: one inbox per worker, every worker holds a
        // sender to every *other* worker's inbox.
        let (senders, inboxes): (Vec<_>, Vec<_>) =
            (0..threads).map(|_| std::sync::mpsc::channel()).unzip();
        let internal_stop = Arc::new(AtomicBool::new(false));
        let winner_slot: Arc<Mutex<Option<usize>>> = Arc::new(Mutex::new(None));

        // Workers 1..N search a perturbed clone; worker 0 keeps the
        // untouched base state.
        let mut solvers = Vec::with_capacity(threads);
        for id in (1..threads).rev() {
            let mut s = base.clone();
            diversify(&mut s, id, self.config.seed);
            solvers.push((id, s));
        }
        solvers.push((0, base));
        solvers.reverse();

        let share = self.config.share_lbd_max;
        let inject = self.config.panic_inject_mask;
        // Worker id → (result, surviving solver, panic message).
        type WorkerReturn = (usize, Option<SolveResult>, Option<Solver>, Option<String>);
        let mut finished: Vec<WorkerReturn> = std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(threads);
            for ((id, mut solver), inbox) in solvers.into_iter().zip(inboxes) {
                let peers: Vec<Sender<Vec<Lit>>> = senders
                    .iter()
                    .enumerate()
                    .filter(|&(j, _)| j != id)
                    .map(|(_, tx)| tx.clone())
                    .collect();
                let internal_stop = Arc::clone(&internal_stop);
                let winner_slot = Arc::clone(&winner_slot);
                handles.push((
                    id,
                    scope.spawn(move || {
                        // The unwind boundary: a panic anywhere in this
                        // worker (solver bug, injected fault) is contained
                        // here; its solver state is lost, the race goes on.
                        panic::catch_unwind(AssertUnwindSafe(move || {
                            if inject & (1u64 << (id as u32 & 63)) != 0 {
                                panic!("injected test panic in worker {id}");
                            }
                            if share > 0 {
                                solver.set_exchange(Some(Box::new(BusEndpoint {
                                    peers,
                                    inbox,
                                    share_lbd_max: share,
                                })));
                            }
                            solver.set_stop_flag(Some(Arc::clone(&internal_stop)));
                            let result = solver.solve_with(assumptions);
                            if matches!(result, SolveResult::Sat | SolveResult::Unsat) {
                                let mut slot = winner_slot
                                    .lock()
                                    .unwrap_or_else(|poisoned| poisoned.into_inner());
                                if slot.is_none() {
                                    *slot = Some(id);
                                    internal_stop.store(true, Ordering::Relaxed);
                                }
                            }
                            solver.set_exchange(None);
                            solver.set_stop_flag(None);
                            (result, solver)
                        }))
                    }),
                ));
            }
            drop(senders);

            // Forward an external cancellation to the workers while they
            // run; exit as soon as the internal flag rises for any reason.
            if let Some(external) = stop {
                while !internal_stop.load(Ordering::Relaxed) {
                    if external.load(Ordering::Relaxed) {
                        internal_stop.store(true, Ordering::Relaxed);
                        break;
                    }
                    if handles.iter().all(|(_, h)| h.is_finished()) {
                        break;
                    }
                    std::thread::sleep(std::time::Duration::from_micros(200));
                }
            }

            handles
                .into_iter()
                .map(|(id, h)| match h.join() {
                    Ok(Ok((result, solver))) => (id, Some(result), Some(solver), None),
                    // Caught by catch_unwind, or (defensively) a panic that
                    // escaped it — either way the worker is dead.
                    Ok(Err(payload)) | Err(payload) => {
                        (id, None, None, Some(panic_text(payload.as_ref())))
                    }
                })
                .collect()
        });
        finished.sort_by_key(|&(id, ..)| id);

        let externally_cancelled = stop.is_some_and(|s| s.load(Ordering::Relaxed));
        let winner = winner_slot
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .take();
        let workers: Vec<WorkerStats> = finished
            .iter()
            .map(|(id, result, s, panic_message)| match s {
                Some(s) => {
                    let st = s.stats();
                    WorkerStats {
                        id: *id,
                        conflicts: st.conflicts - base_counters.conflicts,
                        decisions: st.decisions - base_counters.decisions,
                        restarts: st.restarts - base_counters.restarts,
                        exported: st.shared_exported - base_counters.shared_exported,
                        imported: st.shared_imported - base_counters.shared_imported,
                        result: *result,
                        panicked: false,
                        panic_message: None,
                    }
                }
                None => WorkerStats {
                    id: *id,
                    panicked: true,
                    panic_message: panic_message.clone(),
                    ..WorkerStats::default()
                },
            })
            .collect();

        let first_survivor = finished.iter().find(|f| f.2.is_some()).map(|f| f.0);
        let (winner_id, result, cause) = match (winner, first_survivor) {
            (Some(id), _) => (id, finished[id].1.expect("winner produced a verdict"), None),
            // Every worker panicked: no solver state survives to report.
            (None, None) => (0, SolveResult::Unknown, Some(StopCause::AllWorkersPanicked)),
            (None, Some(fs)) if externally_cancelled => (fs, SolveResult::Cancelled, None),
            // No verdict, no cancellation: every surviving worker ran out
            // of budget or deadline. Report the broadest cause.
            (None, Some(fs)) => {
                let cause = finished
                    .iter()
                    .filter_map(|f| f.2.as_ref().and_then(|s| s.stop_cause()))
                    .max_by_key(|&c| cause_priority(c));
                (fs, SolveResult::Unknown, cause)
            }
        };
        let solver = finished
            .into_iter()
            .find(|&(id, ..)| id == winner_id)
            .and_then(|(_, _, s, _)| s);
        (
            solver,
            PortfolioVerdict {
                result,
                winner: winner_id,
                cause,
                workers,
            },
        )
    }

    fn solve_sequential(
        &self,
        mut base: Solver,
        assumptions: &[Lit],
        stop: Option<&Arc<AtomicBool>>,
    ) -> (Option<Solver>, PortfolioVerdict) {
        base.set_stop_flag(stop.cloned());
        let before = base.stats();
        let result = base.solve_with(assumptions);
        base.set_stop_flag(None);
        let after = base.stats();
        let cause = base.stop_cause();
        let workers = vec![WorkerStats {
            id: 0,
            conflicts: after.conflicts - before.conflicts,
            decisions: after.decisions - before.decisions,
            restarts: after.restarts - before.restarts,
            exported: 0,
            imported: 0,
            result: Some(result),
            panicked: false,
            panic_message: None,
        }];
        (
            Some(base),
            PortfolioVerdict {
                result,
                winner: 0,
                cause,
                workers,
            },
        )
    }
}

/// Extracts a human-readable message from a panic payload; `&str` and
/// `String` payloads (the `panic!` macro's output) are passed through.
fn panic_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Ranks stop causes for aggregation across workers: a deadline expiry is
/// the most actionable signal, budget exhaustion next.
fn cause_priority(c: StopCause) -> u8 {
    match c {
        StopCause::Deadline => 3,
        StopCause::ConflictBudget => 2,
        StopCause::PropagationBudget => 1,
        StopCause::AllWorkersPanicked => 0,
    }
}

/// Applies worker `id`'s diversification profile. Worker 0 is never
/// diversified; the axes cycle so any thread count gets distinct
/// configurations.
fn diversify(solver: &mut Solver, id: usize, seed: u64) {
    debug_assert!(id >= 1);
    let wseed = seed
        .wrapping_mul(0x9E3779B97F4A7C15)
        .wrapping_add(id as u64);
    solver.set_restart_base(match id % 4 {
        1 => 64,
        2 => 512,
        3 => 128,
        _ => 1024,
    });
    solver.set_var_decay(match id % 3 {
        1 => 0.90,
        2 => 0.97,
        _ => 0.85,
    });
    if id % 2 == 1 {
        solver.randomize_phases(wseed);
    } else {
        solver.set_default_polarity(id % 4 == 2);
    }
    // Mild random branching on every diversified worker, strongest on the
    // ones that keep default phases.
    let freq = if id % 2 == 1 { 0.01 } else { 0.03 };
    solver.set_random_branch(wseed ^ 0xA5A5_A5A5, freq);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pigeonhole(n: usize) -> (Solver, Vec<Vec<Lit>>) {
        let mut s = Solver::new();
        let x: Vec<Vec<Lit>> = (0..n)
            .map(|_| (0..n - 1).map(|_| s.new_var().positive()).collect())
            .collect();
        for row in &x {
            s.add_clause(row);
        }
        for a in 0..n {
            for b in (a + 1)..n {
                for (&la, &lb) in x[a].iter().zip(&x[b]) {
                    s.add_clause(&[!la, !lb]);
                }
            }
        }
        (s, x)
    }

    #[test]
    fn portfolio_agrees_on_unsat() {
        let (base, _) = pigeonhole(6);
        for threads in [1, 2, 4] {
            let p = Portfolio::new(PortfolioConfig {
                threads,
                ..PortfolioConfig::default()
            });
            let (_, verdict) = p.solve(base.clone(), &[], None);
            assert_eq!(verdict.result, SolveResult::Unsat, "threads={threads}");
            assert_eq!(verdict.workers.len(), threads);
        }
    }

    #[test]
    fn portfolio_agrees_on_sat_with_assumptions() {
        // Satisfiable chain; assumption forces the tail.
        let mut s = Solver::new();
        let v: Vec<Lit> = (0..40).map(|_| s.new_var().positive()).collect();
        for w in v.windows(2) {
            s.add_clause(&[!w[0], w[1]]);
        }
        for threads in [1, 2, 4] {
            let p = Portfolio::new(PortfolioConfig {
                threads,
                ..PortfolioConfig::default()
            });
            let (winner, verdict) = p.solve(s.clone(), &[v[0]], None);
            assert_eq!(verdict.result, SolveResult::Sat, "threads={threads}");
            let winner = winner.expect("a worker survived");
            assert!(winner.lit_model(v[39]), "implication chain must hold");
        }
    }

    #[test]
    fn failed_assumptions_survive_portfolio() {
        let mut s = Solver::new();
        let a = s.new_var().positive();
        let b = s.new_var().positive();
        s.add_clause(&[a, b]);
        let p = Portfolio::new(PortfolioConfig {
            threads: 3,
            ..PortfolioConfig::default()
        });
        let (winner, verdict) = p.solve(s, &[!a, !b], None);
        assert_eq!(verdict.result, SolveResult::Unsat);
        let winner = winner.expect("a worker survived");
        assert!(!winner.failed_assumptions().is_empty());
    }

    #[test]
    fn injected_panic_is_survived_by_the_rest() {
        let (base, _) = pigeonhole(6);
        let p = Portfolio::new(PortfolioConfig {
            threads: 3,
            panic_inject_mask: 0b010, // kill worker 1
            ..PortfolioConfig::default()
        });
        let (winner, verdict) = p.solve(base, &[], None);
        assert_eq!(verdict.result, SolveResult::Unsat);
        assert!(winner.is_some(), "survivors must still produce a solver");
        assert!(verdict.workers[1].panicked);
        assert!(verdict.workers[1]
            .panic_message
            .as_deref()
            .is_some_and(|m| m.contains("injected test panic")));
        assert_eq!(verdict.workers[1].result, None);
        assert!(!verdict.workers[0].panicked);
        assert!(!verdict.workers[2].panicked);
    }

    #[test]
    fn all_workers_panicking_reports_the_cause() {
        let (base, _) = pigeonhole(6);
        let p = Portfolio::new(PortfolioConfig {
            threads: 3,
            panic_inject_mask: 0b111,
            ..PortfolioConfig::default()
        });
        let (winner, verdict) = p.solve(base, &[], None);
        assert!(winner.is_none());
        assert_eq!(verdict.result, SolveResult::Unknown);
        assert_eq!(verdict.cause, Some(StopCause::AllWorkersPanicked));
        assert!(verdict.workers.iter().all(|w| w.panicked));
    }

    #[test]
    fn exhausted_budgets_surface_a_cause() {
        let (mut base, _) = pigeonhole(9);
        base.set_conflict_budget(Some(10));
        for threads in [1, 2] {
            let p = Portfolio::new(PortfolioConfig {
                threads,
                ..PortfolioConfig::default()
            });
            let (winner, verdict) = p.solve(base.clone(), &[], None);
            assert_eq!(verdict.result, SolveResult::Unknown, "threads={threads}");
            assert_eq!(
                verdict.cause,
                Some(StopCause::ConflictBudget),
                "threads={threads}"
            );
            assert!(winner.is_some());
        }
    }

    #[test]
    fn external_stop_cancels_all_workers() {
        let (base, _) = pigeonhole(10); // hard enough to outlive the flag
        let stop = Arc::new(AtomicBool::new(false));
        let p = Portfolio::new(PortfolioConfig {
            threads: 4,
            ..PortfolioConfig::default()
        });
        let flag = Arc::clone(&stop);
        let raiser = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(30));
            flag.store(true, Ordering::Relaxed);
        });
        let t0 = std::time::Instant::now();
        let (_, verdict) = p.solve(base, &[], Some(&stop));
        raiser.join().expect("raiser join");
        assert_eq!(verdict.result, SolveResult::Cancelled);
        assert!(
            t0.elapsed() < std::time::Duration::from_secs(20),
            "cancellation must not wait for the full search"
        );
    }
}

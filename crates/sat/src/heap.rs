//! Indexed binary max-heap ordering variables by activity (VSIDS).

use crate::lit::Var;

/// Max-heap over variables keyed by an external activity array.
///
/// Supports `O(log n)` insert/remove-max and, crucially for VSIDS,
/// `O(log n)` priority increase of an arbitrary contained variable.
#[derive(Debug, Default, Clone)]
pub struct VarHeap {
    heap: Vec<Var>,
    /// `positions[v] == usize::MAX` when `v` is not in the heap.
    positions: Vec<usize>,
}

const ABSENT: usize = usize::MAX;

impl VarHeap {
    /// Creates an empty heap.
    pub fn new() -> VarHeap {
        VarHeap::default()
    }

    /// Ensures the position table covers variables up to `n - 1`.
    pub fn grow_to(&mut self, n: usize) {
        if self.positions.len() < n {
            self.positions.resize(n, ABSENT);
        }
    }

    /// Whether the heap is empty.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Number of variables currently in the heap.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether `v` is currently in the heap.
    #[inline]
    pub fn contains(&self, v: Var) -> bool {
        self.positions.get(v.index()).is_some_and(|&p| p != ABSENT)
    }

    /// The variable stored at heap slot `i` (arbitrary order beyond the
    /// root); used for random-branching diversification.
    #[inline]
    pub fn get(&self, i: usize) -> Option<Var> {
        self.heap.get(i).copied()
    }

    /// Inserts `v` if absent.
    pub fn insert(&mut self, v: Var, activity: &[f64]) {
        self.grow_to(v.index() + 1);
        if self.contains(v) {
            return;
        }
        let pos = self.heap.len();
        self.heap.push(v);
        self.positions[v.index()] = pos;
        self.sift_up(pos, activity);
    }

    /// Restores heap order after `v`'s activity increased.
    pub fn increased(&mut self, v: Var, activity: &[f64]) {
        if let Some(&pos) = self.positions.get(v.index()) {
            if pos != ABSENT {
                self.sift_up(pos, activity);
            }
        }
    }

    /// Removes and returns the maximum-activity variable.
    pub fn pop_max(&mut self, activity: &[f64]) -> Option<Var> {
        let top = *self.heap.first()?;
        self.positions[top.index()] = ABSENT;
        let last = self.heap.pop().expect("heap non-empty");
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.positions[last.index()] = 0;
            self.sift_down(0, activity);
        }
        Some(top)
    }

    fn sift_up(&mut self, mut pos: usize, activity: &[f64]) {
        let v = self.heap[pos];
        let act = activity[v.index()];
        while pos > 0 {
            let parent = (pos - 1) / 2;
            let pv = self.heap[parent];
            if activity[pv.index()] >= act {
                break;
            }
            self.heap[pos] = pv;
            self.positions[pv.index()] = pos;
            pos = parent;
        }
        self.heap[pos] = v;
        self.positions[v.index()] = pos;
    }

    fn sift_down(&mut self, mut pos: usize, activity: &[f64]) {
        let v = self.heap[pos];
        let act = activity[v.index()];
        loop {
            let left = 2 * pos + 1;
            if left >= self.heap.len() {
                break;
            }
            let right = left + 1;
            let best = if right < self.heap.len()
                && activity[self.heap[right].index()] > activity[self.heap[left].index()]
            {
                right
            } else {
                left
            };
            let bv = self.heap[best];
            if activity[bv.index()] <= act {
                break;
            }
            self.heap[pos] = bv;
            self.positions[bv.index()] = pos;
            pos = best;
        }
        self.heap[pos] = v;
        self.positions[v.index()] = pos;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn var(i: usize) -> Var {
        Var::from_index(i)
    }

    #[test]
    fn pops_in_activity_order() {
        let activity = vec![1.0, 5.0, 3.0, 4.0, 2.0];
        let mut heap = VarHeap::new();
        for i in 0..5 {
            heap.insert(var(i), &activity);
        }
        let order: Vec<usize> = std::iter::from_fn(|| heap.pop_max(&activity))
            .map(|v| v.index())
            .collect();
        assert_eq!(order, vec![1, 3, 2, 4, 0]);
        assert!(heap.is_empty());
    }

    #[test]
    fn insert_is_idempotent() {
        let activity = vec![1.0, 2.0];
        let mut heap = VarHeap::new();
        heap.insert(var(0), &activity);
        heap.insert(var(0), &activity);
        assert_eq!(heap.len(), 1);
    }

    #[test]
    fn increased_reorders() {
        let mut activity = vec![1.0, 2.0, 3.0];
        let mut heap = VarHeap::new();
        for i in 0..3 {
            heap.insert(var(i), &activity);
        }
        activity[0] = 10.0;
        heap.increased(var(0), &activity);
        assert_eq!(heap.pop_max(&activity), Some(var(0)));
    }
}

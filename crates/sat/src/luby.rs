//! The Luby restart sequence.

/// Returns the `i`-th element (1-based) of the Luby sequence:
/// 1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8, ...
///
/// Restart limits are `base * luby(i)` conflicts, the universally good
/// strategy for CDCL restarts.
pub fn luby(i: u64) -> u64 {
    debug_assert!(i >= 1);
    // Find the finite subsequence that contains index x (0-based), then the
    // index inside that subsequence (Knuth's formulation).
    let mut x = i - 1;
    let mut size: u64 = 1;
    let mut seq: u32 = 0;
    while size < x + 1 {
        seq += 1;
        size = 2 * size + 1;
    }
    while size - 1 != x {
        size = (size - 1) / 2;
        seq -= 1;
        x %= size;
    }
    1u64 << seq
}

#[cfg(test)]
mod tests {
    use super::luby;

    #[test]
    fn prefix_matches_known_sequence() {
        let expected = [1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8, 1];
        let got: Vec<u64> = (1..=expected.len() as u64).map(luby).collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn values_are_powers_of_two() {
        for i in 1..200 {
            assert!(luby(i).is_power_of_two());
        }
    }
}

//! # ams-netlist
//!
//! The region-based FinFET AMS circuit model of the DATE 2022 placement
//! paper this workspace reproduces: primitive cells with pins, signal nets,
//! placement regions, power groups, and the four AMS constraint families
//! (hierarchical symmetry, array/common-centroid, cluster, extension).
//!
//! The [`benchmarks`] module generates the paper's two evaluation circuits
//! (a 16-to-1 multiplexing buffer and a four-stage VCO) as synthetic
//! netlists matching the published statistics (Table II), plus parametric
//! random designs for scaling studies and property-based testing.
//!
//! ## Example
//!
//! ```
//! use ams_netlist::benchmarks;
//!
//! let buf = benchmarks::buf();
//! assert_eq!(buf.regions().len(), 1);
//! assert_eq!(buf.cells().len(), 42);
//! assert_eq!(buf.nets().len(), 66);
//! ```

mod constraint;
mod design;
mod elements;
mod geom;
mod ids;

pub mod benchmarks;
pub mod diag;
pub mod json;
pub mod rng;

pub use constraint::{
    ArrayConstraint, ArrayPattern, ClusterConstraint, ConstraintSet, ExtensionConstraint,
    ExtensionTarget, SymmetryAxis, SymmetryGroup, SymmetryGroupIdx, SymmetryPair,
};
pub use design::{Design, DesignBuilder, ValidateDesignError};
pub use diag::{DiagCode, Diagnostic, LintReport, Severity};
pub use elements::{Cell, CellKind, Net, Pin, PowerGroup, Region};
pub use geom::{Pitch, Point, Rect};
pub use ids::{CellId, NetId, PowerGroupId, RegionId};

//! The four AMS placement constraint families of the paper (Section I):
//! hierarchical symmetry, array (with optional common-centroid pattern),
//! cluster, and extension constraints.

use crate::ids::{CellId, RegionId};

/// Orientation of a symmetry axis.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SymmetryAxis {
    /// Mirror across a vertical line (x-symmetry, Eq. 8 of the paper).
    Vertical,
    /// Mirror across a horizontal line.
    Horizontal,
}

/// One symmetry relation inside a group: a mirrored pair, or a
/// self-symmetric cell straddling the axis.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SymmetryPair {
    /// The first cell.
    pub a: CellId,
    /// The mirror partner; `None` marks `a` as self-symmetric.
    pub b: Option<CellId>,
}

impl SymmetryPair {
    /// A mirrored pair.
    pub fn mirrored(a: CellId, b: CellId) -> SymmetryPair {
        SymmetryPair { a, b: Some(b) }
    }

    /// A self-symmetric cell.
    pub fn self_symmetric(a: CellId) -> SymmetryPair {
        SymmetryPair { a, b: None }
    }
}

/// Index of a symmetry group inside a [`crate::ConstraintSet`].
pub type SymmetryGroupIdx = usize;

/// A (possibly hierarchical) symmetry group.
///
/// Hierarchy is expressed by `share_axis_with`: a group referencing another
/// group shares that group's axis variable, so a cell can be constrained
/// with respect to multiple joint axes simultaneously — the paper's
/// *hierarchical symmetry* (Fig. 2a).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SymmetryGroup {
    /// Constraint name for diagnostics.
    pub name: String,
    /// Axis orientation.
    pub axis: SymmetryAxis,
    /// The symmetry relations of this group.
    pub pairs: Vec<SymmetryPair>,
    /// Optional parent group whose axis this group reuses.
    pub share_axis_with: Option<SymmetryGroupIdx>,
}

/// Layout pattern imposed on an array constraint.
///
/// The paper (Fig. 2b) names interdigitation, common-centroid, and
/// central-symmetric as the optional patterns of an array constraint; all
/// three are supported, plus plain dense packing.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub enum ArrayPattern {
    /// Dense rectangular packing only (Eq. 9).
    #[default]
    Dense,
    /// Common-centroid: two disjoint sub-groups share a centroid (Eq. 10).
    CommonCentroid {
        /// First device group (e.g. the "A" devices).
        group_a: Vec<CellId>,
        /// Second device group.
        group_b: Vec<CellId>,
    },
    /// Interdigitation: the device groups alternate along each row
    /// (`ABAB…`), equalizing gradients for matched devices.
    Interdigitated {
        /// Equal-size device groups, interleaved in the given order.
        groups: Vec<Vec<CellId>>,
    },
    /// Central symmetry: each pair of cells sits point-symmetric about the
    /// array center.
    CentralSymmetric {
        /// The mirrored pairs.
        pairs: Vec<(CellId, CellId)>,
    },
}

/// An array constraint: cells packed densely into a rectangle, optionally
/// with a matching pattern (Fig. 2b).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ArrayConstraint {
    /// Constraint name for diagnostics.
    pub name: String,
    /// Cells in the array; must share dimensions and a region.
    pub cells: Vec<CellId>,
    /// Matching pattern.
    pub pattern: ArrayPattern,
}

/// A cluster constraint: cells pulled together by a weighted virtual net
/// (Fig. 2c). May span regions.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ClusterConstraint {
    /// Constraint name for diagnostics.
    pub name: String,
    /// Clustered cells.
    pub cells: Vec<CellId>,
    /// Weight of the synthesized virtual net.
    pub weight: u32,
}

/// Target of an extension constraint.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ExtensionTarget {
    /// Reserve space around a single cell.
    Cell(CellId),
    /// Reserve space around a whole region.
    Region(RegionId),
    /// Reserve space around the bounding box of an array constraint,
    /// identified by its index in the constraint set.
    Array(usize),
}

/// An extension constraint: reserved space around the target, later filled
/// with dummy cells (Fig. 2d); reduces electromigration and layout-dependent
/// effects.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ExtensionConstraint {
    /// What the margin applies to.
    pub target: ExtensionTarget,
    /// Reserved space to the left (`D^L`), in grid units.
    pub left: u32,
    /// Reserved space to the right (`D^R`).
    pub right: u32,
    /// Reserved space below.
    pub bottom: u32,
    /// Reserved space above.
    pub top: u32,
}

/// All placement constraints of a design.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct ConstraintSet {
    /// Hierarchical symmetry groups.
    pub symmetry: Vec<SymmetryGroup>,
    /// Array constraints.
    pub arrays: Vec<ArrayConstraint>,
    /// Cluster constraints.
    pub clusters: Vec<ClusterConstraint>,
    /// Extension constraints.
    pub extensions: Vec<ExtensionConstraint>,
}

impl ConstraintSet {
    /// Whether no constraints are present.
    pub fn is_empty(&self) -> bool {
        self.symmetry.is_empty()
            && self.arrays.is_empty()
            && self.clusters.is_empty()
            && self.extensions.is_empty()
    }

    /// Total number of constraints across the four families.
    pub fn len(&self) -> usize {
        self.symmetry.len() + self.arrays.len() + self.clusters.len() + self.extensions.len()
    }

    /// A copy with every constraint family removed — the paper's
    /// "w/o Cstr." evaluation arm.
    pub fn cleared(&self) -> ConstraintSet {
        ConstraintSet::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pair_constructors() {
        let a = CellId::from_index(0);
        let b = CellId::from_index(1);
        assert_eq!(SymmetryPair::mirrored(a, b).b, Some(b));
        assert_eq!(SymmetryPair::self_symmetric(a).b, None);
    }

    #[test]
    fn empty_set() {
        let cs = ConstraintSet::default();
        assert!(cs.is_empty());
        assert_eq!(cs.len(), 0);
    }

    #[test]
    fn cleared_removes_everything() {
        let cs = ConstraintSet {
            clusters: vec![ClusterConstraint {
                name: "cl".into(),
                cells: vec![CellId::from_index(0)],
                weight: 4,
            }],
            ..Default::default()
        };
        assert!(!cs.is_empty());
        assert!(cs.cleared().is_empty());
    }
}

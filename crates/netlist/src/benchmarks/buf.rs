//! The 16-to-1 multiplexing buffer (BUF) benchmark.
//!
//! A full-custom design that selects between 16 monitored signals using a
//! 4-bit control and drives a large load through an output buffer
//! (Fig. 6a of the paper). Synthesized structure:
//!
//! * 16 input receivers (4 of them differential, for the
//!   performance-critical lanes),
//! * a binary 2:1-mux tree of 8 + 4 + 2 + 1 primitives (stages 1–4 of
//!   Table IV),
//! * 4 select-line driver pairs (inverter + true-phase buffer),
//! * a 3-stage tapered output buffer (the OUT row of Table IV),
//!
//! annotated with the hierarchical symmetry constraints the paper applies:
//! every stage is mirrored about one shared vertical axis.

use crate::design::{Design, DesignBuilder};
use crate::ids::NetId;
use crate::{SymmetryAxis, SymmetryGroup, SymmetryPair};

/// Number of mux-tree stages (16-to-1 needs four 2:1 levels).
pub(crate) const STAGES: usize = 4;

/// Generates the BUF benchmark (1 region, 42 cells, 66 nets).
pub fn buf() -> Design {
    let mut b = DesignBuilder::new("buf");
    let core = b.add_region("core", 0.65);
    let vdd = b.add_power_group("VDD");

    // ---- nets --------------------------------------------------------
    // Primary inputs (external: driven from outside the block).
    let ext_in: Vec<NetId> = (0..16).map(|i| b.add_net(format!("in{i}"), 1)).collect();
    // Receiver outputs: lanes 0..3 are differential (p and n phases).
    let rp: Vec<NetId> = (0..4).map(|i| b.add_net(format!("r{i}p"), 2)).collect();
    let rn: Vec<NetId> = (0..4).map(|i| b.add_net(format!("r{i}n"), 2)).collect();
    let rs: Vec<NetId> = (4..16).map(|i| b.add_net(format!("r{i}"), 1)).collect();
    // Mux-tree stage outputs.
    let t1: Vec<NetId> = (0..8).map(|i| b.add_net(format!("t1_{i}"), 1)).collect();
    let t2: Vec<NetId> = (0..4).map(|i| b.add_net(format!("t2_{i}"), 1)).collect();
    let t3: Vec<NetId> = (0..2).map(|i| b.add_net(format!("t3_{i}"), 2)).collect();
    let t4 = b.add_net("t4", 2);
    // Select distribution.
    let sel: Vec<NetId> = (0..4).map(|i| b.add_net(format!("sel{i}"), 1)).collect();
    let sb: Vec<NetId> = (0..4).map(|i| b.add_net(format!("sb{i}"), 1)).collect();
    let ss: Vec<NetId> = (0..4).map(|i| b.add_net(format!("s{i}"), 1)).collect();
    // Output buffer chain.
    let b1 = b.add_net("b1", 2);
    let b2 = b.add_net("b2", 2);
    let out = b.add_net("out", 2);

    // ---- cells -------------------------------------------------------
    // Differential receivers for the four critical lanes.
    let mut drcv = Vec::new();
    for i in 0..4 {
        let c = b.add_cell(format!("drcv{i}"), core, 14, 2, vdd);
        b.add_pin(c, "in", Some(ext_in[i]), 0, 1)
            .add_pin(c, "outp", Some(rp[i]), 13, 1)
            .add_pin(c, "outn", Some(rn[i]), 13, 0);
        drcv.push(c);
    }
    // Single-ended receivers for the remaining twelve.
    let mut rcv = Vec::new();
    for i in 0..12 {
        let c = b.add_cell(format!("rcv{}", i + 4), core, 10, 2, vdd);
        b.add_pin(c, "in", Some(ext_in[i + 4]), 0, 1)
            .add_pin(c, "out", Some(rs[i]), 9, 1);
        rcv.push(c);
    }

    // Mux tree. Stage s has 2^(3-s) nodes; node j of stage s selects between
    // the outputs j*2 and j*2+1 of the previous stage using select bit s.
    let stage_in: Vec<Vec<NetId>> = vec![
        // Stage-1 inputs: receiver outputs (p phases for diff lanes).
        rp.iter().chain(rs.iter()).copied().collect(),
        t1.clone(),
        t2.clone(),
        t3.clone(),
    ];
    let stage_out: Vec<Vec<NetId>> = vec![t1.clone(), t2.clone(), t3.clone(), vec![t4]];
    let mut mux_cells: Vec<Vec<crate::CellId>> = Vec::new();
    for s in 0..STAGES {
        let nodes = 8 >> s;
        let mut row = Vec::new();
        for j in 0..nodes {
            let c = b.add_cell(format!("m{}_{j}", s + 1), core, 22, 2, vdd);
            b.add_pin(c, "a", Some(stage_in[s][2 * j]), 0, 1)
                .add_pin(c, "b", Some(stage_in[s][2 * j + 1]), 0, 0)
                .add_pin(c, "s", Some(ss[s]), 9, 1)
                .add_pin(c, "sb", Some(sb[s]), 12, 1)
                .add_pin(c, "z", Some(stage_out[s][j]), 21, 1);
            row.push(c);
        }
        mux_cells.push(row);
    }
    // Complement phases of the differential lanes terminate on the first two
    // stage-1 muxes (their primitives have true/complement input pairs).
    b.add_pin(mux_cells[0][0], "ab", Some(rn[0]), 1, 1)
        .add_pin(mux_cells[0][0], "bb", Some(rn[1]), 1, 0)
        .add_pin(mux_cells[0][1], "ab", Some(rn[2]), 1, 1)
        .add_pin(mux_cells[0][1], "bb", Some(rn[3]), 1, 0);

    // Select drivers: inverter generates the complement, buffer restores the
    // true phase.
    let mut sel_inv = Vec::new();
    let mut sel_buf = Vec::new();
    for k in 0..4 {
        let i = b.add_cell(format!("selinv{k}"), core, 10, 2, vdd);
        b.add_pin(i, "in", Some(sel[k]), 0, 1)
            .add_pin(i, "out", Some(sb[k]), 9, 1);
        sel_inv.push(i);
        let u = b.add_cell(format!("selbuf{k}"), core, 10, 2, vdd);
        b.add_pin(u, "in", Some(sb[k]), 0, 1)
            .add_pin(u, "out", Some(ss[k]), 9, 1);
        sel_buf.push(u);
    }

    // Tapered output buffer. Widths share parity with the other
    // self-symmetric spine cells (`2x + w = 2·x_sym` constrains axis parity).
    let ob1 = b.add_cell("ob1", core, 10, 2, vdd);
    b.add_pin(ob1, "in", Some(t4), 0, 1)
        .add_pin(ob1, "out", Some(b1), 9, 1);
    let ob2 = b.add_cell("ob2", core, 22, 2, vdd);
    b.add_pin(ob2, "in", Some(b1), 0, 1)
        .add_pin(ob2, "out", Some(b2), 21, 1);
    let ob3 = b.add_cell("ob3", core, 34, 2, vdd);
    b.add_pin(ob3, "in", Some(b2), 0, 1)
        .add_pin(ob3, "out", Some(out), 33, 1);

    // External nets leave the block: tie them to boundary terminator cells?
    // No — they simply also connect outside; model that by marking them
    // through a second pin on the consuming cell is wrong. Instead the
    // builder requires degree >= 2, so external nets get an explicit port
    // pin on their single user: see `add_port_pins` below.
    add_port_pins(&mut b, &ext_in, &sel, out);

    // ---- hierarchical symmetry constraints ----------------------------
    // One shared vertical axis; every stage forms a child group of g0.
    let g0 = b.add_symmetry(SymmetryGroup {
        name: "spine".into(),
        axis: SymmetryAxis::Vertical,
        pairs: vec![
            SymmetryPair::self_symmetric(mux_cells[3][0]),
            SymmetryPair::self_symmetric(ob1),
            SymmetryPair::self_symmetric(ob2),
            SymmetryPair::self_symmetric(ob3),
        ],
        share_axis_with: None,
    });
    b.add_symmetry(SymmetryGroup {
        name: "stage3".into(),
        axis: SymmetryAxis::Vertical,
        pairs: vec![SymmetryPair::mirrored(mux_cells[2][0], mux_cells[2][1])],
        share_axis_with: Some(g0),
    });
    b.add_symmetry(SymmetryGroup {
        name: "stage2".into(),
        axis: SymmetryAxis::Vertical,
        pairs: vec![
            SymmetryPair::mirrored(mux_cells[1][0], mux_cells[1][3]),
            SymmetryPair::mirrored(mux_cells[1][1], mux_cells[1][2]),
        ],
        share_axis_with: Some(g0),
    });
    b.add_symmetry(SymmetryGroup {
        name: "stage1".into(),
        axis: SymmetryAxis::Vertical,
        pairs: (0..4)
            .map(|j| SymmetryPair::mirrored(mux_cells[0][j], mux_cells[0][7 - j]))
            .collect(),
        share_axis_with: Some(g0),
    });
    b.add_symmetry(SymmetryGroup {
        name: "receivers".into(),
        axis: SymmetryAxis::Vertical,
        pairs: vec![
            SymmetryPair::mirrored(drcv[0], drcv[3]),
            SymmetryPair::mirrored(drcv[1], drcv[2]),
            SymmetryPair::mirrored(rcv[0], rcv[11]),
            SymmetryPair::mirrored(rcv[1], rcv[10]),
            SymmetryPair::mirrored(rcv[2], rcv[9]),
            SymmetryPair::mirrored(rcv[3], rcv[8]),
            SymmetryPair::mirrored(rcv[4], rcv[7]),
            SymmetryPair::mirrored(rcv[5], rcv[6]),
        ],
        share_axis_with: Some(g0),
    });
    b.add_symmetry(SymmetryGroup {
        name: "selects".into(),
        axis: SymmetryAxis::Vertical,
        pairs: vec![
            SymmetryPair::mirrored(sel_inv[0], sel_inv[3]),
            SymmetryPair::mirrored(sel_inv[1], sel_inv[2]),
            SymmetryPair::mirrored(sel_buf[0], sel_buf[3]),
            SymmetryPair::mirrored(sel_buf[1], sel_buf[2]),
        ],
        share_axis_with: Some(g0),
    });

    b.build().expect("BUF generator produces a valid design")
}

/// External nets (block ports) connect one internal pin plus the boundary.
/// We model the boundary connection as an extra pin on the same consumer so
/// the degree-2 netlist invariant holds; routing treats it as pin access.
fn add_port_pins(b: &mut DesignBuilder, ext_in: &[NetId], sel: &[NetId], out: NetId) {
    // The receivers' ESD/termination side taps the pad net a second time.
    for (i, &net) in ext_in.iter().enumerate() {
        let cell = crate::CellId::from_index(i);
        b.add_pin(cell, "pad", Some(net), 1, 0);
    }
    // Select inputs terminate on their inverters (cells come after receivers
    // and the 15 mux primitives: 16 + 15 = 31, inverters interleave with
    // buffers).
    for (k, &net) in sel.iter().enumerate() {
        let inv = crate::CellId::from_index(31 + 2 * k);
        b.add_pin(inv, "pad", Some(net), 1, 0);
    }
    // The output pad taps ob3.
    let ob3 = crate::CellId::from_index(41);
    b.add_pin(ob3, "pad", Some(out), 30, 0);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_table2_statistics() {
        let d = buf();
        assert_eq!(d.regions().len(), 1, "Table II: 1 region");
        assert_eq!(d.cells().len(), 42, "Table II: 42 cells");
        assert_eq!(d.nets().len(), 66, "Table II: 66 nets");
    }

    #[test]
    fn every_net_is_connected() {
        let d = buf();
        for n in d.net_ids() {
            assert!(d.net_degree(n) >= 2, "net {} underconnected", d.net(n).name);
        }
    }

    #[test]
    fn has_hierarchical_symmetry() {
        let d = buf();
        let groups = &d.constraints().symmetry;
        assert!(groups.len() >= 5);
        // All child groups share the spine axis.
        assert!(groups[1..].iter().all(|g| g.share_axis_with == Some(0)));
    }

    #[test]
    fn port_pins_land_on_named_cells() {
        let d = buf();
        // sel0's pad pin must be on selinv0.
        let selnet = d
            .net_ids()
            .find(|&n| d.net(n).name == "sel0")
            .expect("sel0 exists");
        let conns = d.net_connections(selnet);
        assert!(conns.iter().any(|&(c, _)| d.cell(c).name == "selinv0"));
    }

    #[test]
    fn single_power_group_and_uniform_height() {
        let d = buf();
        assert_eq!(d.power_groups().len(), 1);
        assert!(d.cells().iter().all(|c| c.height == 2));
    }
}

//! Parametric random design generation for scaling studies and
//! property-based testing.

use crate::design::{Design, DesignBuilder};
use crate::ids::{CellId, NetId};
use crate::rng::SplitMix64;
use crate::{ClusterConstraint, SymmetryAxis, SymmetryGroup, SymmetryPair};

/// Parameters of a [`synthetic`] design.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SyntheticParams {
    /// Number of placement regions (>= 1).
    pub regions: usize,
    /// Cells per region (>= 2).
    pub cells_per_region: usize,
    /// Number of signal nets.
    pub nets: usize,
    /// Average pins per net (>= 2).
    pub net_degree: usize,
    /// Add mirrored symmetry pairs per region.
    pub symmetry_pairs: usize,
    /// Add one cluster spanning this many cells (0 disables).
    pub cluster_size: usize,
    /// RNG seed: identical parameters and seed give identical designs.
    pub seed: u64,
}

impl Default for SyntheticParams {
    fn default() -> SyntheticParams {
        SyntheticParams {
            regions: 1,
            cells_per_region: 12,
            nets: 16,
            net_degree: 3,
            symmetry_pairs: 2,
            cluster_size: 0,
            // Chosen so the default fixtures of the test suite place
            // feasibly under `PlacerConfig::fast()`.
            seed: 0,
        }
    }
}

/// Generates a random but always-valid region-based design.
///
/// Cell widths are even values in `[2, 8]`; heights are uniform per region.
/// Nets are wired by sampling distinct cells; symmetry pairs are drawn from
/// equal-width cells of the same region.
///
/// # Panics
///
/// Panics if `regions == 0`, `cells_per_region < 2`, or `net_degree < 2`.
pub fn synthetic(params: SyntheticParams) -> Design {
    assert!(params.regions >= 1, "at least one region");
    assert!(
        params.cells_per_region >= 2,
        "at least two cells per region"
    );
    assert!(params.net_degree >= 2, "nets need at least two pins");
    let mut rng = SplitMix64::new(params.seed);
    let mut b = DesignBuilder::new(format!("synthetic_{:x}", params.seed));

    let vdd = b.add_power_group("VDD");
    let mut all_cells: Vec<CellId> = Vec::new();
    let mut region_cells: Vec<Vec<CellId>> = Vec::new();

    for r in 0..params.regions {
        let region = b.add_region(format!("r{r}"), 0.6 + 0.2 * rng.next_f64());
        let height = 2;
        let mut cells = Vec::new();
        for c in 0..params.cells_per_region {
            let width = 2 * rng.range_u64(1, 4) as u32;
            let cell = b.add_cell(format!("c{r}_{c}"), region, width, height, vdd);
            // One or two pins at random in-bounds offsets; nets come later.
            cells.push(cell);
            all_cells.push(cell);
        }
        region_cells.push(cells);
    }

    // Wire nets by sampling distinct cells; each endpoint becomes a pin at
    // the cell's next free site (spreading pins avoids artificial pin
    // stacking that no real primitive exhibits).
    let mut pin_count: std::collections::HashMap<CellId, u32> = std::collections::HashMap::new();
    for n in 0..params.nets {
        let degree = 2 + rng.index(params.net_degree.saturating_sub(2) * 2 + 1);
        let degree = degree.min(all_cells.len());
        let net: NetId = b.add_net(format!("n{n}"), 1 + rng.range_u64(0, 1) as u32);
        let mut chosen = Vec::new();
        while chosen.len() < degree {
            let c = all_cells[rng.index(all_cells.len())];
            if !chosen.contains(&c) {
                chosen.push(c);
            }
        }
        for (i, &c) in chosen.iter().enumerate() {
            let k = pin_count.entry(c).or_insert(0);
            let w = b.cell_width(c);
            let dx = *k % w;
            let dy = (*k / w) % 2;
            *k += 1;
            b.add_pin(c, format!("p{n}_{i}"), Some(net), dx, dy);
        }
    }

    // Symmetry pairs among equal-width cells of each region.
    for cells in &region_cells {
        let mut pairs = Vec::new();
        let mut used = vec![false; cells.len()];
        'outer: for _ in 0..params.symmetry_pairs {
            for ai in 0..cells.len() {
                if used[ai] {
                    continue;
                }
                for bi in (ai + 1)..cells.len() {
                    if used[bi] {
                        continue;
                    }
                    // Builder validation requires equal dimensions; cells
                    // are equal-height by construction.
                    if widths_equal(&b, cells[ai], cells[bi]) {
                        pairs.push(SymmetryPair::mirrored(cells[ai], cells[bi]));
                        used[ai] = true;
                        used[bi] = true;
                        continue 'outer;
                    }
                }
            }
            break;
        }
        if !pairs.is_empty() {
            b.add_symmetry(SymmetryGroup {
                name: format!("sym{}", pairs.len()),
                axis: SymmetryAxis::Vertical,
                pairs,
                share_axis_with: None,
            });
        }
    }

    if params.cluster_size >= 2 && params.cluster_size <= all_cells.len() {
        b.add_cluster(ClusterConstraint {
            name: "cluster0".into(),
            cells: all_cells[..params.cluster_size].to_vec(),
            weight: 4,
        });
    }

    b.build()
        .expect("synthetic generator produces valid designs")
}

fn widths_equal(b: &DesignBuilder, a: CellId, c: CellId) -> bool {
    // DesignBuilder does not expose cells; track widths via names instead.
    // Widths are deterministic per seed, so re-deriving is avoided by
    // keeping this helper in the builder module... but a simpler route:
    // both cells round-trip through the builder's internal storage.
    b.cell_width(a) == b.cell_width(c)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let p = SyntheticParams::default();
        let a = synthetic(p);
        let b = synthetic(p);
        assert_eq!(a, b);
        let c = synthetic(SyntheticParams { seed: 99, ..p });
        assert_ne!(a, c);
    }

    #[test]
    fn respects_parameters() {
        let p = SyntheticParams {
            regions: 3,
            cells_per_region: 8,
            nets: 10,
            ..Default::default()
        };
        let d = synthetic(p);
        assert_eq!(d.regions().len(), 3);
        assert_eq!(d.cells().len(), 24);
        assert_eq!(d.nets().iter().filter(|n| !n.virtual_net).count(), 10);
    }

    #[test]
    fn cluster_adds_virtual_net() {
        let p = SyntheticParams {
            cluster_size: 4,
            ..Default::default()
        };
        let d = synthetic(p);
        assert_eq!(d.nets().iter().filter(|n| n.virtual_net).count(), 1);
    }

    #[test]
    fn all_generated_designs_validate() {
        for seed in 0..20 {
            let p = SyntheticParams {
                regions: 1 + (seed as usize % 3),
                cells_per_region: 4 + (seed as usize % 9),
                nets: 6 + (seed as usize % 11),
                symmetry_pairs: seed as usize % 4,
                cluster_size: if seed % 2 == 0 { 3 } else { 0 },
                seed,
                ..Default::default()
            };
            let d = synthetic(p);
            assert!(!d.cells().is_empty());
        }
    }
}

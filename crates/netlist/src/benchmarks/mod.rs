//! Benchmark circuit generators.
//!
//! The paper evaluates on two TSMC-5nm industrial designs whose netlists are
//! proprietary. These generators synthesize circuits with the *published*
//! statistics (Table II) and the *described* topology and constraint
//! structure:
//!
//! | Benchmark | #Regions | #Cells | #Nets |
//! |-----------|----------|--------|-------|
//! | BUF       | 1        | 42     | 66    |
//! | VCO       | 2        | 110    | 71    |
//!
//! [`synthetic`] additionally generates parametric random designs for
//! scaling studies and property-based tests.

mod buf;
mod synthetic;
mod vco;

pub use buf::buf;
pub use synthetic::{synthetic, SyntheticParams};
pub use vco::vco;

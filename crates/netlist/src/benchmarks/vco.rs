//! The four-stage voltage-controlled oscillator (VCO) benchmark.
//!
//! Generates complementary in-phase and quadrature clocks at a nominal
//! 750 mV supply; includes startup circuitry and 3-bit thermometer-encoded
//! control of digitally tunable capacitors for frequency trimming
//! (Fig. 6b of the paper). Two regions: the analog oscillator core and the
//! digital trim-control block — exercising every constraint family:
//!
//! * hierarchical symmetry on the differential delay stages,
//! * common-centroid arrays on each stage's capacitor banks (8 units per
//!   side: 7 thermometer-switched plus one fixed matching unit, keeping
//!   the per-axis centroid sums even and therefore exactly satisfiable),
//! * clusters on the startup and bias circuitry,
//! * extension margins around the capacitor arrays and the bias cell,
//! * two power groups (`VDD_A`, `VDD_D`) triggering power-abutment
//!   constraints inside the core region.

use crate::design::{Design, DesignBuilder};
use crate::ids::{CellId, NetId};
use crate::{
    ArrayConstraint, ArrayPattern, ClusterConstraint, ExtensionConstraint, ExtensionTarget,
    SymmetryAxis, SymmetryGroup, SymmetryPair,
};

/// Number of differential delay stages.
pub(crate) const STAGES: usize = 4;
/// Thermometer steps of the 3-bit trim DAC (2^3 - 1).
pub(crate) const THERMO: usize = 7;
/// Capacitor units per bank: the thermometer steps plus one fixed unit.
pub(crate) const BANK: usize = THERMO + 1;

/// Generates the VCO benchmark (2 regions, 110 cells, 71 nets).
pub fn vco() -> Design {
    let mut b = DesignBuilder::new("vco");
    let core = b.add_region("core", 0.75);
    let ctrl = b.add_region("ctrl", 0.82);
    let vdd_a = b.add_power_group("VDD_A");
    let vdd_d = b.add_power_group("VDD_D");

    // ---- nets --------------------------------------------------------
    let php: Vec<NetId> = (0..STAGES)
        .map(|k| b.add_net(format!("php{k}"), 3))
        .collect();
    let phn: Vec<NetId> = (0..STAGES)
        .map(|k| b.add_net(format!("phn{k}"), 3))
        .collect();
    let tail: Vec<NetId> = (0..STAGES)
        .map(|k| b.add_net(format!("tail{k}"), 1))
        .collect();
    let casc: Vec<NetId> = (0..STAGES)
        .map(|k| b.add_net(format!("casc{k}"), 1))
        .collect();
    let cmfb: Vec<NetId> = (0..STAGES)
        .map(|k| b.add_net(format!("cmfb{k}"), 1))
        .collect();
    let railp: Vec<NetId> = (0..STAGES)
        .map(|k| b.add_net(format!("railp{k}"), 1))
        .collect();
    let railn: Vec<NetId> = (0..STAGES)
        .map(|k| b.add_net(format!("railn{k}"), 1))
        .collect();
    // Trim-control distribution (complementary rails for the transmission-
    // gate switched capacitors).
    let trim: Vec<NetId> = (0..3).map(|i| b.add_net(format!("trim{i}"), 1)).collect();
    let trimbuf: Vec<NetId> = (0..3)
        .map(|i| b.add_net(format!("trimbuf{i}"), 1))
        .collect();
    let tbar: Vec<NetId> = (0..3).map(|i| b.add_net(format!("tbar{i}"), 1)).collect();
    let dec: Vec<NetId> = (0..THERMO)
        .map(|j| b.add_net(format!("dec{j}"), 1))
        .collect();
    let thermo: Vec<NetId> = (0..THERMO)
        .map(|j| b.add_net(format!("th{j}"), 1))
        .collect();
    let thermob: Vec<NetId> = (0..THERMO)
        .map(|j| b.add_net(format!("thb{j}"), 1))
        .collect();
    // Startup chain.
    let en = b.add_net("en", 1);
    let st_a = b.add_net("st_a", 1);
    let st_b = b.add_net("st_b", 1);
    let st_c = b.add_net("st_c", 1);
    // Bias network and analog test.
    let vctrl = b.add_net("vctrl", 2);
    let vbias = b.add_net("vbias", 2);
    let bmir = b.add_net("bmir", 1);
    let vdd_sense = b.add_net("vdd_sense", 1);
    let atest = b.add_net("atest", 1);
    // Clock outputs.
    let clk: Vec<NetId> = ["clki", "clkib", "clkq", "clkqb"]
        .iter()
        .map(|n| b.add_net(*n, 2))
        .collect();

    // ---- core region cells --------------------------------------------
    let mut gm_p = Vec::new();
    let mut gm_n = Vec::new();
    let mut load_p = Vec::new();
    let mut load_n = Vec::new();
    let mut caps_p: Vec<Vec<CellId>> = Vec::new();
    let mut caps_n: Vec<Vec<CellId>> = Vec::new();

    for k in 0..STAGES {
        let prev = (k + STAGES - 1) % STAGES;
        let gp = b.add_cell(format!("gm_p{k}"), core, 6, 2, vdd_a);
        b.add_pin(gp, "in", Some(phn[prev]), 0, 1)
            .add_pin(gp, "out", Some(php[k]), 5, 1)
            .add_pin(gp, "tail", Some(tail[k]), 2, 0);
        gm_p.push(gp);
        let gn = b.add_cell(format!("gm_n{k}"), core, 6, 2, vdd_a);
        b.add_pin(gn, "in", Some(php[prev]), 0, 1)
            .add_pin(gn, "out", Some(phn[k]), 5, 1)
            .add_pin(gn, "tail", Some(tail[k]), 2, 0);
        gm_n.push(gn);
        let lp = b.add_cell(format!("load_p{k}"), core, 4, 2, vdd_a);
        b.add_pin(lp, "node", Some(php[k]), 0, 1)
            .add_pin(lp, "c", Some(casc[k]), 2, 1)
            .add_pin(lp, "vb", Some(vbias), 1, 0)
            .add_pin(lp, "cm", Some(cmfb[k]), 3, 1)
            .add_pin(lp, "rail", Some(railp[k]), 3, 0);
        load_p.push(lp);
        let ln = b.add_cell(format!("load_n{k}"), core, 4, 2, vdd_a);
        b.add_pin(ln, "node", Some(phn[k]), 0, 1)
            .add_pin(ln, "c", Some(casc[k]), 2, 1)
            .add_pin(ln, "vb", Some(vbias), 1, 0)
            .add_pin(ln, "cm", Some(cmfb[k]), 3, 1)
            .add_pin(ln, "rail", Some(railn[k]), 3, 0);
        load_n.push(ln);
        // Capacitor banks: 7 thermometer-switched units plus one fixed
        // matching unit per side.
        let mut bank_p = Vec::new();
        let mut bank_n = Vec::new();
        for j in 0..BANK {
            let cp = b.add_cell(format!("cap_p{k}_{j}"), core, 2, 2, vdd_a);
            b.add_pin(cp, "node", Some(php[k]), 0, 1)
                .add_pin(cp, "rail", Some(railp[k]), 0, 0);
            if j < THERMO {
                b.add_pin(cp, "ctl", Some(thermo[j]), 1, 1).add_pin(
                    cp,
                    "ctlb",
                    Some(thermob[j]),
                    1,
                    0,
                );
            }
            bank_p.push(cp);
            let cn = b.add_cell(format!("cap_n{k}_{j}"), core, 2, 2, vdd_a);
            b.add_pin(cn, "node", Some(phn[k]), 0, 1)
                .add_pin(cn, "rail", Some(railn[k]), 0, 0);
            if j < THERMO {
                b.add_pin(cn, "ctl", Some(thermo[j]), 1, 1).add_pin(
                    cn,
                    "ctlb",
                    Some(thermob[j]),
                    1,
                    0,
                );
            }
            bank_n.push(cn);
        }
        caps_p.push(bank_p);
        caps_n.push(bank_n);
    }

    // Startup chain injecting into phase 0.
    let mut startup = Vec::new();
    let st_nets = [en, st_a, st_b, st_c];
    for (i, _) in st_nets.iter().enumerate() {
        let c = b.add_cell(format!("st{i}"), core, 4, 2, vdd_a);
        b.add_pin(c, "in", Some(st_nets[i]), 0, 1);
        let out_net = if i + 1 < st_nets.len() {
            st_nets[i + 1]
        } else {
            php[0]
        };
        b.add_pin(c, "out", Some(out_net), 3, 1);
        startup.push(c);
    }

    // Bias generation.
    let bias0 = b.add_cell("bias0", core, 4, 2, vdd_a);
    b.add_pin(bias0, "vctrl", Some(vctrl), 0, 1)
        .add_pin(bias0, "vb", Some(vbias), 3, 1)
        .add_pin(bias0, "mir", Some(bmir), 2, 0)
        .add_pin(bias0, "atest", Some(atest), 1, 1);
    let bias1 = b.add_cell("bias1", core, 4, 2, vdd_a);
    b.add_pin(bias1, "mir", Some(bmir), 0, 0)
        .add_pin(bias1, "sense", Some(vdd_sense), 3, 1);

    // Output clock buffers (digital supply inside the analog region —
    // exercises the power-abutment constraint of Fig. 4).
    let tap_nets = [php[0], phn[0], php[2], phn[2]];
    let mut outbufs = Vec::new();
    for (i, &t) in tap_nets.iter().enumerate() {
        let c = b.add_cell(format!("ob{i}"), core, 4, 2, vdd_d);
        b.add_pin(c, "in", Some(t), 0, 1)
            .add_pin(c, "out", Some(clk[i]), 3, 1);
        b.add_pin(c, "pad", Some(clk[i]), 2, 0);
        outbufs.push(c);
    }
    // The analog test bus reaches the first clock buffer's probe pin.
    b.add_pin(outbufs[0], "atest", Some(atest), 1, 1);

    // ---- control region cells ------------------------------------------
    let mut tbufs = Vec::new();
    let mut invs = Vec::new();
    for i in 0..3 {
        let t = b.add_cell(format!("tbuf{i}"), ctrl, 4, 2, vdd_d);
        b.add_pin(t, "in", Some(trim[i]), 0, 1)
            .add_pin(t, "pad", Some(trim[i]), 1, 0)
            .add_pin(t, "out", Some(trimbuf[i]), 3, 1);
        tbufs.push(t);
        let v = b.add_cell(format!("tinv{i}"), ctrl, 4, 2, vdd_d);
        b.add_pin(v, "in", Some(trimbuf[i]), 0, 1)
            .add_pin(v, "out", Some(tbar[i]), 3, 1);
        invs.push(v);
    }
    let mut decs = Vec::new();
    for (j, &dec_net) in dec.iter().enumerate().take(THERMO) {
        let c = b.add_cell(format!("dec{j}"), ctrl, 6, 2, vdd_d);
        b.add_pin(
            c,
            "b0",
            Some(if j & 1 == 0 { trimbuf[0] } else { tbar[0] }),
            0,
            1,
        )
        .add_pin(
            c,
            "b1",
            Some(if j & 2 == 0 { trimbuf[1] } else { tbar[1] }),
            2,
            1,
        )
        .add_pin(
            c,
            "b2",
            Some(if j & 4 == 0 { trimbuf[2] } else { tbar[2] }),
            4,
            1,
        )
        .add_pin(c, "out", Some(dec_net), 5, 1);
        decs.push(c);
    }
    let mut drvs = Vec::new();
    for j in 0..THERMO {
        let c = b.add_cell(format!("drv{j}"), ctrl, 4, 2, vdd_d);
        b.add_pin(c, "in", Some(dec[j]), 0, 1)
            .add_pin(c, "out", Some(thermo[j]), 3, 1)
            .add_pin(c, "outb", Some(thermob[j]), 3, 0);
        drvs.push(c);
    }
    // External control/enable pads terminate on their consumers.
    b.add_pin(startup[0], "pad", Some(en), 1, 1);
    b.add_pin(bias0, "pad", Some(vctrl), 1, 0);
    b.add_pin(bias1, "pad", Some(vdd_sense), 1, 1);

    // ---- constraints ----------------------------------------------------
    // Hierarchical symmetry: one vertical spine axis shared by all stages.
    let g0 = b.add_symmetry(SymmetryGroup {
        name: "osc_spine".into(),
        axis: SymmetryAxis::Vertical,
        pairs: vec![
            SymmetryPair::mirrored(outbufs[0], outbufs[1]),
            SymmetryPair::mirrored(outbufs[2], outbufs[3]),
        ],
        share_axis_with: None,
    });
    for k in 0..STAGES {
        b.add_symmetry(SymmetryGroup {
            name: format!("stage{k}"),
            axis: SymmetryAxis::Vertical,
            pairs: vec![
                SymmetryPair::mirrored(gm_p[k], gm_n[k]),
                SymmetryPair::mirrored(load_p[k], load_n[k]),
            ],
            share_axis_with: Some(g0),
        });
    }

    // Common-centroid capacitor arrays, one per stage.
    let mut array_idx = Vec::new();
    for k in 0..STAGES {
        let cells: Vec<CellId> = caps_p[k].iter().chain(caps_n[k].iter()).copied().collect();
        let idx = b.add_array(ArrayConstraint {
            name: format!("capbank{k}"),
            cells: cells.clone(),
            pattern: ArrayPattern::CommonCentroid {
                group_a: caps_p[k].clone(),
                group_b: caps_n[k].clone(),
            },
        });
        array_idx.push(idx);
    }

    // Clusters: startup chain and bias pair stay tight.
    b.add_cluster(ClusterConstraint {
        name: "startup".into(),
        cells: startup.clone(),
        weight: 6,
    });
    b.add_cluster(ClusterConstraint {
        name: "bias".into(),
        cells: vec![bias0, bias1],
        weight: 6,
    });

    // Extensions: breathing room around each capacitor array and the bias
    // reference (diffusion extension against layout-dependent effects).
    for &idx in &array_idx {
        b.add_extension(ExtensionConstraint {
            target: ExtensionTarget::Array(idx),
            left: 1,
            right: 1,
            bottom: 0,
            top: 0,
        });
    }
    b.add_extension(ExtensionConstraint {
        target: ExtensionTarget::Cell(bias0),
        left: 1,
        right: 1,
        bottom: 0,
        top: 0,
    });

    b.build().expect("VCO generator produces a valid design")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_table2_statistics() {
        let d = vco();
        assert_eq!(d.regions().len(), 2, "Table II: 2 regions");
        assert_eq!(d.cells().len(), 110, "Table II: 110 cells");
        let physical = d.nets().iter().filter(|n| !n.virtual_net).count();
        assert_eq!(physical, 71, "Table II: 71 nets");
    }

    #[test]
    fn every_net_is_connected() {
        let d = vco();
        for n in d.net_ids() {
            assert!(d.net_degree(n) >= 2, "net {} underconnected", d.net(n).name);
        }
    }

    #[test]
    fn exercises_all_constraint_families() {
        let d = vco();
        let cs = d.constraints();
        assert!(cs.symmetry.len() >= 5);
        assert_eq!(cs.arrays.len(), 4);
        assert_eq!(cs.clusters.len(), 2);
        assert_eq!(cs.extensions.len(), 5);
    }

    #[test]
    fn two_power_groups_in_core_region() {
        let d = vco();
        assert_eq!(d.power_groups().len(), 2);
        let core = d.region_ids().next().expect("core region");
        let groups: std::collections::HashSet<_> = d
            .cells_in_region(core)
            .map(|c| d.cell(c).power_group)
            .collect();
        assert_eq!(groups.len(), 2, "core region mixes power groups");
    }

    #[test]
    fn cap_arrays_have_even_centroid_sums() {
        let d = vco();
        for a in &d.constraints().arrays {
            assert_eq!(a.cells.len(), 2 * BANK);
            let ArrayPattern::CommonCentroid { group_a, group_b } = &a.pattern else {
                panic!("cap banks are common-centroid");
            };
            assert_eq!(group_a.len(), group_b.len());
            // Even per-side unit count keeps Eq. 10 integer-satisfiable.
            assert_eq!(group_a.len() % 2, 0);
        }
    }
}

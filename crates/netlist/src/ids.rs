//! Typed identifiers for netlist entities.

use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(u32);

        impl $name {
            /// Creates an id from its dense index.
            pub fn from_index(index: usize) -> $name {
                $name(index as u32)
            }

            /// The dense index of this id.
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                fmt::Debug::fmt(self, f)
            }
        }
    };
}

id_type!(
    /// Identifier of a primitive cell within a [`crate::Design`].
    CellId,
    "c"
);
id_type!(
    /// Identifier of a signal net within a [`crate::Design`].
    NetId,
    "n"
);
id_type!(
    /// Identifier of a placement region within a [`crate::Design`].
    RegionId,
    "r"
);
id_type!(
    /// Identifier of a power group within a [`crate::Design`].
    PowerGroupId,
    "p"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_format() {
        let c = CellId::from_index(3);
        assert_eq!(c.index(), 3);
        assert_eq!(format!("{c}"), "c3");
        assert_eq!(format!("{:?}", NetId::from_index(0)), "n0");
        assert_eq!(format!("{}", RegionId::from_index(7)), "r7");
        assert_eq!(format!("{}", PowerGroupId::from_index(1)), "p1");
    }

    #[test]
    fn ids_are_ordered_by_index() {
        assert!(CellId::from_index(1) < CellId::from_index(2));
    }
}

//! Structured diagnostics for the pre-solve constraint linter.
//!
//! Every finding carries a stable code (`AMS-Exxx` for errors, `AMS-Wxxx`
//! for warnings, `AMS-Hxxx` for hints), the offending entities by name, and
//! a fix suggestion. Codes are part of the public interface: tools may
//! match on them, so existing codes never change meaning.

use std::fmt;

/// How serious a diagnostic is.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Severity {
    /// Informational; the placement may simply be slower or looser.
    Hint,
    /// Suspicious but not fatal; the solve proceeds.
    Warning,
    /// The constraint system is provably broken or unsatisfiable; the
    /// placer refuses to encode.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
            Severity::Hint => "hint",
        })
    }
}

/// Stable diagnostic codes emitted by the constraint linter.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DiagCode {
    /// `AMS-E001`: a symmetry pair joins cells of different dimensions or
    /// regions, so no mirror placement exists.
    SymmetryHeightMismatch,
    /// `AMS-E002`: a symmetry pair references a cell id outside the design.
    SymmetryDanglingCell,
    /// `AMS-E003`: `share_axis_with` references itself, a later group, or a
    /// missing group — the axis-sharing chain cannot be resolved.
    SymmetryCyclicShare,
    /// `AMS-E004`: a cell appears in more than one pair of the same group,
    /// forcing two mirror partners onto the same position.
    SymmetryOverconstrained,
    /// `AMS-E005`: an array references a cell id outside the design.
    ArrayDanglingCell,
    /// `AMS-E006`: array members differ in dimensions or region (Eq. 9
    /// assumes congruent devices).
    ArrayRaggedCells,
    /// `AMS-E007`: an array pattern's device groups do not form a valid
    /// partition of the array (Eq. 9–10 cardinality rules).
    ArrayBadPattern,
    /// `AMS-E008`: a region has no feasible dimension candidate (Eq. 4–5) —
    /// its target area cannot fit between its minimum cell sizes and the
    /// die.
    RegionInfeasible,
    /// `AMS-E009`: the regions' minimum footprints (including edge
    /// reservations) exceed the die area in aggregate.
    DieOverflow,
    /// `AMS-E010`: a region's power-group row bands cannot fit its height
    /// under any dimension candidate (Eq. 12).
    PowerRowOverflow,
    /// `AMS-E011`: the pin-density threshold `λ_th` is below the pin count
    /// of a single cell, so every window overlapping it violates Eq. 14.
    PinDensityInfeasible,
    /// `AMS-E012`: the QF_BV scaling overflows the 64-bit term width
    /// (die dimensions or net weights too large for `bits_for`).
    BitWidthOverflow,
    /// `AMS-E013`: two constraints contradict each other (a cell mirrored
    /// onto itself, a cell in two different arrays, a duplicate array
    /// member).
    ContradictoryConstraint,
    /// `AMS-E014`: a cluster or extension references a missing cell,
    /// region, or array.
    DanglingReference,
    /// `AMS-E015`: `freeze_fraction` is not a finite value in `[0, 1]`.
    FreezeFractionInvalid,
    /// `AMS-E016`: the wirelength ζ tightening schedule is broken —
    /// `zeta_start`, `zeta_step`, or `zeta_min` is non-finite or outside
    /// its valid range, so the optimization loop cannot converge.
    ZetaScheduleInvalid,
    /// `AMS-E017`: a conflict budget of zero — the solve can never take a
    /// single step; use `None` to disable budgeting instead.
    ZeroBudget,
    /// `AMS-E018`: a zero-length wall-clock deadline — the solve expires
    /// before it starts; use `None` to disable the deadline instead.
    ZeroDeadline,
    /// `AMS-W001`: the same pair appears in multiple symmetry groups of
    /// the same axis — redundant, and it doubles the encoding.
    DuplicateConstraint,
    /// `AMS-W002`: a constraint with no effect (empty pair list, array or
    /// cluster with fewer than two members).
    EmptyConstraint,
    /// `AMS-W003`: a primitive cell with no net connection and no
    /// constraint membership — it floats to an arbitrary position.
    UnreferencedCell,
    /// `AMS-W004`: a region at utilization 1.0 leaves no slack for
    /// non-rectangular packings; expect slow or failing solves.
    TightUtilization,
    /// `AMS-H001`: the pin-density stride exceeds the window size, leaving
    /// unchecked strips between windows.
    SparseDensityWindows,
    /// `AMS-H002`: a cluster with weight 0 synthesizes a virtual net that
    /// exerts no pull.
    IneffectiveCluster,
}

impl DiagCode {
    /// Every defined code, in code order.
    pub const ALL: [DiagCode; 24] = [
        DiagCode::SymmetryHeightMismatch,
        DiagCode::SymmetryDanglingCell,
        DiagCode::SymmetryCyclicShare,
        DiagCode::SymmetryOverconstrained,
        DiagCode::ArrayDanglingCell,
        DiagCode::ArrayRaggedCells,
        DiagCode::ArrayBadPattern,
        DiagCode::RegionInfeasible,
        DiagCode::DieOverflow,
        DiagCode::PowerRowOverflow,
        DiagCode::PinDensityInfeasible,
        DiagCode::BitWidthOverflow,
        DiagCode::ContradictoryConstraint,
        DiagCode::DanglingReference,
        DiagCode::FreezeFractionInvalid,
        DiagCode::ZetaScheduleInvalid,
        DiagCode::ZeroBudget,
        DiagCode::ZeroDeadline,
        DiagCode::DuplicateConstraint,
        DiagCode::EmptyConstraint,
        DiagCode::UnreferencedCell,
        DiagCode::TightUtilization,
        DiagCode::SparseDensityWindows,
        DiagCode::IneffectiveCluster,
    ];

    /// The stable code string, e.g. `"AMS-E001"`.
    pub fn code(self) -> &'static str {
        match self {
            DiagCode::SymmetryHeightMismatch => "AMS-E001",
            DiagCode::SymmetryDanglingCell => "AMS-E002",
            DiagCode::SymmetryCyclicShare => "AMS-E003",
            DiagCode::SymmetryOverconstrained => "AMS-E004",
            DiagCode::ArrayDanglingCell => "AMS-E005",
            DiagCode::ArrayRaggedCells => "AMS-E006",
            DiagCode::ArrayBadPattern => "AMS-E007",
            DiagCode::RegionInfeasible => "AMS-E008",
            DiagCode::DieOverflow => "AMS-E009",
            DiagCode::PowerRowOverflow => "AMS-E010",
            DiagCode::PinDensityInfeasible => "AMS-E011",
            DiagCode::BitWidthOverflow => "AMS-E012",
            DiagCode::ContradictoryConstraint => "AMS-E013",
            DiagCode::DanglingReference => "AMS-E014",
            DiagCode::FreezeFractionInvalid => "AMS-E015",
            DiagCode::ZetaScheduleInvalid => "AMS-E016",
            DiagCode::ZeroBudget => "AMS-E017",
            DiagCode::ZeroDeadline => "AMS-E018",
            DiagCode::DuplicateConstraint => "AMS-W001",
            DiagCode::EmptyConstraint => "AMS-W002",
            DiagCode::UnreferencedCell => "AMS-W003",
            DiagCode::TightUtilization => "AMS-W004",
            DiagCode::SparseDensityWindows => "AMS-H001",
            DiagCode::IneffectiveCluster => "AMS-H002",
        }
    }

    /// The short CamelCase name, e.g. `"SymmetryHeightMismatch"`.
    pub fn title(self) -> &'static str {
        match self {
            DiagCode::SymmetryHeightMismatch => "SymmetryHeightMismatch",
            DiagCode::SymmetryDanglingCell => "SymmetryDanglingCell",
            DiagCode::SymmetryCyclicShare => "SymmetryCyclicShare",
            DiagCode::SymmetryOverconstrained => "SymmetryOverconstrained",
            DiagCode::ArrayDanglingCell => "ArrayDanglingCell",
            DiagCode::ArrayRaggedCells => "ArrayRaggedCells",
            DiagCode::ArrayBadPattern => "ArrayBadPattern",
            DiagCode::RegionInfeasible => "RegionInfeasible",
            DiagCode::DieOverflow => "DieOverflow",
            DiagCode::PowerRowOverflow => "PowerRowOverflow",
            DiagCode::PinDensityInfeasible => "PinDensityInfeasible",
            DiagCode::BitWidthOverflow => "BitWidthOverflow",
            DiagCode::ContradictoryConstraint => "ContradictoryConstraint",
            DiagCode::DanglingReference => "DanglingReference",
            DiagCode::FreezeFractionInvalid => "FreezeFractionInvalid",
            DiagCode::ZetaScheduleInvalid => "ZetaScheduleInvalid",
            DiagCode::ZeroBudget => "ZeroBudget",
            DiagCode::ZeroDeadline => "ZeroDeadline",
            DiagCode::DuplicateConstraint => "DuplicateConstraint",
            DiagCode::EmptyConstraint => "EmptyConstraint",
            DiagCode::UnreferencedCell => "UnreferencedCell",
            DiagCode::TightUtilization => "TightUtilization",
            DiagCode::SparseDensityWindows => "SparseDensityWindows",
            DiagCode::IneffectiveCluster => "IneffectiveCluster",
        }
    }

    /// Severity, derived from the code letter (E/W/H).
    pub fn severity(self) -> Severity {
        match self.code().as_bytes()[4] {
            b'E' => Severity::Error,
            b'W' => Severity::Warning,
            _ => Severity::Hint,
        }
    }
}

impl fmt::Display for DiagCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.code(), self.title())
    }
}

/// One linter finding.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Diagnostic {
    /// The stable code.
    pub code: DiagCode,
    /// Human-readable description of this specific instance.
    pub message: String,
    /// Names of the offending entities (cells, regions, constraints).
    pub entities: Vec<String>,
    /// A concrete fix suggestion, when one is known.
    pub suggestion: Option<String>,
}

impl Diagnostic {
    /// Creates a diagnostic with no entities or suggestion.
    pub fn new(code: DiagCode, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            code,
            message: message.into(),
            entities: Vec::new(),
            suggestion: None,
        }
    }

    /// Adds an offending entity name.
    pub fn entity(mut self, name: impl Into<String>) -> Diagnostic {
        self.entities.push(name.into());
        self
    }

    /// Adds offending entity names.
    pub fn entities<I, S>(mut self, names: I) -> Diagnostic
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.entities.extend(names.into_iter().map(Into::into));
        self
    }

    /// Sets the fix suggestion.
    pub fn suggest(mut self, s: impl Into<String>) -> Diagnostic {
        self.suggestion = Some(s.into());
        self
    }

    /// Severity of this diagnostic (derived from the code).
    pub fn severity(&self) -> Severity {
        self.code.severity()
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}] {}: {}",
            self.severity(),
            self.code.code(),
            self.code.title(),
            self.message
        )?;
        if !self.entities.is_empty() {
            write!(f, "\n  affects: {}", self.entities.join(", "))?;
        }
        if let Some(s) = &self.suggestion {
            write!(f, "\n  help: {s}")?;
        }
        Ok(())
    }
}

/// The collected findings of one linter run.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct LintReport {
    /// All findings, in check order.
    pub diagnostics: Vec<Diagnostic>,
}

impl LintReport {
    /// An empty report.
    pub fn new() -> LintReport {
        LintReport::default()
    }

    /// Records a finding.
    pub fn push(&mut self, d: Diagnostic) {
        self.diagnostics.push(d);
    }

    /// Whether nothing was found at all.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Whether any error-severity finding exists (the placer's gate).
    pub fn has_errors(&self) -> bool {
        self.diagnostics
            .iter()
            .any(|d| d.severity() == Severity::Error)
    }

    /// The error-severity findings.
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity() == Severity::Error)
    }

    /// Number of findings at a given severity.
    pub fn count(&self, sev: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity() == sev)
            .count()
    }

    /// Whether some finding carries the given code.
    pub fn has_code(&self, code: DiagCode) -> bool {
        self.diagnostics.iter().any(|d| d.code == code)
    }
}

impl fmt::Display for LintReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for d in &self.diagnostics {
            writeln!(f, "{d}")?;
        }
        write!(
            f,
            "{} error(s), {} warning(s), {} hint(s)",
            self.count(Severity::Error),
            self.count(Severity::Warning),
            self.count(Severity::Hint)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_unique_and_stable() {
        let mut seen = std::collections::HashSet::new();
        for c in DiagCode::ALL {
            assert!(seen.insert(c.code()), "duplicate code {}", c.code());
            assert!(c.code().starts_with("AMS-"));
        }
        assert_eq!(DiagCode::SymmetryHeightMismatch.code(), "AMS-E001");
        assert_eq!(DiagCode::PowerRowOverflow.code(), "AMS-E010");
        assert_eq!(DiagCode::ZeroDeadline.code(), "AMS-E018");
        assert_eq!(DiagCode::UnreferencedCell.code(), "AMS-W003");
    }

    #[test]
    fn severity_follows_code_letter() {
        assert_eq!(DiagCode::RegionInfeasible.severity(), Severity::Error);
        assert_eq!(DiagCode::DuplicateConstraint.severity(), Severity::Warning);
        assert_eq!(DiagCode::SparseDensityWindows.severity(), Severity::Hint);
    }

    #[test]
    fn report_accounting() {
        let mut r = LintReport::new();
        assert!(r.is_clean() && !r.has_errors());
        r.push(Diagnostic::new(DiagCode::UnreferencedCell, "cell floats").entity("c0"));
        assert!(!r.is_clean() && !r.has_errors());
        r.push(
            Diagnostic::new(DiagCode::RegionInfeasible, "no candidates")
                .entity("core")
                .suggest("raise die_slack"),
        );
        assert!(r.has_errors());
        assert_eq!(r.errors().count(), 1);
        assert_eq!(r.count(Severity::Warning), 1);
        assert!(r.has_code(DiagCode::RegionInfeasible));
        let shown = r.to_string();
        assert!(shown.contains("error[AMS-E008]"));
        assert!(shown.contains("help: raise die_slack"));
        assert!(shown.contains("1 error(s), 1 warning(s), 0 hint(s)"));
    }
}

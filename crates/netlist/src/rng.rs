//! A tiny deterministic PRNG for benchmark generation and seeded tests.
//!
//! SplitMix64 (Steele et al., "Fast Splittable Pseudorandom Number
//! Generators"): full 64-bit period, passes BigCrush, and — crucially for
//! this offline workspace — a dozen lines with no dependencies. Identical
//! seeds yield identical streams on every platform.

/// A SplitMix64 pseudorandom generator.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed; equal seeds give equal streams.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// The next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform float in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform value in `[0, bound)`; `bound` must be nonzero.
    ///
    /// Uses Lemire's multiply-shift reduction; the modulo bias is below
    /// 2^-32 for the small bounds used here.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// A uniform value in the inclusive range `[lo, hi]`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "empty range");
        lo + self.below(hi - lo + 1)
    }

    /// A uniform index in `[0, bound)`.
    pub fn index(&mut self, bound: usize) -> usize {
        self.below(bound as u64) as usize
    }

    /// A uniform boolean.
    pub fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SplitMix64::new(8);
        assert_ne!(SplitMix64::new(7).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = SplitMix64::new(42);
        for _ in 0..1000 {
            let v = r.range_u64(3, 9);
            assert!((3..=9).contains(&v));
            let i = r.index(5);
            assert!(i < 5);
            let f = r.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn covers_whole_small_range() {
        let mut r = SplitMix64::new(1);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[r.index(4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}

//! Grid geometry primitives.
//!
//! All placement coordinates are unsigned integers on the manufacturing
//! grid. A [`Pitch`] maps one grid unit to physical nanometres; physical
//! quantities (µm, µm²) appear only at reporting boundaries.

/// A point on the placement grid.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub struct Point {
    /// Horizontal grid coordinate.
    pub x: u32,
    /// Vertical grid coordinate.
    pub y: u32,
}

impl Point {
    /// Creates a point.
    pub fn new(x: u32, y: u32) -> Point {
        Point { x, y }
    }

    /// Manhattan distance to `other`.
    pub fn manhattan(self, other: Point) -> u64 {
        u64::from(self.x.abs_diff(other.x)) + u64::from(self.y.abs_diff(other.y))
    }
}

/// An axis-aligned rectangle on the placement grid (half-open extents).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub struct Rect {
    /// Left edge.
    pub x: u32,
    /// Bottom edge.
    pub y: u32,
    /// Width (may be zero for degenerate rects).
    pub w: u32,
    /// Height.
    pub h: u32,
}

impl Rect {
    /// Creates a rectangle from its bottom-left corner and size.
    pub fn new(x: u32, y: u32, w: u32, h: u32) -> Rect {
        Rect { x, y, w, h }
    }

    /// Right edge (exclusive).
    pub fn right(self) -> u32 {
        self.x + self.w
    }

    /// Top edge (exclusive).
    pub fn top(self) -> u32 {
        self.y + self.h
    }

    /// Area in grid units.
    pub fn area(self) -> u64 {
        u64::from(self.w) * u64::from(self.h)
    }

    /// Whether the interiors of `self` and `other` intersect.
    pub fn overlaps(self, other: Rect) -> bool {
        self.x < other.right()
            && other.x < self.right()
            && self.y < other.top()
            && other.y < self.top()
    }

    /// Whether `other` lies entirely within `self`.
    pub fn contains_rect(self, other: Rect) -> bool {
        other.x >= self.x
            && other.right() <= self.right()
            && other.y >= self.y
            && other.top() <= self.top()
    }

    /// Whether the point lies within the rectangle (half-open).
    pub fn contains_point(self, p: Point) -> bool {
        p.x >= self.x && p.x < self.right() && p.y >= self.y && p.y < self.top()
    }

    /// Center point, rounded down.
    pub fn center(self) -> Point {
        Point::new(self.x + self.w / 2, self.y + self.h / 2)
    }

    /// The smallest rectangle covering both `self` and `other`.
    pub fn union(self, other: Rect) -> Rect {
        let x = self.x.min(other.x);
        let y = self.y.min(other.y);
        let r = self.right().max(other.right());
        let t = self.top().max(other.top());
        Rect::new(x, y, r - x, t - y)
    }

    /// Grows the rectangle by the given margins, clamping at zero.
    pub fn expanded(self, left: u32, right: u32, bottom: u32, top: u32) -> Rect {
        let x = self.x.saturating_sub(left);
        let y = self.y.saturating_sub(bottom);
        Rect::new(x, y, self.right() + right - x, self.top() + top - y)
    }
}

/// Physical size of one grid unit.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct Pitch {
    /// Width of one horizontal grid unit, in nanometres.
    pub x_nm: f64,
    /// Height of one vertical grid unit (one fin row pitch), in nanometres.
    pub y_nm: f64,
}

impl Pitch {
    /// A pitch representative of an N5-class FinFET process
    /// (54 nm poly pitch × 210 nm row-quantum).
    pub fn n5() -> Pitch {
        Pitch {
            x_nm: 54.0,
            y_nm: 210.0,
        }
    }

    /// Converts a grid-unit area to µm².
    pub fn area_um2(self, grid_area: u64) -> f64 {
        grid_area as f64 * self.x_nm * self.y_nm * 1e-6
    }

    /// Converts a horizontal grid length to µm.
    pub fn x_um(self, units: u64) -> f64 {
        units as f64 * self.x_nm * 1e-3
    }

    /// Converts a vertical grid length to µm.
    pub fn y_um(self, units: u64) -> f64 {
        units as f64 * self.y_nm * 1e-3
    }

    /// Converts a Manhattan length (equal x/y weighting) to µm using the
    /// average pitch; used for HPWL-style aggregate reporting.
    pub fn manhattan_um(self, units: u64) -> f64 {
        units as f64 * (self.x_nm + self.y_nm) * 0.5 * 1e-3
    }
}

impl Default for Pitch {
    fn default() -> Pitch {
        Pitch::n5()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overlap_detection() {
        let a = Rect::new(0, 0, 4, 4);
        let b = Rect::new(3, 3, 2, 2);
        let c = Rect::new(4, 0, 2, 2);
        assert!(a.overlaps(b));
        assert!(b.overlaps(a));
        assert!(!a.overlaps(c)); // abutment is not overlap
        assert!(!c.overlaps(a));
    }

    #[test]
    fn containment() {
        let outer = Rect::new(0, 0, 10, 10);
        let inner = Rect::new(2, 3, 4, 5);
        assert!(outer.contains_rect(inner));
        assert!(!inner.contains_rect(outer));
        assert!(outer.contains_rect(outer));
        assert!(outer.contains_point(Point::new(9, 9)));
        assert!(!outer.contains_point(Point::new(10, 0)));
    }

    #[test]
    fn union_covers_both() {
        let a = Rect::new(0, 0, 2, 2);
        let b = Rect::new(5, 7, 1, 1);
        let u = a.union(b);
        assert!(u.contains_rect(a) && u.contains_rect(b));
        assert_eq!(u, Rect::new(0, 0, 6, 8));
    }

    #[test]
    fn expansion_clamps_at_zero() {
        let a = Rect::new(1, 1, 2, 2);
        let e = a.expanded(5, 1, 5, 1);
        assert_eq!(e, Rect::new(0, 0, 4, 4));
    }

    #[test]
    fn manhattan_distance() {
        assert_eq!(Point::new(1, 2).manhattan(Point::new(4, 0)), 5);
    }

    #[test]
    fn pitch_conversions() {
        let p = Pitch::n5();
        assert!((p.area_um2(1000) - 1000.0 * 54.0 * 210.0 * 1e-6).abs() < 1e-9);
        assert!((p.x_um(100) - 5.4).abs() < 1e-9);
    }
}

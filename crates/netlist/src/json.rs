//! A small self-contained JSON value, parser, and pretty-printer.
//!
//! The workspace builds in fully offline environments, so design
//! serialization cannot rely on external crates. This module implements the
//! JSON subset the [`crate::Design`] schema needs: objects, arrays, strings,
//! numbers (integers and finite floats), booleans, and `null`.

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

/// A JSON value tree.
#[derive(Clone, PartialEq, Debug)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number; integers round-trip exactly up to 2^53.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; keys are kept sorted for deterministic output.
    Obj(BTreeMap<String, Json>),
}

/// Parse failure with a byte offset into the input.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.offset, self.message)
    }
}

impl Error for JsonError {}

impl Json {
    /// Builds an object from key/value pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// A string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// An unsigned integer value.
    pub fn uint(v: u64) -> Json {
        Json::Num(v as f64)
    }

    /// The value of an object field, if present.
    pub fn field(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The elements of an array value.
    pub fn items(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The string payload of a string value.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload as `u64` (must be a non-negative integer).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => Some(*n as u64),
            _ => None,
        }
    }

    /// The numeric payload as `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean payload.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Whether this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }

    /// Parses a JSON document.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] pointing at the first malformed byte.
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing content"));
        }
        Ok(v)
    }

    /// Serializes with two-space indentation and sorted object keys.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_num(out, *n),
            Json::Str(s) => write_str(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    pad(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                pad(out, indent);
                out.push(']');
            }
            Json::Obj(map) => {
                if map.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    pad(out, indent + 1);
                    write_str(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                out.push('\n');
                pad(out, indent);
                out.push('}');
            }
        }
    }
}

fn pad(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_num(out: &mut String, n: f64) {
    if n.fract() == 0.0 && n.abs() <= 2f64.powi(53) {
        out.push_str(&format!("{}", n as i64));
    } else {
        // Rust's shortest-roundtrip float formatting keeps parse(pretty(x))
        // exact for finite values.
        out.push_str(&format!("{n}"));
    }
}

fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected {word:?}")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(format!("unexpected byte {:?}", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogate pairs are not produced by our writer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = &self.bytes[start..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid utf-8"))?;
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("digits are ascii");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("malformed number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_basic_document() {
        let doc = Json::obj([
            ("name", Json::str("t\"est\n")),
            ("count", Json::uint(42)),
            ("ratio", Json::Num(0.75)),
            ("flag", Json::Bool(true)),
            ("none", Json::Null),
            (
                "list",
                Json::Arr(vec![Json::uint(1), Json::uint(2), Json::uint(3)]),
            ),
            ("empty", Json::Arr(vec![])),
        ]);
        let text = doc.pretty();
        let back = Json::parse(&text).expect("parse");
        assert_eq!(doc, back);
    }

    #[test]
    fn parses_whitespace_and_nesting() {
        let v = Json::parse(" { \"a\" : [ { \"b\" : -2.5e1 } , null ] } ").expect("parse");
        let inner = v.field("a").unwrap().items().unwrap();
        assert_eq!(inner[0].field("b").unwrap().as_f64(), Some(-25.0));
        assert!(inner[1].is_null());
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("\"open").is_err());
        assert!(Json::parse("1 2").is_err());
        assert!(Json::parse("nul").is_err());
    }

    #[test]
    fn accessor_type_mismatches_return_none() {
        let v = Json::parse("{\"x\": 1.5}").expect("parse");
        assert_eq!(v.field("x").unwrap().as_u64(), None);
        assert_eq!(v.field("x").unwrap().as_str(), None);
        assert_eq!(v.field("missing"), None);
    }
}

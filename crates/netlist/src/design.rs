//! The [`Design`]: a validated region-based AMS circuit, plus its builder.

use crate::constraint::{ArrayPattern, ConstraintSet, ExtensionTarget};
use crate::elements::{Cell, CellKind, Net, Pin, PowerGroup, Region};
use crate::geom::Pitch;
use crate::ids::{CellId, NetId, PowerGroupId, RegionId};
use crate::json::{Json, JsonError};
use std::collections::HashSet;
use std::error::Error;
use std::fmt;

/// Validation failure while building a [`Design`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ValidateDesignError {
    /// A referenced id does not exist.
    DanglingId {
        /// What kind of entity was referenced.
        what: &'static str,
        /// Offending index.
        index: usize,
    },
    /// Two entities share a name.
    DuplicateName {
        /// What kind of entity.
        what: &'static str,
        /// The colliding name.
        name: String,
    },
    /// A cell has zero width or height.
    DegenerateCell {
        /// Offending cell.
        cell: String,
    },
    /// Cells of one region disagree on height (breaks row-based layout).
    MixedRegionHeights {
        /// Offending region name.
        region: String,
    },
    /// A pin lies outside its cell's outline.
    PinOutsideCell {
        /// Offending cell.
        cell: String,
        /// Offending pin.
        pin: String,
    },
    /// A net connects fewer than two pins.
    UnderConnectedNet {
        /// Offending net name.
        net: String,
    },
    /// Symmetry pair members differ in size or region.
    AsymmetricPair {
        /// Constraint name.
        group: String,
    },
    /// Array cells differ in size or region.
    RaggedArray {
        /// Constraint name.
        array: String,
    },
    /// An array pattern's groups/pairs do not partition the array (e.g.
    /// overlapping common-centroid groups, ragged interdigitation groups,
    /// or central-symmetric pairs that miss members).
    BadCentroidGroups {
        /// Constraint name.
        array: String,
    },
    /// A region utilization ratio is outside (0, 1].
    BadUtilization {
        /// Offending region name.
        region: String,
    },
    /// An empty design or region.
    Empty {
        /// What is empty.
        what: &'static str,
    },
}

impl fmt::Display for ValidateDesignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidateDesignError::DanglingId { what, index } => {
                write!(f, "dangling {what} id {index}")
            }
            ValidateDesignError::DuplicateName { what, name } => {
                write!(f, "duplicate {what} name {name:?}")
            }
            ValidateDesignError::DegenerateCell { cell } => {
                write!(f, "cell {cell:?} has zero width or height")
            }
            ValidateDesignError::MixedRegionHeights { region } => {
                write!(f, "region {region:?} mixes cell heights")
            }
            ValidateDesignError::PinOutsideCell { cell, pin } => {
                write!(f, "pin {pin:?} lies outside cell {cell:?}")
            }
            ValidateDesignError::UnderConnectedNet { net } => {
                write!(f, "net {net:?} connects fewer than two pins")
            }
            ValidateDesignError::AsymmetricPair { group } => {
                write!(
                    f,
                    "symmetry group {group:?} pairs cells of unequal size or region"
                )
            }
            ValidateDesignError::RaggedArray { array } => {
                write!(f, "array {array:?} mixes cell sizes or regions")
            }
            ValidateDesignError::BadCentroidGroups { array } => {
                write!(f, "array {array:?} has invalid pattern groups or pairs")
            }
            ValidateDesignError::BadUtilization { region } => {
                write!(f, "region {region:?} utilization must be in (0, 1]")
            }
            ValidateDesignError::Empty { what } => write!(f, "design has no {what}"),
        }
    }
}

impl Error for ValidateDesignError {}

/// A validated, immutable region-based AMS circuit.
///
/// Construct with [`DesignBuilder`]. All invariants the placement engine
/// relies on (consistent ids, uniform region heights, in-bounds pins,
/// well-formed constraints) are checked at build time.
#[derive(Clone, PartialEq, Debug)]
pub struct Design {
    name: String,
    pitch: Pitch,
    regions: Vec<Region>,
    power_groups: Vec<PowerGroup>,
    cells: Vec<Cell>,
    nets: Vec<Net>,
    constraints: ConstraintSet,
    /// Per-net connection index: (cell, pin index within the cell).
    net_pins: Vec<Vec<(CellId, usize)>>,
}

impl Design {
    /// Design name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Physical pitch of one grid unit.
    pub fn pitch(&self) -> Pitch {
        self.pitch
    }

    /// All regions.
    pub fn regions(&self) -> &[Region] {
        &self.regions
    }

    /// All power groups.
    pub fn power_groups(&self) -> &[PowerGroup] {
        &self.power_groups
    }

    /// All cells.
    pub fn cells(&self) -> &[Cell] {
        &self.cells
    }

    /// All nets.
    pub fn nets(&self) -> &[Net] {
        &self.nets
    }

    /// The placement constraints.
    pub fn constraints(&self) -> &ConstraintSet {
        &self.constraints
    }

    /// A cell by id.
    pub fn cell(&self, id: CellId) -> &Cell {
        &self.cells[id.index()]
    }

    /// A net by id.
    pub fn net(&self, id: NetId) -> &Net {
        &self.nets[id.index()]
    }

    /// A region by id.
    pub fn region(&self, id: RegionId) -> &Region {
        &self.regions[id.index()]
    }

    /// Iterator over cell ids.
    pub fn cell_ids(&self) -> impl Iterator<Item = CellId> + '_ {
        (0..self.cells.len()).map(CellId::from_index)
    }

    /// Iterator over net ids.
    pub fn net_ids(&self) -> impl Iterator<Item = NetId> + '_ {
        (0..self.nets.len()).map(NetId::from_index)
    }

    /// Iterator over region ids.
    pub fn region_ids(&self) -> impl Iterator<Item = RegionId> + '_ {
        (0..self.regions.len()).map(RegionId::from_index)
    }

    /// The `(cell, pin-index)` endpoints of a net.
    pub fn net_connections(&self, id: NetId) -> &[(CellId, usize)] {
        &self.net_pins[id.index()]
    }

    /// Degree of a net (number of connected pins), `deg(n)` in the paper.
    pub fn net_degree(&self, id: NetId) -> usize {
        self.net_pins[id.index()].len()
    }

    /// Cells belonging to a region.
    pub fn cells_in_region(&self, r: RegionId) -> impl Iterator<Item = CellId> + '_ {
        self.cells
            .iter()
            .enumerate()
            .filter(move |(_, c)| c.region == r)
            .map(|(i, _)| CellId::from_index(i))
    }

    /// Total primitive cell area `A = Σ area(v)` in grid units.
    pub fn total_cell_area(&self) -> u64 {
        self.cells.iter().map(Cell::area).sum()
    }

    /// Total cell area of one region, `A_r` in the paper.
    pub fn region_cell_area(&self, r: RegionId) -> u64 {
        self.cells
            .iter()
            .filter(|c| c.region == r)
            .map(Cell::area)
            .sum()
    }

    /// Nets connected to a cell (deduplicated, in first-seen order).
    pub fn nets_of_cell(&self, c: CellId) -> Vec<NetId> {
        let mut seen = HashSet::new();
        let mut out = Vec::new();
        for pin in &self.cells[c.index()].pins {
            if let Some(n) = pin.net {
                if seen.insert(n) {
                    out.push(n);
                }
            }
        }
        out
    }

    /// The cell-priority metric of Eq. 15:
    /// `PR_v = δ1·|P(v)| + δ2·Σ_{n ∈ N(v)} deg(n)` with δ1 = 10, δ2 = 1.
    pub fn cell_priority(&self, c: CellId) -> u64 {
        const DELTA1: u64 = 10;
        const DELTA2: u64 = 1;
        let pins = self.cells[c.index()].pin_count() as u64;
        let deg_sum: u64 = self
            .nets_of_cell(c)
            .iter()
            .map(|&n| self.net_degree(n) as u64)
            .sum();
        DELTA1 * pins + DELTA2 * deg_sum
    }

    /// A copy of this design with every placement constraint removed —
    /// the paper's "w/o Cstr." evaluation arm. Virtual cluster nets are
    /// also dropped.
    pub fn without_constraints(&self) -> Design {
        let mut d = self.clone();
        d.constraints = ConstraintSet::default();
        // Virtual nets only exist to serve cluster constraints.
        for (i, net) in d.nets.iter().enumerate() {
            if net.virtual_net {
                d.net_pins[i].clear();
            }
        }
        d
    }

    /// Serializes to pretty JSON.
    pub fn to_json(&self) -> String {
        ser::design(self).pretty()
    }

    /// Deserializes from JSON produced by [`Design::to_json`].
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] on malformed input or schema mismatches.
    pub fn from_json(s: &str) -> Result<Design, JsonError> {
        de::design(&Json::parse(s)?)
    }
}

/// Hand-written JSON encoding of the [`Design`] schema (the workspace
/// builds offline, so no serialization framework is available).
mod ser {
    use super::*;
    use crate::constraint::{
        ArrayConstraint, ArrayPattern, ClusterConstraint, ExtensionConstraint, SymmetryAxis,
        SymmetryGroup,
    };

    pub(super) fn design(d: &Design) -> Json {
        Json::obj([
            ("name", Json::str(&d.name)),
            (
                "pitch",
                Json::obj([
                    ("x_nm", Json::Num(d.pitch.x_nm)),
                    ("y_nm", Json::Num(d.pitch.y_nm)),
                ]),
            ),
            ("regions", Json::Arr(d.regions.iter().map(region).collect())),
            (
                "power_groups",
                Json::Arr(
                    d.power_groups
                        .iter()
                        .map(|p| Json::obj([("name", Json::str(&p.name))]))
                        .collect(),
                ),
            ),
            ("cells", Json::Arr(d.cells.iter().map(cell).collect())),
            ("nets", Json::Arr(d.nets.iter().map(net).collect())),
            ("constraints", constraints(&d.constraints)),
            (
                "net_pins",
                Json::Arr(
                    d.net_pins
                        .iter()
                        .map(|pins| {
                            Json::Arr(
                                pins.iter()
                                    .map(|&(c, pi)| {
                                        Json::Arr(vec![
                                            Json::uint(c.index() as u64),
                                            Json::uint(pi as u64),
                                        ])
                                    })
                                    .collect(),
                            )
                        })
                        .collect(),
                ),
            ),
        ])
    }

    fn region(r: &Region) -> Json {
        Json::obj([
            ("name", Json::str(&r.name)),
            ("utilization", Json::Num(r.utilization)),
            ("edge_x", Json::uint(u64::from(r.edge_x))),
            ("edge_y", Json::uint(u64::from(r.edge_y))),
        ])
    }

    fn cell(c: &Cell) -> Json {
        let kind = match c.kind {
            CellKind::Primitive => "primitive",
            CellKind::Edge => "edge",
            CellKind::Dummy => "dummy",
        };
        Json::obj([
            ("name", Json::str(&c.name)),
            ("kind", Json::str(kind)),
            ("width", Json::uint(u64::from(c.width))),
            ("height", Json::uint(u64::from(c.height))),
            ("region", Json::uint(c.region.index() as u64)),
            ("power_group", Json::uint(c.power_group.index() as u64)),
            ("pins", Json::Arr(c.pins.iter().map(pin).collect())),
        ])
    }

    fn pin(p: &Pin) -> Json {
        Json::obj([
            ("name", Json::str(&p.name)),
            (
                "net",
                p.net.map_or(Json::Null, |n| Json::uint(n.index() as u64)),
            ),
            ("dx", Json::uint(u64::from(p.dx))),
            ("dy", Json::uint(u64::from(p.dy))),
        ])
    }

    fn net(n: &Net) -> Json {
        Json::obj([
            ("name", Json::str(&n.name)),
            ("weight", Json::uint(u64::from(n.weight))),
            ("virtual_net", Json::Bool(n.virtual_net)),
        ])
    }

    fn cell_ids(ids: &[CellId]) -> Json {
        Json::Arr(ids.iter().map(|c| Json::uint(c.index() as u64)).collect())
    }

    fn constraints(cs: &ConstraintSet) -> Json {
        Json::obj([
            (
                "symmetry",
                Json::Arr(cs.symmetry.iter().map(symmetry).collect()),
            ),
            ("arrays", Json::Arr(cs.arrays.iter().map(array).collect())),
            (
                "clusters",
                Json::Arr(cs.clusters.iter().map(cluster).collect()),
            ),
            (
                "extensions",
                Json::Arr(cs.extensions.iter().map(extension).collect()),
            ),
        ])
    }

    fn symmetry(g: &SymmetryGroup) -> Json {
        Json::obj([
            ("name", Json::str(&g.name)),
            (
                "axis",
                Json::str(match g.axis {
                    SymmetryAxis::Vertical => "vertical",
                    SymmetryAxis::Horizontal => "horizontal",
                }),
            ),
            (
                "pairs",
                Json::Arr(
                    g.pairs
                        .iter()
                        .map(|p| {
                            Json::obj([
                                ("a", Json::uint(p.a.index() as u64)),
                                (
                                    "b",
                                    p.b.map_or(Json::Null, |b| Json::uint(b.index() as u64)),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "share_axis_with",
                g.share_axis_with
                    .map_or(Json::Null, |i| Json::uint(i as u64)),
            ),
        ])
    }

    fn array(a: &ArrayConstraint) -> Json {
        let pattern = match &a.pattern {
            ArrayPattern::Dense => Json::obj([("kind", Json::str("dense"))]),
            ArrayPattern::CommonCentroid { group_a, group_b } => Json::obj([
                ("kind", Json::str("common_centroid")),
                ("group_a", cell_ids(group_a)),
                ("group_b", cell_ids(group_b)),
            ]),
            ArrayPattern::Interdigitated { groups } => Json::obj([
                ("kind", Json::str("interdigitated")),
                (
                    "groups",
                    Json::Arr(groups.iter().map(|g| cell_ids(g)).collect()),
                ),
            ]),
            ArrayPattern::CentralSymmetric { pairs } => Json::obj([
                ("kind", Json::str("central_symmetric")),
                (
                    "pairs",
                    Json::Arr(
                        pairs
                            .iter()
                            .map(|&(x, y)| {
                                Json::Arr(vec![
                                    Json::uint(x.index() as u64),
                                    Json::uint(y.index() as u64),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]),
        };
        Json::obj([
            ("name", Json::str(&a.name)),
            ("cells", cell_ids(&a.cells)),
            ("pattern", pattern),
        ])
    }

    fn cluster(c: &ClusterConstraint) -> Json {
        Json::obj([
            ("name", Json::str(&c.name)),
            ("cells", cell_ids(&c.cells)),
            ("weight", Json::uint(u64::from(c.weight))),
        ])
    }

    fn extension(e: &ExtensionConstraint) -> Json {
        let (kind, id) = match e.target {
            ExtensionTarget::Cell(c) => ("cell", c.index()),
            ExtensionTarget::Region(r) => ("region", r.index()),
            ExtensionTarget::Array(i) => ("array", i),
        };
        Json::obj([
            (
                "target",
                Json::obj([("kind", Json::str(kind)), ("id", Json::uint(id as u64))]),
            ),
            ("left", Json::uint(u64::from(e.left))),
            ("right", Json::uint(u64::from(e.right))),
            ("bottom", Json::uint(u64::from(e.bottom))),
            ("top", Json::uint(u64::from(e.top))),
        ])
    }
}

/// Decoding counterpart of [`ser`].
mod de {
    use super::*;
    use crate::constraint::{
        ArrayConstraint, ArrayPattern, ClusterConstraint, ExtensionConstraint, SymmetryAxis,
        SymmetryGroup, SymmetryPair,
    };

    fn bad(message: impl Into<String>) -> JsonError {
        JsonError {
            offset: 0,
            message: message.into(),
        }
    }

    fn field<'a>(v: &'a Json, key: &str) -> Result<&'a Json, JsonError> {
        v.field(key)
            .ok_or_else(|| bad(format!("missing field {key:?}")))
    }

    fn str_field(v: &Json, key: &str) -> Result<String, JsonError> {
        field(v, key)?
            .as_str()
            .map(str::to_string)
            .ok_or_else(|| bad(format!("field {key:?} must be a string")))
    }

    fn u32_field(v: &Json, key: &str) -> Result<u32, JsonError> {
        field(v, key)?
            .as_u64()
            .and_then(|n| u32::try_from(n).ok())
            .ok_or_else(|| bad(format!("field {key:?} must be a u32")))
    }

    fn usize_field(v: &Json, key: &str) -> Result<usize, JsonError> {
        field(v, key)?
            .as_u64()
            .map(|n| n as usize)
            .ok_or_else(|| bad(format!("field {key:?} must be an index")))
    }

    fn f64_field(v: &Json, key: &str) -> Result<f64, JsonError> {
        field(v, key)?
            .as_f64()
            .ok_or_else(|| bad(format!("field {key:?} must be a number")))
    }

    fn arr_field<'a>(v: &'a Json, key: &str) -> Result<&'a [Json], JsonError> {
        field(v, key)?
            .items()
            .ok_or_else(|| bad(format!("field {key:?} must be an array")))
    }

    fn cell_id_list(v: &Json, key: &str) -> Result<Vec<CellId>, JsonError> {
        arr_field(v, key)?
            .iter()
            .map(|item| {
                item.as_u64()
                    .map(|n| CellId::from_index(n as usize))
                    .ok_or_else(|| bad(format!("{key:?} entries must be cell indices")))
            })
            .collect()
    }

    pub(super) fn design(v: &Json) -> Result<Design, JsonError> {
        let pitch_v = field(v, "pitch")?;
        let pitch = Pitch {
            x_nm: f64_field(pitch_v, "x_nm")?,
            y_nm: f64_field(pitch_v, "y_nm")?,
        };

        let regions = arr_field(v, "regions")?
            .iter()
            .map(region)
            .collect::<Result<Vec<_>, _>>()?;
        let power_groups = arr_field(v, "power_groups")?
            .iter()
            .map(|p| {
                Ok(PowerGroup {
                    name: str_field(p, "name")?,
                })
            })
            .collect::<Result<Vec<_>, JsonError>>()?;
        let cells = arr_field(v, "cells")?
            .iter()
            .map(cell)
            .collect::<Result<Vec<_>, _>>()?;
        let nets = arr_field(v, "nets")?
            .iter()
            .map(net)
            .collect::<Result<Vec<_>, _>>()?;
        let constraints = constraints(field(v, "constraints")?)?;

        let net_pins = arr_field(v, "net_pins")?
            .iter()
            .map(|pins| {
                pins.items()
                    .ok_or_else(|| bad("net_pins entries must be arrays"))?
                    .iter()
                    .map(|pair| {
                        let pair = pair
                            .items()
                            .filter(|p| p.len() == 2)
                            .ok_or_else(|| bad("net_pins pairs must be [cell, pin]"))?;
                        let c = pair[0]
                            .as_u64()
                            .ok_or_else(|| bad("bad cell index in net_pins"))?;
                        let pi = pair[1]
                            .as_u64()
                            .ok_or_else(|| bad("bad pin index in net_pins"))?;
                        Ok((CellId::from_index(c as usize), pi as usize))
                    })
                    .collect::<Result<Vec<_>, JsonError>>()
            })
            .collect::<Result<Vec<_>, _>>()?;

        Ok(Design {
            name: str_field(v, "name")?,
            pitch,
            regions,
            power_groups,
            cells,
            nets,
            constraints,
            net_pins,
        })
    }

    fn region(v: &Json) -> Result<Region, JsonError> {
        Ok(Region {
            name: str_field(v, "name")?,
            utilization: f64_field(v, "utilization")?,
            edge_x: u32_field(v, "edge_x")?,
            edge_y: u32_field(v, "edge_y")?,
        })
    }

    fn cell(v: &Json) -> Result<Cell, JsonError> {
        let kind = match str_field(v, "kind")?.as_str() {
            "primitive" => CellKind::Primitive,
            "edge" => CellKind::Edge,
            "dummy" => CellKind::Dummy,
            other => return Err(bad(format!("unknown cell kind {other:?}"))),
        };
        let pins = arr_field(v, "pins")?
            .iter()
            .map(pin)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Cell {
            name: str_field(v, "name")?,
            kind,
            width: u32_field(v, "width")?,
            height: u32_field(v, "height")?,
            region: RegionId::from_index(usize_field(v, "region")?),
            power_group: PowerGroupId::from_index(usize_field(v, "power_group")?),
            pins,
        })
    }

    fn pin(v: &Json) -> Result<Pin, JsonError> {
        let net_v = field(v, "net")?;
        let net = if net_v.is_null() {
            None
        } else {
            Some(NetId::from_index(
                net_v
                    .as_u64()
                    .ok_or_else(|| bad("pin net must be an index or null"))?
                    as usize,
            ))
        };
        Ok(Pin {
            name: str_field(v, "name")?,
            net,
            dx: u32_field(v, "dx")?,
            dy: u32_field(v, "dy")?,
        })
    }

    fn net(v: &Json) -> Result<Net, JsonError> {
        Ok(Net {
            name: str_field(v, "name")?,
            weight: u32_field(v, "weight")?,
            virtual_net: field(v, "virtual_net")?
                .as_bool()
                .ok_or_else(|| bad("virtual_net must be a boolean"))?,
        })
    }

    fn constraints(v: &Json) -> Result<ConstraintSet, JsonError> {
        Ok(ConstraintSet {
            symmetry: arr_field(v, "symmetry")?
                .iter()
                .map(symmetry)
                .collect::<Result<Vec<_>, _>>()?,
            arrays: arr_field(v, "arrays")?
                .iter()
                .map(array)
                .collect::<Result<Vec<_>, _>>()?,
            clusters: arr_field(v, "clusters")?
                .iter()
                .map(cluster)
                .collect::<Result<Vec<_>, _>>()?,
            extensions: arr_field(v, "extensions")?
                .iter()
                .map(extension)
                .collect::<Result<Vec<_>, _>>()?,
        })
    }

    fn symmetry(v: &Json) -> Result<SymmetryGroup, JsonError> {
        let axis = match str_field(v, "axis")?.as_str() {
            "vertical" => SymmetryAxis::Vertical,
            "horizontal" => SymmetryAxis::Horizontal,
            other => return Err(bad(format!("unknown axis {other:?}"))),
        };
        let pairs = arr_field(v, "pairs")?
            .iter()
            .map(|p| {
                let a = CellId::from_index(usize_field(p, "a")?);
                let b_v = field(p, "b")?;
                let b = if b_v.is_null() {
                    None
                } else {
                    Some(CellId::from_index(
                        b_v.as_u64()
                            .ok_or_else(|| bad("pair b must be an index or null"))?
                            as usize,
                    ))
                };
                Ok(SymmetryPair { a, b })
            })
            .collect::<Result<Vec<_>, JsonError>>()?;
        let share_v = field(v, "share_axis_with")?;
        let share_axis_with = if share_v.is_null() {
            None
        } else {
            Some(
                share_v
                    .as_u64()
                    .ok_or_else(|| bad("share_axis_with must be an index or null"))?
                    as usize,
            )
        };
        Ok(SymmetryGroup {
            name: str_field(v, "name")?,
            axis,
            pairs,
            share_axis_with,
        })
    }

    fn array(v: &Json) -> Result<ArrayConstraint, JsonError> {
        let pattern_v = field(v, "pattern")?;
        let pattern = match str_field(pattern_v, "kind")?.as_str() {
            "dense" => ArrayPattern::Dense,
            "common_centroid" => ArrayPattern::CommonCentroid {
                group_a: cell_id_list(pattern_v, "group_a")?,
                group_b: cell_id_list(pattern_v, "group_b")?,
            },
            "interdigitated" => ArrayPattern::Interdigitated {
                groups: arr_field(pattern_v, "groups")?
                    .iter()
                    .map(|g| {
                        g.items()
                            .ok_or_else(|| bad("groups entries must be arrays"))?
                            .iter()
                            .map(|c| {
                                c.as_u64()
                                    .map(|n| CellId::from_index(n as usize))
                                    .ok_or_else(|| bad("bad cell index in groups"))
                            })
                            .collect::<Result<Vec<_>, _>>()
                    })
                    .collect::<Result<Vec<_>, _>>()?,
            },
            "central_symmetric" => ArrayPattern::CentralSymmetric {
                pairs: arr_field(pattern_v, "pairs")?
                    .iter()
                    .map(|p| {
                        let p = p
                            .items()
                            .filter(|p| p.len() == 2)
                            .ok_or_else(|| bad("pattern pairs must be [a, b]"))?;
                        let x = p[0].as_u64().ok_or_else(|| bad("bad pair member"))?;
                        let y = p[1].as_u64().ok_or_else(|| bad("bad pair member"))?;
                        Ok((
                            CellId::from_index(x as usize),
                            CellId::from_index(y as usize),
                        ))
                    })
                    .collect::<Result<Vec<_>, JsonError>>()?,
            },
            other => return Err(bad(format!("unknown array pattern {other:?}"))),
        };
        Ok(ArrayConstraint {
            name: str_field(v, "name")?,
            cells: cell_id_list(v, "cells")?,
            pattern,
        })
    }

    fn cluster(v: &Json) -> Result<ClusterConstraint, JsonError> {
        Ok(ClusterConstraint {
            name: str_field(v, "name")?,
            cells: cell_id_list(v, "cells")?,
            weight: u32_field(v, "weight")?,
        })
    }

    fn extension(v: &Json) -> Result<ExtensionConstraint, JsonError> {
        let target_v = field(v, "target")?;
        let id = usize_field(target_v, "id")?;
        let target = match str_field(target_v, "kind")?.as_str() {
            "cell" => ExtensionTarget::Cell(CellId::from_index(id)),
            "region" => ExtensionTarget::Region(RegionId::from_index(id)),
            "array" => ExtensionTarget::Array(id),
            other => return Err(bad(format!("unknown extension target {other:?}"))),
        };
        Ok(ExtensionConstraint {
            target,
            left: u32_field(v, "left")?,
            right: u32_field(v, "right")?,
            bottom: u32_field(v, "bottom")?,
            top: u32_field(v, "top")?,
        })
    }
}

/// Builder for [`Design`]; performs full validation in [`DesignBuilder::build`].
///
/// # Examples
///
/// ```
/// use ams_netlist::{DesignBuilder, Pitch};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = DesignBuilder::new("tiny");
/// let region = b.add_region("core", 0.7);
/// let vdd = b.add_power_group("VDD");
/// let net = b.add_net("n1", 1);
/// let a = b.add_cell("inv_a", region, 4, 2, vdd);
/// b.add_pin(a, "z", Some(net), 3, 1);
/// let c = b.add_cell("inv_b", region, 4, 2, vdd);
/// b.add_pin(c, "a", Some(net), 0, 1);
/// let design = b.build()?;
/// assert_eq!(design.cells().len(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct DesignBuilder {
    name: String,
    pitch: Pitch,
    regions: Vec<Region>,
    power_groups: Vec<PowerGroup>,
    cells: Vec<Cell>,
    nets: Vec<Net>,
    constraints: ConstraintSet,
}

impl DesignBuilder {
    /// Starts a new design with the default N5 pitch.
    pub fn new(name: impl Into<String>) -> DesignBuilder {
        DesignBuilder {
            name: name.into(),
            pitch: Pitch::default(),
            ..DesignBuilder::default()
        }
    }

    /// Overrides the physical pitch.
    pub fn set_pitch(&mut self, pitch: Pitch) -> &mut Self {
        self.pitch = pitch;
        self
    }

    /// Adds a region with the given utilization target and default edge
    /// reservations of one grid unit each.
    pub fn add_region(&mut self, name: impl Into<String>, utilization: f64) -> RegionId {
        self.regions.push(Region {
            name: name.into(),
            utilization,
            edge_x: 1,
            edge_y: 0,
        });
        RegionId::from_index(self.regions.len() - 1)
    }

    /// Sets the edge-cell reservation of a region (`D_x`, `D_y` in Eq. 6).
    pub fn set_region_edge(&mut self, r: RegionId, edge_x: u32, edge_y: u32) -> &mut Self {
        self.regions[r.index()].edge_x = edge_x;
        self.regions[r.index()].edge_y = edge_y;
        self
    }

    /// Adds a power group.
    pub fn add_power_group(&mut self, name: impl Into<String>) -> PowerGroupId {
        self.power_groups.push(PowerGroup { name: name.into() });
        PowerGroupId::from_index(self.power_groups.len() - 1)
    }

    /// Adds a signal net with the given optimizer weight.
    pub fn add_net(&mut self, name: impl Into<String>, weight: u32) -> NetId {
        self.nets.push(Net {
            name: name.into(),
            weight,
            virtual_net: false,
        });
        NetId::from_index(self.nets.len() - 1)
    }

    /// Adds a primitive cell.
    pub fn add_cell(
        &mut self,
        name: impl Into<String>,
        region: RegionId,
        width: u32,
        height: u32,
        power_group: PowerGroupId,
    ) -> CellId {
        self.cells.push(Cell {
            name: name.into(),
            kind: CellKind::Primitive,
            width,
            height,
            region,
            power_group,
            pins: Vec::new(),
        });
        CellId::from_index(self.cells.len() - 1)
    }

    /// Width of an already-added cell (useful when deriving constraints
    /// mid-build, e.g. pairing equal-width cells for symmetry).
    pub fn cell_width(&self, cell: CellId) -> u32 {
        self.cells[cell.index()].width
    }

    /// Adds a pin to a cell at offset `(dx, dy)` from its bottom-left corner.
    pub fn add_pin(
        &mut self,
        cell: CellId,
        name: impl Into<String>,
        net: Option<NetId>,
        dx: u32,
        dy: u32,
    ) -> &mut Self {
        self.cells[cell.index()].pins.push(Pin {
            name: name.into(),
            net,
            dx,
            dy,
        });
        self
    }

    /// Adds a symmetry group; returns its index for `share_axis_with` use.
    pub fn add_symmetry(&mut self, group: crate::SymmetryGroup) -> usize {
        self.constraints.symmetry.push(group);
        self.constraints.symmetry.len() - 1
    }

    /// Adds an array constraint; returns its index (for extension targets).
    pub fn add_array(&mut self, array: crate::ArrayConstraint) -> usize {
        self.constraints.arrays.push(array);
        self.constraints.arrays.len() - 1
    }

    /// Adds a cluster constraint. A weighted virtual net over the clustered
    /// cells is synthesized at build time.
    pub fn add_cluster(&mut self, cluster: crate::ClusterConstraint) -> usize {
        self.constraints.clusters.push(cluster);
        self.constraints.clusters.len() - 1
    }

    /// Adds an extension constraint.
    pub fn add_extension(&mut self, ext: crate::ExtensionConstraint) -> usize {
        self.constraints.extensions.push(ext);
        self.constraints.extensions.len() - 1
    }

    /// Validates and finalizes the design.
    ///
    /// # Errors
    ///
    /// Returns a [`ValidateDesignError`] describing the first violated
    /// invariant.
    pub fn build(mut self) -> Result<Design, ValidateDesignError> {
        if self.regions.is_empty() {
            return Err(ValidateDesignError::Empty { what: "regions" });
        }
        if self.cells.is_empty() {
            return Err(ValidateDesignError::Empty { what: "cells" });
        }
        if self.power_groups.is_empty() {
            return Err(ValidateDesignError::Empty {
                what: "power groups",
            });
        }

        // Synthesize virtual nets for clusters before indexing.
        for ci in 0..self.constraints.clusters.len() {
            let cluster = self.constraints.clusters[ci].clone();
            self.nets.push(Net {
                name: format!("__cluster_{}", cluster.name),
                weight: cluster.weight,
                virtual_net: true,
            });
            let nid = NetId::from_index(self.nets.len() - 1);
            for &c in &cluster.cells {
                if c.index() >= self.cells.len() {
                    return Err(ValidateDesignError::DanglingId {
                        what: "cell",
                        index: c.index(),
                    });
                }
                self.cells[c.index()].pins.push(Pin {
                    name: format!("__cluster_{}", cluster.name),
                    net: Some(nid),
                    dx: 0,
                    dy: 0,
                });
            }
        }

        self.check_names()?;
        self.check_cells()?;
        self.check_regions()?;
        let net_pins = self.index_nets()?;
        self.check_constraints()?;

        Ok(Design {
            name: self.name,
            pitch: self.pitch,
            regions: self.regions,
            power_groups: self.power_groups,
            cells: self.cells,
            nets: self.nets,
            constraints: self.constraints,
            net_pins,
        })
    }

    fn check_names(&self) -> Result<(), ValidateDesignError> {
        let mut seen = HashSet::new();
        for c in &self.cells {
            if !seen.insert(&c.name) {
                return Err(ValidateDesignError::DuplicateName {
                    what: "cell",
                    name: c.name.clone(),
                });
            }
        }
        let mut seen = HashSet::new();
        for n in &self.nets {
            if !seen.insert(&n.name) {
                return Err(ValidateDesignError::DuplicateName {
                    what: "net",
                    name: n.name.clone(),
                });
            }
        }
        let mut seen = HashSet::new();
        for r in &self.regions {
            if !seen.insert(&r.name) {
                return Err(ValidateDesignError::DuplicateName {
                    what: "region",
                    name: r.name.clone(),
                });
            }
        }
        Ok(())
    }

    fn check_cells(&self) -> Result<(), ValidateDesignError> {
        for c in &self.cells {
            if c.width == 0 || c.height == 0 {
                return Err(ValidateDesignError::DegenerateCell {
                    cell: c.name.clone(),
                });
            }
            if c.region.index() >= self.regions.len() {
                return Err(ValidateDesignError::DanglingId {
                    what: "region",
                    index: c.region.index(),
                });
            }
            if c.power_group.index() >= self.power_groups.len() {
                return Err(ValidateDesignError::DanglingId {
                    what: "power group",
                    index: c.power_group.index(),
                });
            }
            for p in &c.pins {
                if p.dx >= c.width || p.dy >= c.height {
                    return Err(ValidateDesignError::PinOutsideCell {
                        cell: c.name.clone(),
                        pin: p.name.clone(),
                    });
                }
                if let Some(n) = p.net {
                    if n.index() >= self.nets.len() {
                        return Err(ValidateDesignError::DanglingId {
                            what: "net",
                            index: n.index(),
                        });
                    }
                }
            }
        }
        Ok(())
    }

    fn check_regions(&self) -> Result<(), ValidateDesignError> {
        for (ri, r) in self.regions.iter().enumerate() {
            if !(r.utilization > 0.0 && r.utilization <= 1.0) {
                return Err(ValidateDesignError::BadUtilization {
                    region: r.name.clone(),
                });
            }
            let rid = RegionId::from_index(ri);
            let mut height = None;
            for c in self.cells.iter().filter(|c| c.region == rid) {
                match height {
                    None => height = Some(c.height),
                    Some(h) if h != c.height => {
                        return Err(ValidateDesignError::MixedRegionHeights {
                            region: r.name.clone(),
                        })
                    }
                    _ => {}
                }
            }
        }
        Ok(())
    }

    fn index_nets(&self) -> Result<Vec<Vec<(CellId, usize)>>, ValidateDesignError> {
        let mut net_pins: Vec<Vec<(CellId, usize)>> = vec![Vec::new(); self.nets.len()];
        for (ci, c) in self.cells.iter().enumerate() {
            for (pi, p) in c.pins.iter().enumerate() {
                if let Some(n) = p.net {
                    net_pins[n.index()].push((CellId::from_index(ci), pi));
                }
            }
        }
        for (ni, pins) in net_pins.iter().enumerate() {
            if pins.len() < 2 {
                return Err(ValidateDesignError::UnderConnectedNet {
                    net: self.nets[ni].name.clone(),
                });
            }
        }
        Ok(net_pins)
    }

    fn check_constraints(&self) -> Result<(), ValidateDesignError> {
        let ncells = self.cells.len();
        let check_cell = |id: CellId| -> Result<(), ValidateDesignError> {
            if id.index() >= ncells {
                Err(ValidateDesignError::DanglingId {
                    what: "cell",
                    index: id.index(),
                })
            } else {
                Ok(())
            }
        };

        for (gi, g) in self.constraints.symmetry.iter().enumerate() {
            for p in &g.pairs {
                check_cell(p.a)?;
                if let Some(b) = p.b {
                    check_cell(b)?;
                    let (ca, cb) = (&self.cells[p.a.index()], &self.cells[b.index()]);
                    if ca.width != cb.width || ca.height != cb.height || ca.region != cb.region {
                        return Err(ValidateDesignError::AsymmetricPair {
                            group: g.name.clone(),
                        });
                    }
                }
            }
            if let Some(parent) = g.share_axis_with {
                if parent >= gi {
                    // Parents must precede children, which also rules out cycles.
                    return Err(ValidateDesignError::DanglingId {
                        what: "symmetry group",
                        index: parent,
                    });
                }
            }
        }

        for a in &self.constraints.arrays {
            let mut dims = None;
            for &c in &a.cells {
                check_cell(c)?;
                let cell = &self.cells[c.index()];
                let d = (cell.width, cell.height, cell.region);
                match dims {
                    None => dims = Some(d),
                    Some(prev) if prev != d => {
                        return Err(ValidateDesignError::RaggedArray {
                            array: a.name.clone(),
                        })
                    }
                    _ => {}
                }
            }
            let bad_groups = || ValidateDesignError::BadCentroidGroups {
                array: a.name.clone(),
            };
            match &a.pattern {
                ArrayPattern::Dense => {}
                ArrayPattern::CommonCentroid { group_a, group_b } => {
                    let members: HashSet<_> = a.cells.iter().collect();
                    let in_array = group_a.iter().chain(group_b).all(|c| members.contains(c));
                    let disjoint = group_a.iter().all(|c| !group_b.contains(c));
                    if !in_array || !disjoint || group_a.is_empty() || group_b.is_empty() {
                        return Err(bad_groups());
                    }
                }
                ArrayPattern::Interdigitated { groups } => {
                    // Equal-size, disjoint groups exactly partitioning the array.
                    if groups.is_empty() || groups[0].is_empty() {
                        return Err(bad_groups());
                    }
                    let size = groups[0].len();
                    let mut seen: HashSet<CellId> = HashSet::new();
                    for g in groups {
                        if g.len() != size {
                            return Err(bad_groups());
                        }
                        for &c in g {
                            if !seen.insert(c) {
                                return Err(bad_groups());
                            }
                        }
                    }
                    let members: HashSet<_> = a.cells.iter().copied().collect();
                    if seen != members {
                        return Err(bad_groups());
                    }
                }
                ArrayPattern::CentralSymmetric { pairs } => {
                    let mut seen: HashSet<CellId> = HashSet::new();
                    for &(x, y) in pairs {
                        if x == y || !seen.insert(x) || !seen.insert(y) {
                            return Err(bad_groups());
                        }
                    }
                    let members: HashSet<_> = a.cells.iter().copied().collect();
                    if seen != members {
                        return Err(bad_groups());
                    }
                }
            }
        }

        for cl in &self.constraints.clusters {
            for &c in &cl.cells {
                check_cell(c)?;
            }
        }

        for e in &self.constraints.extensions {
            match e.target {
                ExtensionTarget::Cell(c) => check_cell(c)?,
                ExtensionTarget::Region(r) => {
                    if r.index() >= self.regions.len() {
                        return Err(ValidateDesignError::DanglingId {
                            what: "region",
                            index: r.index(),
                        });
                    }
                }
                ExtensionTarget::Array(i) => {
                    if i >= self.constraints.arrays.len() {
                        return Err(ValidateDesignError::DanglingId {
                            what: "array",
                            index: i,
                        });
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ClusterConstraint, SymmetryAxis, SymmetryGroup, SymmetryPair};

    fn two_cell_builder() -> (DesignBuilder, CellId, CellId) {
        let mut b = DesignBuilder::new("t");
        let r = b.add_region("core", 0.8);
        let pg = b.add_power_group("VDD");
        let n = b.add_net("n1", 1);
        let a = b.add_cell("a", r, 4, 2, pg);
        b.add_pin(a, "z", Some(n), 0, 0);
        let c = b.add_cell("b", r, 4, 2, pg);
        b.add_pin(c, "i", Some(n), 0, 0);
        (b, a, c)
    }

    #[test]
    fn minimal_build_succeeds() {
        let (b, _, _) = two_cell_builder();
        let d = b.build().expect("valid design");
        assert_eq!(d.cells().len(), 2);
        assert_eq!(d.net_degree(NetId::from_index(0)), 2);
        assert_eq!(d.total_cell_area(), 16);
    }

    #[test]
    fn duplicate_cell_name_rejected() {
        let (mut b, _, _) = two_cell_builder();
        let r = RegionId::from_index(0);
        let pg = PowerGroupId::from_index(0);
        b.add_cell("a", r, 2, 2, pg);
        assert!(matches!(
            b.build(),
            Err(ValidateDesignError::DuplicateName { what: "cell", .. })
        ));
    }

    #[test]
    fn mixed_heights_rejected() {
        let (mut b, _, _) = two_cell_builder();
        b.add_cell(
            "tall",
            RegionId::from_index(0),
            2,
            4,
            PowerGroupId::from_index(0),
        );
        assert!(matches!(
            b.build(),
            Err(ValidateDesignError::MixedRegionHeights { .. })
        ));
    }

    #[test]
    fn pin_outside_cell_rejected() {
        let (mut b, a, _) = two_cell_builder();
        b.add_pin(a, "bad", None, 9, 0);
        assert!(matches!(
            b.build(),
            Err(ValidateDesignError::PinOutsideCell { .. })
        ));
    }

    #[test]
    fn dangling_net_rejected() {
        let (mut b, a, _) = two_cell_builder();
        b.add_pin(a, "bad", Some(NetId::from_index(99)), 0, 0);
        assert!(matches!(
            b.build(),
            Err(ValidateDesignError::DanglingId { what: "net", .. })
        ));
    }

    #[test]
    fn single_pin_net_rejected() {
        let mut b = DesignBuilder::new("t");
        let r = b.add_region("core", 0.8);
        let pg = b.add_power_group("VDD");
        let n = b.add_net("lonely", 1);
        let a = b.add_cell("a", r, 4, 2, pg);
        b.add_pin(a, "z", Some(n), 0, 0);
        assert!(matches!(
            b.build(),
            Err(ValidateDesignError::UnderConnectedNet { .. })
        ));
    }

    #[test]
    fn asymmetric_pair_rejected() {
        let (mut b, a, _) = two_cell_builder();
        let odd = b.add_cell(
            "odd",
            RegionId::from_index(0),
            6,
            2,
            PowerGroupId::from_index(0),
        );
        b.add_symmetry(SymmetryGroup {
            name: "s".into(),
            axis: SymmetryAxis::Vertical,
            pairs: vec![SymmetryPair::mirrored(a, odd)],
            share_axis_with: None,
        });
        assert!(matches!(
            b.build(),
            Err(ValidateDesignError::AsymmetricPair { .. })
        ));
    }

    #[test]
    fn cluster_synthesizes_virtual_net() {
        let (mut b, a, c) = two_cell_builder();
        b.add_cluster(ClusterConstraint {
            name: "near".into(),
            cells: vec![a, c],
            weight: 8,
        });
        let d = b.build().expect("valid");
        assert_eq!(d.nets().len(), 2);
        let vnet = NetId::from_index(1);
        assert!(d.net(vnet).virtual_net);
        assert_eq!(d.net(vnet).weight, 8);
        assert_eq!(d.net_degree(vnet), 2);
        // without_constraints drops the virtual net's connectivity.
        let plain = d.without_constraints();
        assert_eq!(plain.net_degree(vnet), 0);
        assert!(plain.constraints().is_empty());
    }

    #[test]
    fn json_roundtrip() {
        let (b, _, _) = two_cell_builder();
        let d = b.build().expect("valid");
        let json = d.to_json();
        let back = Design::from_json(&json).expect("parse");
        assert_eq!(d, back);
    }

    #[test]
    fn priority_metric_matches_eq15() {
        let (b, a, _) = two_cell_builder();
        let d = b.build().expect("valid");
        // Cell a: 1 pin, net degree 2 → 10*1 + 1*2 = 12.
        assert_eq!(d.cell_priority(a), 12);
    }

    #[test]
    fn forward_symmetry_parent_reference_rejected() {
        let (mut b, a, c) = two_cell_builder();
        b.add_symmetry(SymmetryGroup {
            name: "s".into(),
            axis: SymmetryAxis::Vertical,
            pairs: vec![SymmetryPair::mirrored(a, c)],
            share_axis_with: Some(5),
        });
        assert!(matches!(
            b.build(),
            Err(ValidateDesignError::DanglingId {
                what: "symmetry group",
                ..
            })
        ));
    }
}

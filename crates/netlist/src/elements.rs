//! Cells, pins, nets, regions, and power groups.

use crate::ids::{NetId, PowerGroupId, RegionId};

/// A pin of a primitive cell.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Pin {
    /// Pin name, unique within the cell.
    pub name: String,
    /// The signal net this pin connects to; `None` for unconnected pins
    /// (they still count toward pin density).
    pub net: Option<NetId>,
    /// Offset of the pin from the cell's bottom-left corner, in grid units.
    pub dx: u32,
    /// Vertical offset from the bottom-left corner.
    pub dy: u32,
}

/// Role of a cell in the region-based layout methodology.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum CellKind {
    /// A functional layout primitive placed by the SMT engine.
    #[default]
    Primitive,
    /// An edge cell inserted at region boundaries during post-processing.
    Edge,
    /// A dummy filler cell inserted into leftover sites.
    Dummy,
}

/// A primitive cell: the basic building block of a region-based AMS layout.
#[derive(Clone, PartialEq, Debug)]
pub struct Cell {
    /// Cell (instance) name, unique within the design.
    pub name: String,
    /// Role of the cell.
    pub kind: CellKind,
    /// Width in grid units.
    pub width: u32,
    /// Height in grid units; all primitives of a region share this value.
    pub height: u32,
    /// Region the cell must be placed in.
    pub region: RegionId,
    /// Power group of the cell (drives power-abutment constraints).
    pub power_group: PowerGroupId,
    /// Signal pins.
    pub pins: Vec<Pin>,
}

impl Cell {
    /// Cell area in grid units.
    pub fn area(&self) -> u64 {
        u64::from(self.width) * u64::from(self.height)
    }

    /// Number of signal pins, the `|P(v)|` of the paper.
    pub fn pin_count(&self) -> usize {
        self.pins.len()
    }
}

/// A signal net.
#[derive(Clone, PartialEq, Debug)]
pub struct Net {
    /// Net name, unique within the design.
    pub name: String,
    /// Wirelength weight `η` used by the optimizer; cluster constraints
    /// add virtual nets with elevated weights.
    pub weight: u32,
    /// Whether this net was synthesized by a cluster constraint rather than
    /// present in the input netlist.
    pub virtual_net: bool,
}

/// A placement region grouping primitives with a common height.
#[derive(Clone, PartialEq, Debug)]
pub struct Region {
    /// Region name, unique within the design.
    pub name: String,
    /// User-specified utilization ratio `γ^ur` for this region (0, 1].
    pub utilization: f64,
    /// Reserved horizontal space for left/right edge cells (`D_x`).
    pub edge_x: u32,
    /// Reserved vertical space for bottom/top edge cells (`D_y`).
    pub edge_y: u32,
}

/// A power group (e.g. `VDD`, `VDDL`); cells of different groups must sit in
/// disjoint row bands.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct PowerGroup {
    /// Power-net name.
    pub name: String,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{PowerGroupId, RegionId};

    #[test]
    fn cell_area_and_pins() {
        let cell = Cell {
            name: "inv0".into(),
            kind: CellKind::Primitive,
            width: 4,
            height: 2,
            region: RegionId::from_index(0),
            power_group: PowerGroupId::from_index(0),
            pins: vec![
                Pin {
                    name: "a".into(),
                    net: None,
                    dx: 0,
                    dy: 1,
                },
                Pin {
                    name: "z".into(),
                    net: None,
                    dx: 3,
                    dy: 1,
                },
            ],
        };
        assert_eq!(cell.area(), 8);
        assert_eq!(cell.pin_count(), 2);
        assert_eq!(cell.kind, CellKind::Primitive);
    }
}

//! The defining property of the post-layout models: metrics must respond
//! to layout quality. Two surrogate layouts of the same circuit — one
//! compact, one spread out — must order consistently in every model.

use ams_netlist::benchmarks;
use ams_place::baseline::{manual_surrogate, BaselineConfig};
use ams_route::{route, RouterConfig};
use ams_sim::{analyze_buf, extract, Tech, VcoModel};

fn packed(utilization: f64) -> BaselineConfig {
    BaselineConfig {
        utilization,
        aspect_ratio: 1.0,
    }
}

#[test]
fn spread_buf_layout_is_slower_and_noisier() {
    let design = benchmarks::buf();
    let tech = Tech::n5();

    let tight = manual_surrogate(&design, packed(0.85));
    let loose = manual_surrogate(&design, packed(0.25));
    assert!(loose.area_grid() > tight.area_grid());

    let report = |placement: &ams_place::Placement| {
        let routed = route(&design, placement, RouterConfig::default());
        let nets = extract(&design, placement, &routed, &tech);
        analyze_buf(&design, &nets, &tech)
    };
    let rt = report(&tight);
    let rl = report(&loose);

    assert!(
        rl.total_avg_ps > rt.total_avg_ps,
        "longer wires must slow the paths: loose {} vs tight {}",
        rl.total_avg_ps,
        rt.total_avg_ps
    );
    // Rise/fall track the same RC growth.
    for (s_loose, s_tight) in rl.stages.iter().zip(&rt.stages) {
        assert!(s_loose.rise_avg_ps >= s_tight.rise_avg_ps * 0.9);
    }
}

#[test]
fn spread_vco_layout_oscillates_slower() {
    let design = benchmarks::vco();
    let tech = Tech::n5();

    let model_for = |utilization: f64| {
        let placement = manual_surrogate(&design, packed(utilization));
        let routed = route(&design, &placement, RouterConfig::default());
        let nets = extract(&design, &placement, &routed, &tech);
        VcoModel::from_layout(&design, &nets, tech)
    };
    let tight = model_for(0.85);
    let loose = model_for(0.25);

    assert!(
        loose.c_parasitic_per_stage > tight.c_parasitic_per_stage,
        "spread layout must extract more phase capacitance"
    );
    for v in [0.65, 0.75, 0.9] {
        let ft = tight.evaluate(v, 3).frequency_ghz;
        let fl = loose.evaluate(v, 3).frequency_ghz;
        assert!(
            fl < ft,
            "at {v} V: loose {fl} must be slower than tight {ft}"
        );
    }
}

#[test]
fn trim_code_dominates_over_layout_noise() {
    // The 3-bit trim range must exceed the layout-induced spread, as in
    // Fig. 7 where all code curves are cleanly separated.
    let design = benchmarks::vco();
    let tech = Tech::n5();
    let placement = manual_surrogate(&design, packed(0.6));
    let routed = route(&design, &placement, RouterConfig::default());
    let nets = extract(&design, &placement, &routed, &tech);
    let model = VcoModel::from_layout(&design, &nets, tech);

    let mut last = f64::INFINITY;
    for code in 0..=7 {
        let f = model.evaluate(0.75, code).frequency_ghz;
        assert!(
            f < last,
            "code {code} must be slower than code {}",
            code - 1
        );
        last = f;
    }
}

//! Analytic voltage-controlled-oscillator model (Table VI, Fig. 7).
//!
//! A current-starved differential ring: stage delay is `C·V_swing / I(V)`
//! with an α-power-law drive current, where the stage load `C` combines
//! device capacitance, the trim-code capacitor setting, and the *extracted
//! phase-node parasitics of the actual layout*. Layouts with longer phase
//! routes oscillate slower and burn the same `C·V²·f` power — the
//! relationship behind the paper's Table VI and Fig. 7.

use crate::extract::ExtractedNet;
use crate::tech::Tech;
use ams_netlist::Design;

/// Number of ring stages.
const STAGES: f64 = 4.0;
/// Relative differential swing.
const SWING: f64 = 0.70;
/// Device (self-load) capacitance per stage, F.
const C_DEVICE: f64 = 17.0e-15;
/// Trim capacitor unit (per thermometer step), F.
const C_TRIM_UNIT: f64 = 1.0e-15;
/// Fixed matching capacitor always in circuit, F.
const C_TRIM_FIXED: f64 = 1.0e-15;
/// Conduction duty of the starved branches (class-A-like ring: power is
/// `N · I_drive · V · duty`).
const DUTY: f64 = 0.47;
/// Static bias current, A per volt of supply.
const I_BIAS_PER_V: f64 = 5.5e-5;

/// One operating point of the VCO.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct VcoPoint {
    /// Supply voltage, V.
    pub supply_v: f64,
    /// Capacitor trim code (0..=7, thermometer steps engaged).
    pub trim_code: u32,
    /// Oscillation frequency, GHz.
    pub frequency_ghz: f64,
    /// Power consumption, µW.
    pub power_uw: f64,
}

/// The VCO behavioural model, parameterized by extracted layout parasitics.
#[derive(Clone, Debug, PartialEq)]
pub struct VcoModel {
    tech: Tech,
    /// Mean per-stage phase-node parasitic capacitance, F.
    pub c_parasitic_per_stage: f64,
    /// Mean per-stage wire resistance on the phase nodes, Ω.
    pub r_parasitic_per_stage: f64,
}

impl VcoModel {
    /// Builds the model from the extracted nets of a placed-and-routed VCO:
    /// averages the parasitics of the eight phase nets (`php*`/`phn*`).
    ///
    /// # Panics
    ///
    /// Panics if the design has no phase nets (use a
    /// [`ams_netlist::benchmarks::vco`] variant).
    pub fn from_layout(design: &Design, nets: &[Option<ExtractedNet>], tech: Tech) -> VcoModel {
        let mut c_sum = 0.0;
        let mut r_sum = 0.0;
        let mut count = 0usize;
        for n in design.net_ids() {
            let name = &design.net(n).name;
            if !(name.starts_with("php") || name.starts_with("phn")) {
                continue;
            }
            let Some(e) = nets[n.index()].as_ref() else {
                continue;
            };
            c_sum += e.capacitance;
            r_sum += e.wire_resistance;
            count += 1;
        }
        assert!(count > 0, "design has no phase nets");
        // Two phase nets (p and n) load each differential stage.
        VcoModel {
            tech,
            c_parasitic_per_stage: 2.0 * c_sum / count as f64,
            r_parasitic_per_stage: 2.0 * r_sum / count as f64,
        }
    }

    /// A parasitic-free model (schematic-level reference).
    pub fn ideal(tech: Tech) -> VcoModel {
        VcoModel {
            tech,
            c_parasitic_per_stage: 0.0,
            r_parasitic_per_stage: 0.0,
        }
    }

    /// Total per-stage load capacitance at a trim code.
    fn stage_capacitance(&self, trim_code: u32) -> f64 {
        let steps = f64::from(trim_code.min(7));
        C_DEVICE + C_TRIM_FIXED + steps * C_TRIM_UNIT + self.c_parasitic_per_stage
    }

    /// Evaluates one operating point.
    ///
    /// # Panics
    ///
    /// Panics unless `supply_v` exceeds the device threshold.
    pub fn evaluate(&self, supply_v: f64, trim_code: u32) -> VcoPoint {
        assert!(
            supply_v > self.tech.v_th,
            "supply {supply_v} V below threshold"
        );
        let c = self.stage_capacitance(trim_code);
        // α-power-law drive current of the gm device at this supply.
        let i_drive = self.tech.k_drive * (supply_v - self.tech.v_th).powf(self.tech.alpha);
        // Stage delay: slewing the load through the differential swing,
        // plus the distributed-RC settling of the phase route.
        let t_slew = c * (SWING * supply_v) / i_drive;
        let t_rc = 0.5 * self.r_parasitic_per_stage * self.c_parasitic_per_stage;
        let t_stage = t_slew + t_rc;
        let frequency = 1.0 / (2.0 * STAGES * t_stage);
        // Current-starved ring: the tail current conducts for a fixed duty
        // of the cycle regardless of frequency, plus the bias branch.
        let p_dyn = STAGES * i_drive * supply_v * DUTY;
        let p_bias = I_BIAS_PER_V * supply_v * supply_v;
        VcoPoint {
            supply_v,
            trim_code,
            frequency_ghz: frequency / 1e9,
            power_uw: (p_dyn + p_bias) * 1e6,
        }
    }

    /// Sweeps the paper's supply range (650–900 mV) at a trim code.
    pub fn supply_sweep(&self, trim_code: u32) -> Vec<VcoPoint> {
        [0.650, 0.700, 0.750, 0.800, 0.850, 0.900]
            .iter()
            .map(|&v| self.evaluate(v, trim_code))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> VcoModel {
        VcoModel::ideal(Tech::n5())
    }

    #[test]
    fn frequency_rises_with_supply() {
        let m = model();
        let pts = m.supply_sweep(3);
        for w in pts.windows(2) {
            assert!(w[1].frequency_ghz > w[0].frequency_ghz);
            assert!(w[1].power_uw > w[0].power_uw);
        }
    }

    #[test]
    fn frequency_falls_with_trim_code() {
        let m = model();
        let f0 = m.evaluate(0.75, 0).frequency_ghz;
        let f7 = m.evaluate(0.75, 7).frequency_ghz;
        assert!(f7 < f0, "more capacitance must slow the ring");
    }

    #[test]
    fn parasitics_slow_the_ring() {
        let ideal = model();
        let loaded = VcoModel {
            c_parasitic_per_stage: 2.0e-15,
            r_parasitic_per_stage: 300.0,
            ..model()
        };
        let fi = ideal.evaluate(0.75, 3).frequency_ghz;
        let fl = loaded.evaluate(0.75, 3).frequency_ghz;
        assert!(fl < fi);
    }

    #[test]
    fn nominal_point_is_in_the_papers_ballpark() {
        // The paper's w/-constraints layout runs ~3.5 GHz / ~500 µW at
        // 750 mV. With typical parasitics our constants land in the same
        // regime (this pins the calibration, not the claim).
        let loaded = VcoModel {
            c_parasitic_per_stage: 3.5e-15,
            r_parasitic_per_stage: 300.0,
            ..model()
        };
        let p = loaded.evaluate(0.75, 3);
        assert!(
            p.frequency_ghz > 2.5 && p.frequency_ghz < 4.5,
            "frequency {} GHz off-regime",
            p.frequency_ghz
        );
        assert!(
            p.power_uw > 300.0 && p.power_uw < 800.0,
            "power {} µW off-regime",
            p.power_uw
        );
    }

    #[test]
    #[should_panic(expected = "below threshold")]
    fn subthreshold_supply_panics() {
        model().evaluate(0.2, 0);
    }
}

//! # ams-sim
//!
//! Post-layout analysis substrate standing in for the parasitic extraction
//! and SPICE simulation of the paper's evaluation:
//!
//! * [`extract`] — per-net RC from the routed geometry (wire/via/pin),
//!   including per-sink resistive paths through the route tree;
//! * timing ([`analyze_buf`]) — Elmore-delay analysis of the multiplexing
//!   buffer's 16 input-to-output paths (Table IV: per-stage insertion delay
//!   and rise/fall statistics);
//! * [`VcoModel`] — an α-power-law current-starved ring-oscillator model whose
//!   load includes the extracted phase-node parasitics (Table VI power and
//!   frequency vs. supply; Fig. 7 frequency vs. supply per trim code).
//!
//! Absolute numbers are governed by the representative [`Tech`] constants;
//! the reproduction's claims live in the *relative* behaviour between
//! layouts, which derives entirely from extracted geometry.

mod extract;
mod tech;
mod timing;
mod vco;

pub use extract::{extract, is_output_pin, ExtractedNet, SinkPath};
pub use tech::Tech;
pub use timing::{analyze_buf, BufTimingReport, StageTiming};
pub use vco::{VcoModel, VcoPoint};

//! Parasitic extraction from routed geometry.
//!
//! Builds, per net, the total wire capacitance and the per-sink path
//! resistance through the actual route tree (walking the
//! [`ams_route::NetRoute`] segments), so downstream Elmore timing sees the
//! layout differences between placements.

use crate::tech::Tech;
use ams_netlist::{CellId, Design, NetId};
use ams_place::Placement;
use ams_route::{is_horizontal, Node, RouteResult};
use std::collections::HashMap;

/// Extracted parasitics of one sink pin.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SinkPath {
    /// The sink cell.
    pub cell: CellId,
    /// Pin index within the cell.
    pub pin: usize,
    /// Resistance from the driver pin to this sink along the route, in Ω.
    pub resistance: f64,
}

/// Extracted parasitics of one net.
#[derive(Clone, Debug, PartialEq)]
pub struct ExtractedNet {
    /// Total wire + via + sink-pin capacitance, in F.
    pub capacitance: f64,
    /// Total routed wire resistance, in Ω.
    pub wire_resistance: f64,
    /// The driving pin `(cell, pin index)`, by output-name convention.
    pub driver: (CellId, usize),
    /// Per-sink resistive paths.
    pub sinks: Vec<SinkPath>,
}

/// Pin-direction heuristic: generator cells name their outputs following
/// this convention.
pub fn is_output_pin(name: &str) -> bool {
    name == "z"
        || name == "q"
        || name.starts_with("out")
        || name == "vb"
        || name == "sense"
        || name == "mir"
}

/// Extracts every physical net; `None` for virtual or unrouted nets.
pub fn extract(
    design: &Design,
    placement: &Placement,
    routes: &RouteResult,
    tech: &Tech,
) -> Vec<Option<ExtractedNet>> {
    design
        .net_ids()
        .map(|n| extract_net(design, placement, routes, tech, n))
        .collect()
}

fn pin_node(design: &Design, placement: &Placement, c: CellId, pi: usize) -> Node {
    let pin = &design.cell(c).pins[pi];
    let r = placement.cells[c.index()];
    Node::new(0, (r.x + pin.dx) as u16, (r.y + pin.dy) as u16)
}

fn extract_net(
    design: &Design,
    placement: &Placement,
    routes: &RouteResult,
    tech: &Tech,
    n: NetId,
) -> Option<ExtractedNet> {
    if design.net(n).virtual_net {
        return None;
    }
    let conns = design.net_connections(n);
    if conns.len() < 2 {
        return None;
    }
    let route = &routes.nets[n.index()];

    // Capacitance: every wire segment, via, and sink pin.
    let mut capacitance = 0.0;
    let mut wire_resistance = 0.0;
    for &(a, _) in &route.wires {
        if is_horizontal(a.layer) {
            capacitance += tech.c_per_track_x;
            wire_resistance += tech.r_per_track_x;
        } else {
            capacitance += tech.c_per_track_y;
            wire_resistance += tech.r_per_track_y;
        }
    }
    capacitance += route.vias.len() as f64 * tech.c_via;
    capacitance += conns.len() as f64 * tech.c_pin;

    // Driver selection by the output-pin naming convention; falls back to
    // the first connection.
    let driver = conns
        .iter()
        .copied()
        .find(|&(c, pi)| is_output_pin(&design.cell(c).pins[pi].name))
        .unwrap_or(conns[0]);

    // Per-sink resistance: BFS over the route graph from the driver node.
    let mut adjacency: HashMap<Node, Vec<(Node, f64)>> = HashMap::new();
    let mut connect = |a: Node, b: Node, r: f64| {
        adjacency.entry(a).or_default().push((b, r));
        adjacency.entry(b).or_default().push((a, r));
    };
    for &(a, b) in &route.wires {
        let r = if is_horizontal(a.layer) {
            tech.r_per_track_x
        } else {
            tech.r_per_track_y
        };
        connect(a, b, r);
    }
    for &v in &route.vias {
        let upper = Node::new(v.layer + 1, v.x, v.y);
        connect(v, upper, tech.r_via);
    }

    let source = pin_node(design, placement, driver.0, driver.1);
    let mut dist: HashMap<Node, f64> = HashMap::new();
    dist.insert(source, 0.0);
    // Route graphs are trees (or near-trees); a simple relaxation queue
    // suffices.
    let mut queue = vec![source];
    while let Some(node) = queue.pop() {
        let d = dist[&node];
        if let Some(edges) = adjacency.get(&node) {
            for &(next, r) in edges {
                let nd = d + r;
                if dist.get(&next).is_none_or(|&old| nd < old) {
                    dist.insert(next, nd);
                    queue.push(next);
                }
            }
        }
    }

    let sinks = conns
        .iter()
        .copied()
        .filter(|&p| p != driver)
        .map(|(c, pi)| {
            let node = pin_node(design, placement, c, pi);
            // Unreached sinks (unrouted nets) see the full wire resistance.
            let resistance = dist.get(&node).copied().unwrap_or(wire_resistance);
            SinkPath {
                cell: c,
                pin: pi,
                resistance,
            }
        })
        .collect();

    Some(ExtractedNet {
        capacitance,
        wire_resistance,
        driver,
        sinks,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_name_convention() {
        assert!(is_output_pin("z"));
        assert!(is_output_pin("out"));
        assert!(is_output_pin("outp"));
        assert!(!is_output_pin("in"));
        assert!(!is_output_pin("a"));
        assert!(!is_output_pin("pad"));
    }
}

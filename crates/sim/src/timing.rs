//! Elmore-delay timing analysis of the multiplexing buffer (Table IV).
//!
//! Each of the 16 input-to-output paths is traced through the netlist
//! (receiver → four mux stages → output buffer); stage delays are
//! first-order Elmore terms over the extracted RC, so layouts with longer
//! or more lopsided routes show higher averages and higher variability —
//! the effect the paper's Table IV quantifies.

use crate::extract::{is_output_pin, ExtractedNet};
use crate::tech::Tech;
use ams_netlist::{CellId, Design, NetId};

/// ln(2) · 1e12 — Elmore to 50%-point delay, expressed in ps per (Ω·F).
const LN2_PS: f64 = 0.693 * 1e12;
/// 10%–90% rise-time factor.
const RISE_PS: f64 = 2.2 * 1e12;

/// Aggregate timing of one logical stage across all traced paths.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct StageTiming {
    /// Mean insertion delay, ps.
    pub delay_avg_ps: f64,
    /// Standard deviation of the insertion delay across paths, ps.
    pub delay_sd_ps: f64,
    /// Mean rise time, ps.
    pub rise_avg_ps: f64,
    /// Mean fall time, ps.
    pub fall_avg_ps: f64,
    /// Standard deviation of rise time, ps.
    pub rise_sd_ps: f64,
    /// Standard deviation of fall time, ps.
    pub fall_sd_ps: f64,
}

/// Full Table-IV style report.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct BufTimingReport {
    /// Internal mux stages 1..=4.
    pub stages: Vec<StageTiming>,
    /// The output buffer chain.
    pub out: StageTiming,
    /// Total insertion delay (avg, sd) over full paths, ps.
    pub total_avg_ps: f64,
    /// Standard deviation of the total across the 16 paths.
    pub total_sd_ps: f64,
}

/// One hop of a traced path: a cell driving a net.
#[derive(Clone, Copy, Debug, PartialEq)]
struct Hop {
    cell: CellId,
    net: NetId,
    sink_resistance: f64,
}

/// Analyzes the BUF benchmark's 16 paths.
///
/// `nets` comes from [`crate::extract::extract`]. Cells are grouped into
/// stages by the generator's naming convention (`m1_*` … `m4_*`, `ob*`).
///
/// # Panics
///
/// Panics if the design lacks the BUF structure (use it on
/// [`ams_netlist::benchmarks::buf`] variants).
pub fn analyze_buf(design: &Design, nets: &[Option<ExtractedNet>], tech: &Tech) -> BufTimingReport {
    // Paths: for each primary input i, hop receiver -> m1 -> m2 -> m3 ->
    // m4 -> ob1 -> ob2 -> ob3. Stage k delay = delay of the hop whose
    // driver is the stage-(k-1) cell (i.e. the net between stages).
    let mut per_stage: Vec<Vec<f64>> = vec![Vec::new(); 4];
    let mut per_stage_rise: Vec<Vec<f64>> = vec![Vec::new(); 4];
    let mut per_stage_fall: Vec<Vec<f64>> = vec![Vec::new(); 4];
    let mut totals: Vec<f64> = Vec::new();
    let mut out_delays: Vec<f64> = Vec::new();
    let mut out_rise: Vec<f64> = Vec::new();
    let mut out_fall: Vec<f64> = Vec::new();

    for input in 0..16 {
        let Some(path) = trace_path(design, nets, input) else {
            continue;
        };
        let mut total = 0.0;
        for (hi, hop) in path.iter().enumerate() {
            let (d, r, f) = hop_delay(design, nets, tech, *hop);
            total += d;
            match hi {
                // Hops 0..4 leave the receiver and the four mux stages;
                // hop 0 (receiver→m1) folds into stage 1's input network.
                0 | 1 => {
                    if hi == 1 {
                        per_stage[0].push(total);
                        per_stage_rise[0].push(r);
                        per_stage_fall[0].push(f);
                        total = 0.0;
                    }
                }
                2..=4 => {
                    per_stage[hi - 1].push(d);
                    per_stage_rise[hi - 1].push(r);
                    per_stage_fall[hi - 1].push(f);
                }
                _ => {
                    out_delays.push(d);
                    out_rise.push(r);
                    out_fall.push(f);
                }
            }
        }
        // Total = everything along the path.
        let full: f64 = path
            .iter()
            .map(|&h| hop_delay(design, nets, tech, h).0)
            .sum();
        totals.push(full);
    }

    let stage_report = |ds: &[f64], rs: &[f64], fs: &[f64]| StageTiming {
        delay_avg_ps: mean(ds),
        delay_sd_ps: sd(ds),
        rise_avg_ps: mean(rs),
        fall_avg_ps: mean(fs),
        rise_sd_ps: sd(rs),
        fall_sd_ps: sd(fs),
    };

    // The buffer chain contributes three hops per path; group them as the
    // single OUT row (delays summed per path).
    let out_per_path: Vec<f64> = out_delays.chunks(3).map(|c| c.iter().sum()).collect();
    let out_rise_pp: Vec<f64> = out_rise.chunks(3).map(mean).collect();
    let out_fall_pp: Vec<f64> = out_fall.chunks(3).map(mean).collect();

    BufTimingReport {
        stages: (0..4)
            .map(|s| stage_report(&per_stage[s], &per_stage_rise[s], &per_stage_fall[s]))
            .collect(),
        out: stage_report(&out_per_path, &out_rise_pp, &out_fall_pp),
        total_avg_ps: mean(&totals),
        total_sd_ps: sd(&totals),
    }
}

/// Follows input `i` to the output; returns the hop list
/// (driver cell, net, sink path resistance).
fn trace_path(design: &Design, nets: &[Option<ExtractedNet>], input: usize) -> Option<Vec<Hop>> {
    // Start at the receiver output net (the net the `rcv`/`drcv` drives).
    let start_cell = design
        .cells()
        .iter()
        .position(|c| c.name == format!("drcv{input}") || c.name == format!("rcv{input}"))?;
    let mut cell = CellId::from_index(start_cell);
    let mut hops = Vec::new();
    loop {
        // The cell's primary output net ("outp" for differential receivers,
        // otherwise the output-convention pin driving a real net).
        let out_net = design.cell(cell).pins.iter().find_map(|p| {
            if (p.name == "outp" || is_output_pin(&p.name)) && p.net.is_some() {
                p.net
            } else {
                None
            }
        })?;
        // Next consumer along the datapath: a mux or buffer stage.
        let next = design
            .net_connections(out_net)
            .iter()
            .copied()
            .find(|&(c, pi)| {
                c != cell
                    && !is_output_pin(&design.cell(c).pins[pi].name)
                    && matches!(design.cell(c).name.chars().next(), Some('m') | Some('o'))
            });
        let sink_resistance = next
            .and_then(|(c, pi)| {
                nets[out_net.index()].as_ref().and_then(|e| {
                    e.sinks
                        .iter()
                        .find(|s| s.cell == c && s.pin == pi)
                        .map(|s| s.resistance)
                })
            })
            .unwrap_or(0.0);
        hops.push(Hop {
            cell,
            net: out_net,
            sink_resistance,
        });
        match next {
            Some((c, _)) => cell = c,
            None => break, // reached the block output
        }
        if hops.len() > 16 {
            return None; // defensive: no cycles expected
        }
    }
    Some(hops)
}

/// Elmore delay and rise/fall of one hop, in ps.
fn hop_delay(
    design: &Design,
    nets: &[Option<ExtractedNet>],
    tech: &Tech,
    hop: Hop,
) -> (f64, f64, f64) {
    let Some(net) = nets[hop.net.index()].as_ref() else {
        return (0.0, 0.0, 0.0);
    };
    // Drive strength scales with cell width (wider primitives = stronger).
    let width = f64::from(design.cell(hop.cell).width).max(1.0);
    let r_drv = tech.r_drive_unit / width;
    let c_load = net.capacitance;
    let rc = r_drv * c_load + hop.sink_resistance * 0.5 * c_load;
    let delay = tech.t_intrinsic_ps + LN2_PS * rc;
    let rise = 0.8 * tech.t_intrinsic_ps + RISE_PS * rc * tech.r_asym;
    let fall = 0.8 * tech.t_intrinsic_ps + RISE_PS * rc / tech.r_asym;
    (delay, rise, fall)
}

fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

fn sd(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_sd() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert!(sd(&[5.0, 5.0, 5.0]) < 1e-12);
        assert!((sd(&[1.0, 3.0]) - 1.0).abs() < 1e-12);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(sd(&[1.0]), 0.0);
    }
}

//! Technology constants of the simulated N5-class process.
//!
//! These stand in for the foundry extraction deck and SPICE models the
//! paper's post-layout analysis used. Absolute values are representative,
//! not foundry data; what the reproduction relies on is only that delays
//! and oscillation frequency respond to routed parasitics the way
//! first-order RC physics dictates.

/// Interconnect and device constants.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Tech {
    /// Wire resistance per horizontal track, in Ω.
    pub r_per_track_x: f64,
    /// Wire resistance per vertical track (wider pitch, thicker metal).
    pub r_per_track_y: f64,
    /// Wire capacitance per horizontal track, in F.
    pub c_per_track_x: f64,
    /// Wire capacitance per vertical track.
    pub c_per_track_y: f64,
    /// Resistance of one via, in Ω.
    pub r_via: f64,
    /// Capacitance of one via, in F.
    pub c_via: f64,
    /// Input (gate) capacitance per pin, in F.
    pub c_pin: f64,
    /// Drive resistance of a minimum-width (one grid unit) device, in Ω;
    /// a cell of scaled width `w` drives with `r_drive_unit / w`.
    pub r_drive_unit: f64,
    /// PMOS/NMOS drive asymmetry: rise uses `r · r_asym`, fall `r / r_asym`.
    pub r_asym: f64,
    /// Threshold voltage, in V (α-power-law device model).
    pub v_th: f64,
    /// Velocity-saturation exponent α of the drive current law.
    pub alpha: f64,
    /// Drive-current coefficient, in A/V^α per unit width.
    pub k_drive: f64,
    /// Intrinsic (unloaded) stage delay per logic hop, in ps.
    pub t_intrinsic_ps: f64,
}

impl Tech {
    /// Representative N5-class constants.
    pub fn n5() -> Tech {
        Tech {
            r_per_track_x: 18.0,
            r_per_track_y: 9.0,
            c_per_track_x: 0.019e-15,
            c_per_track_y: 0.032e-15,
            r_via: 12.0,
            c_via: 0.01e-15,
            c_pin: 0.055e-15,
            r_drive_unit: 8.0e3,
            r_asym: 1.08,
            v_th: 0.32,
            alpha: 1.10,
            k_drive: 0.9e-3,
            t_intrinsic_ps: 7.0,
        }
    }
}

impl Default for Tech {
    fn default() -> Tech {
        Tech::n5()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_are_physical() {
        let t = Tech::n5();
        assert!(t.r_per_track_x > 0.0 && t.c_per_track_x > 0.0);
        assert!(t.v_th > 0.0 && t.v_th < 0.65, "Vth below min supply");
        assert!(t.alpha > 1.0 && t.alpha < 2.0);
    }
}

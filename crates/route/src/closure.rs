//! The concrete place → route → feedback closure driver.
//!
//! `ams_place::closure::close` owns the loop but is router-agnostic — it
//! only sees a feedback callback. This module plugs in *this* crate's
//! router: route the candidate placement, fold the result onto the
//! placement's probe windows ([`crate::window_congestion`]), and hand the
//! per-window overflow back so the loop can tighten the pin-density λ of
//! exactly the hot windows (via their constraint provenance) and re-solve
//! incrementally.

use crate::congestion;
use crate::router::{route, RouterConfig};
use ams_netlist::Design;
use ams_place::closure::{close, ClosureConfig, ClosureStats, RouteFeedback, WindowRect};
use ams_place::{PlaceError, Placement, PlacerConfig};

/// Routes `placement` and extracts the per-window feedback document the
/// closure loop consumes.
pub fn route_feedback(
    design: &Design,
    placement: &Placement,
    windows: &[WindowRect],
    router: RouterConfig,
) -> RouteFeedback {
    let result = route(design, placement, router);
    congestion::route_feedback(&result, windows)
}

/// Runs the full routing-closure loop: place, route, tighten the
/// pin-density bound of routing-hot windows, re-solve incrementally, until
/// the routing is overflow-free or the iteration budget expires.
///
/// The returned placement carries the loop summary in
/// `stats.closure`; `stats.drc_clean` reports whether the *final* routing
/// pass was overflow-free.
pub fn close_placement(
    design: &Design,
    config: PlacerConfig,
    opts: &ClosureConfig,
    router: RouterConfig,
) -> Result<(Placement, ClosureStats), PlaceError> {
    close(design, config, opts, |design, placement, windows| {
        route_feedback(design, placement, windows, router)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ams_netlist::benchmarks;
    use ams_place::closure::probe_windows;

    fn quick_config() -> PlacerConfig {
        let mut config = PlacerConfig::fast();
        config.optimize.k_iter = 1;
        config.optimize.conflict_budget = Some(20_000);
        config
    }

    #[test]
    fn feedback_windows_parallel_the_probe_windows() {
        let design = benchmarks::buf();
        let placement = ams_place::Placer::builder(&design)
            .config(quick_config())
            .build()
            .unwrap()
            .place()
            .unwrap();
        let probe = probe_windows(&placement);
        let fb = route_feedback(&design, &placement, &probe.rects, RouterConfig::default());
        assert_eq!(fb.window_overflow.len(), probe.rects.len());
    }
}

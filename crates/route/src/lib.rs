//! # ams-route
//!
//! A gridded, congestion-negotiated analog detail router — the substrate
//! standing in for the analog router (ref. \[18\]) the paper uses to measure
//! routed wirelength (RWL) and via counts of its placements.
//!
//! Three alternating-direction layers (H–V–H), unit edge capacity,
//! multi-terminal nets grown terminal-by-terminal with Dijkstra search, and
//! PathFinder-style rip-up-and-reroute on over-used edges.
//!
//! ## Example
//!
//! ```no_run
//! use ams_netlist::benchmarks;
//! use ams_place::{Placer, PlacerConfig};
//! use ams_route::{route, RouterConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let design = benchmarks::buf();
//! let placement = Placer::builder(&design)
//!     .config(PlacerConfig::fast())
//!     .build()?
//!     .place()?;
//! let routed = route(&design, &placement, RouterConfig::default());
//! println!("RWL = {} tracks, {} vias", routed.wirelength, routed.vias);
//! # Ok(())
//! # }
//! ```

mod closure;
mod congestion;
mod grid;
mod router;

pub use closure::{close_placement, route_feedback};
pub use congestion::{window_congestion, WindowCongestion};
pub use grid::{is_horizontal, Node, RouteGrid, Step, LAYERS};
pub use router::{route, NetRoute, OverflowEdge, RouteResult, RouterConfig};

//! Negotiated-congestion multi-terminal grid routing.
//!
//! Stand-in for the analog detail router of the paper's ref. [18]: each net
//! is routed terminal-by-terminal onto its growing route tree with
//! Dijkstra search; overflowing edges are penalized and their nets ripped
//! up and rerouted (PathFinder-style) until congestion clears or the
//! iteration limit is reached.

use crate::grid::{is_horizontal, Node, RouteGrid, Step, LAYERS};
use ams_netlist::{Design, NetId, Pitch};
use ams_place::Placement;
use std::collections::{BinaryHeap, HashMap, HashSet};

/// Router tuning parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RouterConfig {
    /// Cost of one via (the paper reports via counts; typical detail
    /// routers price a via at 2–4 track segments).
    pub via_cost: u32,
    /// Penalty added per unit of present over-use during search.
    pub congestion_penalty: u32,
    /// Maximum rip-up-and-reroute rounds.
    pub max_iterations: usize,
    /// Routing tracks per unit edge (a placement grid unit spans several
    /// metal tracks in an N5-class stack).
    pub capacity: u8,
}

impl Default for RouterConfig {
    fn default() -> RouterConfig {
        RouterConfig {
            via_cost: 3,
            congestion_penalty: 16,
            max_iterations: 16,
            capacity: 2,
        }
    }
}

/// The routed geometry of one net.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct NetRoute {
    /// Wire segments as (from, to) node pairs on the same layer.
    pub wires: Vec<(Node, Node)>,
    /// Via locations as the lower-layer node.
    pub vias: Vec<Node>,
}

impl NetRoute {
    /// Total wire length in tracks.
    pub fn wirelength(&self) -> u64 {
        self.wires.len() as u64
    }

    /// Horizontal/vertical split of the wirelength, for anisotropic pitch.
    pub fn wirelength_xy(&self) -> (u64, u64) {
        let mut x = 0;
        let mut y = 0;
        for &(a, _) in &self.wires {
            if is_horizontal(a.layer) {
                x += 1;
            } else {
                y += 1;
            }
        }
        (x, y)
    }
}

/// An edge left over capacity after the final negotiation round.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OverflowEdge {
    /// Owner node of the edge (its minimum endpoint).
    pub node: Node,
    /// The step out of the owner: a preferred-direction wire or a via.
    pub step: Step,
    /// Usage beyond capacity (≥ 1).
    pub overuse: u8,
}

/// Result of routing a placed design.
///
/// Derives `Eq`: two runs over the same placement must produce
/// bit-identical results (net order, search tie-breaking, and overflow
/// enumeration are all deterministic), and the router property suite pins
/// that.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RouteResult {
    /// Per-net routes, indexed by net id (empty for skipped nets).
    pub nets: Vec<NetRoute>,
    /// Total routed wirelength in tracks.
    pub wirelength: u64,
    /// Total via count.
    pub vias: u64,
    /// Edges still over capacity after the final iteration (0 = clean).
    pub overflow: usize,
    /// The over-capacity edges behind `overflow`, in deterministic dense
    /// grid order — the input to per-window congestion extraction
    /// ([`crate::window_congestion`]).
    pub overflow_edges: Vec<OverflowEdge>,
    /// Rip-up-and-reroute rounds used.
    pub iterations: usize,
}

impl RouteResult {
    /// Routed wirelength in µm under the given pitch.
    pub fn wirelength_um(&self, pitch: Pitch) -> f64 {
        let (x, y) = self.nets.iter().fold((0, 0), |(ax, ay), n| {
            let (x, y) = n.wirelength_xy();
            (ax + x, ay + y)
        });
        pitch.x_um(x) + pitch.y_um(y)
    }
}

/// Routes every physical net of a placed design.
///
/// # Panics
///
/// Panics if a pin lies outside the placement die.
pub fn route(design: &Design, placement: &Placement, config: RouterConfig) -> RouteResult {
    let mut ctx = Router::new(design, placement, config);
    ctx.run()
}

struct Router<'a> {
    design: std::marker::PhantomData<&'a Design>,
    config: RouterConfig,
    grid: RouteGrid,
    terminals: Vec<Vec<Node>>,
    order: Vec<NetId>,
    routes: Vec<NetRoute>,
}

impl<'a> Router<'a> {
    fn new(design: &'a Design, placement: &'a Placement, config: RouterConfig) -> Router<'a> {
        let grid = RouteGrid::new(
            (placement.die.w + 1).min(u32::from(u16::MAX)) as u16,
            (placement.die.h + 1).min(u32::from(u16::MAX)) as u16,
            config.capacity,
        );
        // Terminals: one layer-0 node per pin, deduplicated per net.
        let mut terminals: Vec<Vec<Node>> = vec![Vec::new(); design.nets().len()];
        for n in design.net_ids() {
            if design.net(n).virtual_net {
                continue;
            }
            let mut seen = HashSet::new();
            for &(c, pi) in design.net_connections(n) {
                let pin = &design.cell(c).pins[pi];
                let r = placement.cells[c.index()];
                let node = Node::new(0, (r.x + pin.dx) as u16, (r.y + pin.dy) as u16);
                assert!(grid.contains(node), "pin off the routing grid");
                if seen.insert(node) {
                    terminals[n.index()].push(node);
                }
            }
        }
        // Net order: heavier and shorter nets first. The trailing net-id
        // key makes the order total, so routing is bit-for-bit
        // reproducible — the closure loop and the result cache both rely
        // on it, and `tests/router_prop.rs` pins it.
        let mut order: Vec<NetId> = design
            .net_ids()
            .filter(|&n| terminals[n.index()].len() >= 2)
            .collect();
        order.sort_by_key(|&n| {
            let ts = &terminals[n.index()];
            let span: u64 = ts.iter().map(|t| t.point().manhattan(ts[0].point())).sum();
            (std::cmp::Reverse(design.net(n).weight), span, n)
        });
        Router {
            design: std::marker::PhantomData,
            config,
            grid,
            terminals,
            order,
            routes: vec![NetRoute::default(); design.nets().len()],
        }
    }

    fn run(&mut self) -> RouteResult {
        let mut iterations = 0;
        for round in 0..self.config.max_iterations {
            iterations = round + 1;
            if round == 0 {
                for i in 0..self.order.len() {
                    let n = self.order[i];
                    self.route_net(n);
                }
            } else {
                // Rip up and reroute nets crossing over-used edges.
                let victims = self.overflow_victims();
                if victims.is_empty() {
                    break;
                }
                self.grid.penalize_overuse();
                for &n in &victims {
                    self.unroute_net(n);
                }
                for &n in &victims {
                    self.route_net(n);
                }
            }
            if self.grid.overflow() == 0 {
                break;
            }
        }
        let mut result = RouteResult {
            nets: std::mem::take(&mut self.routes),
            overflow: self.grid.overflow(),
            overflow_edges: self
                .grid
                .overflow_edges()
                .into_iter()
                .map(|(node, step, overuse)| OverflowEdge {
                    node,
                    step,
                    overuse,
                })
                .collect(),
            iterations,
            ..RouteResult::default()
        };
        for r in &result.nets {
            result.wirelength += r.wirelength();
            result.vias += r.vias.len() as u64;
        }
        result
    }

    fn overflow_victims(&self) -> Vec<NetId> {
        let mut victims = Vec::new();
        for &n in &self.order {
            let route = &self.routes[n.index()];
            let crosses = route
                .wires
                .iter()
                .any(|&(a, _)| self.grid.overuse(a, wire_step(a)) > 0)
                || route
                    .vias
                    .iter()
                    .any(|&v| self.grid.overuse(v, Step::Via) > 0);
            if crosses {
                victims.push(n);
            }
        }
        victims
    }

    fn unroute_net(&mut self, n: NetId) {
        let route = std::mem::take(&mut self.routes[n.index()]);
        for (a, _) in route.wires {
            self.grid.release(a, wire_step(a));
        }
        for v in route.vias {
            self.grid.release(v, Step::Via);
        }
    }

    /// Routes one net: grow a tree from the first terminal, connecting each
    /// remaining terminal by a cheapest path to the current tree.
    fn route_net(&mut self, n: NetId) {
        let terminals = self.terminals[n.index()].clone();
        debug_assert!(terminals.len() >= 2);
        let mut tree: HashSet<Node> = HashSet::new();
        tree.insert(terminals[0]);
        let mut route = NetRoute::default();

        for &t in &terminals[1..] {
            if tree.contains(&t) {
                continue;
            }
            match self.search(&tree, t) {
                Some(path) => {
                    for w in path.windows(2) {
                        let (a, b) = (w[0], w[1]);
                        tree.insert(a);
                        tree.insert(b);
                        if a.layer == b.layer {
                            let owner = edge_owner(a, b);
                            self.grid.occupy(owner, wire_step(owner));
                            route.wires.push((owner, other_end(owner, b, a)));
                        } else {
                            let lower = if a.layer < b.layer { a } else { b };
                            self.grid.occupy(lower, Step::Via);
                            route.vias.push(lower);
                        }
                    }
                }
                None => {
                    // Disconnected terminal (should not happen on an open
                    // grid); leave it — overflow accounting will show it.
                }
            }
        }
        self.routes[n.index()] = route;
    }

    /// Dijkstra from the target terminal back to any tree node.
    fn search(&self, tree: &HashSet<Node>, from: Node) -> Option<Vec<Node>> {
        #[derive(PartialEq, Eq)]
        struct Entry(u64, Node);
        impl Ord for Entry {
            fn cmp(&self, other: &Self) -> std::cmp::Ordering {
                other.0.cmp(&self.0).then_with(|| other.1.cmp(&self.1))
            }
        }
        impl PartialOrd for Entry {
            fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
                Some(self.cmp(other))
            }
        }

        let mut dist: HashMap<Node, u64> = HashMap::new();
        let mut prev: HashMap<Node, Node> = HashMap::new();
        let mut heap = BinaryHeap::new();
        dist.insert(from, 0);
        heap.push(Entry(0, from));

        while let Some(Entry(d, node)) = heap.pop() {
            if tree.contains(&node) {
                // Reconstruct path from the tree node back to `from`.
                let mut path = vec![node];
                let mut cur = node;
                while let Some(&p) = prev.get(&cur) {
                    path.push(p);
                    cur = p;
                }
                return Some(path);
            }
            if d > *dist.get(&node).unwrap_or(&u64::MAX) {
                continue;
            }
            for (next, owner, step) in self.expansions(node) {
                let cost = d + self.edge_cost(owner, step);
                if cost < *dist.get(&next).unwrap_or(&u64::MAX) {
                    dist.insert(next, cost);
                    prev.insert(next, node);
                    heap.push(Entry(cost, next));
                }
            }
        }
        None
    }

    /// All undirected expansions from a node: forward edges it owns plus
    /// backward edges owned by its negative-direction neighbors.
    fn expansions(&self, node: Node) -> Vec<(Node, Node, Step)> {
        let mut out = Vec::with_capacity(4);
        // Forward wire.
        if let Some(next) = self.grid.neighbor(node, Step::East) {
            out.push((next, node, Step::East));
        }
        if let Some(next) = self.grid.neighbor(node, Step::North) {
            out.push((next, node, Step::North));
        }
        // Backward wire (edge owned by the neighbor).
        if is_horizontal(node.layer) && node.x > 0 {
            let west = Node::new(node.layer, node.x - 1, node.y);
            out.push((west, west, Step::East));
        }
        if !is_horizontal(node.layer) && node.y > 0 {
            let south = Node::new(node.layer, node.x, node.y - 1);
            out.push((south, south, Step::North));
        }
        // Vias up and down.
        if node.layer + 1 < LAYERS as u8 {
            out.push((Node::new(node.layer + 1, node.x, node.y), node, Step::Via));
        }
        if node.layer > 0 {
            let below = Node::new(node.layer - 1, node.x, node.y);
            out.push((below, below, Step::Via));
        }
        out
    }

    fn edge_cost(&self, owner: Node, step: Step) -> u64 {
        let base = match step {
            Step::Via => u64::from(self.config.via_cost),
            _ => 1,
        };
        let usage = u64::from(self.grid.usage(owner, step));
        let capacity = u64::from(self.grid.capacity());
        let history = u64::from(self.grid.history(owner, step));
        let present = if usage >= capacity {
            u64::from(self.config.congestion_penalty) * (usage - capacity + 1)
        } else {
            0
        };
        base + present + history
    }
}

fn wire_step(owner: Node) -> Step {
    if is_horizontal(owner.layer) {
        Step::East
    } else {
        Step::North
    }
}

fn edge_owner(a: Node, b: Node) -> Node {
    debug_assert_eq!(a.layer, b.layer);
    if (a.x, a.y) <= (b.x, b.y) {
        a
    } else {
        b
    }
}

fn other_end(owner: Node, b: Node, a: Node) -> Node {
    if owner == a {
        b
    } else {
        a
    }
}

//! Per-window congestion extraction from a routing result.
//!
//! The closure loop ([`ams_place::closure`]) thinks in pin-density check
//! windows; the router thinks in edges. This module aggregates a
//! [`RouteResult`] onto an arbitrary window list — for closure, the
//! placement's probe windows ([`ams_place::closure::probe_windows`]), so
//! window `i` of the output lines up with the pin-density constraint whose
//! provenance the loop tightens.
//!
//! Attribution is by the owner node's planar coordinates: a wire segment,
//! via, or overflow edge counts toward every window containing its owner
//! point (windows may overlap when the check stride is smaller than the
//! window). Overflow on edges outside every window still shows up in
//! [`RouteResult::overflow`], so a clean verdict never depends on window
//! coverage.

use crate::router::RouteResult;
use ams_place::closure::{RouteFeedback, WindowRect};

/// Congestion totals of one probe window.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WindowCongestion {
    /// Over-capacity edges whose owner lies in the window.
    pub overflow: u64,
    /// Wire segments whose owner lies in the window.
    pub routed_wl: u64,
    /// Vias whose owner lies in the window.
    pub vias: u64,
}

/// Aggregates a routing result per window.
///
/// Output is parallel to `windows`; every metric attributes by the owner
/// node's planar point, so overlapping windows each count shared geometry.
pub fn window_congestion(result: &RouteResult, windows: &[WindowRect]) -> Vec<WindowCongestion> {
    let mut out = vec![WindowCongestion::default(); windows.len()];
    let mut add = |x: u32, y: u32, f: &mut dyn FnMut(&mut WindowCongestion)| {
        for (w, c) in windows.iter().zip(out.iter_mut()) {
            if w.contains(x, y) {
                f(c);
            }
        }
    };
    for net in &result.nets {
        for &(a, _) in &net.wires {
            add(u32::from(a.x), u32::from(a.y), &mut |c| c.routed_wl += 1);
        }
        for &v in &net.vias {
            add(u32::from(v.x), u32::from(v.y), &mut |c| c.vias += 1);
        }
    }
    for e in &result.overflow_edges {
        add(u32::from(e.node.x), u32::from(e.node.y), &mut |c| {
            c.overflow += 1
        });
    }
    out
}

/// Folds a routing result into the feedback document the closure loop
/// consumes: totals plus per-window overflow parallel to `windows`.
pub fn route_feedback(result: &RouteResult, windows: &[WindowRect]) -> RouteFeedback {
    RouteFeedback {
        routed_wl: result.wirelength,
        vias: result.vias,
        overflow: result.overflow as u64,
        window_overflow: window_congestion(result, windows)
            .iter()
            .map(|c| c.overflow)
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::{Node, Step};
    use crate::router::{NetRoute, OverflowEdge};

    fn result_with_geometry() -> RouteResult {
        RouteResult {
            nets: vec![NetRoute {
                wires: vec![
                    (Node::new(0, 1, 1), Node::new(0, 2, 1)),
                    (Node::new(0, 8, 8), Node::new(0, 9, 8)),
                ],
                vias: vec![Node::new(0, 1, 1)],
            }],
            wirelength: 2,
            vias: 1,
            overflow: 1,
            overflow_edges: vec![OverflowEdge {
                node: Node::new(0, 1, 1),
                step: Step::East,
                overuse: 1,
            }],
            iterations: 1,
        }
    }

    #[test]
    fn attribution_is_per_window_by_owner_point() {
        let result = result_with_geometry();
        let windows = [
            WindowRect {
                x: 0,
                y: 0,
                w: 4,
                h: 4,
            },
            WindowRect {
                x: 6,
                y: 6,
                w: 4,
                h: 4,
            },
        ];
        let per = window_congestion(&result, &windows);
        assert_eq!(per[0].routed_wl, 1);
        assert_eq!(per[0].vias, 1);
        assert_eq!(per[0].overflow, 1);
        assert_eq!(per[1].routed_wl, 1);
        assert_eq!(per[1].vias, 0);
        assert_eq!(per[1].overflow, 0);
    }

    #[test]
    fn overlapping_windows_both_count_shared_geometry() {
        let result = result_with_geometry();
        let windows = [
            WindowRect {
                x: 0,
                y: 0,
                w: 4,
                h: 4,
            },
            WindowRect {
                x: 1,
                y: 1,
                w: 4,
                h: 4,
            },
        ];
        let per = window_congestion(&result, &windows);
        assert_eq!(per[0].overflow, 1);
        assert_eq!(per[1].overflow, 1);
    }

    #[test]
    fn feedback_totals_come_from_the_result() {
        let result = result_with_geometry();
        let windows = [WindowRect {
            x: 0,
            y: 0,
            w: 4,
            h: 4,
        }];
        let fb = route_feedback(&result, &windows);
        assert_eq!(fb.routed_wl, 2);
        assert_eq!(fb.vias, 1);
        assert_eq!(fb.overflow, 1);
        assert_eq!(fb.window_overflow, vec![1]);
    }
}

//! The three-layer routing grid.
//!
//! Layers alternate preferred direction (H–V–H), matching a typical lower
//! metal stack; cell pins are accessed on layer 0. Every unit segment has
//! unit capacity (detailed routing), and the negotiated-congestion router
//! tracks present usage and history cost per edge.

use ams_netlist::Point;

/// Number of routing layers.
pub const LAYERS: usize = 3;

/// A node in the routing graph: `(layer, x, y)`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct Node {
    /// Metal layer, `0..LAYERS`.
    pub layer: u8,
    /// Horizontal track index.
    pub x: u16,
    /// Vertical track index.
    pub y: u16,
}

impl Node {
    /// Creates a node.
    pub fn new(layer: u8, x: u16, y: u16) -> Node {
        Node { layer, x, y }
    }

    /// The planar point of this node.
    pub fn point(self) -> Point {
        Point::new(u32::from(self.x), u32::from(self.y))
    }
}

/// Direction of a graph edge out of a node.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Step {
    /// One track in +x (layers with horizontal preference).
    East,
    /// One track in +y (layers with vertical preference).
    North,
    /// Up one layer.
    Via,
}

/// Dense edge storage for the routing graph.
///
/// Each node owns up to two undirected edges: its positive-direction wire
/// segment (East on horizontal layers, North on vertical ones) and the via
/// to the next layer up.
#[derive(Clone, Debug)]
pub struct RouteGrid {
    width: u16,
    height: u16,
    /// Tracks available per unit edge (cell sites span several tracks).
    capacity: u8,
    /// Present usage per (node, kind): kind 0 = wire, kind 1 = via.
    usage: Vec<u8>,
    /// Accumulated history cost per edge (negotiated congestion).
    history: Vec<u32>,
}

/// Whether a layer routes horizontally.
pub fn is_horizontal(layer: u8) -> bool {
    layer.is_multiple_of(2)
}

impl RouteGrid {
    /// Creates an empty grid of `width × height` tracks with the given
    /// per-edge capacity.
    pub fn new(width: u16, height: u16, capacity: u8) -> RouteGrid {
        let n = usize::from(width) * usize::from(height) * LAYERS * 2;
        RouteGrid {
            width,
            height,
            capacity: capacity.max(1),
            usage: vec![0; n],
            history: vec![0; n],
        }
    }

    /// Tracks available per unit edge.
    pub fn capacity(&self) -> u8 {
        self.capacity
    }

    /// How far the edge is over capacity (0 when within).
    pub fn overuse(&self, node: Node, step: Step) -> u8 {
        self.usage(node, step).saturating_sub(self.capacity)
    }

    /// Grid width in tracks.
    pub fn width(&self) -> u16 {
        self.width
    }

    /// Grid height in tracks.
    pub fn height(&self) -> u16 {
        self.height
    }

    #[inline]
    fn index(&self, node: Node, via: bool) -> usize {
        ((usize::from(node.layer) * usize::from(self.height) + usize::from(node.y))
            * usize::from(self.width)
            + usize::from(node.x))
            * 2
            + usize::from(via)
    }

    /// Whether the node lies on the grid.
    pub fn contains(&self, node: Node) -> bool {
        node.layer < LAYERS as u8 && node.x < self.width && node.y < self.height
    }

    /// The neighbor reached from `node` by `step`, if on-grid and legal for
    /// the layer's preferred direction.
    pub fn neighbor(&self, node: Node, step: Step) -> Option<Node> {
        let next = match step {
            Step::East => {
                if !is_horizontal(node.layer) || node.x + 1 >= self.width {
                    return None;
                }
                Node::new(node.layer, node.x + 1, node.y)
            }
            Step::North => {
                if is_horizontal(node.layer) || node.y + 1 >= self.height {
                    return None;
                }
                Node::new(node.layer, node.x, node.y + 1)
            }
            Step::Via => {
                if node.layer + 1 >= LAYERS as u8 {
                    return None;
                }
                Node::new(node.layer + 1, node.x, node.y)
            }
        };
        Some(next)
    }

    /// Present usage of the edge leaving `node` via `step`.
    pub fn usage(&self, node: Node, step: Step) -> u8 {
        self.usage[self.index(node, matches!(step, Step::Via))]
    }

    /// History cost of the edge.
    pub fn history(&self, node: Node, step: Step) -> u32 {
        self.history[self.index(node, matches!(step, Step::Via))]
    }

    /// Marks one more use of the edge.
    pub fn occupy(&mut self, node: Node, step: Step) {
        let i = self.index(node, matches!(step, Step::Via));
        self.usage[i] = self.usage[i].saturating_add(1);
    }

    /// Releases one use of the edge.
    pub fn release(&mut self, node: Node, step: Step) {
        let i = self.index(node, matches!(step, Step::Via));
        debug_assert!(self.usage[i] > 0);
        self.usage[i] -= 1;
    }

    /// Bumps history cost on every currently over-used edge; returns how
    /// many edges are over capacity.
    pub fn penalize_overuse(&mut self) -> usize {
        let mut over = 0;
        for i in 0..self.usage.len() {
            if self.usage[i] > self.capacity {
                self.history[i] += u32::from(self.usage[i] - self.capacity);
                over += 1;
            }
        }
        over
    }

    /// Number of edges currently over capacity.
    pub fn overflow(&self) -> usize {
        self.usage.iter().filter(|&&u| u > self.capacity).count()
    }

    /// Every currently over-capacity edge as `(owner node, step, overuse)`,
    /// in dense storage order (deterministic for identical usage states).
    pub fn overflow_edges(&self) -> Vec<(Node, Step, u8)> {
        let mut out = Vec::new();
        for layer in 0..LAYERS as u8 {
            let wire = if is_horizontal(layer) {
                Step::East
            } else {
                Step::North
            };
            for y in 0..self.height {
                for x in 0..self.width {
                    let node = Node::new(layer, x, y);
                    for step in [wire, Step::Via] {
                        let over = self.overuse(node, step);
                        if over > 0 {
                            out.push((node, step, over));
                        }
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn neighbors_respect_preferred_direction() {
        let g = RouteGrid::new(4, 4, 1);
        let h = Node::new(0, 1, 1); // horizontal layer
        assert!(g.neighbor(h, Step::East).is_some());
        assert!(g.neighbor(h, Step::North).is_none());
        let v = Node::new(1, 1, 1); // vertical layer
        assert!(g.neighbor(v, Step::East).is_none());
        assert!(g.neighbor(v, Step::North).is_some());
    }

    #[test]
    fn boundaries_are_respected() {
        let g = RouteGrid::new(3, 3, 1);
        assert!(g.neighbor(Node::new(0, 2, 0), Step::East).is_none());
        assert!(g.neighbor(Node::new(1, 0, 2), Step::North).is_none());
        assert!(g.neighbor(Node::new(2, 0, 0), Step::Via).is_none());
        assert!(g.neighbor(Node::new(1, 0, 0), Step::Via).is_some());
    }

    #[test]
    fn occupancy_roundtrip() {
        let mut g = RouteGrid::new(3, 3, 1);
        let n = Node::new(0, 0, 0);
        assert_eq!(g.usage(n, Step::East), 0);
        g.occupy(n, Step::East);
        g.occupy(n, Step::East);
        assert_eq!(g.usage(n, Step::East), 2);
        assert_eq!(g.overflow(), 1);
        assert_eq!(g.penalize_overuse(), 1);
        assert_eq!(g.history(n, Step::East), 1);
        g.release(n, Step::East);
        assert_eq!(g.overflow(), 0);
    }
}

//! Router property suite over seeded random instances.
//!
//! For every seed: the routed geometry is connected and on-grid, the
//! result's capacity accounting is exactly reproducible from the returned
//! routes, the routed wirelength dominates the HPWL lower bound, and
//! routing the same placement twice is bit-identical (the net-order
//! tie-break and Dijkstra tie-break make the router deterministic — the
//! closure loop and the serve result cache both depend on that).

use ams_netlist::rng::SplitMix64;
use ams_netlist::{Design, DesignBuilder, Rect};
use ams_place::{Placement, PlacerConfig, ScaleInfo};
use ams_route::{is_horizontal, route, Node, RouteResult, RouterConfig, Step, LAYERS};
use std::collections::{HashMap, HashSet};

const SEEDS: u64 = 12;

/// A random multi-net instance on a hand-built grid placement: `cols ×
/// rows` cells of 4×2 grid units, random-degree nets with random pin
/// offsets.
fn random_instance(seed: u64) -> (Design, Placement) {
    let mut rng = SplitMix64::new(seed);
    let mut b = DesignBuilder::new(format!("prop_{seed}"));
    let region = b.add_region("r", 0.9);
    let pg = b.add_power_group("VDD");

    let cols = 3 + rng.index(2);
    let rows = 2 + rng.index(2);
    let mut cells = Vec::new();
    let mut rects = Vec::new();
    for j in 0..rows {
        for i in 0..cols {
            let c = b.add_cell(format!("c{i}_{j}"), region, 4, 2, pg);
            cells.push(c);
            rects.push(Rect::new(2 + 4 * i as u32, 2 + 3 * j as u32, 4, 2));
        }
    }

    let nets = 4 + rng.index(5);
    for n in 0..nets {
        let degree = (2 + rng.index(3)).min(cells.len());
        let net = b.add_net(format!("n{n}"), 1 + rng.range_u64(0, 2) as u32);
        let mut picked = Vec::new();
        while picked.len() < degree {
            let c = cells[rng.index(cells.len())];
            if !picked.contains(&c) {
                picked.push(c);
            }
        }
        for (k, &c) in picked.iter().enumerate() {
            let (dx, dy) = (rng.range_u64(0, 3) as u32, rng.range_u64(0, 1) as u32);
            b.add_pin(c, format!("p{n}_{k}"), Some(net), dx, dy);
        }
    }

    let design = b.build().expect("generator produces valid designs");
    let die = Rect::new(0, 0, 4 + 4 * cols as u32, 4 + 3 * rows as u32);
    let scale = ScaleInfo::compute(&design, &PlacerConfig::default());
    let placement = ams_place::placement_from_rects(
        rects,
        vec![Rect::new(2, 2, 4 * cols as u32, 3 * rows as u32)],
        die,
        &scale,
    );
    (design, placement)
}

/// The layer-0 terminal nodes of a net, deduplicated.
fn terminals(design: &Design, placement: &Placement, n: ams_netlist::NetId) -> HashSet<Node> {
    design
        .net_connections(n)
        .iter()
        .map(|&(c, pi)| {
            let pin = &design.cell(c).pins[pi];
            let r = placement.cells[c.index()];
            Node::new(0, (r.x + pin.dx) as u16, (r.y + pin.dy) as u16)
        })
        .collect()
}

/// Every routed net must connect all its terminals through its own
/// wires and vias.
fn assert_connected(design: &Design, placement: &Placement, result: &RouteResult) {
    for n in design.net_ids() {
        let route = &result.nets[n.index()];
        let mut adj: HashMap<Node, Vec<Node>> = HashMap::new();
        let mut link = |a: Node, b: Node| {
            adj.entry(a).or_default().push(b);
            adj.entry(b).or_default().push(a);
        };
        for &(a, b) in &route.wires {
            link(a, b);
        }
        for &v in &route.vias {
            link(v, Node::new(v.layer + 1, v.x, v.y));
        }
        let terminals = terminals(design, placement, n);
        if terminals.len() < 2 {
            continue;
        }
        let start = *terminals.iter().next().expect("nonempty");
        let mut seen = HashSet::new();
        let mut stack = vec![start];
        while let Some(node) = stack.pop() {
            if !seen.insert(node) {
                continue;
            }
            if let Some(next) = adj.get(&node) {
                stack.extend(next.iter().copied());
            }
        }
        for t in &terminals {
            assert!(seen.contains(t), "net {} unreached", design.net(n).name);
        }
    }
}

/// Every wire and via must be a legal unit edge of the routing grid.
fn assert_on_grid(placement: &Placement, result: &RouteResult) {
    let (w, h) = (placement.die.w as u16 + 1, placement.die.h as u16 + 1);
    let on_grid = |n: Node| (n.layer as usize) < LAYERS && n.x < w && n.y < h;
    for route in &result.nets {
        for &(a, b) in &route.wires {
            assert!(on_grid(a) && on_grid(b), "wire endpoint off grid");
            assert_eq!(a.layer, b.layer, "wire must stay on one layer");
            let (dx, dy) = (a.x.abs_diff(b.x), a.y.abs_diff(b.y));
            assert_eq!(
                (dx, dy),
                if is_horizontal(a.layer) {
                    (1, 0)
                } else {
                    (0, 1)
                },
                "wire must be a unit step in the layer's preferred direction"
            );
        }
        for &v in &route.vias {
            assert!(on_grid(v), "via off grid");
            assert!(
                (v.layer as usize) + 1 < LAYERS,
                "via must have a layer above"
            );
        }
    }
}

/// Rebuilds edge usage from the returned routes and checks the result's
/// own capacity accounting against it: `overflow` and `overflow_edges`
/// must describe exactly the recomputed over-capacity set.
fn assert_capacity_accounting(result: &RouteResult, capacity: u8) {
    let mut usage: HashMap<(Node, bool), u32> = HashMap::new();
    for route in &result.nets {
        for &(a, b) in &route.wires {
            let owner = if (a.x, a.y) <= (b.x, b.y) { a } else { b };
            *usage.entry((owner, false)).or_default() += 1;
        }
        for &v in &route.vias {
            *usage.entry((v, true)).or_default() += 1;
        }
    }
    let mut over: Vec<(Node, bool, u32)> = usage
        .iter()
        .filter(|&(_, &u)| u > u32::from(capacity))
        .map(|(&(node, via), &u)| (node, via, u - u32::from(capacity)))
        .collect();
    over.sort();
    assert_eq!(result.overflow, over.len(), "overflow count mismatch");
    let mut reported: Vec<(Node, bool, u32)> = result
        .overflow_edges
        .iter()
        .map(|e| (e.node, matches!(e.step, Step::Via), u32::from(e.overuse)))
        .collect();
    reported.sort();
    assert_eq!(reported, over, "overflow edge set mismatch");
}

/// Sum of per-net half-perimeter bounds: no routed tree is shorter than
/// the HPWL of its terminal set.
fn hpwl_lower_bound(design: &Design, placement: &Placement) -> u64 {
    design
        .net_ids()
        .map(|n| {
            let ts = terminals(design, placement, n);
            if ts.len() < 2 {
                return 0;
            }
            let xs: Vec<u16> = ts.iter().map(|t| t.x).collect();
            let ys: Vec<u16> = ts.iter().map(|t| t.y).collect();
            let dx = xs.iter().max().unwrap() - xs.iter().min().unwrap();
            let dy = ys.iter().max().unwrap() - ys.iter().min().unwrap();
            u64::from(dx) + u64::from(dy)
        })
        .sum()
}

#[test]
fn random_instances_route_connected_on_grid_and_accounted() {
    for seed in 0..SEEDS {
        let (design, placement) = random_instance(seed);
        let config = RouterConfig::default();
        let result = route(&design, &placement, config);
        assert_connected(&design, &placement, &result);
        assert_on_grid(&placement, &result);
        assert_capacity_accounting(&result, config.capacity);
        let wires: u64 = result.nets.iter().map(|r| r.wirelength()).sum();
        assert_eq!(wires, result.wirelength, "wirelength totals its nets");
        let vias: u64 = result.nets.iter().map(|r| r.vias.len() as u64).sum();
        assert_eq!(vias, result.vias, "via count totals its nets");
    }
}

#[test]
fn routed_wirelength_dominates_the_hpwl_lower_bound() {
    for seed in 0..SEEDS {
        let (design, placement) = random_instance(seed);
        let result = route(&design, &placement, RouterConfig::default());
        let bound = hpwl_lower_bound(&design, &placement);
        assert!(
            result.wirelength >= bound,
            "seed {seed}: routed {} tracks under the HPWL bound {}",
            result.wirelength,
            bound
        );
    }
}

#[test]
fn routing_is_bit_identical_across_runs() {
    for seed in 0..SEEDS {
        let (design, placement) = random_instance(seed);
        let first = route(&design, &placement, RouterConfig::default());
        let second = route(&design, &placement, RouterConfig::default());
        assert_eq!(first, second, "seed {seed}: routing must be deterministic");
    }
}

#[test]
fn tight_capacity_still_accounts_exactly() {
    // capacity 1 forces negotiation; whatever overflow remains must still
    // be reproducible from the returned routes.
    for seed in 0..SEEDS {
        let (design, placement) = random_instance(seed);
        let config = RouterConfig {
            capacity: 1,
            max_iterations: 4,
            ..RouterConfig::default()
        };
        let result = route(&design, &placement, config);
        assert_connected(&design, &placement, &result);
        assert_capacity_accounting(&result, config.capacity);
        assert_eq!(
            result,
            route(&design, &placement, config),
            "seed {seed}: tight-capacity routing must be deterministic"
        );
    }
}

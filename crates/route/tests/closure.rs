//! Routing-closure integration tests: the full place → route → tighten →
//! re-solve loop over real designs, plus a differential arm checking the
//! loop never un-legalizes a placement the exhaustive reference can
//! decide.

use ams_netlist::benchmarks::{self, synthetic, SyntheticParams};
use ams_netlist::rng::SplitMix64;
use ams_place::brute::{reference_place, BruteLimits, ReferenceVerdict};
use ams_place::closure::{close, probe_windows, ClosureConfig};
use ams_place::PlacerConfig;
use ams_route::{close_placement, route_feedback, RouterConfig};
use std::collections::BTreeSet;

fn quick_config() -> PlacerConfig {
    let mut config = PlacerConfig::fast();
    config.optimize.k_iter = 1;
    config.optimize.conflict_budget = Some(20_000);
    config
}

#[test]
fn buf_closes_routed_clean_within_five_iterations() {
    let design = benchmarks::buf();
    let opts = ClosureConfig::default();
    assert_eq!(opts.max_iters, 5, "the paper flow budgets five rungs");
    let (placement, stats) =
        close_placement(&design, quick_config(), &opts, RouterConfig::default())
            .expect("buf closure");
    assert!(stats.drc_clean, "buf must close routed-overflow-free");
    assert!(stats.iterations <= 5);
    assert_eq!(stats.routed_wl_trend.len(), stats.iterations);
    placement
        .verify(&design)
        .expect("closed placement stays legal");
    assert_eq!(
        placement.stats.closure.as_ref(),
        Some(&stats),
        "the placement carries its own closure summary"
    );
}

#[test]
#[ignore = "minutes in debug — the release suites run it (CI closure step + nightly)"]
fn vco_closes_routed_clean_within_five_iterations() {
    let design = benchmarks::vco();
    let (placement, stats) = close_placement(
        &design,
        quick_config(),
        &ClosureConfig::default(),
        RouterConfig::default(),
    )
    .expect("vco closure");
    assert!(stats.drc_clean, "vco must close routed-overflow-free");
    assert!(stats.iterations <= 5);
    placement
        .verify(&design)
        .expect("closed placement stays legal");
}

/// Starve the router (capacity 1, no negotiation rounds) so overflow
/// survives to the feedback, then check the loop tightened *only* windows
/// the routing actually reported hot — the provenance mapping from
/// overflow back to pin-density constraints must not touch cold windows.
#[test]
#[ignore = "five full place+rebase rounds — minutes in debug; the release suites run it (CI closure step + nightly)"]
fn tightening_targets_only_routing_hot_windows() {
    let design = benchmarks::buf();
    let starved = RouterConfig {
        capacity: 1,
        max_iterations: 1,
        ..RouterConfig::default()
    };
    let mut observed: BTreeSet<(u32, u32)> = BTreeSet::new();
    let result = close(
        &design,
        quick_config(),
        &ClosureConfig::default(),
        |d, p, windows| {
            let probe = probe_windows(p);
            assert_eq!(
                probe.rects, windows,
                "the loop probes the placement's own window grid"
            );
            let fb = route_feedback(d, p, windows, starved);
            for (o, &over) in probe.origins.iter().zip(&fb.window_overflow) {
                if over > 0 {
                    observed.insert(*o);
                }
            }
            fb
        },
    );
    let Ok((placement, stats)) = result else {
        panic!("starved-router closure must still terminate with a placement");
    };
    placement.verify(&design).expect("placement stays legal");
    assert!(
        !observed.is_empty(),
        "a capacity-1 single-round router must report overflow on buf"
    );
    assert!(
        !stats.hot_windows.is_empty(),
        "observed overflow must tighten at least one window"
    );
    for w in &stats.hot_windows {
        assert!(
            observed.contains(w),
            "window {w:?} was tightened but never reported hot"
        );
    }
}

/// Differential arm: on brute-force-sized designs, a successful closure
/// must agree with the exhaustive reference — the loop only ever tightens
/// pin density, so the underlying geometric feasibility is untouched.
#[test]
fn closure_agrees_with_the_exhaustive_reference_on_mini_designs() {
    let limits = BruteLimits {
        max_leaves: 300_000,
        max_nodes: 4_000_000,
    };
    let mut compared = 0;
    let mut round = 0u64;
    while compared < 4 && round < 32 {
        round += 1;
        let mut rng = SplitMix64::new(0xC105_u64 ^ round.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let params = SyntheticParams {
            regions: 1,
            cells_per_region: rng.range_u64(2, 4) as usize,
            nets: rng.range_u64(1, 3) as usize,
            net_degree: 2,
            symmetry_pairs: 0,
            cluster_size: 0,
            seed: rng.next_u64(),
        };
        let design = synthetic(params);
        let mut cfg = quick_config();
        cfg.recovery.enabled = false;

        let closed = close_placement(
            &design,
            cfg.clone(),
            &ClosureConfig::default(),
            RouterConfig::default(),
        );
        let Ok((placement, _)) = closed else {
            continue; // infeasible under this sizing — nothing to compare
        };
        placement
            .verify(&design)
            .expect("closure output passes the legality oracle");

        // The reference enumerator doesn't model pin density; closure only
        // tightens that family, so geometric feasibility must agree.
        let mut brute_cfg = cfg;
        brute_cfg.pin_density = None;
        match reference_place(&design, &brute_cfg, &limits) {
            ReferenceVerdict::Feasible(p) => {
                p.verify(&design).expect("reference model is legal");
                compared += 1;
            }
            ReferenceVerdict::Infeasible => panic!(
                "round {round}: closure placed a design the exhaustive reference proves infeasible"
            ),
            ReferenceVerdict::TooLarge => continue,
            ReferenceVerdict::Unsupported(what) => {
                panic!("round {round}: reference rejected the instance: {what}")
            }
        }
    }
    assert!(
        compared >= 2,
        "differential closure arm compared only {compared} designs"
    );
}

//! Router integration tests on hand-built placements: every net's routed
//! geometry must form one connected component containing all terminals.

use ams_netlist::{DesignBuilder, Rect};
use ams_place::{PlacerConfig, ScaleInfo};
use ams_route::{route, Node, RouteResult, RouterConfig};
use std::collections::{HashMap, HashSet};

/// A deterministic 2-region design with multi-terminal nets.
fn fixture() -> (ams_netlist::Design, ams_place::Placement) {
    let mut b = DesignBuilder::new("fixture");
    let r0 = b.add_region("left", 0.8);
    let r1 = b.add_region("right", 0.8);
    let pg = b.add_power_group("VDD");
    let bus = b.add_net("bus", 2);
    let pair = b.add_net("pair", 1);
    let cross = b.add_net("cross", 1);

    let mut cells = Vec::new();
    for i in 0..4 {
        let c = b.add_cell(format!("l{i}"), r0, 4, 2, pg);
        b.add_pin(c, "p", Some(bus), 1, 1);
        cells.push(c);
    }
    b.add_pin(cells[0], "q", Some(pair), 3, 0);
    b.add_pin(cells[1], "q", Some(pair), 3, 0);
    for i in 0..2 {
        let c = b.add_cell(format!("r{i}"), r1, 4, 2, pg);
        b.add_pin(c, "p", Some(cross), 1, 1);
        cells.push(c);
    }
    b.add_pin(cells[0], "x", Some(cross), 2, 1);
    let design = b.build().expect("valid");

    // Hand placement: left cells stacked in region 0, right cells in
    // region 1, with a gap between the regions.
    let cell_rects = vec![
        Rect::new(2, 2, 4, 2),
        Rect::new(6, 2, 4, 2),
        Rect::new(2, 4, 4, 2),
        Rect::new(6, 4, 4, 2),
        Rect::new(14, 2, 4, 2),
        Rect::new(14, 4, 4, 2),
    ];
    let scale = ScaleInfo::compute(&design, &PlacerConfig::default());
    let placement = ams_place::placement_from_rects(
        cell_rects,
        vec![Rect::new(2, 2, 8, 4), Rect::new(14, 2, 4, 4)],
        Rect::new(0, 0, 20, 8),
        &scale,
    );
    (design, placement)
}

/// Asserts that each routed net connects all its terminals.
fn assert_connected(
    design: &ams_netlist::Design,
    placement: &ams_place::Placement,
    result: &RouteResult,
) {
    for n in design.net_ids() {
        let route = &result.nets[n.index()];
        let mut adj: HashMap<Node, Vec<Node>> = HashMap::new();
        let mut link = |a: Node, b: Node| {
            adj.entry(a).or_default().push(b);
            adj.entry(b).or_default().push(a);
        };
        for &(a, b) in &route.wires {
            link(a, b);
        }
        for &v in &route.vias {
            link(v, Node::new(v.layer + 1, v.x, v.y));
        }
        let terminals: HashSet<Node> = design
            .net_connections(n)
            .iter()
            .map(|&(c, pi)| {
                let pin = &design.cell(c).pins[pi];
                let r = placement.cells[c.index()];
                Node::new(0, (r.x + pin.dx) as u16, (r.y + pin.dy) as u16)
            })
            .collect();
        if terminals.len() < 2 {
            continue;
        }
        // BFS from one terminal over the routed graph.
        let start = *terminals.iter().next().expect("nonempty");
        let mut seen = HashSet::new();
        let mut stack = vec![start];
        while let Some(node) = stack.pop() {
            if !seen.insert(node) {
                continue;
            }
            if let Some(next) = adj.get(&node) {
                stack.extend(next.iter().copied());
            }
        }
        for t in &terminals {
            assert!(
                seen.contains(t),
                "net {} terminal {:?} unreached",
                design.net(n).name,
                t
            );
        }
    }
}

#[test]
fn fixture_routes_fully_connected() {
    let (design, placement) = fixture();
    let result = route(&design, &placement, RouterConfig::default());
    assert_eq!(result.overflow, 0);
    assert_connected(&design, &placement, &result);
    assert!(result.wirelength > 0);
}

#[test]
fn via_count_tracks_layer_changes() {
    let (design, placement) = fixture();
    let result = route(&design, &placement, RouterConfig::default());
    let via_sum: usize = result.nets.iter().map(|r| r.vias.len()).sum();
    assert_eq!(via_sum as u64, result.vias);
    // Any net with both x- and y-extent needs at least one via (layers
    // have preferred directions).
    let cross = design
        .net_ids()
        .find(|&n| design.net(n).name == "cross")
        .expect("cross net");
    assert!(!result.nets[cross.index()].vias.is_empty());
}

#[test]
fn unit_capacity_forces_detours_not_overflow() {
    // With capacity 1 and parallel 2-pin nets between facing rows, the
    // router must spread wires rather than stack them.
    let mut b = DesignBuilder::new("parallel");
    let r0 = b.add_region("r", 0.9);
    let pg = b.add_power_group("VDD");
    let mut rects = Vec::new();
    for i in 0..3u32 {
        let n = b.add_net(format!("n{i}"), 1);
        let a = b.add_cell(format!("a{i}"), r0, 2, 2, pg);
        b.add_pin(a, "p", Some(n), 1, 1);
        let c = b.add_cell(format!("b{i}"), r0, 2, 2, pg);
        b.add_pin(c, "p", Some(n), 1, 1);
        rects.push(Rect::new(2 + 2 * i, 2, 2, 2));
        rects.push(Rect::new(2 + 2 * i, 8, 2, 2));
    }
    let design = b.build().expect("valid");
    // Interleave rects to cell order (a0, b0, a1, b1, ...).
    let scale = ScaleInfo::compute(&design, &PlacerConfig::default());
    let placement = ams_place::placement_from_rects(
        rects,
        vec![Rect::new(2, 2, 8, 8)],
        Rect::new(0, 0, 12, 12),
        &scale,
    );
    let cfg = RouterConfig {
        capacity: 1,
        ..RouterConfig::default()
    };
    let result = route(&design, &placement, cfg);
    assert_eq!(result.overflow, 0, "negotiation must clear congestion");
    assert_connected(&design, &placement, &result);
}

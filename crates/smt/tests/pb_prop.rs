//! Property tests for the sequential-counter pseudo-Boolean encoding:
//! [`ams_smt::pb::assert_at_most`] must agree with naive enumeration on
//! *every* assignment of up to 12 weighted literals. One solver per
//! constraint; each assignment is checked via assumptions, so the
//! 2^n sweep reuses the learnt clauses instead of re-encoding.

use ams_sat::{Lit, SolveResult, Solver};
use ams_smt::pb::assert_at_most;

/// SplitMix64; local copy to keep ams-smt dependency-free.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        ((u128::from(self.next()) * u128::from(bound)) >> 64) as u64
    }
}

/// Exhaustively compares the encoding against `Σ w_i·x_i <= bound` over
/// all 2^n assignments.
fn check_exhaustive(weights: &[u64], bound: u64) {
    let n = weights.len();
    assert!(n <= 12, "2^n sweep only viable for small n");
    let mut sat = Solver::new();
    let lits: Vec<Lit> = (0..n).map(|_| sat.new_var().positive()).collect();
    let items: Vec<(Lit, u64)> = lits.iter().copied().zip(weights.iter().copied()).collect();
    assert_at_most(&mut sat, &items, bound);

    for mask in 0u64..(1u64 << n) {
        let assumptions: Vec<Lit> = (0..n)
            .map(|i| {
                if mask & (1 << i) != 0 {
                    lits[i]
                } else {
                    !lits[i]
                }
            })
            .collect();
        let weighted_sum: u64 = (0..n)
            .filter(|i| mask & (1 << i) != 0)
            .map(|i| weights[i])
            .sum();
        let expected = if weighted_sum <= bound {
            SolveResult::Sat
        } else {
            SolveResult::Unsat
        };
        assert_eq!(
            sat.solve_with(&assumptions),
            expected,
            "weights {weights:?}, bound {bound}, assignment {mask:#b} \
             (weighted sum {weighted_sum})"
        );
    }
}

#[test]
fn zero_bound_forces_every_weighted_literal_false() {
    check_exhaustive(&[1, 2, 3, 4], 0);
    // Zero-weight items must stay free even under bound 0.
    check_exhaustive(&[0, 5, 0, 7], 0);
}

#[test]
fn all_weights_over_bound_behaves_like_unit_negations() {
    check_exhaustive(&[10, 11, 12, 13, 14], 9);
}

#[test]
fn sum_exactly_at_bound_is_vacuous() {
    // Σ = 10 = bound: every assignment must satisfy the constraint.
    check_exhaustive(&[1, 2, 3, 4], 10);
}

#[test]
fn unit_weights_reduce_to_cardinality() {
    for bound in 0..=6 {
        check_exhaustive(&[1; 6], bound);
    }
}

#[test]
fn single_item_edge_cases() {
    check_exhaustive(&[5], 4);
    check_exhaustive(&[5], 5);
    check_exhaustive(&[0], 0);
}

#[test]
fn random_weighted_constraints_match_enumeration() {
    let mut rng = Rng(0x9B_5EED);
    for round in 0..40 {
        let n = 2 + (rng.below(9) as usize); // 2..=10 literals
        let weights: Vec<u64> = (0..n).map(|_| rng.below(7)).collect();
        let total: u64 = weights.iter().sum();
        // Bias toward the interesting band around the total; hit the
        // exact-sum and everything-over cases on dedicated rounds.
        let bound = match round % 4 {
            0 => rng.below(total.max(1)),
            1 => total,
            2 => rng.below(total.max(2) / 2 + 1),
            _ => rng.below(total + 3),
        };
        check_exhaustive(&weights, bound);
    }
}

#[test]
fn full_width_twelve_literal_sweep() {
    let mut rng = Rng(0xCAFE);
    for _ in 0..3 {
        let weights: Vec<u64> = (0..12).map(|_| 1 + rng.below(5)).collect();
        let total: u64 = weights.iter().sum();
        check_exhaustive(&weights, rng.below(total));
    }
}

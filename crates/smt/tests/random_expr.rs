//! Property tests: the bit-blasted semantics of random expression DAGs agree
//! with native wrapping `u64` arithmetic.

use ams_smt::{Smt, SmtResult, Term};
use proptest::prelude::*;

/// A little expression AST we can evaluate both natively and through SMT.
#[derive(Debug, Clone)]
enum Expr {
    Input(usize),
    Const(u64),
    Add(Box<Expr>, Box<Expr>),
    Sub(Box<Expr>, Box<Expr>),
    Mul(Box<Expr>, Box<Expr>),
    Shl(Box<Expr>, u32),
    Ite(Box<Cond>, Box<Expr>, Box<Expr>),
}

#[derive(Debug, Clone)]
enum Cond {
    Ule(Expr, Expr),
    Ult(Expr, Expr),
    Eq(Expr, Expr),
}

const WIDTH: u32 = 8;
const MASK: u64 = 0xFF;

fn expr_strategy(inputs: usize) -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (0..inputs).prop_map(Expr::Input),
        (0u64..=MASK).prop_map(Expr::Const),
    ];
    leaf.prop_recursive(4, 32, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Add(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Sub(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Mul(Box::new(a), Box::new(b))),
            (inner.clone(), 0u32..WIDTH).prop_map(|(a, k)| Expr::Shl(Box::new(a), k)),
            (inner.clone(), inner.clone(), inner.clone(), inner)
                .prop_map(|(c1, c2, t, e)| Expr::Ite(
                    Box::new(Cond::Ule(c1, c2)),
                    Box::new(t),
                    Box::new(e)
                )),
        ]
    })
}

fn eval_native(e: &Expr, inputs: &[u64]) -> u64 {
    let v = match e {
        Expr::Input(i) => inputs[*i],
        Expr::Const(c) => *c,
        Expr::Add(a, b) => eval_native(a, inputs).wrapping_add(eval_native(b, inputs)),
        Expr::Sub(a, b) => eval_native(a, inputs).wrapping_sub(eval_native(b, inputs)),
        Expr::Mul(a, b) => eval_native(a, inputs).wrapping_mul(eval_native(b, inputs)),
        Expr::Shl(a, k) => eval_native(a, inputs) << k,
        Expr::Ite(c, t, e2) => {
            if eval_cond(c, inputs) {
                eval_native(t, inputs)
            } else {
                eval_native(e2, inputs)
            }
        }
    };
    v & MASK
}

fn eval_cond(c: &Cond, inputs: &[u64]) -> bool {
    match c {
        Cond::Ule(a, b) => eval_native(a, inputs) <= eval_native(b, inputs),
        Cond::Ult(a, b) => eval_native(a, inputs) < eval_native(b, inputs),
        Cond::Eq(a, b) => eval_native(a, inputs) == eval_native(b, inputs),
    }
}

fn build_term(smt: &mut Smt, e: &Expr, vars: &[Term]) -> Term {
    match e {
        Expr::Input(i) => vars[*i],
        Expr::Const(c) => smt.bv_const(WIDTH, *c),
        Expr::Add(a, b) => {
            let (ta, tb) = (build_term(smt, a, vars), build_term(smt, b, vars));
            smt.add(ta, tb)
        }
        Expr::Sub(a, b) => {
            let (ta, tb) = (build_term(smt, a, vars), build_term(smt, b, vars));
            smt.sub(ta, tb)
        }
        Expr::Mul(a, b) => {
            let (ta, tb) = (build_term(smt, a, vars), build_term(smt, b, vars));
            smt.mul(ta, tb)
        }
        Expr::Shl(a, k) => {
            let ta = build_term(smt, a, vars);
            smt.shl(ta, *k)
        }
        Expr::Ite(c, t, e2) => {
            let tc = build_cond(smt, c, vars);
            let (tt, te) = (build_term(smt, t, vars), build_term(smt, e2, vars));
            smt.ite(tc, tt, te)
        }
    }
}

fn build_cond(smt: &mut Smt, c: &Cond, vars: &[Term]) -> Term {
    match c {
        Cond::Ule(a, b) => {
            let (ta, tb) = (build_term(smt, a, vars), build_term(smt, b, vars));
            smt.ule(ta, tb)
        }
        Cond::Ult(a, b) => {
            let (ta, tb) = (build_term(smt, a, vars), build_term(smt, b, vars));
            smt.ult(ta, tb)
        }
        Cond::Eq(a, b) => {
            let (ta, tb) = (build_term(smt, a, vars), build_term(smt, b, vars));
            smt.eq(ta, tb)
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Forward direction: fixing inputs must force the blasted output to the
    /// natively computed value.
    #[test]
    fn blasting_matches_native_eval(
        expr in expr_strategy(3),
        inputs in proptest::collection::vec(0u64..=MASK, 3),
    ) {
        let mut smt = Smt::new();
        let vars: Vec<Term> = (0..3).map(|i| smt.bv_var(WIDTH, format!("in{i}"))).collect();
        let out = build_term(&mut smt, &expr, &vars);
        for (v, &val) in vars.iter().zip(&inputs) {
            let fix = smt.eq_const(*v, val);
            smt.assert(fix);
        }
        // Force the output into the SAT instance too.
        let out_var = smt.bv_var(WIDTH, "out");
        let tie = smt.eq(out_var, out);
        smt.assert(tie);
        prop_assert_eq!(smt.solve(), SmtResult::Sat);
        let expected = eval_native(&expr, &inputs);
        prop_assert_eq!(smt.bv_value(out), expected);
        prop_assert_eq!(smt.bv_value(out_var), expected);
    }

    /// Backward direction: constraining the output to an impossible value
    /// under fixed inputs must be UNSAT (the encoding is biconditional).
    #[test]
    fn wrong_output_is_unsat(
        expr in expr_strategy(2),
        inputs in proptest::collection::vec(0u64..=MASK, 2),
        delta in 1u64..=MASK,
    ) {
        let mut smt = Smt::new();
        let vars: Vec<Term> = (0..2).map(|i| smt.bv_var(WIDTH, format!("in{i}"))).collect();
        let out = build_term(&mut smt, &expr, &vars);
        for (v, &val) in vars.iter().zip(&inputs) {
            let fix = smt.eq_const(*v, val);
            smt.assert(fix);
        }
        let expected = eval_native(&expr, &inputs);
        let wrong = (expected + delta) & MASK;
        let claim = smt.eq_const(out, wrong);
        smt.assert(claim);
        prop_assert_eq!(smt.solve(), SmtResult::Unsat);
    }

    /// Comparison predicates match native comparisons when used as
    /// assumptions in either polarity.
    #[test]
    fn comparisons_in_both_polarities(
        a in 0u64..=MASK,
        b in 0u64..=MASK,
    ) {
        let mut smt = Smt::new();
        let x = smt.bv_var(WIDTH, "x");
        let y = smt.bv_var(WIDTH, "y");
        let fx = smt.eq_const(x, a);
        let fy = smt.eq_const(y, b);
        smt.assert(fx);
        smt.assert(fy);
        let le = smt.ule(x, y);
        let nle = smt.not(le);
        let lt = smt.ult(x, y);
        let eq = smt.eq(x, y);
        prop_assert_eq!(smt.solve_with(&[le]) == SmtResult::Sat, a <= b);
        prop_assert_eq!(smt.solve_with(&[nle]) == SmtResult::Sat, a > b);
        prop_assert_eq!(smt.solve_with(&[lt]) == SmtResult::Sat, a < b);
        prop_assert_eq!(smt.solve_with(&[eq]) == SmtResult::Sat, a == b);
    }

    /// Weighted PB constraints agree with direct arithmetic on random
    /// weight vectors under random forced assignments.
    #[test]
    fn pb_matches_arithmetic(
        weights in proptest::collection::vec(0u64..6, 1..6),
        mask in 0u32..64,
        bound in 0u64..12,
    ) {
        let n = weights.len();
        let mut smt = Smt::new();
        let bs: Vec<Term> = (0..n).map(|i| smt.bool_var(format!("b{i}"))).collect();
        let items: Vec<(Term, u64)> = bs.iter().copied().zip(weights.iter().copied()).collect();
        smt.assert_at_most(&items, bound);
        let mut sum = 0u64;
        let mut assumptions = Vec::new();
        for i in 0..n {
            if (mask >> i) & 1 == 1 {
                sum += weights[i];
                assumptions.push(bs[i]);
            } else {
                let nb = smt.not(bs[i]);
                assumptions.push(nb);
            }
        }
        let expect_sat = sum <= bound;
        prop_assert_eq!(smt.solve_with(&assumptions) == SmtResult::Sat, expect_sat);
    }
}

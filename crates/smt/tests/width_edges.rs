//! Edge-width and corner-case tests for the SMT layer: 1-bit and 64-bit
//! vectors, wraparound boundaries, and assumption-core behaviour on
//! bit-vector equalities.

use ams_smt::{Smt, SmtResult};

#[test]
fn one_bit_vectors_behave_like_booleans() {
    let mut smt = Smt::new();
    let x = smt.bv_var(1, "x");
    let y = smt.bv_var(1, "y");
    let s = smt.add(x, y); // 1-bit add = xor
    let one = smt.eq_const(s, 1);
    smt.assert(one);
    assert_eq!(smt.solve(), SmtResult::Sat);
    assert_eq!(smt.bv_value(x) ^ smt.bv_value(y), 1);
}

#[test]
fn sixty_four_bit_add_wraps() {
    let mut smt = Smt::new();
    let x = smt.bv_var(64, "x");
    let big = smt.eq_const(x, u64::MAX);
    smt.assert(big);
    let one = smt.bv_const(64, 1);
    let s = smt.add(x, one);
    let zero = smt.eq_const(s, 0);
    smt.assert(zero);
    assert_eq!(smt.solve(), SmtResult::Sat);
    assert_eq!(smt.bv_value(x), u64::MAX);
}

#[test]
fn sixty_four_bit_comparisons() {
    let mut smt = Smt::new();
    let x = smt.bv_var(64, "x");
    let hi = smt.bv_const(64, u64::MAX - 1);
    let gt = smt.ugt(x, hi);
    smt.assert(gt);
    assert_eq!(smt.solve(), SmtResult::Sat);
    assert_eq!(smt.bv_value(x), u64::MAX);
}

#[test]
fn zext_to_64_preserves_value() {
    let mut smt = Smt::new();
    let x = smt.bv_var(8, "x");
    let fixed = smt.eq_const(x, 0xAB);
    smt.assert(fixed);
    let wide = smt.zext(x, 64);
    let expected = smt.eq_const(wide, 0xAB);
    smt.assert(expected);
    assert_eq!(smt.solve(), SmtResult::Sat);
    assert_eq!(smt.bv_value(wide), 0xAB);
}

#[test]
fn shl_drops_high_bits() {
    let mut smt = Smt::new();
    let x = smt.bv_var(8, "x");
    let fixed = smt.eq_const(x, 0b1100_0011);
    smt.assert(fixed);
    let shifted = smt.shl(x, 4);
    assert_eq!(smt.solve(), SmtResult::Sat);
    assert_eq!(smt.bv_value(shifted), 0b0011_0000);
}

#[test]
fn shift_by_width_is_zero() {
    let mut smt = Smt::new();
    let x = smt.bv_var(8, "x");
    let any = smt.eq_const(x, 0xFF);
    smt.assert(any);
    let gone = smt.shl(x, 8);
    assert_eq!(smt.solve(), SmtResult::Sat);
    assert_eq!(smt.bv_value(gone), 0);
}

#[test]
fn failed_core_names_conflicting_freezes() {
    // The placement engine's freeze mechanism: pin two variables to
    // incompatible values through a shared constraint and check the core
    // names only the guilty assumptions.
    let mut smt = Smt::new();
    let x = smt.bv_var(8, "x");
    let y = smt.bv_var(8, "y");
    let z = smt.bv_var(8, "z");
    let sum = smt.add(x, y);
    let tie = smt.eq(sum, z);
    smt.assert(tie);
    let fx = smt.eq_const(x, 10);
    let fy = smt.eq_const(y, 20);
    let fz = smt.eq_const(z, 99); // 10 + 20 != 99
    let free = smt.bool_var("unrelated");
    assert_eq!(smt.solve_with(&[fx, fy, fz, free]), SmtResult::Unsat);
    let core = smt.failed_assumptions();
    assert!(!core.contains(&free), "unrelated assumption in core");
    assert!(core.len() >= 2, "core must involve the arithmetic conflict");
    // Dropping one frozen value restores satisfiability.
    assert_eq!(smt.solve_with(&[fx, fy]), SmtResult::Sat);
    assert_eq!(smt.bv_value(z), 30);
}

#[test]
#[should_panic(expected = "width")]
fn width_65_is_rejected() {
    let mut smt = Smt::new();
    let _ = smt.bv_var(65, "too_wide");
}

#[test]
#[should_panic(expected = "Boolean")]
fn asserting_a_bitvector_panics() {
    let mut smt = Smt::new();
    let x = smt.bv_var(4, "x");
    smt.assert(x);
}

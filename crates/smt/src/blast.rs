//! Tseitin bit-blasting of the term graph into CNF.
//!
//! Every Boolean term maps to one SAT literal and every bit-vector term to a
//! little-endian literal vector. All gate encodings are *biconditional*
//! (`gate ↔ definition`), so any blasted Boolean term can be asserted,
//! negated, or used as a solver assumption.
//!
//! Blasted terms are cached, which is what makes incremental solving cheap:
//! re-solving after new assertions reuses the existing CNF.

use crate::term::{Term, TermKind, TermPool};
use ams_sat::{Lit, Solver};
use std::collections::HashMap;

/// Gate-level structural hashing key.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
enum GateKey {
    And(Lit, Lit),
    Xor(Lit, Lit),
    Maj(Lit, Lit, Lit),
    Ite(Lit, Lit, Lit),
}

/// Bit-blaster with term- and gate-level caches.
#[derive(Default)]
pub(crate) struct Blaster {
    bool_cache: HashMap<Term, Lit>,
    bv_cache: HashMap<Term, Vec<Lit>>,
    gate_cache: HashMap<GateKey, Lit>,
    true_lit: Option<Lit>,
}

impl Blaster {
    /// The constant-true literal (allocated on first use).
    pub(crate) fn lit_true(&mut self, sat: &mut Solver) -> Lit {
        match self.true_lit {
            Some(l) => l,
            None => {
                let l = sat.new_var().positive();
                sat.add_clause(&[l]);
                self.true_lit = Some(l);
                l
            }
        }
    }

    fn lit_false(&mut self, sat: &mut Solver) -> Lit {
        !self.lit_true(sat)
    }

    fn lit_of_bool(&mut self, sat: &mut Solver, b: bool) -> Lit {
        if b {
            self.lit_true(sat)
        } else {
            self.lit_false(sat)
        }
    }

    /// Is `l` the constant true/false literal?
    fn known(&self, l: Lit) -> Option<bool> {
        let t = self.true_lit?;
        if l == t {
            Some(true)
        } else if l == !t {
            Some(false)
        } else {
            None
        }
    }

    // ------------------------------------------------------------------
    // Gate helpers (biconditional Tseitin encodings)
    // ------------------------------------------------------------------

    fn gate_and2(&mut self, sat: &mut Solver, a: Lit, b: Lit) -> Lit {
        match (self.known(a), self.known(b)) {
            (Some(false), _) | (_, Some(false)) => return self.lit_false(sat),
            (Some(true), _) => return b,
            (_, Some(true)) => return a,
            _ => {}
        }
        if a == b {
            return a;
        }
        if a == !b {
            return self.lit_false(sat);
        }
        let (a, b) = if a.code() <= b.code() { (a, b) } else { (b, a) };
        let key = GateKey::And(a, b);
        if let Some(&g) = self.gate_cache.get(&key) {
            return g;
        }
        let g = sat.new_var().positive();
        sat.add_clause(&[!g, a]);
        sat.add_clause(&[!g, b]);
        sat.add_clause(&[g, !a, !b]);
        self.gate_cache.insert(key, g);
        g
    }

    fn gate_or2(&mut self, sat: &mut Solver, a: Lit, b: Lit) -> Lit {
        !self.gate_and2(sat, !a, !b)
    }

    fn gate_xor2(&mut self, sat: &mut Solver, a: Lit, b: Lit) -> Lit {
        match (self.known(a), self.known(b)) {
            (Some(false), _) => return b,
            (_, Some(false)) => return a,
            (Some(true), _) => return !b,
            (_, Some(true)) => return !a,
            _ => {}
        }
        if a == b {
            return self.lit_false(sat);
        }
        if a == !b {
            return self.lit_true(sat);
        }
        // Normalize to positive phase: xor(a,b) = !xor(!a,b) = !xor(a,!b).
        let mut flip = false;
        let mut a = a;
        let mut b = b;
        if !a.is_positive() {
            a = !a;
            flip = !flip;
        }
        if !b.is_positive() {
            b = !b;
            flip = !flip;
        }
        let (a, b) = if a.code() <= b.code() { (a, b) } else { (b, a) };
        let key = GateKey::Xor(a, b);
        let g = match self.gate_cache.get(&key) {
            Some(&g) => g,
            None => {
                let g = sat.new_var().positive();
                sat.add_clause(&[!g, a, b]);
                sat.add_clause(&[!g, !a, !b]);
                sat.add_clause(&[g, !a, b]);
                sat.add_clause(&[g, a, !b]);
                self.gate_cache.insert(key, g);
                g
            }
        };
        if flip {
            !g
        } else {
            g
        }
    }

    /// Majority-of-three (the full-adder carry).
    fn gate_maj(&mut self, sat: &mut Solver, a: Lit, b: Lit, c: Lit) -> Lit {
        match (self.known(a), self.known(b), self.known(c)) {
            (Some(true), _, _) => return self.gate_or2(sat, b, c),
            (Some(false), _, _) => return self.gate_and2(sat, b, c),
            (_, Some(true), _) => return self.gate_or2(sat, a, c),
            (_, Some(false), _) => return self.gate_and2(sat, a, c),
            (_, _, Some(true)) => return self.gate_or2(sat, a, b),
            (_, _, Some(false)) => return self.gate_and2(sat, a, b),
            _ => {}
        }
        if a == b {
            return a;
        }
        if a == c {
            return a;
        }
        if b == c {
            return b;
        }
        if a == !b {
            return c;
        }
        if a == !c {
            return b;
        }
        if b == !c {
            return a;
        }
        let mut v = [a, b, c];
        v.sort_by_key(|l| l.code());
        let key = GateKey::Maj(v[0], v[1], v[2]);
        if let Some(&g) = self.gate_cache.get(&key) {
            return g;
        }
        let [a, b, c] = v;
        let g = sat.new_var().positive();
        sat.add_clause(&[!g, a, b]);
        sat.add_clause(&[!g, a, c]);
        sat.add_clause(&[!g, b, c]);
        sat.add_clause(&[g, !a, !b]);
        sat.add_clause(&[g, !a, !c]);
        sat.add_clause(&[g, !b, !c]);
        self.gate_cache.insert(key, g);
        g
    }

    fn gate_ite(&mut self, sat: &mut Solver, c: Lit, t: Lit, e: Lit) -> Lit {
        match self.known(c) {
            Some(true) => return t,
            Some(false) => return e,
            None => {}
        }
        if t == e {
            return t;
        }
        match (self.known(t), self.known(e)) {
            (Some(true), _) => return self.gate_or2(sat, c, e),
            (Some(false), _) => return self.gate_and2(sat, !c, e),
            (_, Some(true)) => return self.gate_or2(sat, !c, t),
            (_, Some(false)) => return self.gate_and2(sat, c, t),
            _ => {}
        }
        if t == !e {
            return self.gate_xor2(sat, !c, t);
        }
        let key = GateKey::Ite(c, t, e);
        if let Some(&g) = self.gate_cache.get(&key) {
            return g;
        }
        let g = sat.new_var().positive();
        sat.add_clause(&[!g, !c, t]);
        sat.add_clause(&[!g, c, e]);
        sat.add_clause(&[g, !c, !t]);
        sat.add_clause(&[g, c, !e]);
        // Redundant but propagation-strengthening: t ∧ e → g, ¬t ∧ ¬e → ¬g.
        sat.add_clause(&[g, !t, !e]);
        sat.add_clause(&[!g, t, e]);
        self.gate_cache.insert(key, g);
        g
    }

    fn gate_and_many(&mut self, sat: &mut Solver, inputs: &[Lit]) -> Lit {
        let mut ins: Vec<Lit> = Vec::with_capacity(inputs.len());
        for &l in inputs {
            match self.known(l) {
                Some(false) => return self.lit_false(sat),
                Some(true) => {}
                None => ins.push(l),
            }
        }
        ins.sort_unstable_by_key(|l| l.code());
        ins.dedup();
        for w in ins.windows(2) {
            if w[0] == !w[1] {
                return self.lit_false(sat);
            }
        }
        match ins.len() {
            0 => self.lit_true(sat),
            1 => ins[0],
            2 => self.gate_and2(sat, ins[0], ins[1]),
            _ => {
                let g = sat.new_var().positive();
                let mut long = Vec::with_capacity(ins.len() + 1);
                long.push(g);
                for &l in &ins {
                    sat.add_clause(&[!g, l]);
                    long.push(!l);
                }
                sat.add_clause(&long);
                g
            }
        }
    }

    fn gate_or_many(&mut self, sat: &mut Solver, inputs: &[Lit]) -> Lit {
        let negated: Vec<Lit> = inputs.iter().map(|&l| !l).collect();
        !self.gate_and_many(sat, &negated)
    }

    // ------------------------------------------------------------------
    // Word-level helpers
    // ------------------------------------------------------------------

    fn full_adder(&mut self, sat: &mut Solver, a: Lit, b: Lit, cin: Lit) -> (Lit, Lit) {
        let axb = self.gate_xor2(sat, a, b);
        let sum = self.gate_xor2(sat, axb, cin);
        let cout = self.gate_maj(sat, a, b, cin);
        (sum, cout)
    }

    fn add_vec(&mut self, sat: &mut Solver, a: &[Lit], b: &[Lit], mut carry: Lit) -> Vec<Lit> {
        debug_assert_eq!(a.len(), b.len());
        let mut out = Vec::with_capacity(a.len());
        for i in 0..a.len() {
            let (s, c) = self.full_adder(sat, a[i], b[i], carry);
            out.push(s);
            carry = c;
        }
        out
    }

    /// Literal for unsigned `a <= b`.
    fn ule_vec(&mut self, sat: &mut Solver, a: &[Lit], b: &[Lit]) -> Lit {
        debug_assert_eq!(a.len(), b.len());
        let mut le = self.lit_true(sat);
        for i in 0..a.len() {
            // le_i = (¬a_i ∧ b_i) ∨ ((a_i ↔ b_i) ∧ le_{i-1})
            //      = ite(a_i ⊕ b_i, ¬a_i, le_{i-1})
            let diff = self.gate_xor2(sat, a[i], b[i]);
            le = self.gate_ite(sat, diff, !a[i], le);
        }
        le
    }

    fn eq_vec(&mut self, sat: &mut Solver, a: &[Lit], b: &[Lit]) -> Lit {
        debug_assert_eq!(a.len(), b.len());
        let bits: Vec<Lit> = (0..a.len())
            .map(|i| !self.gate_xor2(sat, a[i], b[i]))
            .collect();
        self.gate_and_many(sat, &bits)
    }

    // ------------------------------------------------------------------
    // Term blasting
    // ------------------------------------------------------------------

    /// Blasts a Boolean term to a literal.
    ///
    /// # Panics
    ///
    /// Panics if `t` is not Boolean.
    pub(crate) fn blast_bool(&mut self, pool: &TermPool, sat: &mut Solver, t: Term) -> Lit {
        if let Some(&l) = self.bool_cache.get(&t) {
            return l;
        }
        let lit = match pool.kind(t) {
            TermKind::BoolConst(b) => self.lit_of_bool(sat, *b),
            TermKind::BoolVar(_) => sat.new_var().positive(),
            TermKind::Not(a) => {
                let la = self.blast_bool(pool, sat, *a);
                !la
            }
            TermKind::And(ops) => {
                let lits: Vec<Lit> = ops.iter().map(|&o| self.blast_bool(pool, sat, o)).collect();
                self.gate_and_many(sat, &lits)
            }
            TermKind::Or(ops) => {
                let lits: Vec<Lit> = ops.iter().map(|&o| self.blast_bool(pool, sat, o)).collect();
                self.gate_or_many(sat, &lits)
            }
            TermKind::Xor(a, b) => {
                let la = self.blast_bool(pool, sat, *a);
                let lb = self.blast_bool(pool, sat, *b);
                self.gate_xor2(sat, la, lb)
            }
            TermKind::Eq(a, b) => match pool.sort(*a) {
                crate::term::Sort::Bool => {
                    let la = self.blast_bool(pool, sat, *a);
                    let lb = self.blast_bool(pool, sat, *b);
                    !self.gate_xor2(sat, la, lb)
                }
                crate::term::Sort::Bv(_) => {
                    let va = self.blast_bv(pool, sat, *a);
                    let vb = self.blast_bv(pool, sat, *b);
                    self.eq_vec(sat, &va, &vb)
                }
            },
            TermKind::Ule(a, b) => {
                let va = self.blast_bv(pool, sat, *a);
                let vb = self.blast_bv(pool, sat, *b);
                self.ule_vec(sat, &va, &vb)
            }
            TermKind::Ult(a, b) => {
                let va = self.blast_bv(pool, sat, *a);
                let vb = self.blast_bv(pool, sat, *b);
                !self.ule_vec(sat, &vb, &va)
            }
            TermKind::Ite(c, a, b) => {
                let lc = self.blast_bool(pool, sat, *c);
                let la = self.blast_bool(pool, sat, *a);
                let lb = self.blast_bool(pool, sat, *b);
                self.gate_ite(sat, lc, la, lb)
            }
            other => panic!("blast_bool on non-Boolean term {other:?}"),
        };
        self.bool_cache.insert(t, lit);
        lit
    }

    /// Blasts a bit-vector term to its little-endian literal vector.
    ///
    /// # Panics
    ///
    /// Panics if `t` is Boolean.
    pub(crate) fn blast_bv(&mut self, pool: &TermPool, sat: &mut Solver, t: Term) -> Vec<Lit> {
        if let Some(v) = self.bv_cache.get(&t) {
            return v.clone();
        }
        let bits = match pool.kind(t) {
            TermKind::BvConst { width, value } => {
                let (width, value) = (*width, *value);
                (0..width)
                    .map(|i| self.lit_of_bool(sat, (value >> i) & 1 == 1))
                    .collect()
            }
            TermKind::BvVar { width, .. } => {
                let width = *width;
                (0..width).map(|_| sat.new_var().positive()).collect()
            }
            TermKind::Add(a, b) => {
                let va = self.blast_bv(pool, sat, *a);
                let vb = self.blast_bv(pool, sat, *b);
                let f = self.lit_false(sat);
                self.add_vec(sat, &va, &vb, f)
            }
            TermKind::Sub(a, b) => {
                let va = self.blast_bv(pool, sat, *a);
                let vb: Vec<Lit> = self.blast_bv(pool, sat, *b).iter().map(|&l| !l).collect();
                let t1 = self.lit_true(sat);
                self.add_vec(sat, &va, &vb, t1)
            }
            TermKind::Mul(a, b) => {
                let va = self.blast_bv(pool, sat, *a);
                let vb = self.blast_bv(pool, sat, *b);
                self.mul_vec(sat, &va, &vb)
            }
            TermKind::Shl(a, k) => {
                let va = self.blast_bv(pool, sat, *a);
                let k = *k as usize;
                debug_assert!(k <= va.len(), "shift amount {k} exceeds width {}", va.len());
                let f = self.lit_false(sat);
                let mut out = vec![f; k];
                out.extend_from_slice(&va[..va.len() - k]);
                out
            }
            TermKind::ZExt(a, new_width) => {
                let va = self.blast_bv(pool, sat, *a);
                debug_assert!(
                    *new_width as usize >= va.len(),
                    "zero-extension narrows {} bits to {new_width}",
                    va.len()
                );
                let f = self.lit_false(sat);
                let mut out = va;
                out.resize(*new_width as usize, f);
                out
            }
            TermKind::Ite(c, a, b) => {
                let lc = self.blast_bool(pool, sat, *c);
                let va = self.blast_bv(pool, sat, *a);
                let vb = self.blast_bv(pool, sat, *b);
                debug_assert_eq!(va.len(), vb.len(), "ite branch widths disagree");
                (0..va.len())
                    .map(|i| self.gate_ite(sat, lc, va[i], vb[i]))
                    .collect()
            }
            other => panic!("blast_bv on non-bit-vector term {other:?}"),
        };
        // The blasted vector must agree with the term's declared sort.
        #[cfg(debug_assertions)]
        if let crate::term::Sort::Bv(w) = pool.sort(t) {
            debug_assert_eq!(bits.len(), w as usize, "blasted width disagrees with sort");
        }
        self.bv_cache.insert(t, bits.clone());
        bits
    }

    fn mul_vec(&mut self, sat: &mut Solver, a: &[Lit], b: &[Lit]) -> Vec<Lit> {
        debug_assert_eq!(a.len(), b.len(), "multiplier operand widths disagree");
        let w = a.len();
        let f = self.lit_false(sat);
        let mut acc = vec![f; w];
        for i in 0..w {
            if self.known(b[i]) == Some(false) {
                continue;
            }
            // addend = (a << i) AND b[i]
            let mut addend = vec![f; w];
            for j in 0..w - i {
                addend[i + j] = self.gate_and2(sat, a[j], b[i]);
            }
            acc = self.add_vec(sat, &acc, &addend, f);
        }
        acc
    }

    /// Cached literals of an already-blasted bit-vector term.
    pub(crate) fn cached_bits(&self, t: Term) -> Option<&[Lit]> {
        self.bv_cache.get(&t).map(Vec::as_slice)
    }

    /// Cached literal of an already-blasted Boolean term.
    pub(crate) fn peek_bool(&self, t: Term) -> Option<Lit> {
        self.bool_cache.get(&t).copied()
    }
}

//! Weighted pseudo-Boolean "at most k" constraints.
//!
//! Implements the generalized sequential weighted counter encoding
//! (Hölldobler & Manthey style): registers `s[i][j]` mean "the weighted sum
//! of the first `i` items is at least `j+1`". The encoding is
//! implication-complete for the asserted direction (`Σ wᵢ·xᵢ ≤ k`) and unit
//! propagation detects every violation as soon as it is forced — exactly
//! what the pin-density formulation (Eq. 14 of the paper) needs.

use ams_sat::{Lit, Solver};

/// Asserts `Σ weight_i · [lit_i] ≤ bound` into `sat`.
///
/// Items with zero weight are ignored; items whose weight alone exceeds the
/// bound are forced false. `bound == 0` forces every weighted literal false.
pub fn assert_at_most(sat: &mut Solver, items: &[(Lit, u64)], bound: u64) {
    let mut active: Vec<(Lit, u64)> = Vec::with_capacity(items.len());
    for &(lit, w) in items {
        if w == 0 {
            continue;
        }
        if w > bound {
            sat.add_clause(&[!lit]);
        } else {
            active.push((lit, w));
        }
    }
    if active.is_empty() {
        return;
    }
    let total: u64 = active.iter().map(|&(_, w)| w).sum();
    if total <= bound {
        return; // vacuously satisfied
    }
    let k = bound as usize;

    // prev[j] == Some(s) : literal s is true when the prefix sum >= j+1.
    // None means the prefix sum provably cannot reach j+1 yet.
    let mut prev: Vec<Option<Lit>> = vec![None; k];
    for (i, &(x, w)) in active.iter().enumerate() {
        let w = w as usize;
        let last = i + 1 == active.len();

        // Overflow: prefix >= k+1-w together with x exceeds the bound.
        if k >= w {
            if let Some(s) = prev.get(k - w).copied().flatten() {
                sat.add_clause(&[!x, !s]);
            }
        }
        if last {
            break; // the final register column is never read
        }

        let mut cur: Vec<Option<Lit>> = vec![None; k];
        for j in 0..k {
            // Candidates that force cur[j] ("sum of first i+1 items >= j+1"):
            //   prev[j]                   (already reached without x)
            //   x, if w >= j+1            (x alone reaches it)
            //   x ∧ prev[j-w], if j >= w  (x lifts a smaller prefix)
            let carry = prev[j];
            let alone = w > j;
            let lifted = if j >= w { prev[j - w] } else { None };
            if carry.is_none() && !alone && lifted.is_none() {
                continue;
            }
            let s = sat.new_var().positive();
            if let Some(c) = carry {
                sat.add_clause(&[!c, s]);
            }
            if alone {
                sat.add_clause(&[!x, s]);
            }
            if let Some(l) = lifted {
                sat.add_clause(&[!x, !l, s]);
            }
            cur[j] = Some(s);
        }
        prev = cur;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ams_sat::{SolveResult, Solver};

    fn vars(sat: &mut Solver, n: usize) -> Vec<Lit> {
        (0..n).map(|_| sat.new_var().positive()).collect()
    }

    /// Checks `assert_at_most` against exhaustive enumeration.
    fn check_exhaustive(weights: &[u64], bound: u64) {
        let n = weights.len();
        for forced in 0u32..(1 << n) {
            let mut sat = Solver::new();
            let xs = vars(&mut sat, n);
            let items: Vec<(Lit, u64)> = xs.iter().copied().zip(weights.iter().copied()).collect();
            assert_at_most(&mut sat, &items, bound);
            let mut sum = 0u64;
            for i in 0..n {
                let set = (forced >> i) & 1 == 1;
                sat.add_clause(&[if set { xs[i] } else { !xs[i] }]);
                if set {
                    sum += weights[i];
                }
            }
            let expect = sum <= bound;
            let got = sat.solve() == SolveResult::Sat;
            assert_eq!(
                got, expect,
                "weights {weights:?} bound {bound} assignment {forced:b}: sum {sum}"
            );
        }
    }

    #[test]
    fn unit_weights_small_bounds() {
        check_exhaustive(&[1, 1, 1], 0);
        check_exhaustive(&[1, 1, 1], 1);
        check_exhaustive(&[1, 1, 1], 2);
        check_exhaustive(&[1, 1, 1, 1], 2);
    }

    #[test]
    fn mixed_weights() {
        check_exhaustive(&[3, 2, 1], 3);
        check_exhaustive(&[5, 4, 3, 2], 7);
        check_exhaustive(&[2, 2, 2], 4);
        check_exhaustive(&[7, 1, 1, 1], 3);
    }

    #[test]
    fn zero_weight_is_free() {
        check_exhaustive(&[0, 2, 3], 3);
    }

    #[test]
    fn vacuous_bound_adds_nothing() {
        let mut sat = Solver::new();
        let xs = vars(&mut sat, 3);
        let items: Vec<(Lit, u64)> = xs.iter().map(|&l| (l, 1)).collect();
        assert_at_most(&mut sat, &items, 10);
        assert_eq!(sat.num_clauses(), 0);
        for &x in &xs {
            sat.add_clause(&[x]);
        }
        assert_eq!(sat.solve(), SolveResult::Sat);
    }

    #[test]
    fn overweight_item_is_forced_false() {
        let mut sat = Solver::new();
        let xs = vars(&mut sat, 2);
        assert_at_most(&mut sat, &[(xs[0], 9), (xs[1], 1)], 2);
        assert_eq!(sat.solve_with(&[xs[0]]), SolveResult::Unsat);
        assert_eq!(sat.solve_with(&[xs[1]]), SolveResult::Sat);
    }
}

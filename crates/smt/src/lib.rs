//! # ams-smt
//!
//! A quantifier-free bit-vector (QF_BV) SMT layer over the [`ams_sat`] CDCL
//! core, standing in for the Z3 configuration used by the DATE 2022 paper
//! this workspace reproduces ("pure BV formulas, fully transferable to
//! propositional logic").
//!
//! * hash-consed term graph with constant folding ([`TermPool`]),
//! * biconditional Tseitin bit-blasting with gate-level structural hashing,
//! * weighted pseudo-Boolean `at-most-k` constraints (sequential weighted
//!   counter) for the paper's pin-density formulation,
//! * incremental solving with retractable assumptions and failed-assumption
//!   cores — the substrate of the paper's Algorithm 1.
//!
//! ## Example
//!
//! ```
//! use ams_smt::{Smt, SmtResult};
//!
//! let mut smt = Smt::new();
//! let x = smt.bv_var(8, "x");
//! let c5 = smt.bv_const(8, 5);
//! let c9 = smt.bv_const(8, 9);
//! let lower = smt.ugt(x, c5);
//! let upper = smt.ult(x, c9);
//! smt.assert(lower);
//! smt.assert(upper);
//! assert_eq!(smt.solve(), SmtResult::Sat);
//! assert!(smt.bv_value(x) > 5 && smt.bv_value(x) < 9);
//! ```

mod blast;
pub mod pb;
mod solver;
mod term;

pub use solver::{PortfolioSummary, Smt, SmtResult};
pub use term::{Sort, Term, TermKind, TermPool};

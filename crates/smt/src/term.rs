//! Hash-consed term graph for the QF_BV fragment used by the placer.
//!
//! Terms are interned in a [`TermPool`]; a [`Term`] is an index into it.
//! Constructors perform constant folding and light normalization
//! (commutative-operand sorting) so structurally equal terms share a node.

use std::collections::HashMap;
use std::fmt;

/// Handle to an interned term. Only meaningful for the pool that created it.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Term(pub(crate) u32);

impl Term {
    /// Dense index of this term in its pool.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// The sort of a term: Boolean or a fixed-width bit-vector.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Sort {
    /// Propositional sort.
    Bool,
    /// Bit-vector of the given width (1..=64).
    Bv(u32),
}

impl Sort {
    /// Bit-vector width; zero for `Bool`.
    pub fn width(self) -> u32 {
        match self {
            Sort::Bool => 0,
            Sort::Bv(w) => w,
        }
    }
}

impl fmt::Display for Sort {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Sort::Bool => write!(f, "Bool"),
            Sort::Bv(w) => write!(f, "BV{w}"),
        }
    }
}

/// Node payload of an interned term.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum TermKind {
    /// Boolean constant.
    BoolConst(bool),
    /// Free Boolean variable (index is the variable id).
    BoolVar(u32),
    /// Logical negation.
    Not(Term),
    /// N-ary conjunction (operands sorted, deduplicated, n >= 2).
    And(Box<[Term]>),
    /// N-ary disjunction (operands sorted, deduplicated, n >= 2).
    Or(Box<[Term]>),
    /// Exclusive or.
    Xor(Term, Term),
    /// Equality over Booleans or same-width bit-vectors.
    Eq(Term, Term),
    /// Unsigned less-or-equal over same-width bit-vectors.
    Ule(Term, Term),
    /// Unsigned strictly-less over same-width bit-vectors.
    Ult(Term, Term),
    /// If-then-else; branches share a sort, condition is Boolean.
    Ite(Term, Term, Term),

    /// Free bit-vector variable.
    BvVar {
        /// Bit width.
        width: u32,
        /// Variable id.
        id: u32,
    },
    /// Bit-vector constant (value truncated to width).
    BvConst {
        /// Bit width.
        width: u32,
        /// Constant value.
        value: u64,
    },
    /// Wrapping addition.
    Add(Term, Term),
    /// Wrapping subtraction.
    Sub(Term, Term),
    /// Wrapping multiplication.
    Mul(Term, Term),
    /// Left shift by a constant amount (width preserved).
    Shl(Term, u32),
    /// Zero extension to a wider sort.
    ZExt(Term, u32),
}

/// Interning pool for [`Term`]s.
#[derive(Debug, Default)]
pub struct TermPool {
    kinds: Vec<TermKind>,
    sorts: Vec<Sort>,
    names: HashMap<u32, String>,
    intern: HashMap<TermKind, Term>,
    next_bool_var: u32,
    next_bv_var: u32,
}

impl TermPool {
    /// Creates an empty pool.
    pub fn new() -> TermPool {
        TermPool::default()
    }

    /// Number of interned terms.
    pub fn len(&self) -> usize {
        self.kinds.len()
    }

    /// Whether the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.kinds.is_empty()
    }

    /// The node payload of `t`.
    pub fn kind(&self, t: Term) -> &TermKind {
        &self.kinds[t.index()]
    }

    /// The sort of `t`.
    pub fn sort(&self, t: Term) -> Sort {
        self.sorts[t.index()]
    }

    /// Bit width of `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t` is Boolean.
    pub fn width(&self, t: Term) -> u32 {
        match self.sort(t) {
            Sort::Bv(w) => w,
            Sort::Bool => panic!("term {t:?} is Boolean, not a bit-vector"),
        }
    }

    /// Debug name of a variable term, if one was given.
    pub fn name(&self, t: Term) -> Option<&str> {
        match *self.kind(t) {
            TermKind::BoolVar(id) => self.names.get(&id).map(String::as_str),
            TermKind::BvVar { id, .. } => self.names.get(&(u32::MAX - id)).map(String::as_str),
            _ => None,
        }
    }

    fn mk(&mut self, kind: TermKind, sort: Sort) -> Term {
        if let Some(&t) = self.intern.get(&kind) {
            return t;
        }
        let t = Term(self.kinds.len() as u32);
        self.kinds.push(kind.clone());
        self.sorts.push(sort);
        self.intern.insert(kind, t);
        t
    }

    /// Constant value of `t` if it is a Boolean or bit-vector constant.
    pub fn as_const(&self, t: Term) -> Option<u64> {
        match *self.kind(t) {
            TermKind::BoolConst(b) => Some(u64::from(b)),
            TermKind::BvConst { value, .. } => Some(value),
            _ => None,
        }
    }

    // ------------------------------------------------------------------
    // Leaf constructors
    // ------------------------------------------------------------------

    /// The Boolean constant `true`.
    pub fn tru(&mut self) -> Term {
        self.mk(TermKind::BoolConst(true), Sort::Bool)
    }

    /// The Boolean constant `false`.
    pub fn fals(&mut self) -> Term {
        self.mk(TermKind::BoolConst(false), Sort::Bool)
    }

    /// A Boolean constant.
    pub fn bool_const(&mut self, b: bool) -> Term {
        self.mk(TermKind::BoolConst(b), Sort::Bool)
    }

    /// A fresh Boolean variable.
    pub fn bool_var(&mut self, name: impl Into<String>) -> Term {
        let id = self.next_bool_var;
        self.next_bool_var += 1;
        self.names.insert(id, name.into());
        self.mk(TermKind::BoolVar(id), Sort::Bool)
    }

    /// A fresh bit-vector variable of the given width.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero or exceeds 64.
    pub fn bv_var(&mut self, width: u32, name: impl Into<String>) -> Term {
        assert!((1..=64).contains(&width), "bit-vector width must be 1..=64");
        let id = self.next_bv_var;
        self.next_bv_var += 1;
        self.names.insert(u32::MAX - id, name.into());
        self.mk(TermKind::BvVar { width, id }, Sort::Bv(width))
    }

    /// A bit-vector constant; `value` is truncated to `width` bits.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero or exceeds 64.
    pub fn bv_const(&mut self, width: u32, value: u64) -> Term {
        assert!((1..=64).contains(&width), "bit-vector width must be 1..=64");
        let value = truncate(value, width);
        self.mk(TermKind::BvConst { width, value }, Sort::Bv(width))
    }

    // ------------------------------------------------------------------
    // Boolean connectives
    // ------------------------------------------------------------------

    /// Logical negation (double negation and constants fold away).
    pub fn not(&mut self, a: Term) -> Term {
        self.expect_bool(a, "not");
        match *self.kind(a) {
            TermKind::BoolConst(b) => self.bool_const(!b),
            TermKind::Not(inner) => inner,
            _ => self.mk(TermKind::Not(a), Sort::Bool),
        }
    }

    /// N-ary conjunction.
    pub fn and(&mut self, operands: &[Term]) -> Term {
        self.nary(operands, true)
    }

    /// N-ary disjunction.
    pub fn or(&mut self, operands: &[Term]) -> Term {
        self.nary(operands, false)
    }

    fn nary(&mut self, operands: &[Term], is_and: bool) -> Term {
        let mut ops: Vec<Term> = Vec::with_capacity(operands.len());
        for &o in operands {
            self.expect_bool(o, if is_and { "and" } else { "or" });
            match *self.kind(o) {
                TermKind::BoolConst(b) => {
                    if b != is_and {
                        // false in an AND / true in an OR dominates.
                        return self.bool_const(!is_and);
                    }
                    // Neutral element: skip.
                }
                // Flatten nested same-connective nodes.
                TermKind::And(ref inner) if is_and => ops.extend(inner.iter().copied()),
                TermKind::Or(ref inner) if !is_and => ops.extend(inner.iter().copied()),
                _ => ops.push(o),
            }
        }
        ops.sort_unstable();
        ops.dedup();
        // x ∧ ¬x = false; x ∨ ¬x = true.
        for &o in &ops {
            if let TermKind::Not(inner) = *self.kind(o) {
                if ops.binary_search(&inner).is_ok() {
                    return self.bool_const(!is_and);
                }
            }
        }
        match ops.len() {
            0 => self.bool_const(is_and),
            1 => ops[0],
            _ => {
                let kind = if is_and {
                    TermKind::And(ops.into_boxed_slice())
                } else {
                    TermKind::Or(ops.into_boxed_slice())
                };
                self.mk(kind, Sort::Bool)
            }
        }
    }

    /// Binary conjunction convenience.
    pub fn and2(&mut self, a: Term, b: Term) -> Term {
        self.and(&[a, b])
    }

    /// Binary disjunction convenience.
    pub fn or2(&mut self, a: Term, b: Term) -> Term {
        self.or(&[a, b])
    }

    /// Exclusive or of Booleans.
    pub fn xor(&mut self, a: Term, b: Term) -> Term {
        self.expect_bool(a, "xor");
        self.expect_bool(b, "xor");
        if a == b {
            return self.fals();
        }
        match (self.as_const(a), self.as_const(b)) {
            (Some(ca), Some(cb)) => self.bool_const(ca != cb),
            (Some(0), None) => b,
            (Some(_), None) => self.not(b),
            (None, Some(0)) => a,
            (None, Some(_)) => self.not(a),
            (None, None) => {
                let (a, b) = if a <= b { (a, b) } else { (b, a) };
                self.mk(TermKind::Xor(a, b), Sort::Bool)
            }
        }
    }

    /// Implication `a → b`, lowered to `¬a ∨ b`.
    pub fn implies(&mut self, a: Term, b: Term) -> Term {
        let na = self.not(a);
        self.or(&[na, b])
    }

    /// Equality (Boolean iff, or bit-vector equality).
    ///
    /// # Panics
    ///
    /// Panics on sort mismatch.
    pub fn eq(&mut self, a: Term, b: Term) -> Term {
        assert_eq!(
            self.sort(a),
            self.sort(b),
            "eq requires operands of the same sort"
        );
        if a == b {
            return self.tru();
        }
        if let (Some(ca), Some(cb)) = (self.as_const(a), self.as_const(b)) {
            return self.bool_const(ca == cb);
        }
        let (a, b) = if a <= b { (a, b) } else { (b, a) };
        self.mk(TermKind::Eq(a, b), Sort::Bool)
    }

    /// Disequality.
    pub fn ne(&mut self, a: Term, b: Term) -> Term {
        let e = self.eq(a, b);
        self.not(e)
    }

    /// If-then-else over Booleans or bit-vectors.
    ///
    /// # Panics
    ///
    /// Panics if `cond` is not Boolean or the branches differ in sort.
    pub fn ite(&mut self, cond: Term, then: Term, els: Term) -> Term {
        self.expect_bool(cond, "ite condition");
        assert_eq!(
            self.sort(then),
            self.sort(els),
            "ite branches must share a sort"
        );
        if then == els {
            return then;
        }
        match self.as_const(cond) {
            Some(0) => els,
            Some(_) => then,
            None => {
                let sort = self.sort(then);
                self.mk(TermKind::Ite(cond, then, els), sort)
            }
        }
    }

    // ------------------------------------------------------------------
    // Bit-vector operations
    // ------------------------------------------------------------------

    /// Wrapping addition of same-width bit-vectors.
    pub fn add(&mut self, a: Term, b: Term) -> Term {
        let w = self.expect_same_bv(a, b, "add");
        match (self.as_const(a), self.as_const(b)) {
            (Some(ca), Some(cb)) => self.bv_const(w, ca.wrapping_add(cb)),
            (Some(0), None) => b,
            (None, Some(0)) => a,
            _ => {
                let (a, b) = if a <= b { (a, b) } else { (b, a) };
                self.mk(TermKind::Add(a, b), Sort::Bv(w))
            }
        }
    }

    /// Wrapping subtraction of same-width bit-vectors.
    pub fn sub(&mut self, a: Term, b: Term) -> Term {
        let w = self.expect_same_bv(a, b, "sub");
        if a == b {
            return self.bv_const(w, 0);
        }
        match (self.as_const(a), self.as_const(b)) {
            (Some(ca), Some(cb)) => self.bv_const(w, ca.wrapping_sub(cb)),
            (None, Some(0)) => a,
            _ => self.mk(TermKind::Sub(a, b), Sort::Bv(w)),
        }
    }

    /// Wrapping multiplication of same-width bit-vectors.
    pub fn mul(&mut self, a: Term, b: Term) -> Term {
        let w = self.expect_same_bv(a, b, "mul");
        match (self.as_const(a), self.as_const(b)) {
            (Some(ca), Some(cb)) => self.bv_const(w, ca.wrapping_mul(cb)),
            (Some(0), None) | (None, Some(0)) => self.bv_const(w, 0),
            (Some(1), None) => b,
            (None, Some(1)) => a,
            _ => {
                let (a, b) = if a <= b { (a, b) } else { (b, a) };
                self.mk(TermKind::Mul(a, b), Sort::Bv(w))
            }
        }
    }

    /// Left shift by a constant; bits shifted past the width are dropped.
    pub fn shl(&mut self, a: Term, amount: u32) -> Term {
        let w = self.width(a);
        if amount == 0 {
            return a;
        }
        if amount >= w {
            return self.bv_const(w, 0);
        }
        match self.as_const(a) {
            Some(c) => self.bv_const(w, c << amount),
            None => self.mk(TermKind::Shl(a, amount), Sort::Bv(w)),
        }
    }

    /// Zero-extends `a` to `new_width`.
    ///
    /// # Panics
    ///
    /// Panics if `new_width` is smaller than the width of `a` or exceeds 64.
    pub fn zext(&mut self, a: Term, new_width: u32) -> Term {
        let w = self.width(a);
        assert!(
            new_width >= w && new_width <= 64,
            "zext target width {new_width} invalid for source width {w}"
        );
        if new_width == w {
            return a;
        }
        match self.as_const(a) {
            Some(c) => self.bv_const(new_width, c),
            None => self.mk(TermKind::ZExt(a, new_width), Sort::Bv(new_width)),
        }
    }

    /// Unsigned `a <= b`.
    pub fn ule(&mut self, a: Term, b: Term) -> Term {
        let w = self.expect_same_bv(a, b, "ule");
        if a == b {
            return self.tru();
        }
        match (self.as_const(a), self.as_const(b)) {
            (Some(ca), Some(cb)) => self.bool_const(ca <= cb),
            (Some(0), None) => self.tru(),
            (None, Some(c)) if c == max_value(w) => self.tru(),
            _ => self.mk(TermKind::Ule(a, b), Sort::Bool),
        }
    }

    /// Unsigned `a < b`.
    pub fn ult(&mut self, a: Term, b: Term) -> Term {
        let w = self.expect_same_bv(a, b, "ult");
        if a == b {
            return self.fals();
        }
        match (self.as_const(a), self.as_const(b)) {
            (Some(ca), Some(cb)) => self.bool_const(ca < cb),
            (None, Some(0)) => self.fals(),
            (Some(c), None) if c == max_value(w) => self.fals(),
            _ => self.mk(TermKind::Ult(a, b), Sort::Bool),
        }
    }

    /// Unsigned `a >= b` (lowered to `ule(b, a)`).
    pub fn uge(&mut self, a: Term, b: Term) -> Term {
        self.ule(b, a)
    }

    /// Unsigned `a > b` (lowered to `ult(b, a)`).
    pub fn ugt(&mut self, a: Term, b: Term) -> Term {
        self.ult(b, a)
    }

    /// Sums terms after zero-extending everything to `width`.
    ///
    /// # Panics
    ///
    /// Panics if `terms` is empty or any term is wider than `width`.
    pub fn sum(&mut self, terms: &[Term], width: u32) -> Term {
        assert!(!terms.is_empty(), "sum of no terms");
        let mut acc = self.bv_const(width, 0);
        for &t in terms {
            let ext = self.zext(t, width);
            acc = self.add(acc, ext);
        }
        acc
    }

    // ------------------------------------------------------------------
    // Validation helpers
    // ------------------------------------------------------------------

    fn expect_bool(&self, t: Term, what: &str) {
        assert_eq!(self.sort(t), Sort::Bool, "{what} operand must be Boolean");
    }

    fn expect_same_bv(&self, a: Term, b: Term, what: &str) -> u32 {
        match (self.sort(a), self.sort(b)) {
            (Sort::Bv(wa), Sort::Bv(wb)) if wa == wb => wa,
            (sa, sb) => panic!("{what} requires equal-width bit-vectors, got {sa} and {sb}"),
        }
    }
}

/// Truncates `value` to `width` bits.
pub(crate) fn truncate(value: u64, width: u32) -> u64 {
    if width >= 64 {
        value
    } else {
        value & ((1u64 << width) - 1)
    }
}

/// Maximum unsigned value representable in `width` bits.
pub(crate) fn max_value(width: u32) -> u64 {
    truncate(u64::MAX, width)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_shares_nodes() {
        let mut p = TermPool::new();
        let x = p.bv_var(8, "x");
        let y = p.bv_var(8, "y");
        let a = p.add(x, y);
        let b = p.add(y, x); // commutative normalization
        assert_eq!(a, b);
    }

    #[test]
    fn constant_folding() {
        let mut p = TermPool::new();
        let a = p.bv_const(8, 200);
        let b = p.bv_const(8, 100);
        let sum = p.add(a, b);
        assert_eq!(p.as_const(sum), Some(44)); // wraps mod 256
        let diff = p.sub(b, a);
        assert_eq!(p.as_const(diff), Some(156));
        let prod = p.mul(a, b);
        assert_eq!(p.as_const(prod), Some(truncate(20000, 8)));
        let t = p.ule(b, a);
        assert_eq!(t, p.tru());
    }

    #[test]
    fn boolean_simplification() {
        let mut p = TermPool::new();
        let x = p.bool_var("x");
        let t = p.tru();
        let f = p.fals();
        assert_eq!(p.and(&[x, t]), x);
        assert_eq!(p.and(&[x, f]), f);
        assert_eq!(p.or(&[x, f]), x);
        assert_eq!(p.or(&[x, t]), t);
        let nx = p.not(x);
        assert_eq!(p.not(nx), x);
        assert_eq!(p.and(&[x, nx]), f);
        assert_eq!(p.or(&[x, nx]), t);
        assert_eq!(p.xor(x, x), f);
    }

    #[test]
    fn and_flattens_nested() {
        let mut p = TermPool::new();
        let x = p.bool_var("x");
        let y = p.bool_var("y");
        let z = p.bool_var("z");
        let xy = p.and(&[x, y]);
        let flat = p.and(&[xy, z]);
        match p.kind(flat) {
            TermKind::And(ops) => assert_eq!(ops.len(), 3),
            k => panic!("expected flattened And, got {k:?}"),
        }
    }

    #[test]
    fn ite_folds() {
        let mut p = TermPool::new();
        let c = p.bool_var("c");
        let a = p.bv_const(4, 3);
        let b = p.bv_const(4, 9);
        assert_eq!(p.ite(c, a, a), a);
        let t = p.tru();
        assert_eq!(p.ite(t, a, b), a);
    }

    #[test]
    fn zext_and_shl() {
        let mut p = TermPool::new();
        let a = p.bv_const(4, 0b1011);
        let z = p.zext(a, 8);
        assert_eq!(p.width(z), 8);
        assert_eq!(p.as_const(z), Some(0b1011));
        let s = p.shl(a, 2);
        assert_eq!(p.as_const(s), Some(0b1100)); // truncated to 4 bits
    }

    #[test]
    #[should_panic(expected = "equal-width")]
    fn width_mismatch_panics() {
        let mut p = TermPool::new();
        let a = p.bv_var(4, "a");
        let b = p.bv_var(8, "b");
        p.add(a, b);
    }

    #[test]
    fn names_are_retrievable() {
        let mut p = TermPool::new();
        let x = p.bool_var("flag");
        let v = p.bv_var(6, "x_cell3");
        assert_eq!(p.name(x), Some("flag"));
        assert_eq!(p.name(v), Some("x_cell3"));
    }

    #[test]
    fn sum_extends_operands() {
        let mut p = TermPool::new();
        let a = p.bv_const(4, 15);
        let b = p.bv_const(4, 15);
        let s = p.sum(&[a, b], 8);
        assert_eq!(p.as_const(s), Some(30));
    }
}

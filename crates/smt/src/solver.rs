//! The incremental SMT solver facade.

use crate::blast::Blaster;
use crate::pb;
use crate::term::{truncate, Sort, Term, TermKind, TermPool};
use ams_sat::{
    Lit, Portfolio, PortfolioConfig, PortfolioVerdict, Proof, ProofLog, SolveResult, Solver,
    StopCause, WorkerStats,
};
use std::collections::HashMap;
use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use std::time::Instant;

/// Result of an [`Smt::solve`] call.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SmtResult {
    /// Satisfiable; read values with [`Smt::bv_value`] / [`Smt::bool_value`].
    Sat,
    /// Unsatisfiable under the current assertions (and assumptions).
    Unsat,
    /// A solver budget or wall-clock deadline expired;
    /// [`Smt::stop_cause`] says which.
    Unknown,
    /// The solve was cancelled through the stop flag
    /// ([`Smt::set_stop_flag`]) before a verdict.
    Cancelled,
}

/// Aggregated portfolio statistics across the [`Smt`] solver's lifetime.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PortfolioSummary {
    /// Per-worker counters summed over every portfolio solve; the
    /// per-call `result` field is the worker's outcome in the *last* solve.
    pub workers: Vec<WorkerStats>,
    /// Winning worker id of the most recent portfolio solve.
    pub last_winner: Option<usize>,
    /// Number of solve calls dispatched to the portfolio.
    pub solves: u64,
}

/// An incremental QF_BV SMT solver over a CDCL SAT core.
///
/// Terms are built through the constructor methods (which delegate to the
/// internal [`TermPool`]) and asserted with [`Smt::assert`]. Solving is
/// incremental: assertions persist across [`Smt::solve`] calls, and
/// [`Smt::solve_with`] solves under retractable Boolean assumptions — the
/// mechanism the placement engine uses to freeze cell coordinates
/// (Algorithm 1, line 9 of the paper).
///
/// # Examples
///
/// ```
/// use ams_smt::{Smt, SmtResult};
///
/// let mut smt = Smt::new();
/// let x = smt.bv_var(8, "x");
/// let y = smt.bv_var(8, "y");
/// let sum = smt.add(x, y);
/// let c42 = smt.bv_const(8, 42);
/// let c10 = smt.bv_const(8, 10);
/// let want = smt.eq(sum, c42);
/// let xlow = smt.ult(x, c10);
/// smt.assert(want);
/// smt.assert(xlow);
/// assert_eq!(smt.solve(), SmtResult::Sat);
/// assert_eq!(smt.bv_value(x) + smt.bv_value(y), 42);
/// assert!(smt.bv_value(x) < 10);
/// ```
#[derive(Default)]
pub struct Smt {
    pool: TermPool,
    sat: Solver,
    blaster: Blaster,
    /// Assertions not yet blasted into the SAT solver.
    pending: Vec<Term>,
    /// All assertions ever made (for model-debugging and statistics).
    asserted: Vec<Term>,
    /// Maps assumption literals of the last `solve_with` back to terms.
    assumption_map: HashMap<Lit, Term>,
    failed: Vec<Term>,
    /// Active selector literal: assertions made while set are conditioned
    /// on it, so whole constraint families can be enabled per solve via
    /// assumptions (the UNSAT-explanation mechanism).
    guard: Option<Term>,
    /// When set with more than one thread, solves dispatch to a parallel
    /// portfolio over diversified clones of the SAT core.
    portfolio: Option<PortfolioConfig>,
    /// Cooperative cancellation for both sequential and portfolio solves.
    stop: Option<Arc<AtomicBool>>,
    /// Wall-clock deadline forwarded to the SAT core (and every portfolio
    /// worker, which inherits it through cloning).
    deadline: Option<Instant>,
    /// Why the last solve returned [`SmtResult::Unknown`], if it did.
    last_cause: Option<StopCause>,
    /// Aggregated portfolio counters across solve calls.
    portfolio_summary: PortfolioSummary,
    /// DRAT proof sink mirroring the handle installed in the SAT core, so
    /// certificates survive portfolio core replacement.
    proof: Option<ProofLog>,
}

impl std::fmt::Debug for Smt {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Smt")
            .field("terms", &self.pool.len())
            .field("assertions", &self.asserted.len())
            .field("sat_vars", &self.sat.num_vars())
            .field("sat_clauses", &self.sat.num_clauses())
            .finish()
    }
}

macro_rules! delegate_unary {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        pub fn $name(&mut self, a: Term) -> Term {
            self.pool.$name(a)
        }
    };
}

macro_rules! delegate_binary {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        pub fn $name(&mut self, a: Term, b: Term) -> Term {
            self.pool.$name(a, b)
        }
    };
}

impl Smt {
    /// Creates an empty solver.
    pub fn new() -> Smt {
        Smt::default()
    }

    /// Read-only access to the term pool.
    pub fn pool(&self) -> &TermPool {
        &self.pool
    }

    /// Number of assertions made so far.
    pub fn num_assertions(&self) -> usize {
        self.asserted.len()
    }

    /// Underlying SAT statistics.
    pub fn sat_stats(&self) -> ams_sat::Stats {
        self.sat.stats()
    }

    /// Number of SAT variables allocated by blasting.
    pub fn num_sat_vars(&self) -> usize {
        self.sat.num_vars()
    }

    /// Number of SAT clauses produced by blasting.
    pub fn num_sat_clauses(&self) -> usize {
        self.sat.num_clauses()
    }

    /// Bounds the conflicts of subsequent `solve` calls (anytime solving).
    ///
    /// In portfolio mode the budget applies to each worker independently.
    pub fn set_conflict_budget(&mut self, conflicts: Option<u64>) {
        self.sat.set_conflict_budget(conflicts);
    }

    /// Enables (or disables) parallel portfolio solving. With `None`, or a
    /// configuration whose `threads <= 1`, solves run sequentially on the
    /// calling thread — bit-for-bit deterministic.
    pub fn set_portfolio(&mut self, config: Option<PortfolioConfig>) {
        self.portfolio = config;
    }

    /// Installs (or clears) a cooperative stop flag: raising it makes the
    /// current and subsequent solves return [`SmtResult::Cancelled`].
    pub fn set_stop_flag(&mut self, stop: Option<Arc<AtomicBool>>) {
        self.stop = stop;
    }

    /// Installs (or clears) a wall-clock deadline for subsequent solves.
    /// Once it passes, solves return [`SmtResult::Unknown`] with
    /// [`Smt::stop_cause`] reporting [`StopCause::Deadline`]. Portfolio
    /// workers inherit the deadline. With no deadline set, solves never
    /// read the clock (preserving sequential determinism).
    pub fn set_deadline(&mut self, deadline: Option<Instant>) {
        self.deadline = deadline;
        self.sat.set_deadline(deadline);
    }

    /// Why the last solve stopped without a verdict — `Some` exactly when
    /// it returned [`SmtResult::Unknown`].
    pub fn stop_cause(&self) -> Option<StopCause> {
        self.last_cause
    }

    /// Aggregated portfolio statistics; `workers` is empty until a solve
    /// actually dispatches to the portfolio.
    pub fn portfolio_summary(&self) -> &PortfolioSummary {
        &self.portfolio_summary
    }

    /// Enables DRAT proof capture. Every clause the bit-blaster hands to
    /// the SAT core is recorded from here on, together with all learnt
    /// additions/deletions (including portfolio-imported clauses), so UNSAT
    /// verdicts become certificates checkable by
    /// [`ams_sat::drat::check`]. Idempotent; best called before the first
    /// assertion so the checker sees the complete CNF.
    pub fn enable_proof(&mut self) {
        if self.proof.is_none() {
            let log = ProofLog::new();
            self.sat.set_proof(Some(log.clone()));
            self.proof = Some(log);
        }
    }

    /// The proof sink, when [`Smt::enable_proof`] was called.
    pub fn proof_log(&self) -> Option<&ProofLog> {
        self.proof.as_ref()
    }

    /// After an `Unsat` outcome with proof capture enabled, snapshots the
    /// derivation into a standalone certificate. The certificate's target
    /// is the clause of negated failed-assumption literals — empty for an
    /// assumption-free refutation — exactly what
    /// [`ams_sat::drat::check`] validates against the captured CNF.
    pub fn unsat_certificate(&self) -> Option<Proof> {
        let proof = self.proof.as_ref()?;
        let target: Vec<Lit> = self.sat.failed_assumptions().iter().map(|&l| !l).collect();
        Some(proof.snapshot(&target))
    }

    // --- term constructors -------------------------------------------

    /// The constant `true`.
    pub fn tru(&mut self) -> Term {
        self.pool.tru()
    }

    /// The constant `false`.
    pub fn fals(&mut self) -> Term {
        self.pool.fals()
    }

    /// A fresh Boolean variable.
    pub fn bool_var(&mut self, name: impl Into<String>) -> Term {
        self.pool.bool_var(name)
    }

    /// A fresh bit-vector variable of the given width (1..=64).
    pub fn bv_var(&mut self, width: u32, name: impl Into<String>) -> Term {
        self.pool.bv_var(width, name)
    }

    /// A bit-vector constant, truncated to `width` bits.
    pub fn bv_const(&mut self, width: u32, value: u64) -> Term {
        self.pool.bv_const(width, value)
    }

    delegate_unary! {
        /// Logical negation.
        not
    }
    delegate_binary! {
        /// Boolean exclusive-or.
        xor
    }
    delegate_binary! {
        /// Implication `a → b`.
        implies
    }
    delegate_binary! {
        /// Equality over Booleans or equal-width bit-vectors.
        eq
    }
    delegate_binary! {
        /// Disequality.
        ne
    }
    delegate_binary! {
        /// Wrapping bit-vector addition.
        add
    }
    delegate_binary! {
        /// Wrapping bit-vector subtraction.
        sub
    }
    delegate_binary! {
        /// Wrapping bit-vector multiplication.
        mul
    }
    delegate_binary! {
        /// Unsigned `a <= b`.
        ule
    }
    delegate_binary! {
        /// Unsigned `a < b`.
        ult
    }
    delegate_binary! {
        /// Unsigned `a >= b`.
        uge
    }
    delegate_binary! {
        /// Unsigned `a > b`.
        ugt
    }
    delegate_binary! {
        /// Binary conjunction.
        and2
    }
    delegate_binary! {
        /// Binary disjunction.
        or2
    }

    /// N-ary conjunction.
    pub fn and(&mut self, operands: &[Term]) -> Term {
        self.pool.and(operands)
    }

    /// N-ary disjunction.
    pub fn or(&mut self, operands: &[Term]) -> Term {
        self.pool.or(operands)
    }

    /// If-then-else.
    pub fn ite(&mut self, cond: Term, then: Term, els: Term) -> Term {
        self.pool.ite(cond, then, els)
    }

    /// Left shift by a constant.
    pub fn shl(&mut self, a: Term, amount: u32) -> Term {
        self.pool.shl(a, amount)
    }

    /// Zero extension to `new_width`.
    pub fn zext(&mut self, a: Term, new_width: u32) -> Term {
        self.pool.zext(a, new_width)
    }

    /// Sum of terms, zero-extended to `width`.
    pub fn sum(&mut self, terms: &[Term], width: u32) -> Term {
        self.pool.sum(terms, width)
    }

    /// Convenience: `a == constant` with the constant sized to `a`.
    pub fn eq_const(&mut self, a: Term, value: u64) -> Term {
        let w = self.pool.width(a);
        let c = self.pool.bv_const(w, value);
        self.pool.eq(a, c)
    }

    // --- assertions and solving --------------------------------------

    /// Sets (or clears) the active guard selector.
    ///
    /// While a guard `g` is set, [`Smt::assert`] asserts `g → t` instead of
    /// `t`, and [`Smt::assert_at_most`] encodes a bound that collapses to
    /// the requested one exactly when `g` holds. Passing the guard terms as
    /// assumptions to [`Smt::solve_with`] then enables their constraint
    /// families, and [`Smt::failed_assumptions`] names the conflicting
    /// families on `Unsat` — the second-stage UNSAT explanation used by the
    /// placement linter.
    ///
    /// # Panics
    ///
    /// Panics if the guard term is not Boolean.
    pub fn set_guard(&mut self, guard: Option<Term>) {
        if let Some(g) = guard {
            assert_eq!(self.pool.sort(g), Sort::Bool, "guards must be Boolean");
        }
        self.guard = guard;
    }

    /// Permanently retires a guarded assertion group by asserting
    /// `¬selector` (ignoring any active guard), so every assertion guarded
    /// by `selector` becomes vacuous from the next solve on. Incremental
    /// reuse stays sound: a selector occurs positively in no problem
    /// clause, so `¬selector` can never be resolved away and every learnt
    /// clause depending on the retired group contains `¬selector` — it is
    /// satisfied, while learnt clauses independent of the group keep
    /// pruning. This is what lets the placement recovery ladder re-lower a
    /// relaxed constraint family on the live solver instead of rebuilding.
    ///
    /// # Panics
    ///
    /// Panics if the selector term is not Boolean.
    pub fn retire(&mut self, selector: Term) {
        assert_eq!(
            self.pool.sort(selector),
            Sort::Bool,
            "selectors must be Boolean"
        );
        let retired = self.pool.not(selector);
        self.pending.push(retired);
        self.asserted.push(retired);
    }

    /// Asserts a Boolean term. Takes effect at the next `solve`.
    ///
    /// Under an active guard `g` (see [`Smt::set_guard`]), `g → t` is
    /// asserted instead.
    ///
    /// # Panics
    ///
    /// Panics if `t` is not Boolean.
    pub fn assert(&mut self, t: Term) {
        assert_eq!(self.pool.sort(t), Sort::Bool, "assertions must be Boolean");
        let t = match self.guard {
            Some(g) => self.pool.implies(g, t),
            None => t,
        };
        self.pending.push(t);
        self.asserted.push(t);
    }

    /// Asserts the weighted pseudo-Boolean constraint
    /// `Σ weightᵢ · itemᵢ ≤ bound` (items must be Boolean terms).
    ///
    /// This is assert-only (it cannot be negated), matching its use as the
    /// paper's pin-density constraint (Eq. 14). Under an active guard `g`
    /// the guard joins the sum with weight `total − bound`, so the bound
    /// tightens to the requested value exactly when `g` holds and is
    /// vacuous otherwise.
    ///
    /// # Panics
    ///
    /// Panics if any item is not Boolean.
    pub fn assert_at_most(&mut self, items: &[(Term, u64)], bound: u64) {
        self.flush_pending();
        let mut lits: Vec<(Lit, u64)> = items
            .iter()
            .map(|&(t, w)| {
                assert_eq!(self.pool.sort(t), Sort::Bool, "PB items must be Boolean");
                (self.blaster.blast_bool(&self.pool, &mut self.sat, t), w)
            })
            .collect();
        let mut bound = bound;
        if let Some(g) = self.guard {
            let total: u64 = lits.iter().map(|&(_, w)| w).sum();
            if total > bound {
                let gl = self.blaster.blast_bool(&self.pool, &mut self.sat, g);
                lits.push((gl, total - bound));
                bound = total;
            }
        }
        pb::assert_at_most(&mut self.sat, &lits, bound);
    }

    fn flush_pending(&mut self) {
        for t in std::mem::take(&mut self.pending) {
            let l = self.blaster.blast_bool(&self.pool, &mut self.sat, t);
            self.sat.add_clause(&[l]);
        }
    }

    /// Bit-blasts every pending assertion into the SAT core now instead of
    /// at the next solve. [`Smt::num_sat_vars`] / [`Smt::num_sat_clauses`]
    /// afterwards reflect all assertions made so far, which lets callers
    /// attribute clause counts to assertion batches (the lowering
    /// statistics of the placement IR).
    pub fn flush(&mut self) {
        self.flush_pending();
    }

    /// Solves the conjunction of all assertions.
    pub fn solve(&mut self) -> SmtResult {
        self.solve_with(&[])
    }

    /// Solves under retractable Boolean assumptions.
    ///
    /// On `Unsat`, [`Smt::failed_assumptions`] names a subset of the
    /// assumptions sufficient for unsatisfiability.
    pub fn solve_with(&mut self, assumptions: &[Term]) -> SmtResult {
        self.flush_pending();
        self.assumption_map.clear();
        self.failed.clear();
        let mut lits = Vec::with_capacity(assumptions.len());
        for &t in assumptions {
            assert_eq!(self.pool.sort(t), Sort::Bool, "assumptions must be Boolean");
            let l = self.blaster.blast_bool(&self.pool, &mut self.sat, t);
            self.assumption_map.insert(l, t);
            lits.push(l);
        }
        match self.solve_sat(&lits) {
            SolveResult::Sat => SmtResult::Sat,
            SolveResult::Unknown => SmtResult::Unknown,
            SolveResult::Cancelled => SmtResult::Cancelled,
            SolveResult::Unsat => {
                self.failed = self
                    .sat
                    .failed_assumptions()
                    .iter()
                    .filter_map(|l| self.assumption_map.get(l).copied())
                    .collect();
                SmtResult::Unsat
            }
        }
    }

    /// Runs the SAT core on `lits`, dispatching to the parallel portfolio
    /// when one is configured with more than one thread. The winning
    /// worker's solver replaces the core, so models, failed assumptions,
    /// and learnt clauses carry over to subsequent incremental calls.
    fn solve_sat(&mut self, lits: &[Lit]) -> SolveResult {
        match self.portfolio {
            Some(cfg) if cfg.threads > 1 => {
                let base = std::mem::replace(&mut self.sat, Solver::new());
                let (winner, verdict) = Portfolio::new(cfg).solve(base, lits, self.stop.as_ref());
                match winner {
                    Some(winner) => self.sat = winner,
                    // Every worker panicked and the base state was consumed
                    // by the race. The replacement core is empty, so the
                    // instance must be treated as dead by the caller — the
                    // verdict's cause (AllWorkersPanicked) says why.
                    None => {
                        self.sat.set_deadline(self.deadline);
                        self.sat.set_proof(self.proof.clone());
                    }
                }
                self.record_portfolio(&verdict);
                self.last_cause = verdict.cause;
                verdict.result
            }
            _ => {
                self.sat.set_stop_flag(self.stop.clone());
                let result = self.sat.solve_with(lits);
                self.sat.set_stop_flag(None);
                self.last_cause = self.sat.stop_cause();
                result
            }
        }
    }

    /// Folds one portfolio verdict into the running summary.
    fn record_portfolio(&mut self, verdict: &PortfolioVerdict) {
        let summary = &mut self.portfolio_summary;
        if summary.workers.len() < verdict.workers.len() {
            summary
                .workers
                .resize_with(verdict.workers.len(), WorkerStats::default);
        }
        for (acc, w) in summary.workers.iter_mut().zip(&verdict.workers) {
            acc.id = w.id;
            acc.conflicts += w.conflicts;
            acc.decisions += w.decisions;
            acc.restarts += w.restarts;
            acc.exported += w.exported;
            acc.imported += w.imported;
            acc.result = w.result;
            // A panic is sticky across solves; keep the latest message.
            acc.panicked |= w.panicked;
            if w.panic_message.is_some() {
                acc.panic_message.clone_from(&w.panic_message);
            }
        }
        summary.last_winner = Some(verdict.winner);
        summary.solves += 1;
    }

    /// After `Unsat` from [`Smt::solve_with`], the failing assumption terms.
    pub fn failed_assumptions(&self) -> &[Term] {
        &self.failed
    }

    // --- model access -------------------------------------------------

    /// Model value of a bit-vector term after `Sat`.
    ///
    /// Terms that never reached the SAT solver are evaluated structurally
    /// (free variables default to zero).
    ///
    /// # Panics
    ///
    /// Panics if `t` is Boolean or if the last solve was not `Sat`.
    pub fn bv_value(&self, t: Term) -> u64 {
        match self.pool.sort(t) {
            Sort::Bv(_) => self.eval_bv(t),
            Sort::Bool => panic!("bv_value on a Boolean term"),
        }
    }

    /// Model value of a Boolean term after `Sat`.
    ///
    /// # Panics
    ///
    /// Panics if `t` is a bit-vector or if the last solve was not `Sat`.
    pub fn bool_value(&self, t: Term) -> bool {
        match self.pool.sort(t) {
            Sort::Bool => self.eval_bool(t),
            Sort::Bv(_) => panic!("bool_value on a bit-vector term"),
        }
    }

    fn eval_bool(&self, t: Term) -> bool {
        if let Some(lit) = self.blaster.peek_bool(t) {
            return self.sat.lit_model(lit);
        }
        match self.pool.kind(t) {
            TermKind::BoolConst(b) => *b,
            TermKind::BoolVar(_) => false, // unconstrained
            TermKind::Not(a) => !self.eval_bool(*a),
            TermKind::And(ops) => ops.iter().all(|&o| self.eval_bool(o)),
            TermKind::Or(ops) => ops.iter().any(|&o| self.eval_bool(o)),
            TermKind::Xor(a, b) => self.eval_bool(*a) ^ self.eval_bool(*b),
            TermKind::Eq(a, b) => match self.pool.sort(*a) {
                Sort::Bool => self.eval_bool(*a) == self.eval_bool(*b),
                Sort::Bv(_) => self.eval_bv(*a) == self.eval_bv(*b),
            },
            TermKind::Ule(a, b) => self.eval_bv(*a) <= self.eval_bv(*b),
            TermKind::Ult(a, b) => self.eval_bv(*a) < self.eval_bv(*b),
            TermKind::Ite(c, a, b) => {
                if self.eval_bool(*c) {
                    self.eval_bool(*a)
                } else {
                    self.eval_bool(*b)
                }
            }
            other => unreachable!("non-Boolean kind {other:?}"),
        }
    }

    fn eval_bv(&self, t: Term) -> u64 {
        if let Some(bits) = self.blaster.cached_bits(t) {
            let mut v = 0u64;
            for (i, &l) in bits.iter().enumerate() {
                if self.sat.lit_model(l) {
                    v |= 1 << i;
                }
            }
            return v;
        }
        let w = self.pool.width(t);
        let raw = match self.pool.kind(t) {
            TermKind::BvConst { value, .. } => *value,
            TermKind::BvVar { .. } => 0, // unconstrained
            TermKind::Add(a, b) => self.eval_bv(*a).wrapping_add(self.eval_bv(*b)),
            TermKind::Sub(a, b) => self.eval_bv(*a).wrapping_sub(self.eval_bv(*b)),
            TermKind::Mul(a, b) => self.eval_bv(*a).wrapping_mul(self.eval_bv(*b)),
            TermKind::Shl(a, k) => self.eval_bv(*a) << k,
            TermKind::ZExt(a, _) => self.eval_bv(*a),
            TermKind::Ite(c, a, b) => {
                if self.eval_bool(*c) {
                    self.eval_bv(*a)
                } else {
                    self.eval_bv(*b)
                }
            }
            other => unreachable!("non-bit-vector kind {other:?}"),
        };
        truncate(raw, w)
    }

    // --- warm-start hints ----------------------------------------------

    /// Hints the SAT solver to prefer `value` for the bits of `t` the next
    /// time it branches on them. Used for warm starts between incremental
    /// wirelength-optimization rounds.
    pub fn hint_bv_value(&mut self, t: Term, value: u64) {
        self.flush_pending();
        let bits = self.blaster.blast_bv(&self.pool, &mut self.sat, t);
        for (i, l) in bits.iter().enumerate() {
            let bit = (value >> i) & 1 == 1;
            let positive = if l.is_positive() { bit } else { !bit };
            self.sat.set_polarity_hint(l.var(), positive);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_constraint_is_satisfied() {
        let mut smt = Smt::new();
        let x = smt.bv_var(6, "x");
        let y = smt.bv_var(6, "y");
        let s = smt.add(x, y);
        let c = smt.eq_const(s, 40);
        smt.assert(c);
        assert_eq!(smt.solve(), SmtResult::Sat);
        assert_eq!((smt.bv_value(x) + smt.bv_value(y)) % 64, 40);
    }

    #[test]
    fn unsat_on_contradiction() {
        let mut smt = Smt::new();
        let x = smt.bv_var(4, "x");
        let lt = smt.eq_const(x, 3);
        let gt = smt.eq_const(x, 5);
        smt.assert(lt);
        smt.assert(gt);
        assert_eq!(smt.solve(), SmtResult::Unsat);
    }

    #[test]
    fn comparisons_behave_unsigned() {
        let mut smt = Smt::new();
        let x = smt.bv_var(4, "x");
        let c12 = smt.bv_const(4, 12);
        let c14 = smt.bv_const(4, 14);
        let lo = smt.ugt(x, c12);
        let hi = smt.ult(x, c14);
        smt.assert(lo);
        smt.assert(hi);
        assert_eq!(smt.solve(), SmtResult::Sat);
        assert_eq!(smt.bv_value(x), 13);
    }

    #[test]
    fn subtraction_wraps() {
        let mut smt = Smt::new();
        let x = smt.bv_var(4, "x");
        let y = smt.bv_var(4, "y");
        let d = smt.sub(x, y);
        let cx = smt.eq_const(x, 2);
        let cy = smt.eq_const(y, 5);
        smt.assert(cx);
        smt.assert(cy);
        assert_eq!(smt.solve(), SmtResult::Sat);
        assert_eq!(smt.bv_value(d), (2u64.wrapping_sub(5)) & 0xF);
    }

    #[test]
    fn multiplication() {
        let mut smt = Smt::new();
        let x = smt.bv_var(8, "x");
        let y = smt.bv_var(8, "y");
        let p = smt.mul(x, y);
        let cp = smt.eq_const(p, 77);
        let c1 = smt.bv_const(8, 1);
        let nx = smt.ne(x, c1);
        let ny = smt.ne(y, c1);
        smt.assert(cp);
        smt.assert(nx);
        smt.assert(ny);
        assert_eq!(smt.solve(), SmtResult::Sat);
        let (vx, vy) = (smt.bv_value(x), smt.bv_value(y));
        assert_eq!((vx * vy) & 0xFF, 77);
        assert!(vx != 1 && vy != 1); // 7 * 11 in some order
    }

    #[test]
    fn assumptions_and_core() {
        let mut smt = Smt::new();
        let x = smt.bv_var(4, "x");
        let is3 = smt.eq_const(x, 3);
        let is5 = smt.eq_const(x, 5);
        let free = smt.bool_var("free");
        assert_eq!(smt.solve_with(&[is3, is5, free]), SmtResult::Unsat);
        let failed = smt.failed_assumptions();
        assert!(failed.contains(&is3) || failed.contains(&is5));
        assert!(!failed.contains(&free));
        // Retractable: solver still usable.
        assert_eq!(smt.solve_with(&[is3]), SmtResult::Sat);
        assert_eq!(smt.bv_value(x), 3);
    }

    #[test]
    fn incremental_tightening() {
        // Mimics the wirelength loop: repeatedly add a stricter bound.
        let mut smt = Smt::new();
        let x = smt.bv_var(8, "x");
        let c100 = smt.bv_const(8, 100);
        let ge = smt.uge(x, c100);
        smt.assert(ge);
        let mut bound = 255;
        let mut rounds = 0;
        loop {
            let c = smt.bv_const(8, bound);
            let lt = smt.ule(x, c);
            smt.assert(lt);
            match smt.solve() {
                SmtResult::Sat => {
                    bound = smt.bv_value(x).saturating_sub(1);
                    rounds += 1;
                }
                SmtResult::Unsat => break,
                SmtResult::Unknown | SmtResult::Cancelled => {
                    panic!("no budget or stop flag was set")
                }
            }
        }
        assert!(rounds >= 1);
        assert!(bound < 100);
    }

    #[test]
    fn pb_constraint_bounds_weighted_sum() {
        let mut smt = Smt::new();
        let items: Vec<(Term, u64)> = (0..5)
            .map(|i| (smt.bool_var(format!("b{i}")), (i + 1) as u64))
            .collect();
        smt.assert_at_most(&items, 6);
        // Forcing 3+4 = 7 > 6 must be unsat.
        assert_eq!(smt.solve_with(&[items[2].0, items[3].0]), SmtResult::Unsat);
        // 2+4 = 6 <= 6 is fine.
        assert_eq!(smt.solve_with(&[items[1].0, items[3].0]), SmtResult::Sat);
    }

    #[test]
    fn guarded_assertions_toggle_with_assumptions() {
        let mut smt = Smt::new();
        let x = smt.bv_var(4, "x");
        let sel_a = smt.bool_var("sel_a");
        let sel_b = smt.bool_var("sel_b");
        smt.set_guard(Some(sel_a));
        let is3 = smt.eq_const(x, 3);
        smt.assert(is3);
        smt.set_guard(Some(sel_b));
        let is5 = smt.eq_const(x, 5);
        smt.assert(is5);
        smt.set_guard(None);
        // Neither family enabled: free.
        assert_eq!(smt.solve(), SmtResult::Sat);
        // Each alone: consistent.
        assert_eq!(smt.solve_with(&[sel_a]), SmtResult::Sat);
        assert_eq!(smt.bv_value(x), 3);
        assert_eq!(smt.solve_with(&[sel_b]), SmtResult::Sat);
        assert_eq!(smt.bv_value(x), 5);
        // Both: conflict, and the core names both selectors.
        assert_eq!(smt.solve_with(&[sel_a, sel_b]), SmtResult::Unsat);
        let failed = smt.failed_assumptions();
        assert!(failed.contains(&sel_a) && failed.contains(&sel_b));
    }

    #[test]
    fn retired_groups_are_vacuous_and_unassumable() {
        let mut smt = Smt::new();
        let x = smt.bv_var(8, "x");
        let g = smt.bool_var("g");
        smt.set_guard(Some(g));
        let is5 = smt.eq_const(x, 5);
        smt.assert(is5);
        smt.set_guard(None);
        assert_eq!(smt.solve_with(&[g]), SmtResult::Sat);
        assert_eq!(smt.bv_value(x), 5);
        // Retiring the group frees x for a contradictory replacement…
        smt.retire(g);
        let is6 = smt.eq_const(x, 6);
        smt.assert(is6);
        assert_eq!(smt.solve(), SmtResult::Sat);
        assert_eq!(smt.bv_value(x), 6);
        // …and the retired selector can never be re-enabled.
        assert_eq!(smt.solve_with(&[g]), SmtResult::Unsat);
    }

    #[test]
    fn guarded_pb_is_vacuous_unless_selected() {
        let mut smt = Smt::new();
        let items: Vec<(Term, u64)> = (0..4).map(|i| (smt.bool_var(format!("b{i}")), 2)).collect();
        let sel = smt.bool_var("sel");
        smt.set_guard(Some(sel));
        smt.assert_at_most(&items, 3);
        smt.set_guard(None);
        let all: Vec<Term> = items.iter().map(|&(t, _)| t).collect();
        // Guard off: the weight-8 assignment is allowed.
        assert_eq!(smt.solve_with(&all), SmtResult::Sat);
        // Guard on: 8 > 3 is rejected, one item (2 <= 3) is fine.
        let mut with_sel = all.clone();
        with_sel.push(sel);
        assert_eq!(smt.solve_with(&with_sel), SmtResult::Unsat);
        assert_eq!(smt.solve_with(&[sel, items[0].0]), SmtResult::Sat);
    }

    #[test]
    fn ite_selects_branch() {
        let mut smt = Smt::new();
        let c = smt.bool_var("c");
        let a = smt.bv_const(8, 11);
        let b = smt.bv_const(8, 22);
        let x = smt.ite(c, a, b);
        let is22 = smt.eq_const(x, 22);
        smt.assert(is22);
        assert_eq!(smt.solve(), SmtResult::Sat);
        assert!(!smt.bool_value(c));
    }

    #[test]
    fn sum_with_extension() {
        let mut smt = Smt::new();
        let xs: Vec<Term> = (0..4).map(|i| smt.bv_var(4, format!("x{i}"))).collect();
        let total = smt.sum(&xs, 8);
        let want = smt.eq_const(total, 60);
        smt.assert(want);
        assert_eq!(smt.solve(), SmtResult::Sat);
        let s: u64 = xs.iter().map(|&x| smt.bv_value(x)).sum();
        assert_eq!(s, 60); // 4 nibbles of 15 each
    }

    #[test]
    fn hint_steers_model() {
        let mut smt = Smt::new();
        let x = smt.bv_var(8, "x");
        let c = smt.bv_const(8, 200);
        let some = smt.ule(x, c);
        smt.assert(some);
        smt.hint_bv_value(x, 123);
        assert_eq!(smt.solve(), SmtResult::Sat);
        assert_eq!(smt.bv_value(x), 123);
    }

    #[test]
    fn eval_of_unblasted_terms() {
        let mut smt = Smt::new();
        let x = smt.bv_var(8, "x");
        let is7 = smt.eq_const(x, 7);
        smt.assert(is7);
        assert_eq!(smt.solve(), SmtResult::Sat);
        // y was never asserted on; structural evaluation applies.
        let y = smt.bv_const(8, 5);
        let z = smt.add(x, y);
        assert_eq!(smt.bv_value(z), 12);
    }

    #[test]
    fn portfolio_dispatch_agrees_with_sequential() {
        for threads in [1usize, 2, 4] {
            let mut smt = Smt::new();
            smt.set_portfolio(Some(PortfolioConfig {
                threads,
                ..PortfolioConfig::default()
            }));
            let x = smt.bv_var(8, "x");
            let c200 = smt.bv_const(8, 200);
            let c220 = smt.bv_const(8, 220);
            let lo = smt.ugt(x, c200);
            let hi = smt.ult(x, c220);
            smt.assert(lo);
            smt.assert(hi);
            assert_eq!(smt.solve(), SmtResult::Sat, "threads={threads}");
            let v = smt.bv_value(x);
            assert!(v > 200 && v < 220);
            // Assumptions must reach every worker: force an UNSAT core.
            let c100 = smt.bv_const(8, 100);
            let low = smt.ult(x, c100);
            assert_eq!(smt.solve_with(&[low]), SmtResult::Unsat);
            assert_eq!(smt.failed_assumptions(), &[low]);
            // Retracting the assumption restores satisfiability.
            assert_eq!(smt.solve(), SmtResult::Sat);
            let summary = smt.portfolio_summary();
            if threads > 1 {
                assert_eq!(summary.workers.len(), threads);
                assert_eq!(summary.solves, 3);
                assert!(summary.last_winner.is_some());
            } else {
                assert!(summary.workers.is_empty());
                assert_eq!(summary.solves, 0);
            }
        }
    }

    #[test]
    fn expired_deadline_yields_unknown_with_cause() {
        let mut smt = Smt::new();
        let x = smt.bv_var(8, "x");
        let c3 = smt.bv_const(8, 3);
        let c = smt.ugt(x, c3);
        smt.assert(c);
        smt.set_deadline(Some(Instant::now()));
        assert_eq!(smt.solve(), SmtResult::Unknown);
        assert_eq!(smt.stop_cause(), Some(StopCause::Deadline));
        // Clearing the deadline restores normal solving.
        smt.set_deadline(None);
        assert_eq!(smt.solve(), SmtResult::Sat);
        assert_eq!(smt.stop_cause(), None);
    }

    #[test]
    fn worker_panic_is_recorded_in_summary() {
        let mut smt = Smt::new();
        smt.set_portfolio(Some(PortfolioConfig {
            threads: 3,
            panic_inject_mask: 0b100, // kill worker 2; 0 and 1 survive
            ..PortfolioConfig::default()
        }));
        let x = smt.bv_var(8, "x");
        let c3 = smt.bv_const(8, 3);
        let c = smt.ugt(x, c3);
        smt.assert(c);
        assert_eq!(smt.solve(), SmtResult::Sat);
        assert!(smt.bv_value(x) > 3);
        let summary = smt.portfolio_summary();
        assert!(summary.workers[2].panicked);
        assert!(summary.workers[2].panic_message.is_some());
        assert!(!summary.workers[0].panicked);
    }

    #[test]
    fn raised_stop_flag_cancels_smt_solve() {
        let mut smt = Smt::new();
        let x = smt.bv_var(8, "x");
        let c3 = smt.bv_const(8, 3);
        let c = smt.ugt(x, c3);
        smt.assert(c);
        let stop = Arc::new(AtomicBool::new(true));
        smt.set_stop_flag(Some(Arc::clone(&stop)));
        assert_eq!(smt.solve(), SmtResult::Cancelled);
        stop.store(false, std::sync::atomic::Ordering::Relaxed);
        assert_eq!(smt.solve(), SmtResult::Sat);
    }
}

//! Fault-injection suite for the crash-safe serve stack.
//!
//! Process-kill recovery is exercised two ways. The real thing — abort
//! at a journal barrier, restart the binary with `--resume` — lives in
//! the root crate's `tests/chaos_process.rs` (it needs the `amsplace`
//! binary). Here, crashes are simulated with **crash images**: because
//! every journal append is fsync'd before the engine proceeds, a copy
//! of the journal directory taken at any instant is byte-for-byte a
//! state some crashed process could have left, and resuming a second
//! server on the copy *is* the recovery path. That keeps the whole
//! suite in-process and deterministic.

use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use ams_netlist::benchmarks::{self, SyntheticParams};
use ams_netlist::json::Json;
use ams_place::api::{JobOptions, JobStatus, PlaceRequest};
use ams_serve::journal::{Journal, JournalConfig, Record};
use ams_serve::{client, ResumePolicy, ServeConfig, Server};

fn small_design() -> ams_netlist::Design {
    benchmarks::synthetic(SyntheticParams {
        regions: 2,
        cells_per_region: 6,
        nets: 10,
        net_degree: 3,
        symmetry_pairs: 1,
        ..Default::default()
    })
}

/// A solve that reliably outlives the test's bookkeeping (full budgets
/// on a larger instance), with a deadline backstop so a broken cancel
/// path fails the test instead of hanging it.
fn slow_request() -> PlaceRequest {
    PlaceRequest {
        design: benchmarks::synthetic(SyntheticParams {
            regions: 2,
            cells_per_region: 10,
            nets: 20,
            net_degree: 3,
            symmetry_pairs: 2,
            ..Default::default()
        }),
        options: JobOptions {
            deadline_ms: Some(300_000),
            ..JobOptions::default()
        },
        idempotency_key: None,
    }
}

fn quick_request(key: Option<&str>) -> PlaceRequest {
    PlaceRequest {
        design: small_design(),
        options: JobOptions {
            quick: true,
            ..JobOptions::default()
        },
        idempotency_key: key.map(str::to_string),
    }
}

/// A unique scratch directory; removed on drop.
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        let path = std::env::temp_dir().join(format!(
            "ams-chaos-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id(),
        ));
        let _ = std::fs::remove_dir_all(&path);
        std::fs::create_dir_all(&path).expect("create scratch dir");
        TempDir(path)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn copy_dir(from: &Path, to: &Path) {
    std::fs::create_dir_all(to).expect("create copy target");
    for entry in std::fs::read_dir(from).expect("read journal dir") {
        let entry = entry.expect("dir entry");
        std::fs::copy(entry.path(), to.join(entry.file_name())).expect("copy segment");
    }
}

fn journaled_config(dir: &Path) -> ServeConfig {
    ServeConfig {
        workers: 1,
        journal_dir: Some(dir.to_path_buf()),
        ..ServeConfig::default()
    }
}

fn submit(server: &Server, request: &PlaceRequest) -> (u16, Json) {
    let reply = client::post(server.addr(), "/v1/jobs", Some(&request.to_json()))
        .expect("submit over loopback");
    (reply.status, reply.body)
}

fn submit_ok(server: &Server, request: &PlaceRequest) -> u64 {
    let (status, body) = submit(server, request);
    assert_eq!(status, 202, "{}", body.pretty());
    body.field("job_id").and_then(Json::as_u64).expect("job id")
}

fn poll(server: &Server, id: u64) -> Json {
    let reply = client::get(server.addr(), &format!("/v1/jobs/{id}")).expect("poll");
    assert_eq!(reply.status, 200, "{}", reply.body.pretty());
    reply.body
}

fn status_of(view: &Json) -> JobStatus {
    view.field("status")
        .and_then(Json::as_str)
        .and_then(JobStatus::parse)
        .expect("status")
}

fn wait_for_status(server: &Server, id: u64, wanted: JobStatus, deadline: Duration) -> Json {
    let t0 = Instant::now();
    loop {
        let view = poll(server, id);
        let status = status_of(&view);
        if status == wanted {
            return view;
        }
        assert!(
            !status.is_terminal(),
            "job {id} terminal as {status:?} while waiting for {wanted:?}: {}",
            view.pretty()
        );
        assert!(
            t0.elapsed() < deadline,
            "job {id} still {status:?} after {deadline:?}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

fn wait_terminal(server: &Server, id: u64, deadline: Duration) -> Json {
    let t0 = Instant::now();
    loop {
        let view = poll(server, id);
        if status_of(&view).is_terminal() {
            return view;
        }
        assert!(
            t0.elapsed() < deadline,
            "job {id} still {:?} after {deadline:?}",
            status_of(&view)
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

fn cancel(server: &Server, id: u64) {
    let reply = client::post(server.addr(), &format!("/v1/jobs/{id}/cancel"), None)
        .expect("cancel over loopback");
    assert_eq!(reply.status, 200);
}

/// Kill-mid-job, restart, replay: a crash image taken while one job is
/// mid-solve and another (idempotency-keyed) sits queued must resume
/// with zero lost jobs — the running one marked `interrupted` (policy),
/// the queued one solved exactly once, and a retried submit of the same
/// key deduplicated instead of double-solved.
#[test]
fn crash_image_resumes_with_no_lost_jobs_and_no_double_solve() {
    let live_dir = TempDir::new("live");
    let image_dir = TempDir::new("image");

    let server = Server::start(journaled_config(live_dir.path())).expect("start journaled");
    let slow_id = submit_ok(&server, &slow_request());
    wait_for_status(
        &server,
        slow_id,
        JobStatus::Running,
        Duration::from_secs(60),
    );
    let keyed_id = submit_ok(&server, &quick_request(Some("crash-key")));
    assert_ne!(slow_id, keyed_id);

    // The "crash": every record below this line is already fsync'd, so
    // the copy is exactly what SIGKILL would have left on disk.
    copy_dir(live_dir.path(), image_dir.path());

    // Resume a second server on the image. `interrupt` policy: the
    // mid-solve job turns terminal instead of burning another solve.
    let resumed = Server::start(ServeConfig {
        resume: true,
        resume_policy: ResumePolicy::MarkInterrupted,
        ..journaled_config(image_dir.path())
    })
    .expect("resume from crash image");
    let report = resumed.recovery().expect("non-empty journal was replayed");
    assert_eq!(report.interrupted, 1, "{report:?}");
    assert_eq!(report.requeued, 1, "{report:?}");

    // The mid-solve job is terminal `interrupted` with the structured
    // error kind; the queued job completes.
    let interrupted = poll(&resumed, slow_id);
    assert_eq!(status_of(&interrupted), JobStatus::Interrupted);
    assert_eq!(
        interrupted
            .field("response")
            .and_then(|r| r.field("error"))
            .and_then(|e| e.field("kind"))
            .and_then(Json::as_str),
        Some("interrupted")
    );
    let done = wait_terminal(&resumed, keyed_id, Duration::from_secs(120));
    assert_eq!(status_of(&done), JobStatus::Done, "{}", done.pretty());

    // A client that never saw its accept reply retries the submit: the
    // key must land on the recovered job, not start a second solve.
    let (status, body) = submit(&resumed, &quick_request(Some("crash-key")));
    assert_eq!(status, 202, "{}", body.pretty());
    assert_eq!(
        body.field("deduplicated").and_then(Json::as_bool),
        Some(true)
    );
    assert_eq!(body.field("job_id").and_then(Json::as_u64), Some(keyed_id));
    let stats = client::get(resumed.addr(), "/v1/stats")
        .expect("stats")
        .body;
    assert_eq!(stats.field("deduped").and_then(Json::as_u64), Some(1));

    resumed.shutdown();
    resumed.join();
    // Unwedge the live server: cancel the long solve before joining.
    cancel(&server, slow_id);
    wait_terminal(&server, slow_id, Duration::from_secs(120));
    server.shutdown();
    server.join();
}

/// Under `rerun` policy a mid-solve job goes back to the head of the
/// queue and completes; done jobs keep answering polls and rehydrate the
/// exact cache (a repeat request is a cache hit on the resumed server).
#[test]
fn rerun_policy_resolves_interrupted_work_and_rehydrates_the_cache() {
    let dir = TempDir::new("rerun");

    let server = Server::start(journaled_config(dir.path())).expect("start journaled");
    let done_id = submit_ok(&server, &quick_request(None));
    let done = wait_terminal(&server, done_id, Duration::from_secs(120));
    assert_eq!(status_of(&done), JobStatus::Done);
    server.shutdown();
    server.join();

    // Build the mid-solve state directly in the WAL: submitted + started
    // with no finish — exactly what a crash mid-solve leaves — for a
    // quick request the resumed server can actually re-run.
    {
        let (mut journal, _) =
            Journal::open(dir.path(), JournalConfig::default()).expect("reopen journal");
        journal
            .append(&Record::Submitted {
                job_id: 7,
                request: quick_request(None).to_json(),
            })
            .expect("append submitted");
        journal
            .append(&Record::Started { job_id: 7 })
            .expect("append started");
    }

    let resumed = Server::start(ServeConfig {
        resume: true,
        resume_policy: ResumePolicy::Rerun,
        ..journaled_config(dir.path())
    })
    .expect("resume with rerun");
    let report = resumed.recovery().expect("replayed");
    assert_eq!(report.reran, 1, "{report:?}");
    assert_eq!(report.completed, 1, "{report:?}");
    assert!(report.cache_rehydrated >= 1, "{report:?}");

    // The pre-crash done job still answers polls…
    assert_eq!(status_of(&poll(&resumed, done_id)), JobStatus::Done);
    // …the re-run job completes…
    let rerun = wait_terminal(&resumed, 7, Duration::from_secs(120));
    assert_eq!(status_of(&rerun), JobStatus::Done, "{}", rerun.pretty());
    // …and the identical request hits the rehydrated exact cache. (The
    // re-run job itself was admitted before recovery finished, so the
    // hit below is a fresh submission.)
    let hit_id = submit_ok(&resumed, &quick_request(None));
    let hit = wait_terminal(&resumed, hit_id, Duration::from_secs(120));
    let cached = hit
        .field("response")
        .and_then(|r| r.field("cached"))
        .and_then(Json::as_bool);
    assert_eq!(cached, Some(true), "{}", hit.pretty());

    resumed.shutdown();
    resumed.join();
}

/// A torn final write — the classic crash signature — is discarded
/// without panicking, surfaces in `/v1/stats`, and everything before the
/// tear is recovered.
#[test]
fn corrupt_wal_tail_is_discarded_and_recovery_proceeds() {
    let dir = TempDir::new("torn");

    let server = Server::start(journaled_config(dir.path())).expect("start journaled");
    let id = submit_ok(&server, &quick_request(None));
    wait_terminal(&server, id, Duration::from_secs(120));
    server.shutdown();
    server.join();

    // Tear the tail: append half a frame plus garbage to every segment's
    // end — checksum framing must reject it.
    let mut tore = false;
    for entry in std::fs::read_dir(dir.path()).expect("read dir") {
        let path = entry.expect("entry").path();
        let mut bytes = std::fs::read(&path).expect("read segment");
        if bytes.is_empty() {
            continue;
        }
        bytes.extend_from_slice(&[0x13, 0x37, 0xde, 0xad, 0xbe, 0xef, 0x01]);
        std::fs::write(&path, &bytes).expect("write torn segment");
        tore = true;
    }
    assert!(tore, "the journal must have at least one non-empty segment");

    let resumed = Server::start(ServeConfig {
        resume: true,
        ..journaled_config(dir.path())
    })
    .expect("resume past the torn tail");
    assert_eq!(status_of(&poll(&resumed, id)), JobStatus::Done);
    let stats = client::get(resumed.addr(), "/v1/stats")
        .expect("stats")
        .body;
    let journal_stats = stats.field("journal").expect("journaling on");
    assert_eq!(
        journal_stats
            .field("tail_discarded")
            .and_then(Json::as_bool),
        Some(true),
        "{}",
        stats.pretty()
    );

    resumed.shutdown();
    resumed.join();
}

/// A non-empty journal without `resume` must refuse to start — never
/// silently shadow a dead server's state.
#[test]
fn non_empty_journal_requires_explicit_resume() {
    let dir = TempDir::new("noresume");

    let server = Server::start(journaled_config(dir.path())).expect("start journaled");
    let id = submit_ok(&server, &quick_request(None));
    wait_terminal(&server, id, Duration::from_secs(120));
    server.shutdown();
    server.join();

    let err = match Server::start(journaled_config(dir.path())) {
        Err(e) => e,
        Ok(server) => {
            server.shutdown();
            server.join();
            panic!("starting on a non-empty journal without resume must fail");
        }
    };
    assert_eq!(err.kind(), std::io::ErrorKind::AlreadyExists, "{err}");
    assert!(err.to_string().contains("--resume"), "{err}");
}

/// Retry storm: many clients hammering one idempotency key against a
/// tiny queue must converge to exactly one solve, and clients with
/// distinct keys must all eventually complete through 429 backoff.
#[test]
fn retry_storm_converges_without_double_solves() {
    let server = Server::start(ServeConfig {
        workers: 2,
        queue_cap: 2,
        shed_high_water: 2, // degrade only at full queue: this test is about 429s
        ..ServeConfig::default()
    })
    .expect("start");
    let addr = server.addr();

    // Warm the exact cache so storm jobs drain in milliseconds — the
    // queue churns through genuine 429s but a blocked client never has
    // to out-wait a full cold solve.
    let warm_id = submit_ok(&server, &quick_request(None));
    wait_terminal(&server, warm_id, Duration::from_secs(120));
    // One long solve pins a worker, keeping the queue under pressure.
    let slow_id = submit_ok(&server, &slow_request());
    wait_for_status(
        &server,
        slow_id,
        JobStatus::Running,
        Duration::from_secs(60),
    );

    let policy = client::RetryPolicy {
        max_attempts: 60,
        base: Duration::from_millis(5),
        cap: Duration::from_millis(100),
        seed: 0,
    };

    // Nine concurrent clients: six share one key, three are distinct.
    let mut handles = Vec::new();
    for i in 0..9u64 {
        let key = if i < 6 {
            "storm-shared".to_string()
        } else {
            format!("storm-{i}")
        };
        let policy = client::RetryPolicy { seed: i, ..policy };
        handles.push(std::thread::spawn(move || {
            let request = quick_request(Some(&key));
            let reply =
                client::post_with_retry(addr, "/v1/jobs", Some(&request.to_json()), &policy)
                    .expect("storm submit");
            assert_eq!(reply.status, 202, "{}", reply.body.pretty());
            reply
                .body
                .field("job_id")
                .and_then(Json::as_u64)
                .expect("job id")
        }));
    }
    let ids: Vec<u64> = handles
        .into_iter()
        .map(|h| h.join().expect("client"))
        .collect();

    // The six shared-key clients all landed on one job.
    let shared: std::collections::HashSet<u64> = ids[..6].iter().copied().collect();
    assert_eq!(shared.len(), 1, "shared key fanned out: {ids:?}");

    for &id in ids.iter() {
        let view = wait_terminal(&server, id, Duration::from_secs(300));
        assert_eq!(status_of(&view), JobStatus::Done, "{}", view.pretty());
    }

    let stats = client::get(addr, "/v1/stats").expect("stats").body;
    // warm + slow + 4 distinct storm submissions (1 shared + 3 unique);
    // every other storm attempt deduplicated, none double-solved.
    assert_eq!(stats.field("submitted").and_then(Json::as_u64), Some(6));
    assert_eq!(stats.field("deduped").and_then(Json::as_u64), Some(5));

    cancel(&server, slow_id);
    wait_terminal(&server, slow_id, Duration::from_secs(120));
    server.shutdown();
    server.join();
}

/// Past the high-water mark the server sheds cold solves with 503 +
/// `Retry-After` while still admitting exact-cache traffic, and reports
/// `degraded` on both health surfaces.
#[test]
fn saturated_server_sheds_cold_work_but_admits_cached() {
    let server = Server::start(ServeConfig {
        workers: 1,
        queue_cap: 8,
        shed_high_water: 1,
        ..ServeConfig::default()
    })
    .expect("start");

    // Warm the exact cache while the server is healthy.
    let cached_request = quick_request(None);
    let warm_id = submit_ok(&server, &cached_request);
    wait_terminal(&server, warm_id, Duration::from_secs(120));

    // Saturate: one long job on the worker, one queued behind it puts
    // the queue at the high-water mark.
    let slow_id = submit_ok(&server, &slow_request());
    wait_for_status(
        &server,
        slow_id,
        JobStatus::Running,
        Duration::from_secs(60),
    );
    let queued_id = submit_ok(
        &server,
        &PlaceRequest {
            options: JobOptions {
                iters: 3,
                ..quick_request(None).options
            },
            ..quick_request(None)
        },
    );

    let health = client::get(server.addr(), "/v1/healthz")
        .expect("healthz")
        .body;
    assert_eq!(health.field("degraded").and_then(Json::as_bool), Some(true));

    // Cold work (a design the server has never seen — the shape only
    // has to differ from the cached one, so keep it debug-mode cheap)…
    let cold = PlaceRequest {
        design: benchmarks::synthetic(SyntheticParams {
            regions: 2,
            cells_per_region: 7,
            nets: 12,
            net_degree: 3,
            symmetry_pairs: 1,
            ..Default::default()
        }),
        options: JobOptions {
            quick: true,
            ..JobOptions::default()
        },
        idempotency_key: None,
    };
    let reply = client::post(server.addr(), "/v1/jobs", Some(&cold.to_json())).expect("post");
    assert_eq!(reply.status, 503, "{}", reply.body.pretty());
    assert!(
        reply.retry_after.is_some(),
        "503 must carry Retry-After so the retrying client paces itself"
    );

    // …but the exact-cache request is still admitted and completes.
    let hit_id = submit_ok(&server, &cached_request);
    let stats = client::get(server.addr(), "/v1/stats").expect("stats").body;
    assert_eq!(stats.field("shed").and_then(Json::as_u64), Some(1));
    assert_eq!(stats.field("degraded").and_then(Json::as_bool), Some(true));

    // Drain: cancel the long solve, everything else completes, and the
    // previously-shed cold request is admitted once healthy again.
    cancel(&server, slow_id);
    wait_terminal(&server, slow_id, Duration::from_secs(120));
    wait_terminal(&server, queued_id, Duration::from_secs(120));
    wait_terminal(&server, hit_id, Duration::from_secs(120));
    let retry = client::post(server.addr(), "/v1/jobs", Some(&cold.to_json())).expect("post");
    assert_eq!(retry.status, 202, "{}", retry.body.pretty());
    let recovered = retry.body.field("job_id").and_then(Json::as_u64).unwrap();
    wait_terminal(&server, recovered, Duration::from_secs(120));

    server.shutdown();
    server.join();
}

/// Connection-level fault injection: dropped connections surface as
/// transport errors the retrying client absorbs; delayed connections
/// still serve.
#[test]
fn dropped_and_delayed_connections_are_absorbed_by_the_retrying_client() {
    let server = Server::start(ServeConfig {
        workers: 1,
        fault_spec: Some("conn-drop:2,conn-delay:10".to_string()),
        ..ServeConfig::default()
    })
    .expect("start with faults");

    // Every second connection is dropped cold, so plain clients fail
    // roughly half the time — the retrying client must still get every
    // request through.
    let policy = client::RetryPolicy {
        max_attempts: 10,
        base: Duration::from_millis(2),
        cap: Duration::from_millis(50),
        seed: 42,
    };
    for _ in 0..4 {
        let reply = client::get_with_retry(server.addr(), "/v1/healthz", &policy)
            .expect("healthz through connection faults");
        assert_eq!(reply.status, 200);
    }

    server.shutdown();
    server.join();
}

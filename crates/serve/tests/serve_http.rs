//! End-to-end service tests over a loopback HTTP server: parallel job
//! fan-in, mid-flight cancellation, deadline degradation, exact-cache
//! determinism, and λ_th-only warm re-solves.
//!
//! Designs are tiny synthetics and every job runs with explicit
//! single-thread options, so the suite is deterministic and stays in
//! test-suite territory even on one core.

use std::time::{Duration, Instant};

use ams_netlist::benchmarks::{self, SyntheticParams};
use ams_netlist::json::Json;
use ams_place::api::{JobOptions, JobStatus, PlaceRequest};
use ams_serve::{client, ServeConfig, Server};

/// Small two-region synthetic, the same shape the core warm-reuse tests
/// use: big enough to leave learnt clauses, small enough to solve in
/// well under a second per job.
fn small_design() -> ams_netlist::Design {
    benchmarks::synthetic(SyntheticParams {
        regions: 2,
        cells_per_region: 6,
        nets: 10,
        net_degree: 3,
        symmetry_pairs: 1,
        ..Default::default()
    })
}

/// A larger instance whose full-budget solve takes long enough that a
/// cancel reliably lands mid-flight.
fn slow_design() -> ams_netlist::Design {
    benchmarks::synthetic(SyntheticParams {
        regions: 2,
        cells_per_region: 10,
        nets: 20,
        net_degree: 3,
        symmetry_pairs: 2,
        ..Default::default()
    })
}

fn quick_options() -> JobOptions {
    JobOptions {
        quick: true,
        ..JobOptions::default()
    }
}

fn start_server(workers: usize) -> Server {
    Server::start(ServeConfig {
        workers,
        ..ServeConfig::default()
    })
    .expect("bind loopback server")
}

fn submit(server: &Server, request: &PlaceRequest) -> u64 {
    let reply = client::post(server.addr(), "/v1/jobs", Some(&request.to_json()))
        .expect("submit over loopback");
    assert_eq!(reply.status, 202, "{}", reply.body.pretty());
    reply
        .body
        .field("job_id")
        .and_then(Json::as_u64)
        .expect("accept reply carries job_id")
}

fn poll(server: &Server, id: u64) -> Json {
    let reply = client::get(server.addr(), &format!("/v1/jobs/{id}")).expect("poll job");
    assert_eq!(reply.status, 200, "{}", reply.body.pretty());
    reply.body
}

fn status_of(view: &Json) -> JobStatus {
    view.field("status")
        .and_then(Json::as_str)
        .and_then(JobStatus::parse)
        .expect("job view carries a status")
}

/// Polls until the job is terminal (or the deadline passes) and returns
/// the embedded response document.
fn wait_terminal(server: &Server, id: u64, deadline: Duration) -> Json {
    let t0 = Instant::now();
    loop {
        let view = poll(server, id);
        if status_of(&view).is_terminal() {
            let response = view.field("response").expect("terminal job has a response");
            assert!(!response.is_null(), "terminal job embeds its response");
            return response.clone();
        }
        assert!(
            t0.elapsed() < deadline,
            "job {id} still {:?} after {deadline:?}",
            status_of(&view)
        );
        std::thread::sleep(Duration::from_millis(25));
    }
}

#[test]
fn eight_parallel_jobs_all_complete() {
    let server = start_server(4);
    let design = small_design();

    // Eight jobs, each with distinct options (the iteration knob) so
    // none of them short-circuits through the exact cache.
    let ids: Vec<u64> = (1..=8)
        .map(|iters| {
            submit(
                &server,
                &PlaceRequest {
                    design: design.clone(),
                    options: JobOptions {
                        iters,
                        ..quick_options()
                    },
                    idempotency_key: None,
                },
            )
        })
        .collect();
    assert_eq!(ids.len(), 8);

    for &id in &ids {
        let response = wait_terminal(&server, id, Duration::from_secs(300));
        assert_eq!(
            response.field("status").and_then(Json::as_str),
            Some("done"),
            "job {id}: {}",
            response.pretty()
        );
    }

    let stats = client::get(server.addr(), "/v1/stats").expect("stats").body;
    assert_eq!(stats.field("completed").and_then(Json::as_u64), Some(8));
    assert_eq!(stats.field("queue_depth").and_then(Json::as_u64), Some(0));

    server.shutdown();
    server.join();
}

#[test]
fn identical_requests_hit_the_exact_cache_bit_for_bit() {
    let server = start_server(1);
    let request = PlaceRequest {
        design: small_design(),
        options: quick_options(),
        idempotency_key: None,
    };

    let first_id = submit(&server, &request);
    let first = wait_terminal(&server, first_id, Duration::from_secs(120));
    assert_eq!(first.field("status").and_then(Json::as_str), Some("done"));
    assert_eq!(first.field("cached").and_then(Json::as_bool), Some(false));

    let second_id = submit(&server, &request);
    assert_ne!(second_id, first_id);
    let second = wait_terminal(&server, second_id, Duration::from_secs(120));
    assert_eq!(second.field("cached").and_then(Json::as_bool), Some(true));

    // The replay is the stored result verbatim: identical placements,
    // identical stats — only the cache marker differs.
    assert_eq!(
        first.field("cells").map(Json::pretty),
        second.field("cells").map(Json::pretty),
        "cached placement must be bit-identical"
    );
    assert_eq!(
        first.field("stats").map(Json::pretty),
        second.field("stats").map(Json::pretty)
    );

    let stats = client::get(server.addr(), "/v1/stats").expect("stats").body;
    assert_eq!(stats.field("exact_hits").and_then(Json::as_u64), Some(1));

    server.shutdown();
    server.join();
}

#[test]
fn lambda_only_change_resolves_warm_with_pin_density_relowered() {
    let server = start_server(1);
    let design = small_design();
    // λ = 14 is the auto-calibrated threshold for this design and λ = 16
    // still binds some windows, so both configurations emit pin-density
    // records and the IR diff is a pure pin-density delta.
    let job = |lambda: u64| PlaceRequest {
        design: design.clone(),
        options: JobOptions {
            lambda_th: Some(lambda),
            ..quick_options()
        },
        idempotency_key: None,
    };

    let cold_id = submit(&server, &job(14));
    let cold = wait_terminal(&server, cold_id, Duration::from_secs(120));
    assert_eq!(cold.field("status").and_then(Json::as_str), Some("done"));
    let cold_warm = cold.field("stats").and_then(|s| s.field("warm")).unwrap();
    assert!(cold_warm.is_null(), "cold job must not report warm stats");

    let warm_id = submit(&server, &job(16));
    let warm = wait_terminal(&server, warm_id, Duration::from_secs(120));
    assert_eq!(warm.field("status").and_then(Json::as_str), Some("done"));
    let warm_stats = warm.field("stats").and_then(|s| s.field("warm")).unwrap();
    let relowered: Vec<&str> = warm_stats
        .field("relowered")
        .and_then(Json::items)
        .expect("warm job reports relowered families")
        .iter()
        .filter_map(Json::as_str)
        .collect();
    assert_eq!(
        relowered,
        ["pin-density"],
        "only the pin-density family re-lowers on a λ_th move"
    );
    let carried = warm_stats
        .field("learnts_carried")
        .and_then(Json::as_u64)
        .expect("warm stats carry the learnt-clause count");
    assert!(carried > 0, "the cold solve must leave clauses to carry");

    let stats = client::get(server.addr(), "/v1/stats").expect("stats").body;
    assert_eq!(
        stats.field("warm_relowered").and_then(Json::as_u64),
        Some(1)
    );
    assert_eq!(stats.field("cold_builds").and_then(Json::as_u64), Some(1));

    server.shutdown();
    server.join();
}

#[test]
fn cancel_lands_mid_flight() {
    let server = start_server(1);
    // Full default budgets on the larger design: minutes of solving if
    // left alone, with a deadline backstop so a broken cancel path fails
    // the test instead of hanging it.
    let id = submit(
        &server,
        &PlaceRequest {
            design: slow_design(),
            options: JobOptions {
                deadline_ms: Some(300_000),
                ..JobOptions::default()
            },
            idempotency_key: None,
        },
    );

    // Wait for the worker to pick it up, then cancel mid-solve.
    let t0 = Instant::now();
    loop {
        let view = poll(&server, id);
        match status_of(&view) {
            JobStatus::Running => break,
            JobStatus::Queued => {
                assert!(t0.elapsed() < Duration::from_secs(60), "job never started");
                std::thread::sleep(Duration::from_millis(10));
            }
            other => panic!("job reached {other:?} before the cancel"),
        }
    }
    let reply = client::post(server.addr(), &format!("/v1/jobs/{id}/cancel"), None)
        .expect("cancel over loopback");
    assert_eq!(reply.status, 200);

    let response = wait_terminal(&server, id, Duration::from_secs(120));
    assert_eq!(
        response.field("status").and_then(Json::as_str),
        Some("cancelled")
    );
    let kind = response
        .field("error")
        .and_then(|e| e.field("kind"))
        .and_then(Json::as_str);
    assert_eq!(kind, Some("cancelled"));
    assert_eq!(
        response
            .field("error")
            .and_then(|e| e.field("exit_code"))
            .and_then(Json::as_u64),
        Some(3)
    );

    server.shutdown();
    server.join();
}

#[test]
fn deadline_ladder_expires_then_degrades_to_anytime() {
    let server = start_server(1);
    let design = small_design();
    // Climb a deadline ladder. The shortest rung expires before any
    // model (a structured deadline-expired failure); some rung then
    // completes — either anytime (a model survived the deadline) or
    // optimal (the solve beat the clock).
    let mut saw_deadline_expired = false;
    let mut final_outcome = None;
    let mut deadline_ms = 25u64;
    while deadline_ms <= 60_000 {
        let id = submit(
            &server,
            &PlaceRequest {
                design: design.clone(),
                options: JobOptions {
                    iters: 6,
                    deadline_ms: Some(deadline_ms),
                    ..quick_options()
                },
                idempotency_key: None,
            },
        );
        let response = wait_terminal(&server, id, Duration::from_secs(180));
        match response.field("status").and_then(Json::as_str) {
            Some("done") => {
                final_outcome = response
                    .field("stats")
                    .and_then(|s| s.field("outcome"))
                    .and_then(Json::as_str)
                    .map(str::to_string);
                break;
            }
            Some("failed") => {
                let kind = response
                    .field("error")
                    .and_then(|e| e.field("kind"))
                    .and_then(Json::as_str);
                assert_eq!(
                    kind,
                    Some("deadline_expired"),
                    "only deadline expiry may fail the ladder: {}",
                    response.pretty()
                );
                saw_deadline_expired = true;
            }
            other => panic!("unexpected terminal status {other:?}"),
        }
        deadline_ms *= 2;
    }

    assert!(
        saw_deadline_expired,
        "the shortest rung must expire before any model"
    );
    let outcome = final_outcome.expect("some rung completes within 60s");
    assert!(
        outcome == "anytime" || outcome == "optimal",
        "degraded completion reports anytime (or beat the clock): {outcome}"
    );

    server.shutdown();
    server.join();
}

#[test]
fn malformed_and_unknown_requests_get_structured_errors() {
    let server = start_server(1);

    let bad =
        client::post(server.addr(), "/v1/jobs", Some(&Json::obj([]))).expect("post empty body");
    assert_eq!(bad.status, 400);
    assert!(bad.body.field("error").is_some());

    let missing = client::get(server.addr(), "/v1/jobs/999").expect("poll unknown");
    assert_eq!(missing.status, 404);

    let health = client::get(server.addr(), "/v1/healthz").expect("healthz");
    assert_eq!(health.status, 200);
    assert_eq!(health.body.field("ok").and_then(Json::as_bool), Some(true));

    server.shutdown();
    server.join();
}

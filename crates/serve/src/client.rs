//! A tiny blocking HTTP client for the placement service — used by the
//! `amsplace submit`/`shutdown` subcommands, the integration tests, and
//! the throughput bench. One request per connection, mirroring the
//! server's `Connection: close` policy.

use std::io::{self, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use ams_netlist::json::Json;

/// A decoded reply: the HTTP status code and the JSON body.
#[derive(Debug)]
pub struct Reply {
    pub status: u16,
    pub body: Json,
}

/// `GET path` against the server at `addr`.
pub fn get(addr: impl ToSocketAddrs, path: &str) -> io::Result<Reply> {
    request(addr, "GET", path, None)
}

/// `POST path` with an optional JSON body.
pub fn post(addr: impl ToSocketAddrs, path: &str, body: Option<&Json>) -> io::Result<Reply> {
    request(addr, "POST", path, body)
}

fn request(
    addr: impl ToSocketAddrs,
    method: &str,
    path: &str,
    body: Option<&Json>,
) -> io::Result<Reply> {
    let addr = addr
        .to_socket_addrs()?
        .next()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "no address"))?;
    let mut stream = TcpStream::connect_timeout(&addr, Duration::from_secs(10))?;
    let payload = body.map(Json::pretty).unwrap_or_default();
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        payload.len(),
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(payload.as_bytes())?;
    stream.flush()?;

    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    parse_reply(&raw)
}

fn parse_reply(raw: &str) -> io::Result<Reply> {
    let bad = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, msg.to_string());
    let (head, body) = raw
        .split_once("\r\n\r\n")
        .ok_or_else(|| bad("no header/body separator in reply"))?;
    let status_line = head.lines().next().unwrap_or_default();
    let status = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad("malformed status line"))?;
    let body = if body.trim().is_empty() {
        Json::Null
    } else {
        Json::parse(body).map_err(|e| bad(&format!("reply body is not JSON: {e}")))?
    };
    Ok(Reply { status, body })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_framed_reply() {
        let raw = "HTTP/1.1 429 Too Many Requests\r\nContent-Length: 2\r\n\r\n{}";
        let reply = parse_reply(raw).unwrap();
        assert_eq!(reply.status, 429);
        assert_eq!(reply.body, Json::obj([]));
    }
}

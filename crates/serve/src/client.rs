//! A tiny blocking HTTP client for the placement service — used by the
//! `amsplace submit`/`shutdown` subcommands, the integration tests, and
//! the throughput bench. One request per connection, mirroring the
//! server's `Connection: close` policy.
//!
//! The retrying entry points ([`get_with_retry`], [`post_with_retry`])
//! implement the client half of the service's overload contract: on a
//! connect/transport error, a 429 (queue full), or a 503 (degraded,
//! shedding cold work) they back off — capped exponential with
//! deterministic jitter, honoring a server `Retry-After` header — and
//! try again, so a retry storm converges instead of hammering. Pair the
//! retries with a request `idempotency_key` and a resubmitted job is
//! deduplicated server-side rather than solved twice.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

use ams_netlist::json::Json;

/// A decoded reply: the HTTP status code, the JSON body, and the
/// server's `Retry-After` hint (seconds) when it sent one.
#[derive(Debug)]
pub struct Reply {
    pub status: u16,
    pub body: Json,
    pub retry_after: Option<u64>,
}

/// How the retrying entry points pace themselves.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Total tries, including the first (so `1` means "never retry").
    pub max_attempts: u32,
    /// First backoff; later ones double up to [`RetryPolicy::cap`].
    pub base: Duration,
    /// Ceiling on any single backoff, including a server `Retry-After`.
    pub cap: Duration,
    /// Seed for the deterministic jitter (so tests are reproducible;
    /// vary per client to spread a storm).
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 5,
            base: Duration::from_millis(100),
            cap: Duration::from_secs(5),
            seed: 0x5eed,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries — the behavior of the plain
    /// [`get`]/[`post`] calls.
    pub fn none() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 1,
            ..RetryPolicy::default()
        }
    }

    /// The pause before retry number `attempt` (0-based): capped
    /// exponential growth from `base`, scaled by 50–100% jitter so
    /// simultaneous clients decorrelate. A server-supplied `Retry-After`
    /// overrides the exponential schedule (still capped).
    pub fn backoff(&self, attempt: u32, retry_after: Option<u64>) -> Duration {
        if let Some(seconds) = retry_after {
            return Duration::from_secs(seconds).min(self.cap);
        }
        let exp = self
            .base
            .saturating_mul(1u32 << attempt.min(16))
            .min(self.cap);
        // xorshift* on (seed, attempt) — deterministic, dependency-free.
        let mut x = self.seed ^ (u64::from(attempt) + 1).wrapping_mul(0x9e3779b97f4a7c15);
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        let scale_pct = 50 + (x % 51); // 50..=100
        exp.mul_f64(scale_pct as f64 / 100.0)
    }
}

/// `GET path` against the server at `addr`.
pub fn get(addr: impl ToSocketAddrs, path: &str) -> io::Result<Reply> {
    request(resolve(addr)?, "GET", path, None)
}

/// `POST path` with an optional JSON body.
pub fn post(addr: impl ToSocketAddrs, path: &str, body: Option<&Json>) -> io::Result<Reply> {
    request(resolve(addr)?, "POST", path, body)
}

/// [`get`] with retry on transport errors, 429, and 503.
pub fn get_with_retry(
    addr: impl ToSocketAddrs,
    path: &str,
    policy: &RetryPolicy,
) -> io::Result<Reply> {
    let addr = resolve(addr)?;
    with_retry(policy, || request(addr, "GET", path, None))
}

/// [`post`] with retry on transport errors, 429, and 503. Retried
/// submissions should carry an `idempotency_key` so the server dedups
/// instead of double-solving.
pub fn post_with_retry(
    addr: impl ToSocketAddrs,
    path: &str,
    body: Option<&Json>,
    policy: &RetryPolicy,
) -> io::Result<Reply> {
    let addr = resolve(addr)?;
    with_retry(policy, || request(addr, "POST", path, body))
}

fn with_retry(
    policy: &RetryPolicy,
    mut send: impl FnMut() -> io::Result<Reply>,
) -> io::Result<Reply> {
    let mut attempt = 0u32;
    loop {
        let outcome = send();
        let retriable = match &outcome {
            Ok(reply) => reply.status == 429 || reply.status == 503,
            Err(_) => true,
        };
        if !retriable || attempt + 1 >= policy.max_attempts.max(1) {
            return outcome;
        }
        let retry_after = outcome.as_ref().ok().and_then(|r| r.retry_after);
        std::thread::sleep(policy.backoff(attempt, retry_after));
        attempt += 1;
    }
}

fn resolve(addr: impl ToSocketAddrs) -> io::Result<SocketAddr> {
    addr.to_socket_addrs()?
        .next()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "no address"))
}

fn request(addr: SocketAddr, method: &str, path: &str, body: Option<&Json>) -> io::Result<Reply> {
    let mut stream = TcpStream::connect_timeout(&addr, Duration::from_secs(10))?;
    let payload = body.map(Json::pretty).unwrap_or_default();
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        payload.len(),
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(payload.as_bytes())?;
    stream.flush()?;

    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    parse_reply(&raw)
}

/// Decodes a raw HTTP/1.1 reply. Strict about the status line: it must
/// read `HTTP/<ver> <3-digit code> …` — an empty or garbled line is a
/// protocol error, never silently treated as a success-shaped reply.
fn parse_reply(raw: &str) -> io::Result<Reply> {
    let bad = |msg: String| io::Error::new(io::ErrorKind::InvalidData, msg);
    let (head, body) = raw
        .split_once("\r\n\r\n")
        .ok_or_else(|| bad("no header/body separator in reply".to_string()))?;
    let status_line = head
        .lines()
        .next()
        .filter(|line| !line.trim().is_empty())
        .ok_or_else(|| bad("empty status line in reply".to_string()))?;
    if !status_line.starts_with("HTTP/") {
        return Err(bad(format!("not an HTTP status line: {status_line:?}")));
    }
    let code = status_line
        .split_whitespace()
        .nth(1)
        .ok_or_else(|| bad(format!("status line has no code: {status_line:?}")))?;
    if code.len() != 3 || !code.bytes().all(|b| b.is_ascii_digit()) {
        return Err(bad(format!("malformed status code {code:?}")));
    }
    let status: u16 = code.parse().expect("three ascii digits");

    let retry_after = head.lines().skip(1).find_map(|line| {
        let (name, value) = line.split_once(':')?;
        if name.trim().eq_ignore_ascii_case("retry-after") {
            value.trim().parse().ok()
        } else {
            None
        }
    });

    let body = if body.trim().is_empty() {
        Json::Null
    } else {
        Json::parse(body).map_err(|e| bad(format!("reply body is not JSON: {e}")))?
    };
    Ok(Reply {
        status,
        body,
        retry_after,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_framed_reply() {
        let raw = "HTTP/1.1 429 Too Many Requests\r\nRetry-After: 2\r\nContent-Length: 2\r\n\r\n{}";
        let reply = parse_reply(raw).unwrap();
        assert_eq!(reply.status, 429);
        assert_eq!(reply.retry_after, Some(2));
        assert_eq!(reply.body, Json::obj([]));

        let plain = parse_reply("HTTP/1.1 200 OK\r\n\r\n{}").unwrap();
        assert_eq!(plain.retry_after, None);
    }

    /// The bug this guards against: `lines().next().unwrap_or_default()`
    /// let an empty head parse as a success-shaped reply.
    #[test]
    fn malformed_replies_are_protocol_errors_not_successes() {
        for raw in [
            "\r\n\r\n{}",                  // empty status line
            "hello world\r\n\r\n{}",       // not HTTP at all
            "HTTP/1.1\r\n\r\n{}",          // no status code
            "HTTP/1.1 xyz Bad\r\n\r\n{}",  // non-numeric code
            "HTTP/1.1 12 Bad\r\n\r\n{}",   // not three digits
            "HTTP/1.1 9999 Bad\r\n\r\n{}", // not three digits
            "HTTP/1.1 200 OK{}",           // no separator
        ] {
            let err = parse_reply(raw).expect_err(raw);
            assert_eq!(err.kind(), io::ErrorKind::InvalidData, "{raw:?}");
        }
    }

    #[test]
    fn backoff_is_capped_exponential_with_jitter() {
        let policy = RetryPolicy {
            max_attempts: 8,
            base: Duration::from_millis(100),
            cap: Duration::from_secs(2),
            seed: 7,
        };
        let mut previous_ceiling = Duration::ZERO;
        for attempt in 0..8 {
            let pause = policy.backoff(attempt, None);
            let ceiling = policy.base.saturating_mul(1 << attempt).min(policy.cap);
            assert!(
                pause <= ceiling,
                "attempt {attempt}: {pause:?} > {ceiling:?}"
            );
            assert!(
                pause >= ceiling.mul_f64(0.5),
                "attempt {attempt}: {pause:?} under half of {ceiling:?}"
            );
            assert!(ceiling >= previous_ceiling);
            previous_ceiling = ceiling;
        }
        // Deterministic for a fixed seed…
        assert_eq!(policy.backoff(3, None), policy.backoff(3, None));
        // …and Retry-After overrides the schedule, still capped.
        assert_eq!(policy.backoff(0, Some(1)), Duration::from_secs(1));
        assert_eq!(policy.backoff(0, Some(3600)), Duration::from_secs(2));
    }

    #[test]
    fn with_retry_stops_on_success_and_respects_max_attempts() {
        let policy = RetryPolicy {
            max_attempts: 3,
            base: Duration::from_millis(1),
            cap: Duration::from_millis(2),
            seed: 1,
        };
        let mut calls = 0;
        let reply = with_retry(&policy, || {
            calls += 1;
            if calls < 3 {
                Ok(Reply {
                    status: 429,
                    body: Json::Null,
                    retry_after: None,
                })
            } else {
                Ok(Reply {
                    status: 202,
                    body: Json::Null,
                    retry_after: None,
                })
            }
        })
        .unwrap();
        assert_eq!(reply.status, 202);
        assert_eq!(calls, 3);

        let mut calls = 0;
        let reply = with_retry(&policy, || {
            calls += 1;
            Ok(Reply {
                status: 503,
                body: Json::Null,
                retry_after: None,
            })
        })
        .unwrap();
        assert_eq!(
            reply.status, 503,
            "exhausted retries surface the last reply"
        );
        assert_eq!(calls, 3);

        // Non-retriable statuses return immediately.
        let mut calls = 0;
        let _ = with_retry(&policy, || {
            calls += 1;
            Ok(Reply {
                status: 400,
                body: Json::Null,
                retry_after: None,
            })
        });
        assert_eq!(calls, 1);
    }
}

//! The durable job journal: a write-ahead log that makes the serve
//! stack crash-safe.
//!
//! ## Record framing
//!
//! Each record is a JSON document framed as
//!
//! ```text
//! [u32 LE payload length][u64 LE FNV-1a checksum][payload bytes]
//! ```
//!
//! The checksum covers the payload only; the length is implicitly
//! protected because a corrupted length either truncates the frame
//! (read past end of file) or shifts the checksum window so the FNV
//! comparison fails. Every append is flushed *and* fsync'd before the
//! caller proceeds — the fsync return is the durability barrier the
//! fault-injection hooks key on.
//!
//! ## Segments, rotation, compaction
//!
//! The journal lives in one directory as `wal-<n>.log` segments,
//! replayed in index order. When the live tail grows past
//! [`JournalConfig::max_segment_bytes`], the engine asks the journal to
//! [`Journal::compact`]: the *live* state (queued and running jobs, the
//! most recent terminal jobs) is snapshotted into the next segment
//! index, durably renamed into place, and every older segment deleted.
//! A crash between the rename and the deletes replays old history
//! followed by the snapshot — the replay fold is last-write-wins per
//! job, so the snapshot wins and the leftovers are garbage-collected by
//! the next compaction.
//!
//! ## Corruption
//!
//! A torn final write (the classic crash signature) or any bit rot is
//! detected by the checksum. Replay stops at the first bad frame, the
//! containing segment is truncated back to its last good byte, and any
//! later segments are discarded — the journal never panics on a corrupt
//! tail and never appends after unreadable bytes.

use std::fs::{self, File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};

use ams_netlist::json::Json;

/// Refuse to allocate absurd buffers when a corrupted length field
/// happens to frame-align: no legitimate record (a request embeds at
/// most one inline design) approaches this.
const MAX_RECORD: u32 = 64 * 1024 * 1024;

/// 64-bit FNV-1a over the payload — the same dependency-free hash the
/// API layer uses for cache keys.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x100000001b3);
    }
    hash
}

/// One journal entry. Three kinds cover the whole job lifecycle:
/// cancellation, interruption, and success are all `Finished` with the
/// terminal [`PlaceResponse`](ams_place::api::PlaceResponse) embedded.
#[derive(Clone, PartialEq, Debug)]
pub enum Record {
    /// A job entered the queue; the full wire request rides along so a
    /// restart can re-enqueue (and re-hash) it.
    Submitted { job_id: u64, request: Json },
    /// A worker picked the job up.
    Started { job_id: u64 },
    /// The job reached a terminal state; the wire response rides along
    /// so a restart can repopulate the exact-result cache and keep
    /// serving polls for completed jobs.
    Finished { job_id: u64, response: Json },
}

impl Record {
    /// The job this record concerns.
    pub fn job_id(&self) -> u64 {
        match self {
            Record::Submitted { job_id, .. }
            | Record::Started { job_id }
            | Record::Finished { job_id, .. } => *job_id,
        }
    }

    /// Serializes to the framed payload's JSON document.
    pub fn to_json(&self) -> Json {
        match self {
            Record::Submitted { job_id, request } => Json::obj([
                ("kind", Json::str("submitted")),
                ("job_id", Json::uint(*job_id)),
                ("request", request.clone()),
            ]),
            Record::Started { job_id } => Json::obj([
                ("kind", Json::str("started")),
                ("job_id", Json::uint(*job_id)),
            ]),
            Record::Finished { job_id, response } => Json::obj([
                ("kind", Json::str("finished")),
                ("job_id", Json::uint(*job_id)),
                ("response", response.clone()),
            ]),
        }
    }

    /// Parses a framed payload back into a record.
    ///
    /// # Errors
    ///
    /// A message naming the missing or malformed field.
    pub fn from_json(doc: &Json) -> Result<Record, String> {
        let job_id = doc
            .field("job_id")
            .and_then(Json::as_u64)
            .ok_or("record job_id missing")?;
        match doc.field("kind").and_then(Json::as_str) {
            Some("submitted") => Ok(Record::Submitted {
                job_id,
                request: doc
                    .field("request")
                    .ok_or("submitted.request missing")?
                    .clone(),
            }),
            Some("started") => Ok(Record::Started { job_id }),
            Some("finished") => Ok(Record::Finished {
                job_id,
                response: doc
                    .field("response")
                    .ok_or("finished.response missing")?
                    .clone(),
            }),
            other => Err(format!("unknown record kind {other:?}")),
        }
    }
}

/// Frames one payload: length, checksum, bytes.
pub fn encode_frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(12 + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&fnv1a(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// What [`decode_frame`] found at an offset.
#[derive(PartialEq, Eq, Debug)]
pub enum Frame<'a> {
    /// A whole, checksum-valid record payload; `next` is the offset of
    /// the following frame.
    Ok { payload: &'a [u8], next: usize },
    /// Clean end of input: the offset sits exactly at the buffer end.
    End,
    /// Anything else — a torn tail, a checksum mismatch, an impossible
    /// length. The journal is valid up to `at` and unreadable after.
    Corrupt,
}

/// Decodes the frame starting at `at`, verifying length and checksum.
pub fn decode_frame(buf: &[u8], at: usize) -> Frame<'_> {
    if at == buf.len() {
        return Frame::End;
    }
    if at + 12 > buf.len() {
        return Frame::Corrupt;
    }
    let len = u32::from_le_bytes(buf[at..at + 4].try_into().expect("4 bytes"));
    if len > MAX_RECORD {
        return Frame::Corrupt;
    }
    let sum = u64::from_le_bytes(buf[at + 4..at + 12].try_into().expect("8 bytes"));
    let start = at + 12;
    let Some(end) = start.checked_add(len as usize) else {
        return Frame::Corrupt;
    };
    if end > buf.len() {
        return Frame::Corrupt;
    }
    let payload = &buf[start..end];
    if fnv1a(payload) != sum {
        return Frame::Corrupt;
    }
    Frame::Ok { payload, next: end }
}

/// Encodes a record into its on-disk frame.
pub fn encode_record(record: &Record) -> Vec<u8> {
    encode_frame(record.to_json().pretty().as_bytes())
}

/// Journal tuning.
#[derive(Clone, Debug)]
pub struct JournalConfig {
    /// Size past which the live segment triggers compaction into a
    /// fresh one.
    pub max_segment_bytes: u64,
}

impl Default for JournalConfig {
    fn default() -> JournalConfig {
        JournalConfig {
            max_segment_bytes: 4 * 1024 * 1024,
        }
    }
}

/// Counters for `/v1/stats` and the resume banner.
#[derive(Clone, Copy, Debug, Default)]
pub struct JournalStats {
    /// Index of the live segment.
    pub segment: u64,
    /// Bytes in the live segment.
    pub segment_bytes: u64,
    /// Records appended since this process opened the journal.
    pub appended: u64,
    /// Records recovered from disk at open.
    pub replayed: u64,
    /// Whether the open discarded a corrupt tail.
    pub tail_discarded: bool,
}

/// The open write-ahead log. All appends are fsync'd; all methods are
/// `&mut` — callers serialize access behind their own lock.
pub struct Journal {
    dir: PathBuf,
    file: File,
    segment: u64,
    segment_bytes: u64,
    config: JournalConfig,
    appended: u64,
    replayed: u64,
    tail_discarded: bool,
}

fn segment_path(dir: &Path, index: u64) -> PathBuf {
    dir.join(format!("wal-{index:06}.log"))
}

/// The sorted `(index, path)` list of committed segments in `dir`.
fn list_segments(dir: &Path) -> io::Result<Vec<(u64, PathBuf)>> {
    let mut segments = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        // An orphaned .tmp is an interrupted compaction whose rename
        // never happened: the old segments are all still present, so the
        // half-written snapshot is simply dead weight.
        if name.starts_with("wal-") && name.ends_with(".log.tmp") {
            let _ = fs::remove_file(entry.path());
            continue;
        }
        let Some(index) = name
            .strip_prefix("wal-")
            .and_then(|s| s.strip_suffix(".log"))
            .and_then(|s| s.parse::<u64>().ok())
        else {
            continue;
        };
        segments.push((index, entry.path()));
    }
    segments.sort();
    Ok(segments)
}

/// Best-effort directory fsync so renames and unlinks are durable. Some
/// filesystems refuse to sync directories; that only weakens the
/// compaction barrier, never record durability.
fn sync_dir(dir: &Path) {
    if let Ok(handle) = File::open(dir) {
        let _ = handle.sync_all();
    }
}

impl Journal {
    /// Opens (creating if needed) the journal in `dir` and replays every
    /// committed record. Corrupt or torn tails are discarded: the
    /// offending segment is truncated to its last good byte and any
    /// later segments are deleted.
    ///
    /// # Errors
    ///
    /// Directory creation, read, or open failures, verbatim. Corruption
    /// is *not* an error — it is the crash signature this type exists
    /// to absorb.
    pub fn open(
        dir: impl Into<PathBuf>,
        config: JournalConfig,
    ) -> io::Result<(Journal, Vec<Record>)> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        let segments = list_segments(&dir)?;

        let mut records = Vec::new();
        let mut tail_discarded = false;
        let mut keep = segments.len();
        for (i, (_, path)) in segments.iter().enumerate() {
            let buf = fs::read(path)?;
            let mut at = 0usize;
            loop {
                match decode_frame(&buf, at) {
                    Frame::Ok { payload, next } => {
                        // An undecodable JSON payload with a valid
                        // checksum means a foreign or future record —
                        // treat it like corruption: stop here.
                        let parsed = std::str::from_utf8(payload)
                            .ok()
                            .and_then(|text| Json::parse(text).ok())
                            .and_then(|doc| Record::from_json(&doc).ok());
                        match parsed {
                            Some(record) => {
                                records.push(record);
                                at = next;
                            }
                            None => {
                                tail_discarded = true;
                                break;
                            }
                        }
                    }
                    Frame::End => break,
                    Frame::Corrupt => {
                        tail_discarded = true;
                        break;
                    }
                }
            }
            if tail_discarded {
                // Truncate this segment to its last good byte and drop
                // everything after it — appends must go after readable
                // records, never after garbage.
                let file = OpenOptions::new().write(true).open(path)?;
                file.set_len(at as u64)?;
                file.sync_all()?;
                keep = i + 1;
                break;
            }
        }
        for (_, path) in &segments[keep.min(segments.len())..] {
            let _ = fs::remove_file(path);
        }
        if keep < segments.len() {
            sync_dir(&dir);
        }

        let segment = segments[..keep.min(segments.len())]
            .last()
            .map_or(1, |(index, _)| *index);
        let path = segment_path(&dir, segment);
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        let segment_bytes = file.metadata()?.len();
        let replayed = records.len() as u64;
        Ok((
            Journal {
                dir,
                file,
                segment,
                segment_bytes,
                config,
                appended: 0,
                replayed,
                tail_discarded,
            },
            records,
        ))
    }

    /// Appends one record and fsyncs it. When this returns, the record
    /// survives `SIGKILL` and power loss.
    ///
    /// # Errors
    ///
    /// The underlying write or sync failure, verbatim.
    pub fn append(&mut self, record: &Record) -> io::Result<()> {
        let frame = encode_record(record);
        self.file.write_all(&frame)?;
        self.file.flush()?;
        self.file.sync_data()?;
        self.segment_bytes += frame.len() as u64;
        self.appended += 1;
        Ok(())
    }

    /// Whether the live segment has outgrown its budget and the owner
    /// should snapshot live state into [`Journal::compact`].
    pub fn wants_compaction(&self) -> bool {
        self.segment_bytes > self.config.max_segment_bytes
    }

    /// Replaces the whole journal with a snapshot of `live` records:
    /// written to the next segment index as a temp file, fsync'd,
    /// durably renamed, then every older segment deleted. Crash-safe at
    /// every step — the worst a crash leaves is the old history plus the
    /// snapshot, which replays to the same state.
    ///
    /// # Errors
    ///
    /// The underlying write, sync, or rename failure, verbatim.
    pub fn compact(&mut self, live: &[Record]) -> io::Result<()> {
        let next = self.segment + 1;
        let final_path = segment_path(&self.dir, next);
        let tmp_path = final_path.with_extension("log.tmp");
        let mut tmp = File::create(&tmp_path)?;
        let mut bytes = 0u64;
        for record in live {
            let frame = encode_record(record);
            tmp.write_all(&frame)?;
            bytes += frame.len() as u64;
        }
        tmp.sync_all()?;
        drop(tmp);
        fs::rename(&tmp_path, &final_path)?;
        sync_dir(&self.dir);

        // The snapshot is durable; everything older is now garbage.
        for (index, path) in list_segments(&self.dir)? {
            if index < next {
                let _ = fs::remove_file(path);
            }
        }
        sync_dir(&self.dir);

        self.file = OpenOptions::new().append(true).open(&final_path)?;
        self.segment = next;
        self.segment_bytes = bytes;
        Ok(())
    }

    /// Point-in-time counters.
    pub fn stats(&self) -> JournalStats {
        JournalStats {
            segment: self.segment,
            segment_bytes: self.segment_bytes,
            appended: self.appended,
            replayed: self.replayed,
            tail_discarded: self.tail_discarded,
        }
    }
}

/// A job's state as reconstructed from the journal.
#[derive(Clone, PartialEq, Debug)]
pub enum ReplayJob {
    /// Submitted, never picked up: re-enqueue on resume.
    Queued { request: Json },
    /// Picked up, never finished — the process died mid-solve. The
    /// resume policy decides: re-run, or mark interrupted.
    Running { request: Json },
    /// Terminal, response on record. Done results whose requests are
    /// deadline-free repopulate the exact cache.
    Terminal {
        request: Option<Json>,
        response: Json,
    },
}

/// Deterministic fold of a record stream into per-job end states.
/// The same WAL always reconstructs the same state (the `journal`
/// round-trip tests pin this), and duplicated history — e.g. an old
/// segment surviving next to a compaction snapshot — is harmless
/// because later records win.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct ReplayState {
    /// `(job_id, state)` in first-seen order.
    pub jobs: Vec<(u64, ReplayJob)>,
    /// Highest job id on record (0 when the journal is empty); the
    /// engine resumes numbering above it.
    pub max_job_id: u64,
}

/// Folds records into the state a resuming server starts from.
pub fn replay(records: &[Record]) -> ReplayState {
    let mut state = ReplayState::default();
    let position = |jobs: &[(u64, ReplayJob)], id: u64| jobs.iter().position(|(j, _)| *j == id);
    for record in records {
        state.max_job_id = state.max_job_id.max(record.job_id());
        match record {
            Record::Submitted { job_id, request } => {
                let fresh = ReplayJob::Queued {
                    request: request.clone(),
                };
                match position(&state.jobs, *job_id) {
                    Some(i) => state.jobs[i].1 = fresh,
                    None => state.jobs.push((*job_id, fresh)),
                }
            }
            Record::Started { job_id } => {
                if let Some(i) = position(&state.jobs, *job_id) {
                    if let ReplayJob::Queued { request } = state.jobs[i].1.clone() {
                        state.jobs[i].1 = ReplayJob::Running { request };
                    }
                }
            }
            Record::Finished { job_id, response } => match position(&state.jobs, *job_id) {
                Some(i) => {
                    let request = match &state.jobs[i].1 {
                        ReplayJob::Queued { request } | ReplayJob::Running { request } => {
                            Some(request.clone())
                        }
                        ReplayJob::Terminal { request, .. } => request.clone(),
                    };
                    state.jobs[i].1 = ReplayJob::Terminal {
                        request,
                        response: response.clone(),
                    };
                }
                None => state.jobs.push((
                    *job_id,
                    ReplayJob::Terminal {
                        request: None,
                        response: response.clone(),
                    },
                )),
            },
        }
    }
    state
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records() -> Vec<Record> {
        let request = Json::obj([
            ("design", Json::str("buf")),
            ("idempotency_key", Json::str("k-1")),
        ]);
        let response = Json::obj([("design", Json::str("buf")), ("status", Json::str("done"))]);
        vec![
            Record::Submitted {
                job_id: 1,
                request: request.clone(),
            },
            Record::Started { job_id: 1 },
            Record::Finished {
                job_id: 1,
                response,
            },
            Record::Submitted { job_id: 2, request },
        ]
    }

    #[test]
    fn records_roundtrip_through_json_and_frames() {
        for record in sample_records() {
            let doc = record.to_json();
            let back = Record::from_json(&doc).expect("json roundtrip");
            assert_eq!(back, record);

            let frame = encode_record(&record);
            match decode_frame(&frame, 0) {
                Frame::Ok { payload, next } => {
                    assert_eq!(next, frame.len());
                    let doc = Json::parse(std::str::from_utf8(payload).unwrap()).unwrap();
                    assert_eq!(Record::from_json(&doc).unwrap(), record);
                }
                other => panic!("decode failed: {other:?}"),
            }
        }
    }

    /// Every single-byte corruption of a framed record must be rejected
    /// — either as a checksum mismatch or as a torn/overlong frame.
    /// Nothing may decode to a *different* valid record, and nothing may
    /// panic.
    #[test]
    fn every_single_byte_corruption_is_rejected() {
        let record = &sample_records()[0];
        let frame = encode_record(record);
        let original_payload = record.to_json().pretty();
        for position in 0..frame.len() {
            for flip in 1..=255u8 {
                let mut corrupt = frame.clone();
                corrupt[position] ^= flip;
                match decode_frame(&corrupt, 0) {
                    Frame::Corrupt => {}
                    Frame::Ok { payload, .. } => panic!(
                        "byte {position} ^ {flip:#04x} decoded as valid \
                         (payload {:?} vs original {:?})",
                        String::from_utf8_lossy(payload),
                        original_payload,
                    ),
                    Frame::End => panic!("byte {position} ^ {flip:#04x} decoded as empty"),
                }
            }
        }
    }

    #[test]
    fn truncated_tails_decode_as_corrupt_not_panic() {
        let frame = encode_record(&sample_records()[0]);
        for cut in 1..frame.len() {
            assert_eq!(decode_frame(&frame[..cut], 0), Frame::Corrupt, "cut {cut}");
        }
        assert_eq!(decode_frame(&[], 0), Frame::End);
    }

    /// Same WAL ⇒ same reconstructed state, and the state machine takes
    /// the documented transitions.
    #[test]
    fn replay_is_deterministic_and_folds_lifecycles() {
        let records = sample_records();
        let a = replay(&records);
        let b = replay(&records);
        assert_eq!(a, b);
        assert_eq!(a.max_job_id, 2);
        assert_eq!(a.jobs.len(), 2);
        assert!(matches!(
            a.jobs[0].1,
            ReplayJob::Terminal {
                request: Some(_),
                ..
            }
        ));
        assert!(matches!(a.jobs[1].1, ReplayJob::Queued { .. }));

        // Started-but-never-finished folds to Running.
        let mid = replay(&records[..2]);
        assert!(matches!(mid.jobs[0].1, ReplayJob::Running { .. }));

        // Duplicated history (old segment + compaction snapshot) is
        // last-write-wins: replaying everything twice matches once.
        let mut doubled = records.clone();
        doubled.extend(records.clone());
        assert_eq!(replay(&doubled), a);
    }

    #[test]
    fn journal_persists_rotates_and_discards_corrupt_tails() {
        let dir = std::env::temp_dir().join(format!("ams-journal-test-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);

        // Write, reopen, replay.
        let records = sample_records();
        {
            let (mut journal, replayed) =
                Journal::open(&dir, JournalConfig::default()).expect("open fresh");
            assert!(replayed.is_empty());
            for record in &records {
                journal.append(record).expect("append");
            }
        }
        let (mut journal, replayed) =
            Journal::open(&dir, JournalConfig::default()).expect("reopen");
        assert_eq!(replayed, records);
        assert!(journal.stats().replayed == 4 && !journal.stats().tail_discarded);

        // Compaction rewrites to the next segment and deletes the old.
        let live = vec![records[3].clone()];
        journal.compact(&live).expect("compact");
        assert_eq!(journal.stats().segment, 2);
        drop(journal);
        let (journal, replayed) = Journal::open(&dir, JournalConfig::default()).expect("reopen");
        assert_eq!(replayed, live);
        assert_eq!(list_segments(&dir).unwrap().len(), 1);
        drop(journal);

        // A torn tail (half a frame) is truncated away; the good prefix
        // survives and the journal stays appendable.
        let path = segment_path(&dir, 2);
        let mut bytes = fs::read(&path).unwrap();
        let good_len = bytes.len();
        bytes.extend_from_slice(&encode_record(&records[0])[..7]);
        fs::write(&path, &bytes).unwrap();
        let (mut journal, replayed) =
            Journal::open(&dir, JournalConfig::default()).expect("reopen torn");
        assert_eq!(replayed, live);
        assert!(journal.stats().tail_discarded);
        assert_eq!(fs::metadata(&path).unwrap().len(), good_len as u64);
        journal
            .append(&records[1])
            .expect("append after truncation");
        drop(journal);
        let (_, replayed) = Journal::open(&dir, JournalConfig::default()).expect("final open");
        assert_eq!(replayed.len(), 2);

        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn small_segment_budget_triggers_compaction_requests() {
        let dir = std::env::temp_dir().join(format!("ams-journal-rot-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let config = JournalConfig {
            max_segment_bytes: 64,
        };
        let (mut journal, _) = Journal::open(&dir, config).expect("open");
        assert!(!journal.wants_compaction());
        journal.append(&sample_records()[0]).expect("append");
        assert!(journal.wants_compaction());
        journal.compact(&[]).expect("compact empty");
        assert!(!journal.wants_compaction());
        assert_eq!(journal.stats().segment_bytes, 0);
        let _ = fs::remove_dir_all(&dir);
    }
}

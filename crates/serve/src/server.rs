//! The HTTP front-end: a [`TcpListener`] accept loop dispatching
//! one-request connections onto the shared [`Engine`].
//!
//! ## Endpoints (all JSON, schema version [`SCHEMA_VERSION`])
//!
//! | Method & path          | Purpose                                        |
//! |------------------------|------------------------------------------------|
//! | `POST /v1/jobs`        | Submit a [`PlaceRequest`]; `202 {job_id}` or `429` when the queue is full |
//! | `GET  /v1/jobs/<id>`   | Poll: status plus the embedded response once terminal |
//! | `POST /v1/jobs/<id>/cancel` | Cancel: queued jobs terminate at once, running jobs stop at the next conflict boundary |
//! | `GET  /v1/healthz`     | Liveness probe                                 |
//! | `GET  /v1/stats`       | Queue depth, cache hit counters, warm-pool size |
//! | `POST /v1/shutdown`    | Drain nothing, stop accepting, join the workers |
//!
//! [`PlaceRequest`]: ams_place::api::PlaceRequest
//! [`SCHEMA_VERSION`]: ams_place::api::SCHEMA_VERSION

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::thread::JoinHandle;

use ams_netlist::json::Json;
use ams_place::api::{PlaceRequest, SCHEMA_VERSION};

use crate::http::{read_request, write_response, Request};
use crate::jobs::{Engine, Submitted};

/// Server tuning. [`ServeConfig::default`] binds an ephemeral loopback
/// port with two solver workers — the shape the tests and the CLI
/// default use.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Bind address, e.g. `127.0.0.1:7171`. Port `0` picks one.
    pub bind: String,
    /// Solver worker threads (each runs one job at a time).
    pub workers: usize,
    /// Bounded queue capacity; submissions past it get HTTP 429.
    pub queue_cap: usize,
    /// Exact-result cache entries (keyed design × options hash).
    pub exact_cache_cap: usize,
    /// Warm solver pool entries (keyed design hash).
    pub warm_pool_cap: usize,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            bind: "127.0.0.1:0".to_string(),
            workers: 2,
            queue_cap: 64,
            exact_cache_cap: 64,
            warm_pool_cap: 4,
        }
    }
}

/// A running placement service. Dropping the handle does **not** stop
/// it; call [`Server::shutdown`] (or POST `/v1/shutdown`) then
/// [`Server::join`].
pub struct Server {
    addr: SocketAddr,
    engine: Arc<Engine>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds, spawns the worker pool and the accept loop, and returns.
    ///
    /// # Errors
    ///
    /// The bind failure, verbatim.
    pub fn start(config: ServeConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.bind)?;
        let addr = listener.local_addr()?;
        let engine = Arc::new(Engine::new(
            config.queue_cap,
            config.exact_cache_cap,
            config.warm_pool_cap,
        ));

        let workers = (0..config.workers.max(1))
            .map(|i| {
                let engine = Arc::clone(&engine);
                std::thread::Builder::new()
                    .name(format!("amsplace-worker-{i}"))
                    .spawn(move || engine.worker_loop())
                    .expect("spawn worker")
            })
            .collect();

        let accept = {
            let engine = Arc::clone(&engine);
            std::thread::Builder::new()
                .name("amsplace-accept".to_string())
                .spawn(move || accept_loop(&listener, &engine, addr))
                .expect("spawn accept loop")
        };

        Ok(Server {
            addr,
            engine,
            accept: Some(accept),
            workers,
        })
    }

    /// The bound address (useful with port `0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared engine — test hooks and in-process submission.
    pub fn engine(&self) -> &Arc<Engine> {
        &self.engine
    }

    /// Stops accepting and wakes the workers, as if `/v1/shutdown` had
    /// been posted.
    pub fn shutdown(&self) {
        self.engine.stop();
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
    }

    /// Joins the accept loop and every worker. Call after
    /// [`Server::shutdown`] (or after a client posted `/v1/shutdown`).
    pub fn join(mut self) {
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

fn accept_loop(listener: &TcpListener, engine: &Arc<Engine>, addr: SocketAddr) {
    for stream in listener.incoming() {
        if !engine.running.load(Ordering::Relaxed) {
            break;
        }
        let Ok(mut stream) = stream else { continue };
        let engine = Arc::clone(engine);
        let _ = std::thread::Builder::new()
            .name("amsplace-conn".to_string())
            .spawn(move || {
                if let Ok(request) = read_request(&mut stream) {
                    let (status, body) = route(&engine, &request);
                    let _ = write_response(&mut stream, status, &body);
                    if request.method == "POST" && request.path == "/v1/shutdown" {
                        // Response is on the wire; now unblock our own
                        // accept loop so the server can be joined.
                        let _ = TcpStream::connect(addr);
                    }
                }
            });
    }
}

/// Maps one request to `(status, body)`. Pure except for the engine.
fn route(engine: &Engine, request: &Request) -> (u16, Json) {
    let path: Vec<&str> = request.path.split('/').filter(|s| !s.is_empty()).collect();
    match (request.method.as_str(), path.as_slice()) {
        ("GET", ["v1", "healthz"]) => (
            200,
            Json::obj([
                ("schema_version", Json::uint(SCHEMA_VERSION)),
                ("ok", Json::Bool(true)),
            ]),
        ),
        ("GET", ["v1", "stats"]) => (200, engine.stats()),
        ("POST", ["v1", "jobs"]) => submit(engine, request),
        ("GET", ["v1", "jobs", id]) => match parse_id(id).and_then(|id| engine.job_view(id)) {
            Some(view) => (200, view),
            None => (404, error_body("no such job")),
        },
        ("POST", ["v1", "jobs", id, "cancel"]) => {
            match parse_id(id).and_then(|id| engine.cancel(id)) {
                Some(status) => (
                    200,
                    Json::obj([
                        ("schema_version", Json::uint(SCHEMA_VERSION)),
                        ("status", Json::str(status.name())),
                    ]),
                ),
                None => (404, error_body("no such job")),
            }
        }
        ("POST", ["v1", "shutdown"]) => {
            engine.stop();
            (
                200,
                Json::obj([
                    ("schema_version", Json::uint(SCHEMA_VERSION)),
                    ("stopping", Json::Bool(true)),
                ]),
            )
        }
        (_, ["v1", ..]) => (405, error_body("method not allowed")),
        _ => (404, error_body("unknown endpoint")),
    }
}

fn submit(engine: &Engine, request: &Request) -> (u16, Json) {
    let doc = match request.json() {
        Ok(doc) => doc,
        Err(msg) => return (400, error_body(&msg)),
    };
    let place_request = match PlaceRequest::from_json(&doc) {
        Ok(r) => r,
        Err(msg) => return (400, error_body(&msg)),
    };
    match engine.submit(place_request) {
        Submitted::Queued(id) => (
            202,
            Json::obj([
                ("schema_version", Json::uint(SCHEMA_VERSION)),
                ("job_id", Json::uint(id)),
                ("status", Json::str("queued")),
            ]),
        ),
        Submitted::Saturated => (429, error_body("job queue is full, retry later")),
    }
}

fn parse_id(raw: &str) -> Option<u64> {
    raw.parse().ok()
}

fn error_body(message: &str) -> Json {
    Json::obj([
        ("schema_version", Json::uint(SCHEMA_VERSION)),
        ("error", Json::str(message)),
    ])
}

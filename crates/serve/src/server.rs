//! The HTTP front-end: a [`TcpListener`] accept loop dispatching
//! one-request connections onto the shared [`Engine`].
//!
//! ## Endpoints (all JSON, schema version [`SCHEMA_VERSION`])
//!
//! | Method & path          | Purpose                                        |
//! |------------------------|------------------------------------------------|
//! | `POST /v1/jobs`        | Submit a [`PlaceRequest`]; `202 {job_id}`, `429` when the queue is full, `503` when degraded and the request is a cold solve (both carry `Retry-After`) |
//! | `GET  /v1/jobs/<id>`   | Poll: status plus the embedded response once terminal |
//! | `POST /v1/jobs/<id>/cancel` | Cancel: queued jobs terminate at once, running jobs stop at the next conflict boundary |
//! | `GET  /v1/healthz`     | Liveness probe; reports `degraded` under load-shedding |
//! | `GET  /v1/stats`       | Queue depth, cache hit counters, warm-pool size, journal state |
//! | `POST /v1/shutdown`    | Drain nothing, stop accepting, join the workers |
//!
//! With [`ServeConfig::journal_dir`] set, the engine journals every job
//! transition to an fsync'd WAL and [`Server::start`] replays it: a
//! journal with prior records requires [`ServeConfig::resume`] (the CLI
//! `--resume`) — refusing to silently ignore a dead server's state —
//! and recovery re-enqueues queued jobs, re-runs or interrupts mid-solve
//! jobs per [`ResumePolicy`], and keeps terminal jobs pollable.
//!
//! [`PlaceRequest`]: ams_place::api::PlaceRequest
//! [`SCHEMA_VERSION`]: ams_place::api::SCHEMA_VERSION

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use ams_netlist::json::Json;
use ams_place::api::{PlaceRequest, SCHEMA_VERSION};

use crate::fault::{ConnFate, FaultPlan};
use crate::http::{read_request, write_response_with, Limits, Request};
use crate::jobs::{Engine, EngineConfig, RecoveryReport, ResumePolicy, Submitted};
use crate::journal::{replay, Journal, JournalConfig};

/// Server tuning. [`ServeConfig::default`] binds an ephemeral loopback
/// port with two solver workers and journaling off — the shape the
/// tests and the CLI default use.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Bind address, e.g. `127.0.0.1:7171`. Port `0` picks one.
    pub bind: String,
    /// Solver worker threads (each runs one job at a time).
    pub workers: usize,
    /// Bounded queue capacity; submissions past it get HTTP 429.
    pub queue_cap: usize,
    /// Exact-result cache entries (keyed design × options hash).
    pub exact_cache_cap: usize,
    /// Warm solver pool entries (keyed design hash).
    pub warm_pool_cap: usize,
    /// Queue depth at which the server degrades: cold submissions are
    /// shed with 503 while cached/warm ones still queue. `0` derives
    /// 3/4 of `queue_cap`.
    pub shed_high_water: usize,
    /// Idempotency keys remembered before FIFO eviction.
    pub idempotency_window: usize,
    /// WAL directory; `None` (the default) serves without durability,
    /// byte-for-byte the pre-journal behavior.
    pub journal_dir: Option<PathBuf>,
    /// Allow recovering a journal that already holds records. Without
    /// it, starting on a non-empty journal is an error — never silently
    /// ignore a dead server's state.
    pub resume: bool,
    /// What to do with jobs the dead process had mid-solve.
    pub resume_policy: ResumePolicy,
    /// Live-segment size that triggers WAL compaction.
    pub journal_segment_bytes: u64,
    /// Per-request body cap (413 past it).
    pub max_body_bytes: usize,
    /// Per-connection socket deadline in ms (408 on a stalled read);
    /// `0` disables.
    pub read_timeout_ms: u64,
    /// Fault-injection spec (see [`crate::fault`]); `None` falls back to
    /// the `AMSPLACE_FAULT` environment variable, so production configs
    /// stay inert.
    pub fault_spec: Option<String>,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            bind: "127.0.0.1:0".to_string(),
            workers: 2,
            queue_cap: 64,
            exact_cache_cap: 64,
            warm_pool_cap: 4,
            shed_high_water: 0,
            idempotency_window: 256,
            journal_dir: None,
            resume: false,
            resume_policy: ResumePolicy::Rerun,
            journal_segment_bytes: 4 * 1024 * 1024,
            max_body_bytes: crate::http::MAX_BODY,
            read_timeout_ms: 10_000,
            fault_spec: None,
        }
    }
}

impl ServeConfig {
    fn engine_config(&self) -> EngineConfig {
        EngineConfig {
            queue_cap: self.queue_cap,
            exact_cap: self.exact_cache_cap,
            warm_cap: self.warm_pool_cap,
            shed_high_water: if self.shed_high_water == 0 {
                (self.queue_cap.saturating_mul(3) / 4).max(1)
            } else {
                self.shed_high_water
            },
            idem_window: self.idempotency_window,
        }
    }

    fn limits(&self) -> Limits {
        Limits {
            max_body: self.max_body_bytes,
            read_timeout: match self.read_timeout_ms {
                0 => None,
                ms => Some(Duration::from_millis(ms)),
            },
        }
    }
}

/// A running placement service. Dropping the handle does **not** stop
/// it; call [`Server::shutdown`] (or POST `/v1/shutdown`) then
/// [`Server::join`].
pub struct Server {
    addr: SocketAddr,
    engine: Arc<Engine>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    recovery: Option<RecoveryReport>,
}

impl Server {
    /// Binds, opens and replays the journal (when configured), spawns
    /// the worker pool and the accept loop, and returns.
    ///
    /// # Errors
    ///
    /// The bind or journal-open failure, verbatim; and
    /// [`io::ErrorKind::AlreadyExists`] when the journal holds prior
    /// records but [`ServeConfig::resume`] is unset.
    pub fn start(config: ServeConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.bind)?;
        let addr = listener.local_addr()?;

        let faults = match &config.fault_spec {
            Some(spec) => FaultPlan::parse(spec),
            None => FaultPlan::from_env(),
        };

        let mut recovery = None;
        let mut pending = None;
        let journal = match &config.journal_dir {
            Some(dir) => {
                let journal_config = JournalConfig {
                    max_segment_bytes: config.journal_segment_bytes,
                };
                let (journal, records) = Journal::open(dir, journal_config)?;
                if !records.is_empty() && !config.resume {
                    return Err(io::Error::new(
                        io::ErrorKind::AlreadyExists,
                        format!(
                            "journal at {} holds {} records from a previous run; \
                             pass --resume to recover them or point --journal-dir \
                             at a fresh directory",
                            dir.display(),
                            records.len(),
                        ),
                    ));
                }
                pending = Some(records);
                Some(journal)
            }
            None => None,
        };

        let engine = Arc::new(Engine::with_journal(
            config.engine_config(),
            journal,
            faults,
        ));
        if let Some(records) = pending {
            if !records.is_empty() {
                let report = engine.recover(replay(&records), config.resume_policy);
                eprintln!(
                    "journal: recovered {} done, {} requeued, {} re-run, {} interrupted \
                     ({} cache entries rehydrated)",
                    report.completed,
                    report.requeued,
                    report.reran,
                    report.interrupted,
                    report.cache_rehydrated,
                );
                recovery = Some(report);
            }
        }

        let workers = (0..config.workers.max(1))
            .map(|i| {
                let engine = Arc::clone(&engine);
                std::thread::Builder::new()
                    .name(format!("amsplace-worker-{i}"))
                    .spawn(move || engine.worker_loop())
                    .expect("spawn worker")
            })
            .collect();

        let accept = {
            let engine = Arc::clone(&engine);
            let limits = config.limits();
            std::thread::Builder::new()
                .name("amsplace-accept".to_string())
                .spawn(move || accept_loop(&listener, &engine, addr, limits))
                .expect("spawn accept loop")
        };

        Ok(Server {
            addr,
            engine,
            accept: Some(accept),
            workers,
            recovery,
        })
    }

    /// The bound address (useful with port `0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared engine — test hooks and in-process submission.
    pub fn engine(&self) -> &Arc<Engine> {
        &self.engine
    }

    /// What startup recovery did, when a journal was replayed.
    pub fn recovery(&self) -> Option<RecoveryReport> {
        self.recovery
    }

    /// Stops accepting and wakes the workers, as if `/v1/shutdown` had
    /// been posted.
    pub fn shutdown(&self) {
        self.engine.stop();
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
    }

    /// Joins the accept loop and every worker. Call after
    /// [`Server::shutdown`] (or after a client posted `/v1/shutdown`).
    pub fn join(mut self) {
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

fn accept_loop(listener: &TcpListener, engine: &Arc<Engine>, addr: SocketAddr, limits: Limits) {
    for stream in listener.incoming() {
        if !engine.running.load(Ordering::Relaxed) {
            break;
        }
        let Ok(mut stream) = stream else { continue };
        let fate = engine.faults.connection_fate();
        if fate == ConnFate::Drop {
            continue; // dropping the stream resets the peer
        }
        let engine = Arc::clone(engine);
        let _ = std::thread::Builder::new()
            .name("amsplace-conn".to_string())
            .spawn(move || {
                if let ConnFate::DelayThenServe(delay) = fate {
                    std::thread::sleep(delay);
                }
                let _ = stream.set_write_timeout(limits.read_timeout);
                match read_request(&mut stream, &limits) {
                    Ok(request) => {
                        let (status, body) = route(&engine, &request);
                        let _ =
                            write_response_with(&mut stream, status, &retry_after(status), &body);
                        if request.method == "POST" && request.path == "/v1/shutdown" {
                            // Response is on the wire; now unblock our own
                            // accept loop so the server can be joined.
                            let _ = TcpStream::connect(addr);
                        }
                    }
                    Err(e) => {
                        // A peer that broke framing gets no response; a
                        // slow, oversized, or length-less one gets told
                        // exactly why.
                        if let Some(status) = e.status() {
                            let _ = write_response_with(
                                &mut stream,
                                status,
                                &[],
                                &error_body(&e.message()),
                            );
                        }
                    }
                }
            });
    }
}

/// The `Retry-After` hint for backpressure statuses: a saturated queue
/// drains in about a second of solve time; a degraded server needs a
/// little longer to fall back under its high-water mark.
fn retry_after(status: u16) -> Vec<(&'static str, String)> {
    match status {
        429 => vec![("Retry-After", "1".to_string())],
        503 => vec![("Retry-After", "2".to_string())],
        _ => Vec::new(),
    }
}

/// Maps one request to `(status, body)`. Pure except for the engine.
fn route(engine: &Engine, request: &Request) -> (u16, Json) {
    let path: Vec<&str> = request.path.split('/').filter(|s| !s.is_empty()).collect();
    match (request.method.as_str(), path.as_slice()) {
        ("GET", ["v1", "healthz"]) => (
            200,
            Json::obj([
                ("schema_version", Json::uint(SCHEMA_VERSION)),
                ("ok", Json::Bool(true)),
                ("degraded", Json::Bool(engine.degraded())),
            ]),
        ),
        ("GET", ["v1", "stats"]) => (200, engine.stats()),
        ("POST", ["v1", "jobs"]) => submit(engine, request),
        ("GET", ["v1", "jobs", id]) => match parse_id(id).and_then(|id| engine.job_view(id)) {
            Some(view) => (200, view),
            None => (404, error_body("no such job")),
        },
        ("POST", ["v1", "jobs", id, "cancel"]) => {
            match parse_id(id).and_then(|id| engine.cancel(id)) {
                Some(status) => (
                    200,
                    Json::obj([
                        ("schema_version", Json::uint(SCHEMA_VERSION)),
                        ("status", Json::str(status.name())),
                    ]),
                ),
                None => (404, error_body("no such job")),
            }
        }
        ("POST", ["v1", "shutdown"]) => {
            engine.stop();
            (
                200,
                Json::obj([
                    ("schema_version", Json::uint(SCHEMA_VERSION)),
                    ("stopping", Json::Bool(true)),
                ]),
            )
        }
        (_, ["v1", ..]) => (405, error_body("method not allowed")),
        _ => (404, error_body("unknown endpoint")),
    }
}

fn submit(engine: &Engine, request: &Request) -> (u16, Json) {
    let doc = match request.json() {
        Ok(doc) => doc,
        Err(msg) => return (400, error_body(&msg)),
    };
    let place_request = match PlaceRequest::from_json(&doc) {
        Ok(r) => r,
        Err(msg) => return (400, error_body(&msg)),
    };
    match engine.submit(place_request) {
        Submitted::Queued(id) => (
            202,
            Json::obj([
                ("schema_version", Json::uint(SCHEMA_VERSION)),
                ("job_id", Json::uint(id)),
                ("status", Json::str("queued")),
                ("deduplicated", Json::Bool(false)),
            ]),
        ),
        Submitted::Deduplicated(id) => {
            let status = engine
                .job_view(id)
                .and_then(|view| {
                    view.field("status")
                        .and_then(Json::as_str)
                        .map(str::to_string)
                })
                .unwrap_or_else(|| "queued".to_string());
            (
                202,
                Json::obj([
                    ("schema_version", Json::uint(SCHEMA_VERSION)),
                    ("job_id", Json::uint(id)),
                    ("status", Json::str(&status)),
                    ("deduplicated", Json::Bool(true)),
                ]),
            )
        }
        Submitted::Saturated => (429, error_body("job queue is full, retry later")),
        Submitted::Shed => (
            503,
            error_body("server is degraded and shedding cold solves, retry later"),
        ),
    }
}

fn parse_id(raw: &str) -> Option<u64> {
    raw.parse().ok()
}

fn error_body(message: &str) -> Json {
    Json::obj([
        ("schema_version", Json::uint(SCHEMA_VERSION)),
        ("error", Json::str(message)),
    ])
}

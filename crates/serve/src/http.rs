//! A deliberately minimal HTTP/1.1 subset over [`std::net::TcpStream`]:
//! one request per connection (`Connection: close`), bodies delimited by
//! `Content-Length`, everything JSON. Just enough wire protocol for the
//! placement service and its loopback clients — not a general web server.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpStream;

use ams_netlist::json::Json;

/// Upper bound on a request body (a large inline design is ~100 KiB;
/// this leaves two orders of magnitude of headroom).
pub const MAX_BODY: usize = 16 * 1024 * 1024;
/// Upper bound on the request line plus headers.
const MAX_HEAD: usize = 64 * 1024;

/// A parsed request: method, path, and the raw body.
#[derive(Debug)]
pub struct Request {
    pub method: String,
    pub path: String,
    pub body: Vec<u8>,
}

impl Request {
    /// The body parsed as JSON, or an explanation of why it isn't.
    pub fn json(&self) -> Result<Json, String> {
        let text = std::str::from_utf8(&self.body).map_err(|_| "body is not UTF-8".to_string())?;
        if text.trim().is_empty() {
            return Ok(Json::Null);
        }
        Json::parse(text).map_err(|e| format!("body is not valid JSON: {e}"))
    }
}

/// Reads one request from the stream. Returns `Err` on malformed framing
/// (the connection is then dropped without a response — the peer is not
/// speaking HTTP).
pub fn read_request(stream: &mut TcpStream) -> io::Result<Request> {
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line)?;
    let mut parts = line.split_whitespace();
    let (method, path) = match (parts.next(), parts.next()) {
        (Some(m), Some(p)) => (m.to_string(), p.to_string()),
        _ => return Err(bad("malformed request line")),
    };

    let mut content_length = 0usize;
    let mut head_bytes = line.len();
    loop {
        let mut header = String::new();
        reader.read_line(&mut header)?;
        head_bytes += header.len();
        if head_bytes > MAX_HEAD {
            return Err(bad("headers too large"));
        }
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| bad("bad content-length"))?;
            }
        }
    }
    if content_length > MAX_BODY {
        return Err(bad("body too large"));
    }

    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    Ok(Request { method, path, body })
}

/// Writes a JSON response with the given status code and closes out the
/// exchange (`Connection: close`).
pub fn write_response(stream: &mut TcpStream, status: u16, body: &Json) -> io::Result<()> {
    let text = body.pretty();
    let head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        reason(status),
        text.len(),
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(text.as_bytes())?;
    stream.flush()
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

fn bad(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    #[test]
    fn round_trips_a_request_and_response() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let req = read_request(&mut stream).unwrap();
            assert_eq!(req.method, "POST");
            assert_eq!(req.path, "/v1/echo");
            let doc = req.json().unwrap();
            write_response(&mut stream, 200, &doc).unwrap();
        });

        let mut stream = TcpStream::connect(addr).unwrap();
        let body = r#"{"hello": 1}"#;
        let head = format!(
            "POST /v1/echo HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        );
        stream.write_all(head.as_bytes()).unwrap();
        let mut reply = String::new();
        stream.read_to_string(&mut reply).unwrap();
        assert!(reply.starts_with("HTTP/1.1 200 OK\r\n"), "{reply}");
        assert!(reply.contains(r#""hello": 1"#), "{reply}");
        server.join().unwrap();
    }
}

//! A deliberately minimal HTTP/1.1 subset over [`std::net::TcpStream`]:
//! one request per connection (`Connection: close`), bodies delimited by
//! `Content-Length`, everything JSON. Just enough wire protocol for the
//! placement service and its loopback clients — not a general web server.
//!
//! The read side is hardened against hostile or broken peers: a
//! [`Limits`] caps the body size and bounds how long a connection may
//! dribble bytes, so a slow-loris or an oversized payload costs one
//! thread a bounded amount of time and memory, never a wedge. Each
//! failure mode maps to its own [`ReadError`] so the server can answer
//! with the right status (408/411/413/431) instead of silently dropping.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use ams_netlist::json::Json;

/// Default upper bound on a request body (a large inline design is
/// ~100 KiB; this leaves two orders of magnitude of headroom).
pub const MAX_BODY: usize = 16 * 1024 * 1024;
/// Upper bound on the request line plus headers.
const MAX_HEAD: usize = 64 * 1024;
/// Default per-connection read deadline.
pub const DEFAULT_READ_TIMEOUT: Duration = Duration::from_secs(10);

/// Per-connection protections the accept loop applies while reading.
#[derive(Clone, Copy, Debug)]
pub struct Limits {
    /// Reject bodies larger than this with [`ReadError::BodyTooLarge`].
    pub max_body: usize,
    /// Socket read deadline; a peer that stalls longer gets
    /// [`ReadError::TimedOut`]. `None` waits forever (tests only).
    pub read_timeout: Option<Duration>,
}

impl Default for Limits {
    fn default() -> Limits {
        Limits {
            max_body: MAX_BODY,
            read_timeout: Some(DEFAULT_READ_TIMEOUT),
        }
    }
}

/// Why a request could not be read. Variants with a
/// [`status`](ReadError::status) deserve an HTTP error response; the
/// rest mean the peer is not speaking HTTP and the connection is simply
/// dropped.
#[derive(Debug)]
pub enum ReadError {
    /// Not HTTP (bad request line / framing): drop without a response.
    Malformed(&'static str),
    /// The peer stalled past the read deadline → 408.
    TimedOut,
    /// Request line + headers exceeded the 64 KiB head cap → 431.
    HeadersTooLarge,
    /// A body-bearing method without `Content-Length` → 411 (this
    /// protocol subset has no chunked encoding).
    LengthRequired,
    /// Declared or actual body over [`Limits::max_body`] → 413.
    BodyTooLarge,
    /// Transport failure mid-read: drop.
    Io(io::Error),
}

impl ReadError {
    /// The HTTP status this failure deserves, or `None` when the peer
    /// gets no response at all.
    pub fn status(&self) -> Option<u16> {
        match self {
            ReadError::TimedOut => Some(408),
            ReadError::LengthRequired => Some(411),
            ReadError::BodyTooLarge => Some(413),
            ReadError::HeadersTooLarge => Some(431),
            ReadError::Malformed(_) | ReadError::Io(_) => None,
        }
    }

    /// Human-readable explanation for the error body.
    pub fn message(&self) -> String {
        match self {
            ReadError::Malformed(msg) => (*msg).to_string(),
            ReadError::TimedOut => "request read timed out".to_string(),
            ReadError::HeadersTooLarge => "headers too large".to_string(),
            ReadError::LengthRequired => "Content-Length required".to_string(),
            ReadError::BodyTooLarge => "request body too large".to_string(),
            ReadError::Io(e) => format!("read failed: {e}"),
        }
    }
}

fn classify_io(e: io::Error) -> ReadError {
    match e.kind() {
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut => ReadError::TimedOut,
        _ => ReadError::Io(e),
    }
}

/// A parsed request: method, path, and the raw body.
#[derive(Debug)]
pub struct Request {
    pub method: String,
    pub path: String,
    pub body: Vec<u8>,
}

impl Request {
    /// The body parsed as JSON, or an explanation of why it isn't.
    pub fn json(&self) -> Result<Json, String> {
        let text = std::str::from_utf8(&self.body).map_err(|_| "body is not UTF-8".to_string())?;
        if text.trim().is_empty() {
            return Ok(Json::Null);
        }
        Json::parse(text).map_err(|e| format!("body is not valid JSON: {e}"))
    }
}

/// Reads one request from the stream under `limits`. The stream's read
/// timeout is armed for the whole exchange, so a peer that sends one
/// byte per minute hits [`ReadError::TimedOut`] instead of pinning the
/// thread.
pub fn read_request(stream: &mut TcpStream, limits: &Limits) -> Result<Request, ReadError> {
    stream
        .set_read_timeout(limits.read_timeout)
        .map_err(ReadError::Io)?;
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line).map_err(classify_io)?;
    let mut parts = line.split_whitespace();
    let (method, path) = match (parts.next(), parts.next()) {
        (Some(m), Some(p)) => (m.to_string(), p.to_string()),
        _ => return Err(ReadError::Malformed("malformed request line")),
    };

    let mut content_length: Option<usize> = None;
    let mut head_bytes = line.len();
    loop {
        let mut header = String::new();
        reader.read_line(&mut header).map_err(classify_io)?;
        if header.is_empty() {
            // EOF before the blank line: torn request.
            return Err(ReadError::Malformed("truncated headers"));
        }
        head_bytes += header.len();
        if head_bytes > MAX_HEAD {
            return Err(ReadError::HeadersTooLarge);
        }
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                let parsed = value
                    .trim()
                    .parse()
                    .map_err(|_| ReadError::Malformed("bad content-length"))?;
                content_length = Some(parsed);
            }
        }
    }

    let content_length = match content_length {
        Some(n) => n,
        // A body-bearing method must declare its length up front —
        // otherwise "read to EOF" would let any peer stream unbounded
        // bytes into memory.
        None if method == "POST" || method == "PUT" || method == "PATCH" => {
            return Err(ReadError::LengthRequired)
        }
        None => 0,
    };
    if content_length > limits.max_body {
        return Err(ReadError::BodyTooLarge);
    }

    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).map_err(classify_io)?;
    Ok(Request { method, path, body })
}

/// Writes a JSON response with the given status code and closes out the
/// exchange (`Connection: close`).
pub fn write_response(stream: &mut TcpStream, status: u16, body: &Json) -> io::Result<()> {
    write_response_with(stream, status, &[], body)
}

/// [`write_response`] plus extra headers (e.g. `Retry-After`).
pub fn write_response_with(
    stream: &mut TcpStream,
    status: u16,
    extra_headers: &[(&str, String)],
    body: &Json,
) -> io::Result<()> {
    let text = body.pretty();
    let mut head = format!("HTTP/1.1 {status} {}\r\n", reason(status));
    for (name, value) in extra_headers {
        head.push_str(&format!("{name}: {value}\r\n"));
    }
    head.push_str(&format!(
        "Content-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        text.len(),
    ));
    stream.write_all(head.as_bytes())?;
    stream.write_all(text.as_bytes())?;
    stream.flush()
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        411 => "Length Required",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    fn serve_one(
        limits: Limits,
        handler: impl FnOnce(Result<Request, ReadError>, &mut TcpStream) + Send + 'static,
    ) -> (std::net::SocketAddr, std::thread::JoinHandle<()>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let handle = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let result = read_request(&mut stream, &limits);
            handler(result, &mut stream);
        });
        (addr, handle)
    }

    #[test]
    fn round_trips_a_request_and_response() {
        let (addr, server) = serve_one(Limits::default(), |result, stream| {
            let req = result.unwrap();
            assert_eq!(req.method, "POST");
            assert_eq!(req.path, "/v1/echo");
            let doc = req.json().unwrap();
            write_response(stream, 200, &doc).unwrap();
        });

        let mut stream = TcpStream::connect(addr).unwrap();
        let body = r#"{"hello": 1}"#;
        let head = format!(
            "POST /v1/echo HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        );
        stream.write_all(head.as_bytes()).unwrap();
        let mut reply = String::new();
        stream.read_to_string(&mut reply).unwrap();
        assert!(reply.starts_with("HTTP/1.1 200 OK\r\n"), "{reply}");
        assert!(reply.contains(r#""hello": 1"#), "{reply}");
        server.join().unwrap();
    }

    #[test]
    fn missing_length_posts_get_411() {
        let (addr, server) = serve_one(Limits::default(), |result, _| {
            let err = result.expect_err("no content-length");
            assert_eq!(err.status(), Some(411));
        });
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .write_all(b"POST /v1/jobs HTTP/1.1\r\nHost: x\r\n\r\n")
            .unwrap();
        server.join().unwrap();
        // A GET without a length is fine — there is no body to bound.
        let (addr, server) = serve_one(Limits::default(), |result, _| {
            assert!(result.unwrap().body.is_empty());
        });
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .write_all(b"GET /v1/stats HTTP/1.1\r\nHost: x\r\n\r\n")
            .unwrap();
        server.join().unwrap();
    }

    #[test]
    fn oversized_bodies_get_413_without_allocation() {
        let limits = Limits {
            max_body: 1024,
            ..Limits::default()
        };
        let (addr, server) = serve_one(limits, |result, _| {
            let err = result.expect_err("over the body cap");
            assert_eq!(err.status(), Some(413));
        });
        let mut stream = TcpStream::connect(addr).unwrap();
        // Declares 1 GiB but never needs to send it: the declared length
        // alone is rejected before any body allocation.
        stream
            .write_all(b"POST /v1/jobs HTTP/1.1\r\nContent-Length: 1073741824\r\n\r\n")
            .unwrap();
        server.join().unwrap();
    }

    #[test]
    fn slow_loris_times_out_as_408() {
        let limits = Limits {
            read_timeout: Some(Duration::from_millis(100)),
            ..Limits::default()
        };
        let (addr, server) = serve_one(limits, |result, _| {
            let err = result.expect_err("peer stalled");
            assert_eq!(err.status(), Some(408), "{err:?}");
        });
        let mut stream = TcpStream::connect(addr).unwrap();
        // Send half a request line and stall past the deadline.
        stream.write_all(b"POST /v1/jo").unwrap();
        std::thread::sleep(Duration::from_millis(400));
        server.join().unwrap();
        drop(stream);
    }

    #[test]
    fn retry_after_header_is_emitted() {
        let (addr, server) = serve_one(Limits::default(), |result, stream| {
            let _ = result.unwrap();
            write_response_with(
                stream,
                429,
                &[("Retry-After", "1".to_string())],
                &Json::obj([]),
            )
            .unwrap();
        });
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .write_all(b"GET /v1/stats HTTP/1.1\r\nHost: x\r\n\r\n")
            .unwrap();
        let mut reply = String::new();
        stream.read_to_string(&mut reply).unwrap();
        assert!(reply.starts_with("HTTP/1.1 429 "), "{reply}");
        assert!(reply.contains("Retry-After: 1\r\n"), "{reply}");
        server.join().unwrap();
    }
}

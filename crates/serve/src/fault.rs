//! Fault injection for the chaos suite. Hidden from docs and inert
//! unless explicitly armed — production configuration never constructs
//! a non-empty plan.
//!
//! A plan is parsed from a comma-separated spec, e.g.
//! `kill:start:1,conn-drop:2`:
//!
//! | directive        | effect                                                        |
//! |------------------|---------------------------------------------------------------|
//! | `kill:submit:N`  | abort the process right after the Nth submit journal barrier  |
//! | `kill:start:N`   | …after the Nth start barrier                                  |
//! | `kill:finish:N`  | …after the Nth finish barrier                                 |
//! | `conn-drop:N`    | drop every Nth accepted connection without reading it         |
//! | `conn-delay:MS`  | sleep MS ms before serving each accepted connection           |
//!
//! Kills fire *after* the matching record is durably on disk (the fsync
//! returned), which is exactly the contract the recovery path promises:
//! anything journaled survives, anything not journaled was never
//! acknowledged. `abort()` skips destructors and flushes — the closest
//! std-only stand-in for `SIGKILL`.
//!
//! The CLI arms the plan from the `AMSPLACE_FAULT` environment
//! variable; in-process tests construct one directly and hand it to
//! `ServeConfig`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// A journal durability barrier — the instants a crash is interesting.
#[doc(hidden)]
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Barrier {
    /// A `Submitted` record hit disk.
    Submit,
    /// A `Started` record hit disk.
    Start,
    /// A `Finished` record hit disk.
    Finish,
}

/// An armed fault plan. [`FaultPlan::default`] injects nothing.
#[doc(hidden)]
#[derive(Debug, Default)]
pub struct FaultPlan {
    kill_at: Option<(Barrier, u64)>,
    barrier_hits: AtomicU64,
    conn_drop_every: Option<u64>,
    conn_delay: Option<Duration>,
    conns: AtomicU64,
}

/// What the accept loop should do with a freshly accepted connection.
#[doc(hidden)]
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ConnFate {
    /// Serve it normally.
    Serve,
    /// Close it without reading a byte (peer sees a reset/EOF).
    Drop,
    /// Sleep first, then serve.
    DelayThenServe(Duration),
}

impl FaultPlan {
    /// Parses a plan from the spec grammar above; unknown or malformed
    /// directives are ignored (chaos tooling must never take the server
    /// down by typo).
    pub fn parse(spec: &str) -> FaultPlan {
        let mut plan = FaultPlan::default();
        for directive in spec.split(',').map(str::trim).filter(|s| !s.is_empty()) {
            let parts: Vec<&str> = directive.split(':').collect();
            match parts.as_slice() {
                ["kill", barrier, n] => {
                    let barrier = match *barrier {
                        "submit" => Barrier::Submit,
                        "start" => Barrier::Start,
                        "finish" => Barrier::Finish,
                        _ => continue,
                    };
                    if let Ok(n) = n.parse::<u64>() {
                        if n > 0 {
                            plan.kill_at = Some((barrier, n));
                        }
                    }
                }
                ["conn-drop", n] => {
                    if let Ok(n) = n.parse::<u64>() {
                        if n > 0 {
                            plan.conn_drop_every = Some(n);
                        }
                    }
                }
                ["conn-delay", ms] => {
                    if let Ok(ms) = ms.parse::<u64>() {
                        plan.conn_delay = Some(Duration::from_millis(ms));
                    }
                }
                _ => {}
            }
        }
        plan
    }

    /// The plan the `AMSPLACE_FAULT` environment variable describes;
    /// empty when unset.
    pub fn from_env() -> FaultPlan {
        match std::env::var("AMSPLACE_FAULT") {
            Ok(spec) => FaultPlan::parse(&spec),
            Err(_) => FaultPlan::default(),
        }
    }

    /// Whether any directive is armed.
    pub fn is_armed(&self) -> bool {
        self.kill_at.is_some() || self.conn_drop_every.is_some() || self.conn_delay.is_some()
    }

    /// Called right after a journal record of this kind is durably on
    /// disk. Aborts the process when the armed kill count is reached.
    pub fn at_barrier(&self, barrier: Barrier) {
        let Some((kind, n)) = self.kill_at else {
            return;
        };
        if kind != barrier {
            return;
        }
        let hit = self.barrier_hits.fetch_add(1, Ordering::Relaxed) + 1;
        if hit == n {
            eprintln!("fault injection: aborting at {barrier:?} barrier #{hit}");
            std::process::abort();
        }
    }

    /// Called once per accepted connection.
    pub fn connection_fate(&self) -> ConnFate {
        let n = self.conns.fetch_add(1, Ordering::Relaxed) + 1;
        if let Some(every) = self.conn_drop_every {
            if n.is_multiple_of(every) {
                return ConnFate::Drop;
            }
        }
        match self.conn_delay {
            Some(delay) => ConnFate::DelayThenServe(delay),
            None => ConnFate::Serve,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_directives_and_ignores_garbage() {
        let plan = FaultPlan::parse("kill:start:2, conn-drop:3 ,conn-delay:40,wat:7,kill:bogus:1");
        assert_eq!(plan.kill_at, Some((Barrier::Start, 2)));
        assert_eq!(plan.conn_drop_every, Some(3));
        assert_eq!(plan.conn_delay, Some(Duration::from_millis(40)));
        assert!(plan.is_armed());
        assert!(!FaultPlan::parse("").is_armed());
        assert!(!FaultPlan::parse("kill:start:0,conn-drop:0").is_armed());
    }

    #[test]
    fn connection_fates_cycle_deterministically() {
        let plan = FaultPlan::parse("conn-drop:2");
        assert_eq!(plan.connection_fate(), ConnFate::Serve);
        assert_eq!(plan.connection_fate(), ConnFate::Drop);
        assert_eq!(plan.connection_fate(), ConnFate::Serve);
        assert_eq!(plan.connection_fate(), ConnFate::Drop);

        let delay = FaultPlan::parse("conn-delay:10");
        assert_eq!(
            delay.connection_fate(),
            ConnFate::DelayThenServe(Duration::from_millis(10))
        );
    }

    #[test]
    fn mismatched_barriers_never_fire() {
        // If this aborted, the test process would die — reaching the end
        // is the assertion.
        let plan = FaultPlan::parse("kill:finish:1");
        plan.at_barrier(Barrier::Submit);
        plan.at_barrier(Barrier::Start);
        let unarmed = FaultPlan::default();
        unarmed.at_barrier(Barrier::Finish);
    }
}

//! The job engine: a bounded FIFO queue drained by a worker pool, an
//! exact-result cache, and a warm-solver pool.
//!
//! ## The two cache levels
//!
//! 1. **Exact cache** — keyed by `(design_hash, options_hash)` over the
//!    canonical request JSON. A hit returns the stored
//!    [`PlaceResponse`] verbatim (marked `cached: true`) without
//!    touching a solver, so identical requests are bit-identical and
//!    free. Only deadline-free `Done` results are stored: a
//!    deadline-degraded anytime placement depends on wall clock and must
//!    not be replayed as authoritative.
//! 2. **Warm-solver pool** — keyed by `design_hash` alone. Each entry
//!    owns a live [`Placer`] built with `SolverConfig::reusable`. A new
//!    job for the same design goes through [`Placer::rebase`]: the
//!    incoming configuration is scratch-encoded, its
//!    [`ConstraintStore`](ams_place::ir) is diffed against the live one,
//!    and when only content-relowerable families differ (λ_th moves, a
//!    window reshapes) just those families' selector groups are retired
//!    and re-lowered — the SAT core keeps its learnt clauses and saved
//!    phases. Structural deltas fall back to a cold build.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use ams_netlist::json::Json;
use ams_netlist::Design;
use ams_place::api::{
    self, ApiError, ErrorKind, JobStatus, PlaceRequest, PlaceResponse, SCHEMA_VERSION,
};
use ams_place::{PlaceError, Placer, WarmReuse};

/// A live reusable solver pinned to one design.
///
/// [`Placer`] borrows its design, but pool entries must own theirs — so
/// the design lives in a stable heap allocation (`Box`) and the placer
/// borrows it through a pointer the compiler treats as `'static`. The
/// arrangement is sound because the box is never mutated or dropped
/// while the placer lives: field order puts `placer` first, so it drops
/// before `design`, and no method hands out the box.
struct WarmSolver {
    placer: Option<Placer<'static>>,
    #[allow(dead_code)] // owned for the placer's sake, never read
    design: Box<Design>,
}

impl WarmSolver {
    fn new(design: Design, config: ams_place::PlacerConfig) -> Result<WarmSolver, PlaceError> {
        let design = Box::new(design);
        // SAFETY: the reference points into a Box whose allocation
        // outlives the placer (drop order: `placer` field first) and is
        // never moved out of or mutated while the placer holds it.
        let pinned: &'static Design = unsafe { &*std::ptr::addr_of!(*design) };
        let placer = Placer::new(pinned, config)?;
        Ok(WarmSolver {
            placer: Some(placer),
            design,
        })
    }

    fn placer(&mut self) -> &mut Placer<'static> {
        self.placer.as_mut().expect("placer present until drop")
    }
}

/// One submitted job as the registry tracks it.
struct JobRecord {
    design: String,
    status: JobStatus,
    cancel: Arc<AtomicBool>,
    /// Present while the job waits in the queue; the worker takes it.
    request: Option<Box<PlaceRequest>>,
    /// Present once the job is terminal.
    response: Option<PlaceResponse>,
}

/// Registry + queue behind one lock (workers and handlers touch both
/// together, a single mutex keeps the ordering trivial).
struct State {
    jobs: HashMap<u64, JobRecord>,
    queue: VecDeque<u64>,
    next_id: u64,
}

/// Monotonic service counters, exposed by `GET /v1/stats` and consumed
/// by the throughput bench.
#[derive(Default)]
pub struct Counters {
    pub submitted: AtomicU64,
    pub completed: AtomicU64,
    pub rejected: AtomicU64,
    pub exact_hits: AtomicU64,
    pub warm_identical: AtomicU64,
    pub warm_relowered: AtomicU64,
    pub cold_builds: AtomicU64,
}

/// Everything the accept loop, handlers, and workers share.
pub struct Engine {
    state: Mutex<State>,
    work: Condvar,
    exact: Mutex<HashMap<(u64, u64), PlaceResponse>>,
    warm: Mutex<HashMap<u64, WarmSolver>>,
    pub counters: Counters,
    pub running: AtomicBool,
    queue_cap: usize,
    exact_cap: usize,
    warm_cap: usize,
}

/// What `POST /v1/jobs` hands back.
pub enum Submitted {
    /// Accepted: the job id to poll.
    Queued(u64),
    /// The bounded queue is full — retry later (HTTP 429).
    Saturated,
}

impl Engine {
    pub fn new(queue_cap: usize, exact_cap: usize, warm_cap: usize) -> Engine {
        Engine {
            state: Mutex::new(State {
                jobs: HashMap::new(),
                queue: VecDeque::new(),
                next_id: 1,
            }),
            work: Condvar::new(),
            exact: Mutex::new(HashMap::new()),
            warm: Mutex::new(HashMap::new()),
            counters: Counters::default(),
            running: AtomicBool::new(true),
            queue_cap,
            exact_cap,
            warm_cap,
        }
    }

    /// Enqueues a request; rejects when the queue is at capacity.
    pub fn submit(&self, request: PlaceRequest) -> Submitted {
        let mut st = self.state.lock().expect("engine lock");
        if st.queue.len() >= self.queue_cap {
            self.counters.rejected.fetch_add(1, Ordering::Relaxed);
            return Submitted::Saturated;
        }
        let id = st.next_id;
        st.next_id += 1;
        st.jobs.insert(
            id,
            JobRecord {
                design: request.design.name().to_string(),
                status: JobStatus::Queued,
                cancel: Arc::new(AtomicBool::new(false)),
                request: Some(Box::new(request)),
                response: None,
            },
        );
        st.queue.push_back(id);
        self.counters.submitted.fetch_add(1, Ordering::Relaxed);
        drop(st);
        self.work.notify_one();
        Submitted::Queued(id)
    }

    /// The poll document for `GET /v1/jobs/<id>`; `None` for unknown ids.
    pub fn job_view(&self, id: u64) -> Option<Json> {
        let st = self.state.lock().expect("engine lock");
        let rec = st.jobs.get(&id)?;
        Some(Json::obj([
            ("schema_version", Json::uint(SCHEMA_VERSION)),
            ("job_id", Json::uint(id)),
            ("design", Json::str(&rec.design)),
            ("status", Json::str(rec.status.name())),
            (
                "response",
                rec.response
                    .as_ref()
                    .map(PlaceResponse::to_json)
                    .unwrap_or(Json::Null),
            ),
        ]))
    }

    /// Cancels a job: a queued job terminates immediately, a running job
    /// has its stop flag raised (the solver exits at its next conflict
    /// boundary). Returns the status after the cancel, or `None` for
    /// unknown ids.
    pub fn cancel(&self, id: u64) -> Option<JobStatus> {
        let mut st = self.state.lock().expect("engine lock");
        let rec = st.jobs.get_mut(&id)?;
        match rec.status {
            JobStatus::Queued => {
                rec.status = JobStatus::Cancelled;
                rec.request = None;
                let design = rec.design.clone();
                rec.response = Some(cancelled_while_queued(&design));
            }
            JobStatus::Running => rec.cancel.store(true, Ordering::Relaxed),
            _ => {}
        }
        Some(rec.status)
    }

    /// The `GET /v1/stats` document.
    pub fn stats(&self) -> Json {
        let st = self.state.lock().expect("engine lock");
        let queue_depth = st.queue.len() as u64;
        drop(st);
        let warm_pool = self.warm.lock().expect("warm lock").len() as u64;
        let c = &self.counters;
        let n = |a: &AtomicU64| Json::uint(a.load(Ordering::Relaxed));
        Json::obj([
            ("schema_version", Json::uint(SCHEMA_VERSION)),
            ("submitted", n(&c.submitted)),
            ("completed", n(&c.completed)),
            ("rejected", n(&c.rejected)),
            ("exact_hits", n(&c.exact_hits)),
            ("warm_identical", n(&c.warm_identical)),
            ("warm_relowered", n(&c.warm_relowered)),
            ("cold_builds", n(&c.cold_builds)),
            ("queue_depth", Json::uint(queue_depth)),
            ("warm_pool", Json::uint(warm_pool)),
        ])
    }

    /// Wakes every worker so they observe `running == false` and exit.
    pub fn stop(&self) {
        self.running.store(false, Ordering::Relaxed);
        self.work.notify_all();
    }

    /// One worker thread: drain the queue until the engine stops.
    pub fn worker_loop(&self) {
        loop {
            let (id, request, cancel) = {
                let mut st = self.state.lock().expect("engine lock");
                loop {
                    if !self.running.load(Ordering::Relaxed) {
                        return;
                    }
                    if let Some(id) = st.queue.pop_front() {
                        let rec = st.jobs.get_mut(&id).expect("queued job is registered");
                        if rec.status != JobStatus::Queued {
                            continue; // cancelled while waiting
                        }
                        rec.status = JobStatus::Running;
                        let request = rec.request.take().expect("queued job holds its request");
                        break (id, request, rec.cancel.clone());
                    }
                    st = self.work.wait(st).expect("engine lock");
                }
            };

            let response = self.run_one(&request, &cancel);
            let status = response.status;
            let mut st = self.state.lock().expect("engine lock");
            if let Some(rec) = st.jobs.get_mut(&id) {
                rec.status = status;
                rec.response = Some(response);
            }
            drop(st);
            self.counters.completed.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Executes one placement job through the cache hierarchy.
    fn run_one(&self, request: &PlaceRequest, cancel: &Arc<AtomicBool>) -> PlaceResponse {
        let design = request.effective_design();
        let dh = api::design_hash(&design);
        let oh = api::options_hash(&request.options);

        if let Some(hit) = self.exact.lock().expect("exact lock").get(&(dh, oh)) {
            self.counters.exact_hits.fetch_add(1, Ordering::Relaxed);
            let mut response = hit.clone();
            response.cached = true;
            return response;
        }

        let mut config = request.options.to_config();
        config.solver.reusable = true;
        // Per-job knobs are explicit-only: the server's environment must
        // not leak into jobs, or identical requests would stop being
        // reproducible across deployments.
        config.solver = config.solver.resolve(request.options.overrides());

        let mut solver = match self.checkout_solver(dh, &design, config) {
            Ok(solver) => solver,
            Err(e) => return PlaceResponse::failure(design.name(), &e),
        };

        solver.placer().set_cancel_flag(Some(cancel.clone()));
        let result = solver.placer().place_mut();
        solver.placer().set_cancel_flag(None);

        let response = match &result {
            Ok(placement) => PlaceResponse::success(&design, placement),
            Err(e) => PlaceResponse::failure(design.name(), e),
        };

        // Return the solver to the pool — it stays consistent even after
        // a cancelled or degraded job (assumption-based solving never
        // poisons the clause database).
        let mut warm = self.warm.lock().expect("warm lock");
        if warm.len() < self.warm_cap || warm.contains_key(&dh) {
            warm.insert(dh, solver);
        }
        drop(warm);

        if response.status == JobStatus::Done && request.options.deadline_ms.is_none() {
            let mut exact = self.exact.lock().expect("exact lock");
            if exact.len() < self.exact_cap {
                exact.insert((dh, oh), response.clone());
            }
        }
        response
    }

    /// Fetches (and rebases) the pooled solver for this design, or
    /// builds a cold one. The entry is removed from the pool while the
    /// job runs; a concurrent job on the same design builds its own
    /// solver and the last one back wins the pool slot.
    fn checkout_solver(
        &self,
        dh: u64,
        design: &Design,
        config: ams_place::PlacerConfig,
    ) -> Result<WarmSolver, PlaceError> {
        let pooled = self.warm.lock().expect("warm lock").remove(&dh);
        if let Some(mut solver) = pooled {
            match solver.placer().rebase(config.clone()) {
                Ok(WarmReuse::Identical) => {
                    self.counters.warm_identical.fetch_add(1, Ordering::Relaxed);
                    return Ok(solver);
                }
                Ok(WarmReuse::Relowered { .. }) => {
                    self.counters.warm_relowered.fetch_add(1, Ordering::Relaxed);
                    return Ok(solver);
                }
                Ok(WarmReuse::Structural) => {} // fall through to a cold build
                Err(e) => return Err(e),
            }
        }
        self.counters.cold_builds.fetch_add(1, Ordering::Relaxed);
        WarmSolver::new(design.clone(), config)
    }
}

/// The terminal response for a job cancelled before a worker picked it
/// up: no solver ever ran, so there is no [`PlaceError`] to convert.
fn cancelled_while_queued(design: &str) -> PlaceResponse {
    PlaceResponse {
        schema_version: SCHEMA_VERSION,
        design: design.to_string(),
        status: JobStatus::Cancelled,
        cached: false,
        error: Some(ApiError {
            kind: ErrorKind::Cancelled,
            message: "cancelled while queued".to_string(),
            provenance: Vec::new(),
        }),
        stats: None,
        cells: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ams_place::api::JobOptions;

    fn quick_request() -> PlaceRequest {
        PlaceRequest {
            design: ams_netlist::benchmarks::buf(),
            options: JobOptions {
                quick: true,
                ..JobOptions::default()
            },
        }
    }

    #[test]
    fn saturated_queue_rejects_and_counts() {
        let engine = Engine::new(1, 8, 2);
        assert!(matches!(
            engine.submit(quick_request()),
            Submitted::Queued(_)
        ));
        assert!(matches!(
            engine.submit(quick_request()),
            Submitted::Saturated
        ));
        assert_eq!(engine.counters.rejected.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn queued_cancel_terminates_without_a_worker() {
        let engine = Engine::new(4, 8, 2);
        let Submitted::Queued(id) = engine.submit(quick_request()) else {
            panic!("queue has room");
        };
        assert_eq!(engine.cancel(id), Some(JobStatus::Cancelled));
        let view = engine.job_view(id).unwrap();
        assert_eq!(
            view.field("status").and_then(Json::as_str),
            Some("cancelled")
        );
        let response = view.field("response").unwrap();
        assert_eq!(
            response
                .field("error")
                .and_then(|e| e.field("kind"))
                .and_then(Json::as_str),
            Some("cancelled")
        );
        assert_eq!(engine.cancel(9999), None);
    }

    #[test]
    fn warm_solver_survives_moves() {
        // The self-referential pair must stay valid when the struct is
        // moved (hash-map insert, Vec growth, return by value).
        let design = ams_netlist::benchmarks::synthetic(ams_netlist::benchmarks::SyntheticParams {
            regions: 2,
            cells_per_region: 5,
            nets: 8,
            net_degree: 3,
            symmetry_pairs: 1,
            ..Default::default()
        });
        let mut config = ams_place::PlacerConfig::fast();
        config.solver.reusable = true;
        config.optimize.k_iter = 1;
        config.optimize.conflict_budget = Some(10_000);
        config.optimize.first_conflict_budget = Some(100_000);
        let solver = WarmSolver::new(design.clone(), config).expect("encode");
        let mut map = HashMap::new();
        map.insert(7u64, solver);
        let mut moved = map.remove(&7).unwrap();
        let placement = moved.placer().place_mut().expect("solve");
        placement.verify(&design).expect("legal placement");
    }
}

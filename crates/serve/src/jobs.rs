//! The job engine: a bounded FIFO queue drained by a worker pool, an
//! exact-result cache, a warm-solver pool — and, when journaling is on,
//! a durable write-ahead log that makes all of it crash-safe.
//!
//! ## The two cache levels
//!
//! 1. **Exact cache** — keyed by `(design_hash, options_hash)` over the
//!    canonical request JSON. A hit returns the stored
//!    [`PlaceResponse`] verbatim (marked `cached: true`) without
//!    touching a solver, so identical requests are bit-identical and
//!    free. Only deadline-free `Done` results are stored: a
//!    deadline-degraded anytime placement depends on wall clock and must
//!    not be replayed as authoritative.
//! 2. **Warm-solver pool** — keyed by `design_hash` alone. Each entry
//!    owns a live [`Placer`] built with `SolverConfig::reusable`. A new
//!    job for the same design goes through [`Placer::rebase`]: the
//!    incoming configuration is scratch-encoded, its
//!    [`ConstraintStore`](ams_place::ir) is diffed against the live one,
//!    and when only content-relowerable families differ (λ_th moves, a
//!    window reshapes) just those families' selector groups are retired
//!    and re-lowered — the SAT core keeps its learnt clauses and saved
//!    phases. Structural deltas fall back to a cold build.
//!
//! ## Durability & overload
//!
//! With a journal attached, every submission, worker pickup, and
//! terminal result is fsync'd to the WAL *before* the in-memory state
//! changes (`journal → state`, always under the state lock so the WAL
//! order matches the id order). [`Engine::recover`] replays a prior
//! process's WAL: done jobs repopulate the exact cache and keep
//! answering polls, queued jobs re-enter the queue, and mid-solve jobs
//! are re-run or marked `interrupted` per [`ResumePolicy`].
//!
//! Admission control degrades before it fails: past the shed
//! high-water mark only *cheap* submissions (exact-cache hits and
//! warm-pool designs) are admitted and cold solves get
//! [`Submitted::Shed`] (HTTP 503 + `Retry-After`); at full queue
//! capacity everything gets [`Submitted::Saturated`] (429). The
//! `degraded` flag in `/v1/stats` and `/v1/healthz` mirrors the
//! high-water condition. A client-supplied idempotency key dedups
//! retried submissions inside a bounded window so a retry storm never
//! double-solves.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use ams_netlist::json::Json;
use ams_netlist::Design;
use ams_place::api::{
    self, ApiError, ErrorKind, JobStatus, PlaceRequest, PlaceResponse, SCHEMA_VERSION,
};
use ams_place::{PlaceError, Placer, WarmReuse};

use crate::fault::{Barrier, FaultPlan};
use crate::journal::{Journal, Record, ReplayJob, ReplayState};

/// A live reusable solver pinned to one design.
///
/// [`Placer`] borrows its design, but pool entries must own theirs — so
/// the design lives in a stable heap allocation (`Box`) and the placer
/// borrows it through a pointer the compiler treats as `'static`. The
/// arrangement is sound because the box is never mutated or dropped
/// while the placer lives: field order puts `placer` first, so it drops
/// before `design`, and no method hands out the box.
struct WarmSolver {
    placer: Option<Placer<'static>>,
    #[allow(dead_code)] // owned for the placer's sake, never read
    design: Box<Design>,
}

impl WarmSolver {
    fn new(design: Design, config: ams_place::PlacerConfig) -> Result<WarmSolver, PlaceError> {
        let design = Box::new(design);
        // SAFETY: the reference points into a Box whose allocation
        // outlives the placer (drop order: `placer` field first) and is
        // never moved out of or mutated while the placer holds it.
        let pinned: &'static Design = unsafe { &*std::ptr::addr_of!(*design) };
        let placer = Placer::new(pinned, config)?;
        Ok(WarmSolver {
            placer: Some(placer),
            design,
        })
    }

    fn placer(&mut self) -> &mut Placer<'static> {
        self.placer.as_mut().expect("placer present until drop")
    }
}

/// One submitted job as the registry tracks it.
struct JobRecord {
    design: String,
    status: JobStatus,
    cancel: Arc<AtomicBool>,
    /// Present while the job waits in the queue; the worker takes it.
    request: Option<Box<PlaceRequest>>,
    /// The request's wire form, retained while the job can still appear
    /// in a compaction snapshot (queued, running, or terminal-and-
    /// cache-rehydratable). `None` once it can never be needed again.
    request_wire: Option<Json>,
    /// Present once the job is terminal.
    response: Option<PlaceResponse>,
}

/// Registry + queue behind one lock (workers and handlers touch both
/// together, a single mutex keeps the ordering trivial).
struct State {
    jobs: HashMap<u64, JobRecord>,
    queue: VecDeque<u64>,
    next_id: u64,
    /// Idempotency window: key → job id, FIFO-evicted at the cap.
    idem: HashMap<String, u64>,
    idem_order: VecDeque<String>,
}

impl State {
    fn remember_key(&mut self, key: &str, id: u64, window: usize) {
        if window == 0 || self.idem.contains_key(key) {
            return;
        }
        while self.idem_order.len() >= window {
            if let Some(evicted) = self.idem_order.pop_front() {
                self.idem.remove(&evicted);
            }
        }
        self.idem.insert(key.to_string(), id);
        self.idem_order.push_back(key.to_string());
    }
}

/// Monotonic service counters, exposed by `GET /v1/stats` and consumed
/// by the throughput bench.
#[derive(Default)]
pub struct Counters {
    pub submitted: AtomicU64,
    pub completed: AtomicU64,
    pub rejected: AtomicU64,
    /// Cold submissions refused while degraded (503).
    pub shed: AtomicU64,
    /// Submissions resolved to an existing job by idempotency key.
    pub deduped: AtomicU64,
    pub exact_hits: AtomicU64,
    pub warm_identical: AtomicU64,
    pub warm_relowered: AtomicU64,
    pub cold_builds: AtomicU64,
}

/// Engine tuning; [`crate::ServeConfig`] resolves the CLI/default view
/// of these.
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// Bounded queue capacity; submissions past it get 429.
    pub queue_cap: usize,
    /// Exact-result cache entries.
    pub exact_cap: usize,
    /// Warm solver pool entries.
    pub warm_cap: usize,
    /// Queue depth at which the engine degrades: cold submissions shed
    /// (503) while cached/warm submissions still queue.
    pub shed_high_water: usize,
    /// Idempotency keys remembered before FIFO eviction.
    pub idem_window: usize,
}

impl EngineConfig {
    /// The engine shape for a queue of `queue_cap`: shedding starts at
    /// 3/4 capacity, modest cache caps — the same defaults
    /// [`crate::ServeConfig::default`] uses.
    pub fn for_queue(queue_cap: usize) -> EngineConfig {
        EngineConfig {
            queue_cap,
            exact_cap: 64,
            warm_cap: 4,
            shed_high_water: (queue_cap.saturating_mul(3) / 4).max(1),
            idem_window: 256,
        }
    }
}

/// What to do on resume with jobs the dead process had mid-solve.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ResumePolicy {
    /// Put them back at the head of the queue and solve again.
    Rerun,
    /// Mark them terminal `interrupted`; the client decides whether to
    /// resubmit.
    MarkInterrupted,
}

/// What [`Engine::recover`] did with a replayed journal.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Jobs that were terminal on record and now answer polls again.
    pub completed: usize,
    /// Queued jobs put back in the queue.
    pub requeued: usize,
    /// Mid-solve jobs re-run ([`ResumePolicy::Rerun`]).
    pub reran: usize,
    /// Mid-solve jobs marked interrupted
    /// ([`ResumePolicy::MarkInterrupted`]).
    pub interrupted: usize,
    /// Done results re-inserted into the exact cache.
    pub cache_rehydrated: usize,
    /// Journal records that could not be folded (malformed embedded
    /// documents) and were dropped.
    pub unparseable: usize,
}

/// Everything the accept loop, handlers, and workers share.
pub struct Engine {
    state: Mutex<State>,
    work: Condvar,
    exact: Mutex<HashMap<(u64, u64), PlaceResponse>>,
    warm: Mutex<HashMap<u64, WarmSolver>>,
    /// The WAL; `None` runs the engine exactly as the journal-free PR 7
    /// service. Only ever locked while `state` is held (lock order:
    /// state → journal), which also makes WAL order match id order.
    journal: Mutex<Option<Journal>>,
    /// Fault-injection plan; inert by default.
    pub faults: FaultPlan,
    pub counters: Counters,
    pub running: AtomicBool,
    config: EngineConfig,
}

/// What `POST /v1/jobs` hands back.
pub enum Submitted {
    /// Accepted: the job id to poll.
    Queued(u64),
    /// An idempotency key matched a remembered submission: poll that
    /// job instead; nothing was re-solved.
    Deduplicated(u64),
    /// The bounded queue is full — retry later (HTTP 429).
    Saturated,
    /// Degraded mode shed this cold solve to protect cached traffic —
    /// retry later (HTTP 503 + `Retry-After`).
    Shed,
}

impl Engine {
    pub fn new(config: EngineConfig) -> Engine {
        Engine::with_journal(config, None, FaultPlan::default())
    }

    /// An engine with an optional WAL and fault plan attached. Call
    /// [`Engine::recover`] with the journal's replayed records *before*
    /// spawning workers.
    pub fn with_journal(
        config: EngineConfig,
        journal: Option<Journal>,
        faults: FaultPlan,
    ) -> Engine {
        Engine {
            state: Mutex::new(State {
                jobs: HashMap::new(),
                queue: VecDeque::new(),
                next_id: 1,
                idem: HashMap::new(),
                idem_order: VecDeque::new(),
            }),
            work: Condvar::new(),
            exact: Mutex::new(HashMap::new()),
            warm: Mutex::new(HashMap::new()),
            journal: Mutex::new(journal),
            faults,
            counters: Counters::default(),
            running: AtomicBool::new(true),
            config,
        }
    }

    /// Appends one record to the WAL (if attached) and fires the
    /// matching fault barrier once the record is durable. Must be called
    /// with the state lock held so WAL order is the lock order. A write
    /// failure disables journaling for the rest of the process rather
    /// than failing jobs: serving degrades to non-durable, loudly.
    fn journal_append(&self, st: &State, record: Record, barrier: Barrier) {
        let mut slot = self.journal.lock().expect("journal lock");
        let Some(journal) = slot.as_mut() else { return };
        if let Err(e) = journal.append(&record) {
            eprintln!("journal: append failed ({e}); continuing WITHOUT durability");
            *slot = None;
            return;
        }
        self.faults.at_barrier(barrier);
        if journal.wants_compaction() {
            let snapshot = snapshot_records(st, self.config.exact_cap);
            if let Err(e) = journal.compact(&snapshot) {
                eprintln!("journal: compaction failed ({e}); continuing WITHOUT durability");
                *slot = None;
            }
        }
    }

    /// Enqueues a request; dedups on idempotency key, sheds cold work
    /// when degraded, rejects when the queue is at capacity.
    pub fn submit(&self, request: PlaceRequest) -> Submitted {
        let mut st = self.state.lock().expect("engine lock");
        if let Some(key) = &request.idempotency_key {
            if let Some(&existing) = st.idem.get(key) {
                self.counters.deduped.fetch_add(1, Ordering::Relaxed);
                return Submitted::Deduplicated(existing);
            }
        }
        let depth = st.queue.len();
        if depth >= self.config.queue_cap {
            self.counters.rejected.fetch_add(1, Ordering::Relaxed);
            return Submitted::Saturated;
        }
        if depth >= self.config.shed_high_water && !self.is_cheap(&request) {
            self.counters.shed.fetch_add(1, Ordering::Relaxed);
            return Submitted::Shed;
        }
        let wire = request.to_json();
        let id = st.next_id;
        st.next_id += 1;
        if let Some(key) = &request.idempotency_key {
            let window = self.config.idem_window;
            st.remember_key(key, id, window);
        }
        st.jobs.insert(
            id,
            JobRecord {
                design: request.design.name().to_string(),
                status: JobStatus::Queued,
                cancel: Arc::new(AtomicBool::new(false)),
                request: Some(Box::new(request)),
                request_wire: Some(wire.clone()),
                response: None,
            },
        );
        st.queue.push_back(id);
        self.counters.submitted.fetch_add(1, Ordering::Relaxed);
        self.journal_append(
            &st,
            Record::Submitted {
                job_id: id,
                request: wire,
            },
            Barrier::Submit,
        );
        drop(st);
        self.work.notify_one();
        Submitted::Queued(id)
    }

    /// Whether a degraded engine should still admit this request: it
    /// resolves from the exact cache, or its design has a live warm
    /// solver — either way it won't occupy a worker for a cold solve.
    fn is_cheap(&self, request: &PlaceRequest) -> bool {
        let design = request.effective_design();
        let dh = api::design_hash(&design);
        let oh = api::options_hash(&request.options);
        if self
            .exact
            .lock()
            .expect("exact lock")
            .contains_key(&(dh, oh))
        {
            return true;
        }
        self.warm.lock().expect("warm lock").contains_key(&dh)
    }

    /// Whether the engine is past its shed high-water mark.
    pub fn degraded(&self) -> bool {
        let st = self.state.lock().expect("engine lock");
        st.queue.len() >= self.config.shed_high_water
    }

    /// Rebuilds engine state from a replayed journal. Terminal jobs
    /// answer polls again (deadline-free `done` results also re-enter
    /// the exact cache and re-arm their idempotency keys); queued jobs
    /// re-enter the queue; mid-solve jobs follow `policy`. Runs before
    /// any worker starts, so no lock juggling is needed — but it takes
    /// the locks anyway to keep the invariants uniform.
    pub fn recover(&self, replayed: ReplayState, policy: ResumePolicy) -> RecoveryReport {
        let mut report = RecoveryReport::default();
        let mut st = self.state.lock().expect("engine lock");
        st.next_id = st.next_id.max(replayed.max_job_id + 1);
        for (id, job) in replayed.jobs {
            match job {
                ReplayJob::Terminal { request, response } => {
                    let Ok(response) = PlaceResponse::from_json(&response) else {
                        report.unparseable += 1;
                        continue;
                    };
                    let parsed = request
                        .as_ref()
                        .and_then(|r| PlaceRequest::from_json(r).ok());
                    let mut keep_wire = false;
                    if response.status == JobStatus::Done {
                        if let Some(req) = &parsed {
                            if req.options.deadline_ms.is_none() {
                                let design = req.effective_design();
                                let key =
                                    (api::design_hash(&design), api::options_hash(&req.options));
                                let mut stored = response.clone();
                                stored.cached = false;
                                let mut exact = self.exact.lock().expect("exact lock");
                                if exact.len() < self.config.exact_cap || exact.contains_key(&key) {
                                    exact.insert(key, stored);
                                    report.cache_rehydrated += 1;
                                    keep_wire = true;
                                }
                            }
                            if let Some(idem) = &req.idempotency_key {
                                let window = self.config.idem_window;
                                st.remember_key(idem, id, window);
                            }
                        }
                    }
                    st.jobs.insert(
                        id,
                        JobRecord {
                            design: response.design.clone(),
                            status: response.status,
                            cancel: Arc::new(AtomicBool::new(false)),
                            request: None,
                            request_wire: if keep_wire { request } else { None },
                            response: Some(response),
                        },
                    );
                    report.completed += 1;
                }
                ReplayJob::Queued { request } => {
                    let Ok(parsed) = PlaceRequest::from_json(&request) else {
                        report.unparseable += 1;
                        continue;
                    };
                    if let Some(idem) = parsed.idempotency_key.clone() {
                        let window = self.config.idem_window;
                        st.remember_key(&idem, id, window);
                    }
                    st.jobs.insert(
                        id,
                        JobRecord {
                            design: parsed.design.name().to_string(),
                            status: JobStatus::Queued,
                            cancel: Arc::new(AtomicBool::new(false)),
                            request: Some(Box::new(parsed)),
                            request_wire: Some(request),
                            response: None,
                        },
                    );
                    st.queue.push_back(id);
                    report.requeued += 1;
                }
                ReplayJob::Running { request } => match policy {
                    ResumePolicy::Rerun => {
                        let Ok(parsed) = PlaceRequest::from_json(&request) else {
                            report.unparseable += 1;
                            continue;
                        };
                        if let Some(idem) = parsed.idempotency_key.clone() {
                            let window = self.config.idem_window;
                            st.remember_key(&idem, id, window);
                        }
                        st.jobs.insert(
                            id,
                            JobRecord {
                                design: parsed.design.name().to_string(),
                                status: JobStatus::Queued,
                                cancel: Arc::new(AtomicBool::new(false)),
                                request: Some(Box::new(parsed)),
                                request_wire: Some(request.clone()),
                                response: None,
                            },
                        );
                        // Re-run jobs jump the line: they were in
                        // flight first. The fresh Submitted record
                        // supersedes the dead process's Started (last
                        // write wins on the next replay).
                        st.queue.push_front(id);
                        self.journal_append(
                            &st,
                            Record::Submitted {
                                job_id: id,
                                request,
                            },
                            Barrier::Submit,
                        );
                        report.reran += 1;
                    }
                    ResumePolicy::MarkInterrupted => {
                        let design = PlaceRequest::from_json(&request)
                            .map(|r| r.design.name().to_string())
                            .unwrap_or_else(|_| "unknown".to_string());
                        let response = interrupted_response(&design);
                        st.jobs.insert(
                            id,
                            JobRecord {
                                design,
                                status: JobStatus::Interrupted,
                                cancel: Arc::new(AtomicBool::new(false)),
                                request: None,
                                request_wire: None,
                                response: Some(response.clone()),
                            },
                        );
                        self.journal_append(
                            &st,
                            Record::Finished {
                                job_id: id,
                                response: response.to_json(),
                            },
                            Barrier::Finish,
                        );
                        report.interrupted += 1;
                    }
                },
            }
        }
        // Start the new process from a compact WAL: one snapshot instead
        // of the dead process's whole history.
        let mut slot = self.journal.lock().expect("journal lock");
        if let Some(journal) = slot.as_mut() {
            let snapshot = snapshot_records(&st, self.config.exact_cap);
            if let Err(e) = journal.compact(&snapshot) {
                eprintln!("journal: post-recovery compaction failed ({e}); continuing");
            }
        }
        drop(slot);
        report
    }

    /// The poll document for `GET /v1/jobs/<id>`; `None` for unknown ids.
    pub fn job_view(&self, id: u64) -> Option<Json> {
        let st = self.state.lock().expect("engine lock");
        let rec = st.jobs.get(&id)?;
        Some(Json::obj([
            ("schema_version", Json::uint(SCHEMA_VERSION)),
            ("job_id", Json::uint(id)),
            ("design", Json::str(&rec.design)),
            ("status", Json::str(rec.status.name())),
            (
                "response",
                rec.response
                    .as_ref()
                    .map(PlaceResponse::to_json)
                    .unwrap_or(Json::Null),
            ),
        ]))
    }

    /// Cancels a job: a queued job terminates immediately, a running job
    /// has its stop flag raised (the solver exits at its next conflict
    /// boundary). Returns the status after the cancel, or `None` for
    /// unknown ids.
    pub fn cancel(&self, id: u64) -> Option<JobStatus> {
        let mut st = self.state.lock().expect("engine lock");
        let rec = st.jobs.get_mut(&id)?;
        match rec.status {
            JobStatus::Queued => {
                rec.status = JobStatus::Cancelled;
                rec.request = None;
                rec.request_wire = None;
                let design = rec.design.clone();
                let response = cancelled_while_queued(&design);
                let wire = response.to_json();
                rec.response = Some(response);
                let status = rec.status;
                self.journal_append(
                    &st,
                    Record::Finished {
                        job_id: id,
                        response: wire,
                    },
                    Barrier::Finish,
                );
                return Some(status);
            }
            JobStatus::Running => rec.cancel.store(true, Ordering::Relaxed),
            _ => {}
        }
        Some(rec.status)
    }

    /// The `GET /v1/stats` document.
    pub fn stats(&self) -> Json {
        let st = self.state.lock().expect("engine lock");
        let queue_depth = st.queue.len() as u64;
        let degraded = st.queue.len() >= self.config.shed_high_water;
        drop(st);
        let warm_pool = self.warm.lock().expect("warm lock").len() as u64;
        let journal = {
            let slot = self.journal.lock().expect("journal lock");
            slot.as_ref().map(|j| j.stats())
        };
        let c = &self.counters;
        let n = |a: &AtomicU64| Json::uint(a.load(Ordering::Relaxed));
        Json::obj([
            ("schema_version", Json::uint(SCHEMA_VERSION)),
            ("submitted", n(&c.submitted)),
            ("completed", n(&c.completed)),
            ("rejected", n(&c.rejected)),
            ("shed", n(&c.shed)),
            ("deduped", n(&c.deduped)),
            ("exact_hits", n(&c.exact_hits)),
            ("warm_identical", n(&c.warm_identical)),
            ("warm_relowered", n(&c.warm_relowered)),
            ("cold_builds", n(&c.cold_builds)),
            ("queue_depth", Json::uint(queue_depth)),
            ("degraded", Json::Bool(degraded)),
            ("warm_pool", Json::uint(warm_pool)),
            (
                "journal",
                journal.map_or(Json::Null, |j| {
                    Json::obj([
                        ("segment", Json::uint(j.segment)),
                        ("segment_bytes", Json::uint(j.segment_bytes)),
                        ("appended", Json::uint(j.appended)),
                        ("replayed", Json::uint(j.replayed)),
                        ("tail_discarded", Json::Bool(j.tail_discarded)),
                    ])
                }),
            ),
        ])
    }

    /// Wakes every worker so they observe `running == false` and exit.
    pub fn stop(&self) {
        self.running.store(false, Ordering::Relaxed);
        self.work.notify_all();
    }

    /// One worker thread: drain the queue until the engine stops.
    pub fn worker_loop(&self) {
        loop {
            let (id, request, cancel) = {
                let mut st = self.state.lock().expect("engine lock");
                loop {
                    if !self.running.load(Ordering::Relaxed) {
                        return;
                    }
                    if let Some(id) = st.queue.pop_front() {
                        let rec = st.jobs.get_mut(&id).expect("queued job is registered");
                        if rec.status != JobStatus::Queued {
                            continue; // cancelled while waiting
                        }
                        rec.status = JobStatus::Running;
                        let request = rec.request.take().expect("queued job holds its request");
                        let cancel = rec.cancel.clone();
                        self.journal_append(&st, Record::Started { job_id: id }, Barrier::Start);
                        break (id, request, cancel);
                    }
                    st = self.work.wait(st).expect("engine lock");
                }
            };

            let response = self.run_one(&request, &cancel);
            let status = response.status;
            let mut st = self.state.lock().expect("engine lock");
            self.journal_append(
                &st,
                Record::Finished {
                    job_id: id,
                    response: response.to_json(),
                },
                Barrier::Finish,
            );
            if let Some(rec) = st.jobs.get_mut(&id) {
                rec.status = status;
                // A deadline-free done result may re-enter the exact
                // cache from a snapshot after a restart; anything else
                // will never need its request again.
                if !(status == JobStatus::Done && request.options.deadline_ms.is_none()) {
                    rec.request_wire = None;
                }
                rec.response = Some(response);
            }
            drop(st);
            self.counters.completed.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Executes one placement job through the cache hierarchy.
    fn run_one(&self, request: &PlaceRequest, cancel: &Arc<AtomicBool>) -> PlaceResponse {
        let design = request.effective_design();
        let dh = api::design_hash(&design);
        let oh = api::options_hash(&request.options);

        if let Some(hit) = self.exact.lock().expect("exact lock").get(&(dh, oh)) {
            self.counters.exact_hits.fetch_add(1, Ordering::Relaxed);
            let mut response = hit.clone();
            response.cached = true;
            return response;
        }

        let mut config = request.options.to_config();
        config.solver.reusable = true;
        // Per-job knobs are explicit-only: the server's environment must
        // not leak into jobs, or identical requests would stop being
        // reproducible across deployments.
        config.solver = config.solver.resolve(request.options.overrides());

        // Routing-closure jobs run the place → route → tighten loop on a
        // private solver: the loop rebases per-window λ overrides into its
        // placer, which must not leak back into the shared warm pool. The
        // exact cache still applies (the options hash covers the closure
        // knobs), and cancellation lands at the next solve's boundary via
        // the normal queued-cancel path only.
        if let Some(closure) = request.options.closure() {
            self.counters.cold_builds.fetch_add(1, Ordering::Relaxed);
            let response = match ams_route::close_placement(
                &design,
                config,
                &closure,
                ams_route::RouterConfig::default(),
            ) {
                Ok((placement, _)) => PlaceResponse::success(&design, &placement),
                Err(e) => PlaceResponse::failure(design.name(), &e),
            };
            if response.status == JobStatus::Done && request.options.deadline_ms.is_none() {
                let mut exact = self.exact.lock().expect("exact lock");
                if exact.len() < self.config.exact_cap {
                    exact.insert((dh, oh), response.clone());
                }
            }
            return response;
        }

        let mut solver = match self.checkout_solver(dh, &design, config) {
            Ok(solver) => solver,
            Err(e) => return PlaceResponse::failure(design.name(), &e),
        };

        solver.placer().set_cancel_flag(Some(cancel.clone()));
        let result = solver.placer().place_mut();
        solver.placer().set_cancel_flag(None);

        let response = match &result {
            Ok(placement) => PlaceResponse::success(&design, placement),
            Err(e) => PlaceResponse::failure(design.name(), e),
        };

        // Return the solver to the pool — it stays consistent even after
        // a cancelled or degraded job (assumption-based solving never
        // poisons the clause database).
        let mut warm = self.warm.lock().expect("warm lock");
        if warm.len() < self.config.warm_cap || warm.contains_key(&dh) {
            warm.insert(dh, solver);
        }
        drop(warm);

        if response.status == JobStatus::Done && request.options.deadline_ms.is_none() {
            let mut exact = self.exact.lock().expect("exact lock");
            if exact.len() < self.config.exact_cap {
                exact.insert((dh, oh), response.clone());
            }
        }
        response
    }

    /// Fetches (and rebases) the pooled solver for this design, or
    /// builds a cold one. The entry is removed from the pool while the
    /// job runs; a concurrent job on the same design builds its own
    /// solver and the last one back wins the pool slot.
    fn checkout_solver(
        &self,
        dh: u64,
        design: &Design,
        config: ams_place::PlacerConfig,
    ) -> Result<WarmSolver, PlaceError> {
        let pooled = self.warm.lock().expect("warm lock").remove(&dh);
        if let Some(mut solver) = pooled {
            match solver.placer().rebase(config.clone()) {
                Ok(WarmReuse::Identical) => {
                    self.counters.warm_identical.fetch_add(1, Ordering::Relaxed);
                    return Ok(solver);
                }
                Ok(WarmReuse::Relowered { .. }) => {
                    self.counters.warm_relowered.fetch_add(1, Ordering::Relaxed);
                    return Ok(solver);
                }
                Ok(WarmReuse::Structural) => {} // fall through to a cold build
                Err(e) => return Err(e),
            }
        }
        self.counters.cold_builds.fetch_add(1, Ordering::Relaxed);
        WarmSolver::new(design.clone(), config)
    }
}

/// The live-state snapshot a compaction writes: every queued job's
/// submission, every running job's submission + start, and the most
/// recent `terminal_cap` cache-rehydratable terminal jobs (submission +
/// result). Older terminal jobs age out of the WAL — their results were
/// already bounded by the exact-cache capacity.
fn snapshot_records(st: &State, terminal_cap: usize) -> Vec<Record> {
    let mut ids: Vec<u64> = st.jobs.keys().copied().collect();
    ids.sort_unstable();
    let terminal_total = ids
        .iter()
        .filter(|id| st.jobs[id].status.is_terminal())
        .count();
    let mut skip_terminals = terminal_total.saturating_sub(terminal_cap);
    let mut records = Vec::new();
    for id in ids {
        let rec = &st.jobs[&id];
        match rec.status {
            JobStatus::Queued => {
                if let Some(wire) = &rec.request_wire {
                    records.push(Record::Submitted {
                        job_id: id,
                        request: wire.clone(),
                    });
                }
            }
            JobStatus::Running => {
                if let Some(wire) = &rec.request_wire {
                    records.push(Record::Submitted {
                        job_id: id,
                        request: wire.clone(),
                    });
                    records.push(Record::Started { job_id: id });
                }
            }
            _ => {
                if skip_terminals > 0 {
                    skip_terminals -= 1;
                    continue;
                }
                let Some(response) = &rec.response else {
                    continue;
                };
                if let Some(wire) = &rec.request_wire {
                    records.push(Record::Submitted {
                        job_id: id,
                        request: wire.clone(),
                    });
                }
                records.push(Record::Finished {
                    job_id: id,
                    response: response.to_json(),
                });
            }
        }
    }
    records
}

/// The terminal response for a job cancelled before a worker picked it
/// up: no solver ever ran, so there is no [`PlaceError`] to convert.
fn cancelled_while_queued(design: &str) -> PlaceResponse {
    PlaceResponse {
        schema_version: SCHEMA_VERSION,
        design: design.to_string(),
        status: JobStatus::Cancelled,
        cached: false,
        error: Some(ApiError {
            kind: ErrorKind::Cancelled,
            message: "cancelled while queued".to_string(),
            provenance: Vec::new(),
        }),
        stats: None,
        cells: None,
    }
}

/// The terminal response for a job the dead process had mid-solve when
/// the resume policy is [`ResumePolicy::MarkInterrupted`].
fn interrupted_response(design: &str) -> PlaceResponse {
    PlaceResponse {
        schema_version: SCHEMA_VERSION,
        design: design.to_string(),
        status: JobStatus::Interrupted,
        cached: false,
        error: Some(ApiError {
            kind: ErrorKind::Interrupted,
            message: "interrupted: the serving process died while this job was running; \
                      resubmit to solve again"
                .to_string(),
            provenance: Vec::new(),
        }),
        stats: None,
        cells: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ams_place::api::JobOptions;

    fn quick_request() -> PlaceRequest {
        PlaceRequest {
            design: ams_netlist::benchmarks::buf(),
            options: JobOptions {
                quick: true,
                ..JobOptions::default()
            },
            idempotency_key: None,
        }
    }

    fn tiny_engine(queue_cap: usize) -> Engine {
        Engine::new(EngineConfig {
            queue_cap,
            exact_cap: 8,
            warm_cap: 2,
            shed_high_water: queue_cap.max(1),
            idem_window: 8,
        })
    }

    #[test]
    fn saturated_queue_rejects_and_counts() {
        let engine = tiny_engine(1);
        assert!(matches!(
            engine.submit(quick_request()),
            Submitted::Queued(_)
        ));
        assert!(matches!(
            engine.submit(quick_request()),
            Submitted::Saturated
        ));
        assert_eq!(engine.counters.rejected.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn idempotency_key_dedups_within_the_window() {
        let engine = tiny_engine(8);
        let mut request = quick_request();
        request.idempotency_key = Some("retry-1".into());
        let Submitted::Queued(first) = engine.submit(request.clone()) else {
            panic!("queue has room");
        };
        let Submitted::Deduplicated(again) = engine.submit(request.clone()) else {
            panic!("same key must deduplicate");
        };
        assert_eq!(first, again);
        assert_eq!(engine.counters.deduped.load(Ordering::Relaxed), 1);
        assert_eq!(engine.counters.submitted.load(Ordering::Relaxed), 1);

        // A different key is a different submission.
        request.idempotency_key = Some("retry-2".into());
        assert!(matches!(engine.submit(request), Submitted::Queued(_)));
    }

    #[test]
    fn idempotency_window_evicts_fifo() {
        let mut config = EngineConfig::for_queue(32);
        config.idem_window = 2;
        let engine = Engine::new(config);
        for key in ["a", "b", "c"] {
            let mut request = quick_request();
            request.idempotency_key = Some(key.to_string());
            assert!(matches!(engine.submit(request), Submitted::Queued(_)));
        }
        // "a" was evicted: the same key now starts a fresh job.
        let mut request = quick_request();
        request.idempotency_key = Some("a".into());
        assert!(matches!(engine.submit(request), Submitted::Queued(_)));
        // "c" is still remembered.
        let mut request = quick_request();
        request.idempotency_key = Some("c".into());
        assert!(matches!(engine.submit(request), Submitted::Deduplicated(_)));
    }

    #[test]
    fn degraded_engine_sheds_cold_submissions() {
        let engine = Engine::new(EngineConfig {
            queue_cap: 8,
            exact_cap: 8,
            warm_cap: 2,
            shed_high_water: 1,
            idem_window: 8,
        });
        assert!(!engine.degraded());
        assert!(matches!(
            engine.submit(quick_request()),
            Submitted::Queued(_)
        ));
        // Past the high-water mark with no cache entry for the design:
        // cold work sheds, and the engine reports degraded.
        assert!(engine.degraded());
        assert!(matches!(engine.submit(quick_request()), Submitted::Shed));
        assert_eq!(engine.counters.shed.load(Ordering::Relaxed), 1);
        let stats = engine.stats();
        assert_eq!(stats.field("degraded").and_then(Json::as_bool), Some(true));
        assert_eq!(stats.field("shed").and_then(Json::as_u64), Some(1));
    }

    #[test]
    fn queued_cancel_terminates_without_a_worker() {
        let engine = tiny_engine(4);
        let Submitted::Queued(id) = engine.submit(quick_request()) else {
            panic!("queue has room");
        };
        assert_eq!(engine.cancel(id), Some(JobStatus::Cancelled));
        let view = engine.job_view(id).unwrap();
        assert_eq!(
            view.field("status").and_then(Json::as_str),
            Some("cancelled")
        );
        let response = view.field("response").unwrap();
        assert_eq!(
            response
                .field("error")
                .and_then(|e| e.field("kind"))
                .and_then(Json::as_str),
            Some("cancelled")
        );
        assert_eq!(engine.cancel(9999), None);
    }

    #[test]
    fn warm_solver_survives_moves() {
        // The self-referential pair must stay valid when the struct is
        // moved (hash-map insert, Vec growth, return by value).
        let design = ams_netlist::benchmarks::synthetic(ams_netlist::benchmarks::SyntheticParams {
            regions: 2,
            cells_per_region: 5,
            nets: 8,
            net_degree: 3,
            symmetry_pairs: 1,
            ..Default::default()
        });
        let mut config = ams_place::PlacerConfig::fast();
        config.solver.reusable = true;
        config.optimize.k_iter = 1;
        config.optimize.conflict_budget = Some(10_000);
        config.optimize.first_conflict_budget = Some(100_000);
        let solver = WarmSolver::new(design.clone(), config).expect("encode");
        let mut map = HashMap::new();
        map.insert(7u64, solver);
        let mut moved = map.remove(&7).unwrap();
        let placement = moved.placer().place_mut().expect("solve");
        placement.verify(&design).expect("legal placement");
    }
}

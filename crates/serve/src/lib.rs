//! # ams-serve
//!
//! Placement-as-a-service: the long-running mode behind `amsplace serve`.
//!
//! The server speaks a minimal JSON-over-HTTP/1.1 protocol (std-only —
//! hand-rolled framing over [`std::net::TcpListener`], documents via the
//! workspace's own [`Json`](ams_netlist::json::Json)) and executes jobs on a
//! bounded worker pool. Two cache levels sit in front of the solver:
//!
//! * an **exact-result cache** keyed by `(design_hash, options_hash)` —
//!   a repeat of an identical request returns the stored response
//!   bit-for-bit, marked `cached: true`;
//! * a **warm-solver pool** keyed by design hash — a request whose
//!   configuration differs only in content-relowerable constraint
//!   families (the λ_th pin-density cap, say) is re-solved on the live
//!   incremental solver via [`Placer::rebase`](ams_place::Placer::rebase):
//!   the changed families' selector groups are retired and re-lowered
//!   while the SAT core keeps its learnt clauses and saved phases.
//!
//! ```no_run
//! use ams_serve::{client, Server, ServeConfig};
//! use ams_netlist::json::Json;
//!
//! # fn main() -> std::io::Result<()> {
//! let server = Server::start(ServeConfig::default())?;
//! let body = Json::obj([("design", Json::str("buf"))]);
//! let accepted = client::post(server.addr(), "/v1/jobs", Some(&body))?;
//! assert_eq!(accepted.status, 202);
//! server.shutdown();
//! server.join();
//! # Ok(())
//! # }
//! ```

//! ## Crash safety
//!
//! With a journal directory configured, every job transition is fsync'd
//! to an append-only WAL before it takes effect, and a restarted server
//! replays the log: done jobs keep answering polls (and repopulate the
//! exact cache), queued jobs re-enter the queue, and mid-solve jobs are
//! re-run or marked `interrupted` per [`ResumePolicy`]. See
//! [`journal`] for the on-disk format and DESIGN.md for the failure
//! model.

pub mod client;
pub mod fault;
pub mod http;
mod jobs;
pub mod journal;
mod server;

pub use jobs::{Counters, Engine, EngineConfig, RecoveryReport, ResumePolicy, Submitted};
pub use server::{ServeConfig, Server};

//! The SMT placement engine (Fig. 3): encode → incremental optimization
//! (Algorithm 1) → post-processing.

use crate::analysis::presolve::{self, PresolveConflict, PresolveVerdict};
use crate::config::{PinDensityConfig, PlacerConfig, SolverOverrides};
use crate::encode;
use crate::ir::{conflict_families, ConstraintFamily, ConstraintStore, FamilyStats};
use crate::placement::{
    CertifyReport, DegradeReason, PinDensityCheck, PlaceOutcome, PlaceStats, Placement,
    PresolveStats, Relaxation, RungStats, WarmStats,
};
use crate::power::PowerPlan;
use crate::scale::ScaleInfo;
use crate::vars::VarMap;
use ams_netlist::{CellId, Design, DiagCode, LintReport, Rect, RegionId};
use ams_sat::{PortfolioConfig, Proof, StopCause};
use ams_smt::{Smt, SmtResult, Term};
use std::error::Error;
use std::fmt;
use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Placement failure.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum PlaceError {
    /// The configuration is invalid.
    Config(String),
    /// The pre-solve linter found error-severity diagnostics; the design
    /// is provably unplaceable or its constraints are broken.
    Lint(LintReport),
    /// The constraint system is unsatisfiable — no legal placement exists
    /// on the sized die (raise `die_slack` or utilization headroom).
    Infeasible {
        /// Minimal-ish set of constraint families the failed selector
        /// assumptions of the final solve blame (see [`crate::ir`]);
        /// non-empty, sorted, deduplicated.
        conflict: Vec<ConstraintFamily>,
        /// One human-readable line per blamed family citing the design
        /// objects (cells, regions, windows, …) whose constraints make up
        /// the family — the IR's provenance records.
        provenance: Vec<String>,
        /// In certify mode ([`crate::SolverConfig::certify`]), the DRAT
        /// certificate of the final infeasibility verdict; validate it
        /// with [`ams_sat::drat::check`]. `None` outside certify mode.
        certificate: Option<Box<Proof>>,
    },
    /// The first solve exhausted its conflict budget without a verdict.
    BudgetExhausted,
    /// The wall-clock deadline ([`PlacerBuilder::deadline`] /
    /// [`crate::SolverConfig::deadline`]) expired before *any* model was
    /// found. Once a model exists the deadline degrades the result to
    /// [`crate::PlaceOutcome::Anytime`] instead of erroring.
    DeadlineExpired,
    /// The run was cancelled through the cancel flag
    /// ([`PlacerBuilder::cancel_flag`]) before completing.
    Cancelled,
    /// An internal invariant failed — e.g. every portfolio worker panicked
    /// before a first model existed. Never caused by the design or the
    /// configuration; the message is diagnostic.
    Internal(String),
}

impl fmt::Display for PlaceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlaceError::Config(msg) => write!(f, "invalid configuration: {msg}"),
            PlaceError::Lint(report) => {
                write!(
                    f,
                    "constraint lint failed with {} error(s)",
                    report.errors().count()
                )?;
                if let Some(first) = report.errors().next() {
                    write!(f, "; first: {}", first.message)?;
                }
                Ok(())
            }
            PlaceError::Infeasible { conflict, .. } => {
                write!(f, "no legal placement exists for the sized die")?;
                if !conflict.is_empty() {
                    let names: Vec<&str> = conflict.iter().map(|fam| fam.name()).collect();
                    write!(f, " (conflicting families: {})", names.join(", "))?;
                }
                Ok(())
            }
            PlaceError::BudgetExhausted => {
                write!(f, "conflict budget exhausted before a first solution")
            }
            PlaceError::DeadlineExpired => {
                write!(f, "wall-clock deadline expired before a first solution")
            }
            PlaceError::Cancelled => {
                write!(f, "placement cancelled before completion")
            }
            PlaceError::Internal(msg) => {
                write!(f, "internal placer failure: {msg}")
            }
        }
    }
}

impl Error for PlaceError {
    /// No variant wraps another error type: lint reports and conflict
    /// families are structured payloads, not error causes. Spelled out so
    /// the chain contract is explicit rather than inherited by default.
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            PlaceError::Config(_)
            | PlaceError::Lint(_)
            | PlaceError::Infeasible { .. }
            | PlaceError::BudgetExhausted
            | PlaceError::DeadlineExpired
            | PlaceError::Cancelled
            | PlaceError::Internal(_) => None,
        }
    }
}

/// Model snapshot of one SAT iteration.
#[derive(Clone, Debug)]
struct Model {
    xs: Vec<u64>,
    ys: Vec<u64>,
    region_x: Vec<u64>,
    region_y: Vec<u64>,
    region_w: Vec<u64>,
    region_h: Vec<u64>,
}

/// Fluent constructor for [`Placer`] — the primary entry point.
///
/// Obtained from [`Placer::builder`]; encoding happens at
/// [`PlacerBuilder::build`] so every knob is settled first.
///
/// # Examples
///
/// ```no_run
/// use ams_netlist::benchmarks;
/// use ams_place::{Placer, PlacerConfig};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let design = benchmarks::buf();
/// let placement = Placer::builder(&design)
///     .config(PlacerConfig::fast())
///     .threads(4)
///     .build()?
///     .place()?;
/// placement.verify(&design).expect("placement is legal");
/// # Ok(())
/// # }
/// ```
pub struct PlacerBuilder<'a> {
    design: &'a Design,
    config: PlacerConfig,
    threads: Option<usize>,
    deadline: Option<Duration>,
    cancel: Option<Arc<AtomicBool>>,
    consult_env: bool,
}

impl<'a> PlacerBuilder<'a> {
    /// Replaces the whole configuration (defaults to
    /// [`PlacerConfig::default`]).
    pub fn config(mut self, config: PlacerConfig) -> PlacerBuilder<'a> {
        self.config = config;
        self
    }

    /// Sets the solver thread count: `1` is sequential and deterministic,
    /// more threads run the diversified portfolio.
    ///
    /// When this is never called, the `AMSPLACE_THREADS` environment
    /// variable (if set to a positive integer) overrides the configured
    /// [`crate::SolverConfig::threads`].
    pub fn threads(mut self, threads: usize) -> PlacerBuilder<'a> {
        self.threads = Some(threads);
        self
    }

    /// Caps SAT conflicts per solve call — both the first feasibility
    /// solve and each optimization round (anytime placement).
    pub fn conflict_budget(mut self, conflicts: u64) -> PlacerBuilder<'a> {
        self.config.optimize.first_conflict_budget = Some(conflicts);
        self.config.optimize.conflict_budget = Some(conflicts);
        self
    }

    /// Caps the whole [`Placer::place`] call — every SAT round and
    /// relaxation rung — at a wall-clock deadline. When it expires after
    /// the first model, the best placement found so far is returned tagged
    /// [`crate::PlaceOutcome::Anytime`]; before any model,
    /// [`PlaceError::DeadlineExpired`].
    ///
    /// When this is never called, the `AMSPLACE_DEADLINE_MS` environment
    /// variable (if set to a positive integer, in milliseconds) overrides
    /// the configured [`crate::SolverConfig::deadline`].
    pub fn deadline(mut self, deadline: Duration) -> PlacerBuilder<'a> {
        self.deadline = Some(deadline);
        self
    }

    /// Installs a cooperative cancel flag: raising it makes the running
    /// [`Placer::place`] return [`PlaceError::Cancelled`] promptly.
    pub fn cancel_flag(mut self, flag: Arc<AtomicBool>) -> PlacerBuilder<'a> {
        self.cancel = Some(flag);
        self
    }

    /// Whether `AMSPLACE_THREADS` / `AMSPLACE_DEADLINE_MS` may fill in
    /// values not set explicitly on this builder (`true` by default — the
    /// historical CLI-friendly behaviour). Job servers pass `false` so a
    /// per-job configuration can never be silently overridden by
    /// process-global environment state; see [`crate::SolverConfig::resolve`]
    /// for the full precedence contract.
    pub fn env_overrides(mut self, consult_env: bool) -> PlacerBuilder<'a> {
        self.consult_env = consult_env;
        self
    }

    /// Enables certified solving ([`crate::SolverConfig::certify`]): the
    /// SAT core logs a DRAT proof, infeasibility verdicts carry a
    /// checkable certificate, and satisfiable runs re-verify their model
    /// (reported in [`crate::PlaceStats::certify`]). Call after
    /// [`PlacerBuilder::config`], which replaces the whole configuration.
    pub fn certify(mut self, on: bool) -> PlacerBuilder<'a> {
        self.config.solver.certify = on;
        self
    }

    /// Validates, lints, and encodes the design into a ready [`Placer`].
    ///
    /// # Errors
    ///
    /// [`PlaceError::Config`] for out-of-range parameters,
    /// [`PlaceError::Lint`] when the pre-solve linter proves the instance
    /// broken (see [`crate::analysis::lint`]).
    pub fn build(self) -> Result<Placer<'a>, PlaceError> {
        let mut config = self.config;
        config.solver = config.solver.resolve(SolverOverrides {
            threads: self.threads,
            deadline: self.deadline,
            consult_env: self.consult_env,
        });
        let mut placer = Placer::new(self.design, config)?;
        placer.set_cancel_flag(self.cancel);
        Ok(placer)
    }
}

/// The SMT-based AMS placement engine.
///
/// Prefer [`Placer::builder`]; [`Placer::new`] remains for direct
/// construction from a full [`PlacerConfig`].
///
/// # Examples
///
/// ```no_run
/// use ams_netlist::benchmarks;
/// use ams_place::{Placer, PlacerConfig};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let design = benchmarks::buf();
/// let placement = Placer::new(&design, PlacerConfig::fast())?.place()?;
/// placement.verify(&design).expect("placement is legal");
/// println!("HPWL = {} grid units", placement.hpwl(&design));
/// # Ok(())
/// # }
/// ```
pub struct Placer<'a> {
    design: &'a Design,
    config: PlacerConfig,
    scale: ScaleInfo,
    plan: PowerPlan,
    smt: Smt,
    vars: VarMap,
    /// The emitted constraint records (see [`crate::ir`]), kept after
    /// lowering for provenance diagnostics and recovery re-lowering.
    store: ConstraintStore,
    /// Active `(family, selector)` pairs — the latest generation of every
    /// lowered family. Passed as assumptions on every solve.
    selectors: Vec<(ConstraintFamily, Term)>,
    /// Per-family record/clause counts of the live generations.
    families: Vec<FamilyStats>,
    /// Total wall-clock time spent lowering (initial pass + re-lowerings).
    lowering: Duration,
    /// Lowering generation counter; bumped per recovery re-lowering so
    /// selector names stay unique.
    generation: u32,
    /// One entry per recovery rung taken so far.
    rungs: Vec<RungStats>,
    phi: Term,
    phi_w: u32,
    pd_check: Option<PinDensityCheck>,
    /// Selectors retired by recovery re-lowerings, kept for the lowering
    /// well-formedness validator ([`Placer::validate_lowering`]).
    retired: Vec<Term>,
    /// Presolve summary for [`PlaceStats`]; `None` when presolve is off.
    presolve: Option<PresolveStats>,
    /// Infeasibility proved by the domain pass. Computed at zero margins,
    /// so it stays valid across content-only recovery rungs; consumed by
    /// `presolve_fast_path`.
    presolve_domain_conflict: Option<PresolveConflict>,
    // Kept so recovery-ladder rebuilds can reinstall the caller's flag.
    cancel: Option<Arc<AtomicBool>>,
    /// Live selector guarding the wirelength-tightening bounds of the
    /// current job ([`crate::SolverConfig::reusable`] mode only); retired
    /// by [`Placer::rebase`] so a warm re-solve starts unbounded.
    objective: Option<Term>,
    /// Generation counter for objective selectors, so their names stay
    /// unique across warm re-solves.
    objective_gen: u32,
    /// SAT conflicts already counted by previous jobs on this (warm)
    /// solver; subtracted so [`PlaceStats::conflicts`] stays per-job.
    conflicts_base: u64,
    /// Warm-reuse summary recorded by [`Placer::rebase`], attached to the
    /// next [`Placer::place`] result's stats.
    warm_pending: Option<WarmStats>,
}

/// Everything deterministically derived from `(design, config)` before
/// lowering: the lint gate, power plan, scaled geometry, presolve verdicts,
/// solver + variable allocation, and the emitted (un-lowered) constraint
/// store. [`Placer::new`] lowers it into a ready placer;
/// [`Placer::rebase`] encodes a scratch copy to diff an incoming request
/// against a warm placer's live store, relying on this single code path to
/// keep term construction order — and hence [`Term`] identity — aligned
/// between the two.
struct EncodedDesign {
    scale: ScaleInfo,
    plan: PowerPlan,
    smt: Smt,
    vars: VarMap,
    store: ConstraintStore,
    phi: Term,
    phi_w: u32,
    pd_check: Option<PinDensityCheck>,
    presolve_stats: Option<PresolveStats>,
    domain_conflict: Option<PresolveConflict>,
    /// Whether domain pruning actually narrowed the variable allocation
    /// (presolve ran, produced domains, and certify did not veto them).
    pruned: bool,
}

/// How [`Placer::rebase`] absorbed a new configuration into a live solver.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum WarmReuse {
    /// The new configuration lowers to a bit-identical constraint store;
    /// nothing was re-lowered and every learnt clause stays in force.
    Identical,
    /// Only the listed families' records differed; their selectors were
    /// retired and replacements lowered on the live solver, carrying
    /// `learnts_carried` learnt clauses across.
    Relowered {
        /// Families retired + re-lowered, in canonical order.
        families: Vec<ConstraintFamily>,
        /// Learnt clauses alive at rebase time.
        learnts_carried: u64,
    },
    /// The delta is structural (die sizing, constraint toggles, variable
    /// widths, …): the live solver cannot absorb it — build a fresh
    /// [`Placer`] instead. The placer is left unchanged.
    Structural,
}

/// Encodes a design under a configuration into a fresh solver: the shared
/// front half of [`Placer::new`] and the scratch encoding of
/// [`Placer::rebase`].
fn encode_fresh(design: &Design, config: &PlacerConfig) -> Result<EncodedDesign, PlaceError> {
    // Phase 0: pre-solve constraint lint. Every error-severity finding
    // is a proof of unsatisfiability (or a broken reference that would
    // panic the encoders), so encoding would be wasted work. Two
    // exceptions let pin-density infeasibility (AMS-E011) through to
    // the solver: the recovery ladder repairs exactly that by raising
    // λ_th, and certify mode wants the *solver's* UNSAT — with its
    // DRAT certificate — rather than the linter's uncheckable verdict.
    // Presolve counts too: its capacity pass turns the same condition
    // into a provenance-cited Infeasible without a CDCL run.
    let report = crate::analysis::lint(design, config);
    if report.has_errors() {
        let solvable = config.recovery.enabled || config.solver.certify || config.presolve.enabled;
        let recoverable = solvable
            && report
                .errors()
                .all(|d| d.code == DiagCode::PinDensityInfeasible);
        if !recoverable {
            return Err(PlaceError::Lint(report));
        }
    }

    // Phase 1: power analysis (Fig. 3).
    let plan = if config.toggles.power_abutment {
        PowerPlan::analyze(design)
    } else {
        PowerPlan::default()
    };

    // Phase 2: scaling and variable initialization.
    let scale = ScaleInfo::compute(design, config);

    // Phase 2.5: static presolve. The domain pass narrows variable
    // domains (fed into allocation below); its verdict is kept because
    // it is computed at zero margins and so survives every content-only
    // recovery rung. Capacity proofs are re-checked per rung instead
    // (`presolve_fast_path`) since λ_th changes under recovery.
    let mut presolve_stats: Option<PresolveStats> = None;
    let mut domain_conflict: Option<PresolveConflict> = None;
    let mut domains = None;
    if config.presolve.enabled {
        let report = presolve::presolve_with(design, config, &scale, &plan);
        if let PresolveVerdict::Infeasible(c) = &report.verdict {
            if c.pass == "domain" {
                domain_conflict = Some(c.clone());
            }
        }
        presolve_stats = Some(PresolveStats {
            ran: true,
            verdict: if report.is_infeasible() {
                "infeasible".into()
            } else {
                "feasible".into()
            },
            vars_saved_bits: 0,
            clauses_saved: None,
            passes: report.passes.clone(),
        });
        domains = report.domains;
    }
    // Certified runs prove the un-pruned encoding: domain pruning is
    // sound, but the certificate should axiomatize exactly the vanilla
    // bit-blast the differential harness and CI smoke expect.
    let prune = if config.presolve.domain_pruning && !config.solver.certify {
        domains.as_ref()
    } else {
        None
    };

    let mut smt = Smt::new();
    if config.solver.certify {
        // Before any assertion, so the certificate's CNF is complete.
        smt.enable_proof();
    }
    let vars = VarMap::create(&mut smt, design, &scale, &plan, config, prune);
    if let Some(stats) = &mut presolve_stats {
        stats.vars_saved_bits = vars.saved_bits;
    }

    // Constraint formulation (Section IV.C, a–g): the encoders emit
    // typed records into the one constraint store.
    let encoding = encode::encode_design(&mut smt, design, &scale, &plan, &vars, config);
    let pd_check = encoding.pd_info.map(|info| {
        let pd = config.pin_density.as_ref().expect("pd_info implies config");
        PinDensityCheck {
            beta_x: info.beta_x,
            beta_y: info.beta_y,
            lambda: info.lambda,
            stride_x: pd.stride_x,
            stride_y: pd.stride_y,
        }
    });
    Ok(EncodedDesign {
        scale,
        plan,
        smt,
        vars,
        store: encoding.store,
        phi: encoding.phi,
        phi_w: encoding.phi_w,
        pd_check,
        presolve_stats,
        domain_conflict,
        pruned: prune.is_some(),
    })
}

impl<'a> Placer<'a> {
    /// Starts a [`PlacerBuilder`] for `design` with default configuration.
    pub fn builder(design: &'a Design) -> PlacerBuilder<'a> {
        PlacerBuilder {
            design,
            config: PlacerConfig::default(),
            threads: None,
            deadline: None,
            cancel: None,
            consult_env: true,
        }
    }

    /// Builds the full SMT encoding for a design under a configuration.
    ///
    /// # Errors
    ///
    /// Returns [`PlaceError::Config`] for out-of-range parameters and
    /// [`PlaceError::Lint`] when the pre-solve linter proves the instance
    /// broken or unsatisfiable (see [`crate::analysis::lint`]).
    pub fn new(design: &'a Design, config: PlacerConfig) -> Result<Placer<'a>, PlaceError> {
        config.validate().map_err(PlaceError::Config)?;
        let EncodedDesign {
            scale,
            plan,
            mut smt,
            vars,
            store,
            phi,
            phi_w,
            pd_check,
            mut presolve_stats,
            domain_conflict,
            pruned,
        } = encode_fresh(design, &config)?;

        // A single lowering pass installs the emitted records with
        // per-family guard selectors.
        let lowering = store.lower(&mut smt, 0);

        // Optional savings measurement: encode the same instance once more
        // without domains into a throwaway core and report the clause delta.
        if config.presolve.measure_savings && pruned {
            if let Some(stats) = &mut presolve_stats {
                let mut shadow = Smt::new();
                let svars = VarMap::create(&mut shadow, design, &scale, &plan, &config, None);
                let senc =
                    encode::encode_design(&mut shadow, design, &scale, &plan, &svars, &config);
                let _ = senc.store.lower(&mut shadow, 0);
                let delta = shadow
                    .num_sat_clauses()
                    .saturating_sub(smt.num_sat_clauses());
                stats.clauses_saved = Some(delta as u64);
            }
        }

        // Portfolio dispatch: every solve of the incremental loop fans out
        // across diversified workers when more than one thread is asked for.
        if config.solver.threads > 1 {
            smt.set_portfolio(Some(PortfolioConfig {
                threads: config.solver.threads,
                share_lbd_max: config.solver.share_lbd_max,
                seed: config.solver.seed,
                ..PortfolioConfig::default()
            }));
        }

        let placer = Placer {
            design,
            config,
            scale,
            plan,
            smt,
            vars,
            store,
            selectors: lowering.selectors,
            families: lowering.families,
            lowering: lowering.elapsed,
            generation: 0,
            rungs: Vec::new(),
            phi,
            phi_w,
            pd_check,
            retired: Vec::new(),
            presolve: presolve_stats,
            presolve_domain_conflict: domain_conflict,
            cancel: None,
            objective: None,
            objective_gen: 0,
            conflicts_base: 0,
            warm_pending: None,
        };
        debug_assert_eq!(placer.validate_lowering(), Ok(()));
        Ok(placer)
    }

    /// Installs (or clears) the cooperative cancel flag on this placer and
    /// its solver. Equivalent to [`PlacerBuilder::cancel_flag`]; exposed as
    /// a method so a warm, cached placer can adopt the *next* job's flag.
    pub fn set_cancel_flag(&mut self, flag: Option<Arc<AtomicBool>>) {
        self.cancel = flag.clone();
        self.smt.set_stop_flag(flag);
    }

    /// Absorbs a new configuration for the *same* design onto this live
    /// solver, so the next [`Placer::place_mut`] re-solves warm instead of
    /// from scratch. Requires [`crate::SolverConfig::reusable`] on both the
    /// current and the incoming configuration.
    ///
    /// The incoming configuration is encoded into a scratch solver by the
    /// same deterministic path that built this one, and the two constraint
    /// stores are diffed family-by-family (`ConstraintStore::diff_families`;
    /// identical construction order makes [`Term`] identities comparable).
    /// Three outcomes:
    ///
    /// - no family differs → [`WarmReuse::Identical`]: only solver knobs
    ///   changed; nothing is re-lowered.
    /// - only content-relowerable families differ (pin density, core
    ///   geometry margins, arrays) → their selectors are retired and the
    ///   new records lowered on the live solver, the recovery ladder's
    ///   mechanism driven by a request delta instead of an UNSAT —
    ///   [`WarmReuse::Relowered`] with the learnt-clause carryover count.
    /// - anything else differs (die sizing, bit-widths, symmetry/power
    ///   structure, presolve pruning, certify mode) →
    ///   [`WarmReuse::Structural`], placer untouched: build a fresh one.
    ///
    /// Either way the previous job's objective-tightening bounds are
    /// retracted (their selector is retired), the per-job conflict
    /// baseline resets, and the rung history clears.
    ///
    /// # Errors
    ///
    /// [`PlaceError::Config`] / [`PlaceError::Lint`] exactly when a cold
    /// [`Placer::new`] under `config` would fail the same way.
    pub fn rebase(&mut self, config: PlacerConfig) -> Result<WarmReuse, PlaceError> {
        config.validate().map_err(PlaceError::Config)?;
        if !self.config.solver.reusable || !config.solver.reusable {
            return Ok(WarmReuse::Structural);
        }
        // Certified runs need a proof log that axiomatizes the complete
        // CNF from its first clause; a warm core cannot provide that.
        if self.config.solver.certify || config.solver.certify {
            return Ok(WarmReuse::Structural);
        }

        let scratch = encode_fresh(self.design, &config)?;
        // Different scaled geometry means different coordinate bit-widths:
        // the variable map, and with it every clause, is invalidated.
        if scratch.scale != self.scale {
            return Ok(WarmReuse::Structural);
        }
        let changed = self.store.diff_families(&scratch.store);
        let relowerable = [
            ConstraintFamily::PinDensity,
            ConstraintFamily::CoreGeometry,
            ConstraintFamily::Arrays,
        ];
        if changed.iter().any(|fam| !relowerable.contains(fam)) {
            return Ok(WarmReuse::Structural);
        }

        // Committed: retract the previous job's wirelength bounds so the
        // warm solve starts unbounded, and reset per-job accounting.
        if let Some(sel) = self.objective.take() {
            self.smt.retire(sel);
        }
        let stats = self.smt.sat_stats();
        self.conflicts_base = stats.conflicts;
        self.rungs.clear();

        let reuse = if changed.is_empty() {
            self.config = config;
            WarmReuse::Identical
        } else {
            self.relower(config, &changed);
            WarmReuse::Relowered {
                families: changed.clone(),
                learnts_carried: stats.learnts,
            }
        };
        // Solver knobs may differ even when the constraints do not.
        self.smt.set_portfolio(if self.config.solver.threads > 1 {
            Some(PortfolioConfig {
                threads: self.config.solver.threads,
                share_lbd_max: self.config.solver.share_lbd_max,
                seed: self.config.solver.seed,
                ..PortfolioConfig::default()
            })
        } else {
            None
        });
        // Presolve verdicts are configuration-dependent; adopt the scratch
        // encode's so `presolve_fast_path` reasons about the new request.
        self.presolve = scratch.presolve_stats;
        self.presolve_domain_conflict = scratch.domain_conflict;
        self.warm_pending = Some(WarmStats {
            relowered: changed,
            learnts_carried: stats.learnts,
        });
        debug_assert_eq!(self.validate_lowering(), Ok(()));
        Ok(reuse)
    }

    /// The scaled-design geometry of this instance.
    pub fn scale(&self) -> &ScaleInfo {
        &self.scale
    }

    /// Number of SAT variables in the encoding so far.
    pub fn sat_vars(&self) -> usize {
        self.smt.num_sat_vars()
    }

    /// Number of SAT clauses in the encoding so far.
    pub fn sat_clauses(&self) -> usize {
        self.smt.num_sat_clauses()
    }

    /// Presolve summary of this instance (`None` when presolve is off).
    pub fn presolve_stats(&self) -> Option<&PresolveStats> {
        self.presolve.as_ref()
    }

    /// Checks the selector-literal discipline of the live lowering: every
    /// family with records has exactly one live selector, no selector is
    /// shared or doubly guarded, and no retired selector is still passed
    /// as an assumption. Runs under `debug_assertions` after every
    /// lower/retire/re-lower; CI exercises it explicitly.
    ///
    /// # Errors
    ///
    /// A description of the first violated invariant.
    pub fn validate_lowering(&self) -> Result<(), String> {
        presolve::validate_lowering(&self.store, &self.selectors, &self.retired)
    }

    /// Returns the presolve infeasibility verdict for the *current*
    /// configuration, if any, as a ready-to-return error. Domain-pass
    /// conflicts are rung-invariant and replayed from `new()`; capacity
    /// proofs are re-checked here because recovery rungs change λ_th and
    /// margins. Disabled under certify, where the caller wants the
    /// solver's DRAT-backed UNSAT instead.
    fn presolve_fast_path(&mut self) -> Option<PlaceError> {
        if !self.config.presolve.enabled || self.config.solver.certify {
            return None;
        }
        let conflict = self.presolve_domain_conflict.clone().or_else(|| {
            presolve::capacity_check(self.design, &self.config, &self.scale, &self.plan).err()
        })?;
        if let Some(stats) = &mut self.presolve {
            stats.verdict = "infeasible".into();
        }
        let families = vec![conflict.family];
        let mut provenance = vec![conflict.message()];
        provenance.extend(self.store.provenance_lines(&families));
        Some(PlaceError::Infeasible {
            conflict: families,
            provenance,
            certificate: None,
        })
    }

    /// Runs the incremental placement flow to completion, supervising the
    /// wall-clock deadline and — when the constraints are infeasible and
    /// recovery is enabled ([`crate::RecoveryConfig`]) — a bounded ladder
    /// of targeted relaxations driven by the UNSAT attribution.
    ///
    /// Relaxation rungs that change only constraint content (raising λ_th,
    /// softening extensions) retire and re-lower just the blamed families
    /// on the *live* solver, so learnt clauses from earlier rungs carry
    /// over ([`crate::RungStats::learnts_carried`]). Only die widening —
    /// which changes coordinate bit-widths — rebuilds from scratch.
    ///
    /// # Errors
    ///
    /// [`PlaceError::Infeasible`] if the constraints admit no placement
    /// even after the relaxation ladder;
    /// [`PlaceError::BudgetExhausted`] / [`PlaceError::DeadlineExpired`]
    /// if the conflict budget or wall-clock deadline runs out before a
    /// first model (after one, degradation tags the result
    /// [`PlaceOutcome::Anytime`] instead);
    /// [`PlaceError::Cancelled`] when the cancel flag is raised;
    /// [`PlaceError::Internal`] if the solver infrastructure itself failed
    /// (e.g. every portfolio worker panicked) before a model existed.
    pub fn place(mut self) -> Result<Placement, PlaceError> {
        self.place_mut()
    }

    /// [`Placer::place`] by mutable reference: runs one job to completion
    /// and leaves the placer alive for reuse. With
    /// [`crate::SolverConfig::reusable`] set, a later [`Placer::rebase`]
    /// can absorb a modified request onto this solver so the next
    /// `place_mut` starts from everything learnt here.
    pub fn place_mut(&mut self) -> Result<Placement, PlaceError> {
        let result = self.run_job();
        // The warm-reuse marker describes how *this* job started; the next
        // one (after another `rebase`) reports its own.
        self.warm_pending = None;
        result
    }

    fn run_job(&mut self) -> Result<Placement, PlaceError> {
        let t0 = Instant::now();
        let deadline = self.config.solver.deadline.map(|d| t0 + d);
        self.smt.set_deadline(deadline);

        let max_rungs = if self.config.recovery.enabled {
            self.config.recovery.max_rungs
        } else {
            0
        };
        let mut relaxations: Vec<Relaxation> = Vec::new();

        loop {
            match self.solve_rounds(t0, deadline) {
                Ok(mut placement) => {
                    if !relaxations.is_empty() {
                        placement.stats.outcome = PlaceOutcome::Recovered { relaxations };
                        placement.stats.runtime = t0.elapsed();
                    }
                    return Ok(placement);
                }
                Err(PlaceError::Infeasible {
                    conflict,
                    provenance,
                    certificate,
                }) => {
                    let out_of_time = deadline.is_some_and(|d| Instant::now() >= d);
                    if relaxations.len() >= max_rungs || out_of_time {
                        return Err(PlaceError::Infeasible {
                            conflict,
                            provenance,
                            certificate,
                        });
                    }
                    let Some((relax, config)) = self.next_relaxation(&conflict, &relaxations)
                    else {
                        return Err(PlaceError::Infeasible {
                            conflict,
                            provenance,
                            certificate,
                        });
                    };
                    relaxations.push(relax.clone());
                    let learnts_carried = self.smt.sat_stats().learnts;
                    let rebuilt = match relax {
                        // Content-only rungs: retire the blamed families'
                        // selectors and re-lower just them on the live
                        // core — everything the solver learnt from the
                        // other families (and earlier rungs) stays useful.
                        Relaxation::RaisePinDensity { .. } => {
                            self.relower(config, &[ConstraintFamily::PinDensity]);
                            false
                        }
                        Relaxation::RelaxExtensions { .. } => {
                            // Extension margins feed both region/cell
                            // spacing and array keepouts.
                            self.relower(
                                config,
                                &[ConstraintFamily::CoreGeometry, ConstraintFamily::Arrays],
                            );
                            false
                        }
                        // Die widening changes coordinate bit-widths, so
                        // the variable map — and with it every clause — is
                        // invalidated: rebuild from scratch.
                        Relaxation::WidenDie { .. } => {
                            let cancel = self.cancel.take();
                            let rungs = std::mem::take(&mut self.rungs);
                            let warm = self.warm_pending.take();
                            *self = Placer::new(self.design, config)?;
                            self.rungs = rungs;
                            self.warm_pending = warm;
                            self.set_cancel_flag(cancel);
                            self.smt.set_deadline(deadline);
                            true
                        }
                    };
                    self.rungs.push(RungStats {
                        relaxation: relaxations.last().expect("just pushed").clone(),
                        learnts_carried: if rebuilt { 0 } else { learnts_carried },
                        rebuilt,
                    });
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// The Algorithm 1 incremental loop: a feasibility solve, then
    /// ζ-tightened improvement rounds, returning the best placement found.
    /// Deadline/budget expiry (or losing every portfolio worker) after the
    /// first model degrades the result to [`PlaceOutcome::Anytime`] rather
    /// than failing.
    fn solve_rounds(
        &mut self,
        t0: Instant,
        deadline: Option<Instant>,
    ) -> Result<Placement, PlaceError> {
        let opt = self.config.optimize;
        // Presolve fast path: an interval- or counting-proved infeasibility
        // returns immediately — zero CDCL conflicts — as the same
        // `Infeasible` shape the recovery ladder already consumes.
        if let Some(err) = self.presolve_fast_path() {
            return Err(err);
        }
        // A warm re-solve keeps the previous job's saved phases — they
        // encode a full legal model, a far better start than the greedy
        // packing seed.
        if self.warm_pending.is_none() {
            self.seed_hints();
        }
        self.smt.set_conflict_budget(opt.first_conflict_budget);

        let mut best: Option<Model> = None;
        let mut trace: Vec<u64> = Vec::new();
        let mut freeze: Vec<Term> = Vec::new();
        let mut sat_rounds = 0usize;
        let mut retried_unfrozen = false;
        let mut degraded: Option<DegradeReason> = None;

        loop {
            // Between rounds the deadline is checked precisely (in-search
            // checks are coarsened to every few conflicts): with a model in
            // hand there is no point starting a round we cannot finish.
            if best.is_some() && deadline.is_some_and(|d| Instant::now() >= d) {
                degraded = Some(DegradeReason::Deadline);
                break;
            }
            match self.solve_round(&freeze) {
                SmtResult::Sat => {
                    retried_unfrozen = false;
                    // Optimization rounds run under the (tighter) per-round
                    // budget; only feasibility gets the first-solve budget.
                    self.smt.set_conflict_budget(opt.conflict_budget);
                    let model = self.extract_model();
                    let phi_now = encode::wirelength::measure_weighted_hpwl(
                        self.design,
                        &self.vars,
                        &model.xs,
                        &model.ys,
                    );
                    trace.push(phi_now);
                    best = Some(model.clone());
                    sat_rounds += 1;
                    if sat_rounds > opt.k_iter || phi_now == 0 {
                        break;
                    }
                    // Line 8: tighten the wirelength bound Φ < ζ·Φ'.
                    let zeta = (opt.zeta_start - opt.zeta_step * (sat_rounds - 1) as f64)
                        .max(opt.zeta_min);
                    let bound = (zeta * phi_now as f64).floor() as u64;
                    if bound == 0 {
                        break;
                    }
                    let c = self.smt.bv_const(self.phi_w, bound);
                    let lt = self.smt.ult(self.phi, c);
                    // In reusable mode the bound goes in behind this job's
                    // objective selector (assumed by `solve_round`), so
                    // `rebase` can retract every tightening at once and a
                    // warm re-solve starts unbounded. One-shot solves
                    // assert it permanently — bit-identical CNF to before
                    // the selector existed.
                    if self.config.solver.reusable {
                        let guard = self.objective_selector();
                        self.smt.set_guard(Some(guard));
                        self.smt.assert(lt);
                        self.smt.set_guard(None);
                    } else {
                        self.smt.assert(lt);
                    }
                    // Warm-start hints toward the current model.
                    self.apply_hints(&model);
                    // Line 9: freeze low-priority cells/regions.
                    freeze = if opt.freeze {
                        self.freeze_assumptions(&model, sat_rounds)
                    } else {
                        Vec::new()
                    };
                }
                SmtResult::Unsat => {
                    if best.is_none() {
                        return Err(self.infeasible());
                    }
                    if !freeze.is_empty() && opt.retry_unfrozen && !retried_unfrozen {
                        // The freeze may be what blocks improvement; retry
                        // this round with everything free.
                        freeze.clear();
                        retried_unfrozen = true;
                        continue;
                    }
                    break;
                }
                SmtResult::Unknown => {
                    let cause = self.smt.stop_cause();
                    if best.is_none() {
                        return Err(match cause {
                            Some(StopCause::Deadline) => PlaceError::DeadlineExpired,
                            Some(StopCause::AllWorkersPanicked) => PlaceError::Internal(
                                "every portfolio worker panicked before a model was found".into(),
                            ),
                            _ => PlaceError::BudgetExhausted,
                        });
                    }
                    degraded = Some(match cause {
                        Some(StopCause::Deadline) => DegradeReason::Deadline,
                        Some(StopCause::AllWorkersPanicked) => DegradeReason::SolverFailure,
                        _ => DegradeReason::ConflictBudget,
                    });
                    break;
                }
                SmtResult::Cancelled => {
                    return Err(PlaceError::Cancelled);
                }
            }
        }

        let Some(model) = best else {
            return Err(PlaceError::Internal(
                "optimization loop ended without a model or an error".into(),
            ));
        };
        let summary = self.smt.portfolio_summary();
        let stats = PlaceStats {
            outcome: match degraded {
                None => PlaceOutcome::Optimal,
                Some(reason) => PlaceOutcome::Anytime {
                    rounds: sat_rounds,
                    reason,
                },
            },
            iterations: sat_rounds,
            runtime: t0.elapsed(),
            // Per-job: a warm solver's counter keeps running across jobs,
            // so subtract what previous jobs already spent.
            conflicts: self
                .smt
                .sat_stats()
                .conflicts
                .saturating_sub(self.conflicts_base),
            hpwl_trace: trace,
            sat_vars: self.smt.num_sat_vars(),
            sat_clauses: self.smt.num_sat_clauses(),
            families: self.families.clone(),
            lowering: self.lowering,
            rungs: self.rungs.clone(),
            threads: self.config.solver.threads.max(1),
            workers: summary.workers.clone(),
            winner: summary.last_winner,
            certify: None,
            presolve: self.presolve.clone(),
            warm: self.warm_pending.clone(),
            closure: None,
        };
        let mut placement = self.finalize(model, stats);
        // Certify mode closes the SAT half of the loop: re-check the model
        // against the independent legality oracle and report the proof-log
        // footprint alongside.
        if let Some(proof) = self.smt.proof_log() {
            let model_violations = match placement.verify(self.design) {
                Ok(()) => 0,
                Err(v) => v.len(),
            };
            placement.stats.certify = Some(CertifyReport {
                cnf_clauses: proof.num_clauses(),
                proof_steps: proof.num_steps(),
                model_violations,
            });
        }
        Ok(placement)
    }

    /// Picks the next relaxation rung for an infeasible instance blamed on
    /// `conflict` (the failed-selector attribution of the UNSAT solve;
    /// empty only defensively). Order: raise the pin-density threshold λ_th
    /// (Eq. 14), then soften extension margins (Eq. 11) 1.0 → 0.5 → 0.0,
    /// then widen the die (admitting more region dimension candidates,
    /// Eq. 4–5). Purely structural conflicts — symmetry, arrays, power
    /// abutment — are never relaxed away: those constraints are the spec.
    fn next_relaxation(
        &self,
        conflict: &[ConstraintFamily],
        applied: &[Relaxation],
    ) -> Option<(Relaxation, PlacerConfig)> {
        let unattributed = conflict.is_empty();
        let blames = |fam: ConstraintFamily| conflict.contains(&fam);
        let mut config = self.config.clone();
        // Each retry runs under a decayed feasibility budget so an
        // unrecoverable instance cannot burn max_rungs full budgets.
        config.optimize.first_conflict_budget = config
            .optimize
            .first_conflict_budget
            .map(|b| (b / 2).max(10_000));

        // Rung A: raise λ_th. On an unattributed conflict this is tried at
        // most twice before the geometric rungs get their turn.
        let pd_raises = applied
            .iter()
            .filter(|r| matches!(r, Relaxation::RaisePinDensity { .. }))
            .count();
        if let Some(pd) = &self.config.pin_density {
            if blames(ConstraintFamily::PinDensity) || (unattributed && pd_raises < 2) {
                let from = encode::pin_density::resolve_lambda(self.design, &self.scale, pd);
                let auto = encode::pin_density::resolve_lambda(
                    self.design,
                    &self.scale,
                    &PinDensityConfig {
                        lambda: None,
                        ..pd.clone()
                    },
                );
                // At least halfway toward the auto-calibrated threshold,
                // and always a strict geometric step up from the current.
                let to = auto.max(from + from / 2 + 1);
                config.pin_density = Some(PinDensityConfig {
                    lambda: Some(to),
                    ..pd.clone()
                });
                return Some((Relaxation::RaisePinDensity { from, to }, config));
            }
        }

        if blames(ConstraintFamily::CoreGeometry) || unattributed {
            // Rung B: soften extension margins, if they are in play.
            if self.config.toggles.extensions && self.config.extension_scale > 0.0 {
                let scale = if self.config.extension_scale > 0.5 {
                    0.5
                } else {
                    0.0
                };
                config.extension_scale = scale;
                return Some((Relaxation::RelaxExtensions { scale }, config));
            }
            // Rung C: widen the die.
            let die_slack = self.config.die_slack * 1.15;
            config.die_slack = die_slack;
            return Some((Relaxation::WidenDie { die_slack }, config));
        }

        None
    }

    /// One solve of the incremental loop: the live family selectors plus
    /// the round's freeze literals (Eq. 15) go in as assumptions. Shared
    /// by the feasibility solve, every ζ-tightening round, and the
    /// unfrozen retry — the assumption plumbing lives in exactly one
    /// place.
    fn solve_round(&mut self, freeze: &[Term]) -> SmtResult {
        let mut assumptions: Vec<Term> = self.selectors.iter().map(|&(_, sel)| sel).collect();
        // Reusable mode: enable this job's objective-tightening bounds.
        assumptions.extend(self.objective);
        assumptions.extend_from_slice(freeze);
        self.smt.solve_with(&assumptions)
    }

    /// The live objective guard selector, created on first use per job
    /// (reusable mode only).
    fn objective_selector(&mut self) -> Term {
        match self.objective {
            Some(sel) => sel,
            None => {
                self.objective_gen += 1;
                let sel = self.smt.bool_var(format!("obj_g{}", self.objective_gen));
                self.objective = Some(sel);
                sel
            }
        }
    }

    /// Retires the listed families' selectors on the live solver, re-emits
    /// their constraints under `config`, and lowers the fresh records as a
    /// new guard generation. Learnt clauses that depend on a retired
    /// selector become vacuous; everything else the solver knows survives.
    ///
    /// Only valid for relaxations that keep the coordinate bit-widths (and
    /// hence the [`VarMap`]) intact — λ_th raises and extension softening,
    /// not die widening.
    fn relower(&mut self, config: PlacerConfig, families: &[ConstraintFamily]) {
        self.config = config;
        self.generation += 1;

        let (dropped, kept): (Vec<_>, Vec<_>) = self
            .selectors
            .drain(..)
            .partition(|(fam, _)| families.contains(fam));
        self.selectors = kept;
        for (_, sel) in dropped {
            self.retired.push(sel);
            self.smt.retire(sel);
        }

        self.store.remove_families(families);
        let mark = self.store.len();
        for &family in families {
            match family {
                ConstraintFamily::CoreGeometry => {
                    encode::region::assert_regions(
                        &mut self.smt,
                        &mut self.store,
                        self.design,
                        &self.scale,
                        &self.vars,
                        &self.config,
                    );
                    encode::region::assert_containment(
                        &mut self.smt,
                        &mut self.store,
                        self.design,
                        &self.scale,
                        &self.vars,
                    );
                    let margins =
                        encode::region::cell_margins(self.design, &self.scale, &self.config);
                    encode::region::assert_cell_non_overlap(
                        &mut self.smt,
                        &mut self.store,
                        self.design,
                        &self.scale,
                        &self.vars,
                        &self.config,
                        &margins,
                    );
                }
                ConstraintFamily::Arrays => {
                    if self.config.toggles.arrays {
                        encode::array::assert_arrays(
                            &mut self.smt,
                            &mut self.store,
                            self.design,
                            &self.scale,
                            &self.vars,
                            &self.config,
                        );
                    }
                }
                ConstraintFamily::PinDensity => {
                    if let Some(pd) = self.config.pin_density.clone() {
                        let info = encode::pin_density::assert_pin_density(
                            &mut self.smt,
                            &mut self.store,
                            self.design,
                            &self.scale,
                            &self.vars,
                            &pd,
                        );
                        self.pd_check = Some(PinDensityCheck {
                            beta_x: info.beta_x,
                            beta_y: info.beta_y,
                            lambda: info.lambda,
                            stride_x: pd.stride_x,
                            stride_y: pd.stride_y,
                        });
                    } else {
                        // A rebase can turn pin density off entirely; the
                        // stale check must not leak into the placement.
                        self.pd_check = None;
                    }
                }
                ConstraintFamily::Symmetry
                | ConstraintFamily::PowerAbutment
                | ConstraintFamily::Wirelength => {
                    unreachable!("no relaxation rung re-lowers {family}")
                }
            }
        }

        let lowering = self.store.lower_from(&mut self.smt, self.generation, mark);
        self.lowering += lowering.elapsed;
        self.families.retain(|fs| !families.contains(&fs.family));
        self.families.extend(lowering.families);
        self.families.sort_by_key(|fs| fs.family);
        self.selectors.extend(lowering.selectors);
        debug_assert_eq!(self.validate_lowering(), Ok(()));
    }

    /// Shapes a first-solve UNSAT into [`PlaceError::Infeasible`]: the
    /// failed selector assumptions of the solve that just returned name
    /// the blamed families directly — no second encoding, no re-solve —
    /// and the constraint store supplies their provenance lines.
    fn infeasible(&self) -> PlaceError {
        // Certificate target: the negated failed assumptions, which is
        // exactly what `unsat_certificate` derives for an assumption-based
        // verdict.
        let certificate = self.smt.unsat_certificate().map(Box::new);
        let conflict = conflict_families(&self.selectors, self.smt.failed_assumptions());
        let provenance = self.store.provenance_lines(&conflict);
        PlaceError::Infeasible {
            conflict,
            provenance,
            certificate,
        }
    }

    /// Seeds the SAT polarity toward a quick greedy packing: regions
    /// stacked left-to-right at their most-square candidate dimensions,
    /// cells row-packed inside (power bands bottom-up). Hints are soft —
    /// an imperfect seed only biases the first descent.
    fn seed_hints(&mut self) {
        let die_w = u64::from(self.scale.scaled_w);
        let mut cursor_x = 0u64;
        for r in self.design.region_ids() {
            let ri = r.index();
            let (ex, ey) = self.scale.region_edge[ri];
            let min_w = self
                .design
                .cells_in_region(r)
                .map(|c| self.scale.width_of(c))
                .max()
                .unwrap_or(1);
            let min_h = self
                .design
                .cells_in_region(r)
                .map(|c| self.scale.height_of(c))
                .max()
                .unwrap_or(1);
            let cands = encode::region::dimension_candidates(
                self.scale.region_target[ri],
                min_w,
                min_h,
                self.scale.scaled_w,
                self.scale.scaled_h,
            );
            let Some(&(w, h)) = cands
                .iter()
                .min_by_key(|(w, h)| (i64::from(*w) - i64::from(*h)).abs())
            else {
                continue;
            };
            let rx = (cursor_x + u64::from(ex)).min(die_w.saturating_sub(u64::from(w)));
            let ry = u64::from(ey);
            self.smt.hint_bv_value(self.vars.region_x[ri], rx);
            self.smt.hint_bv_value(self.vars.region_y[ri], ry);
            self.smt.hint_bv_value(self.vars.region_w[ri], u64::from(w));
            self.smt.hint_bv_value(self.vars.region_h[ri], u64::from(h));
            cursor_x = rx + u64::from(w) + u64::from(2 * ex) + 1;

            // Row-pack the cells: power bands bottom-up, wide cells first.
            let plan_bands: Vec<ams_netlist::PowerGroupId> = self
                .plan
                .for_region(r)
                .map(|p| p.bands.clone())
                .unwrap_or_default();
            let band_of = |c: CellId| -> usize {
                plan_bands
                    .iter()
                    .position(|&g| g == self.design.cell(c).power_group)
                    .unwrap_or(0)
            };
            let mut cells: Vec<CellId> = self.design.cells_in_region(r).collect();
            cells.sort_by(|&a, &b| {
                band_of(a)
                    .cmp(&band_of(b))
                    .then(self.scale.width_of(b).cmp(&self.scale.width_of(a)))
                    .then(a.cmp(&b))
            });
            let (mut x, mut y) = (0u64, 0u64);
            let mut row_h = 0u64;
            let mut band = cells.first().map(|&c| band_of(c)).unwrap_or(0);
            for c in cells {
                let cw = u64::from(self.scale.width_of(c));
                let ch = u64::from(self.scale.height_of(c));
                if x + cw > u64::from(w) || band_of(c) != band {
                    x = 0;
                    y += row_h.max(1);
                    row_h = 0;
                    band = band_of(c);
                }
                self.smt.hint_bv_value(self.vars.cell_x[c.index()], rx + x);
                self.smt.hint_bv_value(self.vars.cell_y[c.index()], ry + y);
                x += cw;
                row_h = row_h.max(ch);
            }
        }
    }

    fn extract_model(&self) -> Model {
        let xs = self
            .vars
            .cell_x
            .iter()
            .map(|&t| self.smt.bv_value(t))
            .collect();
        let ys = self
            .vars
            .cell_y
            .iter()
            .map(|&t| self.smt.bv_value(t))
            .collect();
        let region_x = self
            .vars
            .region_x
            .iter()
            .map(|&t| self.smt.bv_value(t))
            .collect();
        let region_y = self
            .vars
            .region_y
            .iter()
            .map(|&t| self.smt.bv_value(t))
            .collect();
        let region_w = self
            .vars
            .region_w
            .iter()
            .map(|&t| self.smt.bv_value(t))
            .collect();
        let region_h = self
            .vars
            .region_h
            .iter()
            .map(|&t| self.smt.bv_value(t))
            .collect();
        Model {
            xs,
            ys,
            region_x,
            region_y,
            region_w,
            region_h,
        }
    }

    fn apply_hints(&mut self, model: &Model) {
        for (i, &t) in self.vars.cell_x.iter().enumerate() {
            self.smt.hint_bv_value(t, model.xs[i]);
        }
        for (i, &t) in self.vars.cell_y.iter().enumerate() {
            self.smt.hint_bv_value(t, model.ys[i]);
        }
        for (i, &t) in self.vars.region_x.iter().enumerate() {
            self.smt.hint_bv_value(t, model.region_x[i]);
        }
        for (i, &t) in self.vars.region_y.iter().enumerate() {
            self.smt.hint_bv_value(t, model.region_y[i]);
        }
    }

    /// Builds the Line-9 assumption set: the lowest-priority cells (Eq. 15)
    /// and smallest regions are frozen at their current model positions,
    /// with the frozen share growing each round.
    fn freeze_assumptions(&mut self, model: &Model, round: usize) -> Vec<Term> {
        let frac = (self.config.optimize.freeze_fraction * round as f64).min(0.9);
        let mut out = Vec::new();

        // Cells ascending by PR_v: freeze the least-connected share.
        let mut cells: Vec<CellId> = self.design.cell_ids().collect();
        cells.sort_by_key(|&c| self.design.cell_priority(c));
        let n_freeze = (cells.len() as f64 * frac).floor() as usize;
        for &c in cells.iter().take(n_freeze) {
            let fx = self
                .smt
                .eq_const(self.vars.cell_x[c.index()], model.xs[c.index()]);
            let fy = self
                .smt
                .eq_const(self.vars.cell_y[c.index()], model.ys[c.index()]);
            out.push(fx);
            out.push(fy);
        }

        // Regions ascending by PR_r = A_r: freeze the smallest share.
        let mut regions: Vec<RegionId> = self.design.region_ids().collect();
        regions.sort_by_key(|&r| self.design.region_cell_area(r));
        let r_freeze = (regions.len() as f64 * frac).floor() as usize;
        for &r in regions.iter().take(r_freeze) {
            let i = r.index();
            for (var, val) in [
                (self.vars.region_x[i], model.region_x[i]),
                (self.vars.region_y[i], model.region_y[i]),
                (self.vars.region_w[i], model.region_w[i]),
                (self.vars.region_h[i], model.region_h[i]),
            ] {
                out.push(self.smt.eq_const(var, val));
            }
        }
        out
    }

    fn finalize(&self, model: Model, stats: PlaceStats) -> Placement {
        let (uw, uh) = (self.scale.unit_w, self.scale.unit_h);
        let cells: Vec<Rect> = self
            .design
            .cell_ids()
            .map(|c| {
                Rect::new(
                    model.xs[c.index()] as u32 * uw,
                    model.ys[c.index()] as u32 * uh,
                    self.design.cell(c).width,
                    self.design.cell(c).height,
                )
            })
            .collect();
        let regions: Vec<Rect> = (0..self.design.regions().len())
            .map(|i| {
                Rect::new(
                    model.region_x[i] as u32 * uw,
                    model.region_y[i] as u32 * uh,
                    model.region_w[i] as u32 * uw,
                    model.region_h[i] as u32 * uh,
                )
            })
            .collect();
        let die = Rect::new(0, 0, self.scale.scaled_w * uw, self.scale.scaled_h * uh);
        let edge_cells = crate::post::edge_cells(self.design, &self.scale, &regions);
        let dummy_cells = crate::post::dummy_cells(self.design, &self.scale, &regions, &cells);
        let _ = &self.plan;
        Placement {
            cells,
            regions,
            die,
            edge_cells,
            dummy_cells,
            units: (uw, uh),
            pin_density: self.pd_check,
            stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ams_netlist::benchmarks;

    /// White-box check of the per-job conflict accounting: the live SAT
    /// core's conflict counter runs monotonically across jobs, so after a
    /// rebase the baseline must equal the running total and the next
    /// job's report must be the delta past it.
    #[test]
    fn rebase_resets_the_per_job_conflict_baseline() {
        let d = benchmarks::synthetic(benchmarks::SyntheticParams {
            regions: 2,
            cells_per_region: 5,
            nets: 8,
            net_degree: 3,
            symmetry_pairs: 1,
            ..Default::default()
        });
        let mut config = PlacerConfig::fast();
        config.solver.reusable = true;
        config.optimize.k_iter = 1;
        config.optimize.conflict_budget = Some(10_000);
        config.optimize.first_conflict_budget = Some(100_000);
        let mut placer = Placer::new(&d, config.clone()).expect("encode");

        let first = placer.place_mut().expect("cold solve");
        let total_after_first = placer.smt.sat_stats().conflicts;
        assert_eq!(placer.conflicts_base, 0);
        assert_eq!(first.stats.conflicts, total_after_first);

        assert_eq!(placer.rebase(config).expect("rebase"), WarmReuse::Identical);
        assert_eq!(placer.conflicts_base, total_after_first);

        let second = placer.place_mut().expect("warm solve");
        let total_after_second = placer.smt.sat_stats().conflicts;
        assert_eq!(
            second.stats.conflicts,
            total_after_second - total_after_first,
            "warm job must report only its own conflicts"
        );
    }
}

//! # ams-place
//!
//! The SMT-based routability-aware placement framework for region-based
//! FinFET AMS layouts — the primary contribution of the DATE 2022 paper
//! this workspace reproduces.
//!
//! The flow (Fig. 3 of the paper):
//!
//! 1. **Power analysis** ([`PowerPlan`]) derives power-abutment constraints;
//! 2. **SMT placement** ([`Placer`], built via [`Placer::builder`]) encodes
//!    regions, non-overlap, hierarchical symmetry, arrays/common-centroid,
//!    clusters, extensions, power abutment, and window-based pin density
//!    into quantifier-free bit-vector formulas, then optimizes wirelength
//!    by incremental solving (Algorithm 1) with assumption-based variable
//!    freezing (Eq. 15); each solve can fan out over a parallel solver
//!    portfolio ([`SolverConfig::threads`] or [`PlacerBuilder::threads`]);
//! 3. **Post-processing** inserts edge and dummy cells.
//!
//! [`Placement::verify`] is an independent legality oracle, and
//! [`baseline::manual_surrogate`] provides the manual-layout stand-in used
//! by the evaluation harness.
//!
//! Before encoding, the [`analysis`] linter vets the design + constraint
//! set + configuration and reports structured `AMS-Exxx` diagnostics;
//! provably-broken inputs fail fast with [`PlaceError::Lint`] instead of a
//! late solver UNSAT, and [`analysis::explain_unsat`] attributes genuine
//! UNSATs to the conflicting constraint families. The [`analysis::presolve`]
//! analyzer goes further: abstract-interpretation interval domains narrow
//! variable bit-widths before encoding, and capacity/counting proofs turn
//! some infeasibilities into provenance-cited verdicts with zero solver
//! conflicts.
//!
//! ## Example
//!
//! ```no_run
//! use ams_netlist::benchmarks;
//! use ams_place::{Placer, PlacerConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let design = benchmarks::buf();
//! let placement = Placer::builder(&design)
//!     .config(PlacerConfig::default())
//!     .build()?
//!     .place()?;
//! assert!(placement.verify(&design).is_ok());
//! # Ok(())
//! # }
//! ```

pub mod analysis;
pub mod api;
pub mod baseline;
pub mod brute;
pub mod closure;
mod config;
mod encode;
pub mod ir;
mod placement;
mod placer;
mod post;
mod power;
mod scale;
pub mod scenario;
mod svg;
mod vars;

pub use analysis::presolve::{PresolveConflict, PresolveReport, PresolveVerdict};
pub use closure::{ClosureConfig, ClosureStats, RouteFeedback, WindowRect};
pub use config::{
    ConstraintToggles, OptimizeConfig, PinDensityConfig, PlacerConfig, PresolveConfig,
    RecoveryConfig, SolverConfig, SolverOverrides,
};
pub use ir::{ConstraintFamily, FamilyStats, Provenance};
pub use placement::{
    placement_from_rects, CertifyReport, DegradeReason, PinDensityCheck, PlaceOutcome, PlaceStats,
    Placement, PresolvePassStats, PresolveStats, Relaxation, RungStats, Violation, ViolationKind,
    WarmStats,
};
pub use placer::{PlaceError, Placer, PlacerBuilder, WarmReuse};
// Re-exported so downstream consumers can validate infeasibility
// certificates without depending on `ams_sat` directly.
pub use ams_sat::drat;
pub use power::{PowerPlan, RegionPowerPlan};
pub use scale::{bits_for, ScaleInfo};
pub use svg::render_svg;

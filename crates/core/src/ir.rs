//! The provenance-carrying constraint IR between the encoders and the SMT
//! layer.
//!
//! Every encoder module emits typed `Constraint` records — a family, a
//! provenance site, and an [`ams_smt`] term payload — into one
//! `ConstraintStore` (crate-internal) instead of asserting into the solver
//! directly. A single lowering pass (`ConstraintStore::lower`) installs the
//! records, with every family guarded by a fresh selector literal
//! (`sel_<family>_g<generation>`, see [`ams_smt::Smt::set_guard`]).
//!
//! One store, three consumers:
//!
//! * **Solving** passes the selectors as assumptions on every solve, so the
//!   encoding behaves exactly as if asserted directly — and an UNSAT
//!   verdict's failed assumptions name the conflicting families for free
//!   (no re-encode, no second solve).
//! * **Recovery** retires a relaxed family's selector
//!   ([`ams_smt::Smt::retire`]) and lowers a replacement generation on the
//!   live solver, keeping every learnt clause that does not depend on the
//!   retired family.
//! * **Diagnostics** ([`crate::PlaceError::Infeasible`], lint `--explain`)
//!   cite the provenance sites of the blamed families.

use ams_netlist::{CellId, NetId, RegionId};
use ams_smt::{Smt, Term};
use std::fmt;
use std::time::{Duration, Instant};

/// The constraint families of the encoding (Section IV.C), as attribution
/// units for UNSAT explanation, lowering statistics, and recovery.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum ConstraintFamily {
    /// Region sizing/separation, containment, and cell non-overlap
    /// (Eq. 4–7, 11) — the critical geometry.
    CoreGeometry,
    /// Hierarchical symmetry (Eq. 8).
    Symmetry,
    /// Arrays and matching patterns (Eq. 9–10).
    Arrays,
    /// Power-abutment row bands (Eq. 12).
    PowerAbutment,
    /// Window-based pin density (Eq. 13–14).
    PinDensity,
    /// Net bounding-box links feeding the wirelength objective Φ
    /// (Algorithm 1). Always satisfiable on their own, so this family is
    /// excluded from conflict attribution; it exists so the objective
    /// bookkeeping flows through the same store as every real constraint.
    Wirelength,
}

impl ConstraintFamily {
    /// Every family, in canonical (lowering) order.
    pub const ALL: [ConstraintFamily; 6] = [
        ConstraintFamily::CoreGeometry,
        ConstraintFamily::Symmetry,
        ConstraintFamily::Arrays,
        ConstraintFamily::PowerAbutment,
        ConstraintFamily::PinDensity,
        ConstraintFamily::Wirelength,
    ];

    /// Stable lowercase name, e.g. `"core-geometry"`.
    pub fn name(self) -> &'static str {
        match self {
            ConstraintFamily::CoreGeometry => "core-geometry",
            ConstraintFamily::Symmetry => "symmetry",
            ConstraintFamily::Arrays => "arrays",
            ConstraintFamily::PowerAbutment => "power-abutment",
            ConstraintFamily::PinDensity => "pin-density",
            ConstraintFamily::Wirelength => "wirelength",
        }
    }
}

impl fmt::Display for ConstraintFamily {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The design object a constraint was derived from — the unit of blame in
/// infeasibility diagnostics.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Provenance {
    /// Whole-design bookkeeping with no narrower site.
    #[default]
    Design,
    /// One region's sizing, bounds, or dimension choice.
    Region(RegionId),
    /// Separation between a pair of regions.
    RegionPair(RegionId, RegionId),
    /// One cell's containment or margins.
    Cell(CellId),
    /// Non-overlap (or keep-out) between a pair of cells.
    CellPair(CellId, CellId),
    /// One net's bounding-box links.
    Net(NetId),
    /// One symmetry group (index into the design's constraint list).
    SymmetryGroup(usize),
    /// One array constraint (index into the design's constraint list).
    Array(usize),
    /// The power bands of one region.
    PowerRegion(RegionId),
    /// One pin-density check window at the given scaled origin.
    Window {
        /// Window origin x (scaled units).
        x: u32,
        /// Window origin y (scaled units).
        y: u32,
    },
}

impl fmt::Display for Provenance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Provenance::Design => write!(f, "the design"),
            Provenance::Region(r) => write!(f, "region #{}", r.index()),
            Provenance::RegionPair(a, b) => {
                write!(f, "regions #{}/#{}", a.index(), b.index())
            }
            Provenance::Cell(c) => write!(f, "cell #{}", c.index()),
            Provenance::CellPair(a, b) => write!(f, "cells #{}/#{}", a.index(), b.index()),
            Provenance::Net(n) => write!(f, "net #{}", n.index()),
            Provenance::SymmetryGroup(g) => write!(f, "symmetry group #{g}"),
            Provenance::Array(a) => write!(f, "array #{a}"),
            Provenance::PowerRegion(r) => write!(f, "power bands of region #{}", r.index()),
            Provenance::Window { x, y } => write!(f, "window ({x}, {y})"),
        }
    }
}

/// The solver-facing payload of one constraint record.
#[derive(Clone, PartialEq, Eq, Debug)]
pub(crate) enum Payload {
    /// A Boolean term to assert.
    Term(Term),
    /// A pseudo-Boolean bound `Σ weightᵢ·itemᵢ ≤ bound` (Eq. 14).
    AtMost { items: Vec<(Term, u64)>, bound: u64 },
}

/// One typed constraint record: which family it belongs to, which design
/// object produced it, and what to install in the solver.
#[derive(Clone, PartialEq, Eq, Debug)]
pub(crate) struct Constraint {
    pub family: ConstraintFamily,
    pub provenance: Provenance,
    pub payload: Payload,
}

/// Per-family lowering statistics, reported in
/// [`crate::PlaceStats::families`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct FamilyStats {
    /// The family.
    pub family: ConstraintFamily,
    /// IR constraint records emitted for the family.
    pub constraints: usize,
    /// SAT clauses the family's records blasted into. Shared subterms are
    /// blasted once and attributed to the first family that uses them.
    pub clauses: usize,
}

/// Result of one lowering pass.
pub(crate) struct Lowering {
    /// One `(family, selector)` per family lowered, in canonical order.
    /// The selectors must be passed as assumptions on every solve.
    pub selectors: Vec<(ConstraintFamily, Term)>,
    /// Per-family record/clause counts of this pass.
    pub families: Vec<FamilyStats>,
    /// Wall-clock time spent installing and bit-blasting.
    pub elapsed: Duration,
}

/// The one constraint store between the encoders and the solver.
///
/// Encoders set an emission context ([`ConstraintStore::family`] /
/// [`ConstraintStore::at`]) and emit records; the placer lowers them in one
/// pass and keeps the store for diagnostics and recovery re-lowering.
#[derive(Default)]
pub(crate) struct ConstraintStore {
    constraints: Vec<Constraint>,
    family: Option<ConstraintFamily>,
    provenance: Provenance,
}

impl ConstraintStore {
    pub fn new() -> ConstraintStore {
        ConstraintStore::default()
    }

    /// Opens an emission context for `family`, resetting the provenance
    /// site to [`Provenance::Design`].
    pub fn family(&mut self, family: ConstraintFamily) {
        self.family = Some(family);
        self.provenance = Provenance::Design;
    }

    /// Sets the provenance site for subsequent emissions.
    pub fn at(&mut self, provenance: Provenance) {
        self.provenance = provenance;
    }

    /// Emits a Boolean constraint under the current context.
    ///
    /// # Panics
    ///
    /// Panics if no [`ConstraintStore::family`] context is open.
    pub fn assert(&mut self, t: Term) {
        let family = self.family.expect("no constraint family context open");
        self.constraints.push(Constraint {
            family,
            provenance: self.provenance,
            payload: Payload::Term(t),
        });
    }

    /// Emits a pseudo-Boolean at-most bound under the current context.
    ///
    /// # Panics
    ///
    /// Panics if no [`ConstraintStore::family`] context is open.
    pub fn assert_at_most(&mut self, items: Vec<(Term, u64)>, bound: u64) {
        let family = self.family.expect("no constraint family context open");
        self.constraints.push(Constraint {
            family,
            provenance: self.provenance,
            payload: Payload::AtMost { items, bound },
        });
    }

    /// Number of records in the store.
    pub fn len(&self) -> usize {
        self.constraints.len()
    }

    /// Read-only view of every record, for static analysis
    /// ([`crate::analysis::presolve`]).
    pub fn records(&self) -> &[Constraint] {
        &self.constraints
    }

    /// Drops every record of the given families (before re-emitting a
    /// relaxed replacement generation).
    pub fn remove_families(&mut self, families: &[ConstraintFamily]) {
        self.constraints.retain(|c| !families.contains(&c.family));
    }

    /// Lowers every record into the solver, one guard selector per family.
    pub fn lower(&self, smt: &mut Smt, generation: u32) -> Lowering {
        self.lower_from(smt, generation, 0)
    }

    /// Lowers the records from index `start` on — the re-lowering entry
    /// used by the recovery ladder after [`ConstraintStore::remove_families`]
    /// plus re-emission (the replacement records sit at the tail).
    ///
    /// Each family present in the range gets a fresh
    /// `sel_<family>_g<generation>` selector; records are installed under
    /// it via [`Smt::set_guard`] in emission order, then bit-blasted
    /// ([`Smt::flush`]) so the per-family clause delta can be measured.
    pub fn lower_from(&self, smt: &mut Smt, generation: u32, start: usize) -> Lowering {
        let t0 = Instant::now();
        let range = &self.constraints[start..];
        let mut selectors = Vec::new();
        let mut families = Vec::new();
        smt.flush();
        for family in ConstraintFamily::ALL {
            let records = || range.iter().filter(|c| c.family == family);
            if records().next().is_none() {
                continue;
            }
            let sel = smt.bool_var(format!("sel_{}_g{generation}", family.name()));
            smt.set_guard(Some(sel));
            let before = smt.num_sat_clauses();
            let mut constraints = 0usize;
            for c in records() {
                constraints += 1;
                match &c.payload {
                    Payload::Term(t) => smt.assert(*t),
                    Payload::AtMost { items, bound } => smt.assert_at_most(items, *bound),
                }
            }
            smt.flush();
            smt.set_guard(None);
            selectors.push((family, sel));
            families.push(FamilyStats {
                family,
                constraints,
                clauses: smt.num_sat_clauses() - before,
            });
        }
        Lowering {
            selectors,
            families,
            elapsed: t0.elapsed(),
        }
    }

    /// Compares this store against `other` family by family and returns
    /// the families whose record sequences differ (count, provenance, or
    /// payload), in canonical order.
    ///
    /// Record payloads reference [`Term`]s by index, so the comparison is
    /// only meaningful when both stores were emitted by the *same
    /// deterministic encoding sequence* over identically-constructed
    /// solvers — the contract [`crate::Placer::rebase`] maintains by
    /// re-encoding the incoming request against a fresh scratch solver
    /// that mirrors the cached placer's construction order. A family the
    /// cached placer has since re-lowered (recovery rungs re-emit records
    /// with live-solver term ids) compares as changed, which is safe: the
    /// caller simply re-lowers it again.
    pub fn diff_families(&self, other: &ConstraintStore) -> Vec<ConstraintFamily> {
        ConstraintFamily::ALL
            .into_iter()
            .filter(|&family| {
                let mine = self.constraints.iter().filter(|c| c.family == family);
                let theirs = other.constraints.iter().filter(|c| c.family == family);
                !mine.eq(theirs)
            })
            .collect()
    }

    /// One human-readable blame line per family: record count, distinct
    /// provenance sites, and a few example sites. Cited by
    /// [`crate::PlaceError::Infeasible`] and the CLI.
    pub fn provenance_lines(&self, families: &[ConstraintFamily]) -> Vec<String> {
        families
            .iter()
            .map(|&family| {
                let mut count = 0usize;
                let mut sites: Vec<Provenance> = Vec::new();
                for c in self.constraints.iter().filter(|c| c.family == family) {
                    count += 1;
                    if !sites.contains(&c.provenance) {
                        sites.push(c.provenance);
                    }
                }
                let examples: Vec<String> = sites.iter().take(3).map(|p| p.to_string()).collect();
                let more = if sites.len() > 3 {
                    format!(" and {} more", sites.len() - 3)
                } else {
                    String::new()
                };
                format!(
                    "{family}: {count} constraint(s) from {} site(s), e.g. {}{more}",
                    sites.len(),
                    examples.join(", "),
                )
            })
            .collect()
    }
}

/// Maps the failed assumptions of an UNSAT solve back to constraint
/// families — the attribution step shared by the placer's
/// [`crate::PlaceError::Infeasible`] and the standalone explainer.
///
/// [`ConstraintFamily::Wirelength`] is filtered out: its bounding-box
/// links are satisfiable under any cell assignment, so they can always be
/// dropped from an unsatisfiable core without restoring satisfiability —
/// when the SAT core over-approximates and names the wirelength selector,
/// the remaining families still conflict on their own. When the core
/// names no selector at all (which guarded assertions rule out, but be
/// defensive), every present family is blamed. Sorted, deduplicated.
pub(crate) fn conflict_families(
    selectors: &[(ConstraintFamily, Term)],
    failed: &[Term],
) -> Vec<ConstraintFamily> {
    let attributable = |&&(f, _): &&(ConstraintFamily, Term)| f != ConstraintFamily::Wirelength;
    let mut families: Vec<ConstraintFamily> = selectors
        .iter()
        .filter(|&&(_, s)| failed.contains(&s))
        .filter(attributable)
        .map(|&(f, _)| f)
        .collect();
    if families.is_empty() {
        families = selectors
            .iter()
            .filter(attributable)
            .map(|&(f, _)| f)
            .collect();
    }
    families.sort();
    families.dedup();
    families
}

#[cfg(test)]
mod tests {
    use super::*;
    use ams_smt::SmtResult;

    #[test]
    fn lowering_guards_families_independently() {
        let mut smt = Smt::new();
        let x = smt.bv_var(4, "x");
        let mut store = ConstraintStore::new();
        store.family(ConstraintFamily::CoreGeometry);
        let is3 = smt.eq_const(x, 3);
        store.assert(is3);
        store.family(ConstraintFamily::Symmetry);
        let is5 = smt.eq_const(x, 5);
        store.assert(is5);

        let lowering = store.lower(&mut smt, 0);
        assert_eq!(lowering.selectors.len(), 2);
        assert_eq!(lowering.families.len(), 2);
        assert!(lowering.families.iter().all(|f| f.constraints == 1));
        let sels: Vec<Term> = lowering.selectors.iter().map(|&(_, s)| s).collect();

        // Both families enabled: contradictory, and the failed assumptions
        // attribute the conflict to both.
        assert_eq!(smt.solve_with(&sels), SmtResult::Unsat);
        let failed = smt.failed_assumptions();
        assert!(sels.iter().all(|s| failed.contains(s)));
        // Each alone is consistent.
        assert_eq!(smt.solve_with(&sels[..1]), SmtResult::Sat);
        assert_eq!(smt.bv_value(x), 3);
        assert_eq!(smt.solve_with(&sels[1..]), SmtResult::Sat);
        assert_eq!(smt.bv_value(x), 5);
    }

    #[test]
    fn relowering_replaces_a_retired_family() {
        let mut smt = Smt::new();
        let x = smt.bv_var(4, "x");
        let mut store = ConstraintStore::new();
        store.family(ConstraintFamily::PinDensity);
        let is3 = smt.eq_const(x, 3);
        store.assert(is3);
        let g0 = store.lower(&mut smt, 0);
        let sel0 = g0.selectors[0].1;
        assert_eq!(smt.solve_with(&[sel0]), SmtResult::Sat);
        assert_eq!(smt.bv_value(x), 3);

        // Retire generation 0 and lower a relaxed generation 1.
        smt.retire(sel0);
        store.remove_families(&[ConstraintFamily::PinDensity]);
        let mark = store.len();
        store.family(ConstraintFamily::PinDensity);
        let is7 = smt.eq_const(x, 7);
        store.assert(is7);
        let g1 = store.lower_from(&mut smt, 1, mark);
        let sel1 = g1.selectors[0].1;
        assert_ne!(sel0, sel1);
        assert_eq!(smt.solve_with(&[sel1]), SmtResult::Sat);
        assert_eq!(smt.bv_value(x), 7);
    }

    #[test]
    fn diff_families_reports_only_changed_families() {
        // Two stores emitted by the same term-construction sequence over
        // separate solvers: identical geometry records, one differing
        // pin-density bound (the λ_th-only warm-cache scenario).
        let build = |bound: u64| {
            let mut smt = Smt::new();
            let x = smt.bv_var(4, "x");
            let mut store = ConstraintStore::new();
            store.family(ConstraintFamily::CoreGeometry);
            let lim = smt.eq_const(x, 3);
            store.assert(lim);
            store.family(ConstraintFamily::PinDensity);
            store.at(Provenance::Window { x: 0, y: 0 });
            store.assert_at_most(vec![(lim, 1)], bound);
            store
        };
        let a = build(2);
        let same = build(2);
        let relaxed = build(5);
        assert_eq!(a.diff_families(&same), Vec::new());
        assert_eq!(
            a.diff_families(&relaxed),
            vec![ConstraintFamily::PinDensity]
        );
        // A missing family counts as changed on whichever side has it.
        let mut empty = ConstraintStore::new();
        empty.family(ConstraintFamily::CoreGeometry);
        assert_eq!(
            a.diff_families(&empty),
            vec![ConstraintFamily::CoreGeometry, ConstraintFamily::PinDensity]
        );
    }

    #[test]
    fn provenance_lines_cite_sites() {
        let mut smt = Smt::new();
        let t = smt.tru();
        let mut store = ConstraintStore::new();
        store.family(ConstraintFamily::PinDensity);
        store.at(Provenance::Window { x: 0, y: 2 });
        store.assert(t);
        store.at(Provenance::Window { x: 4, y: 2 });
        store.assert_at_most(vec![(t, 3)], 1);
        let lines = store.provenance_lines(&[ConstraintFamily::PinDensity]);
        assert_eq!(lines.len(), 1);
        assert!(
            lines[0].starts_with("pin-density: 2 constraint(s)"),
            "{lines:?}"
        );
        assert!(lines[0].contains("window (0, 2)"), "{lines:?}");
        assert!(lines[0].contains("window (4, 2)"), "{lines:?}");
    }
}

//! Pin-density infeasibility (Eq. 13–14).
//!
//! The Eq. 13 indicator charges *every* pin of a cell to *every* window the
//! cell overlaps, and the window grid covers the whole die. A single cell
//! with more pins than `λ_th` therefore violates Eq. 14 in any placement —
//! the minimum achievable window density already exceeds the threshold.

use crate::config::PlacerConfig;
use crate::encode::pin_density::resolve_lambda;
use crate::scale::ScaleInfo;
use ams_netlist::{Design, DiagCode, Diagnostic, LintReport};

pub(crate) fn check(
    design: &Design,
    config: &PlacerConfig,
    scale: &ScaleInfo,
    report: &mut LintReport,
) {
    let Some(pd) = &config.pin_density else {
        return;
    };
    if pd.beta_x == 0 || pd.beta_y == 0 || pd.stride_x == 0 || pd.stride_y == 0 {
        return; // PlacerConfig::validate rejects these before lint runs
    }

    if pd.stride_x > pd.beta_x || pd.stride_y > pd.beta_y {
        report.push(
            Diagnostic::new(
                DiagCode::SparseDensityWindows,
                format!(
                    "pin-density stride ({}, {}) exceeds the window size ({}, {}); \
                     strips between windows go unchecked",
                    pd.stride_x, pd.stride_y, pd.beta_x, pd.beta_y
                ),
            )
            .suggest("keep stride at or below the window size for full coverage"),
        );
    }

    let lambda = resolve_lambda(design, scale, pd);
    let mut worst: Option<(&str, u64)> = None;
    for cell in design.cells() {
        let pins = cell.pin_count() as u64;
        if pins > lambda && pins > worst.map_or(0, |(_, p)| p) {
            worst = Some((&cell.name, pins));
        }
    }
    if let Some((name, pins)) = worst {
        report.push(
            Diagnostic::new(
                DiagCode::PinDensityInfeasible,
                format!(
                    "cell '{name}' alone carries {pins} pins, above the threshold \
                     λ_th = {lambda}; every window overlapping it violates Eq. 14, so \
                     no placement can satisfy the pin-density constraint",
                ),
            )
            .entity(name)
            .suggest(format!(
                "raise lambda to at least {pins}, or use the auto threshold \
                 (lambda = None)"
            )),
        );
    }
}

//! Geometric feasibility checks: region dimension candidates (Eq. 4–5),
//! aggregate die capacity, power-band row capacity (Eq. 12), and QF_BV
//! bit-width overflow. Every error here is a *necessary* condition — a
//! flagged design is provably unsatisfiable, never merely suspicious.

use crate::config::PlacerConfig;
use crate::encode::region::{dimension_candidates, region_margins};
use crate::power::PowerPlan;
use crate::scale::{bits_for, ScaleInfo};
use ams_netlist::{Design, DiagCode, Diagnostic, LintReport};

/// The per-region candidate context shared by several checks.
struct RegionGeometry {
    name: String,
    /// Eq. 4–5 candidates `(w, h)` in scaled units.
    candidates: Vec<(u32, u32)>,
    /// Total margins (edge reservation + extensions) per side, scaled.
    margins: (u64, u64, u64, u64),
}

fn region_geometry(
    design: &Design,
    config: &PlacerConfig,
    scale: &ScaleInfo,
) -> Vec<RegionGeometry> {
    let die_w = u64::from(scale.scaled_w);
    let die_h = u64::from(scale.scaled_h);
    design
        .region_ids()
        .map(|rid| {
            let ri = rid.index();
            let (ex, ey) = scale.region_edge[ri];
            let rm = region_margins(design, scale, config, rid);
            let (ml, mr, mb, mt) = (
                u64::from(ex + rm.left),
                u64::from(ex + rm.right),
                u64::from(ey + rm.bottom),
                u64::from(ey + rm.top),
            );
            let min_w = design
                .cells_in_region(rid)
                .map(|c| scale.width_of(c))
                .max()
                .unwrap_or(1);
            let min_h = design
                .cells_in_region(rid)
                .map(|c| scale.height_of(c))
                .max()
                .unwrap_or(1);
            let max_w = (die_w.saturating_sub(ml + mr)) as u32;
            let max_h = (die_h.saturating_sub(mb + mt)) as u32;
            RegionGeometry {
                name: design.region(rid).name.clone(),
                candidates: dimension_candidates(
                    scale.region_target[ri],
                    min_w,
                    min_h,
                    max_w,
                    max_h,
                ),
                margins: (ml, mr, mb, mt),
            }
        })
        .collect()
}

pub(crate) fn check(
    design: &Design,
    config: &PlacerConfig,
    scale: &ScaleInfo,
    plan: &PowerPlan,
    report: &mut LintReport,
) {
    let geoms = region_geometry(design, config, scale);
    check_region_candidates(scale, &geoms, report);
    check_die_capacity(scale, &geoms, report);
    check_power_bands(design, scale, plan, &geoms, report);
    check_bit_widths(design, config, scale, report);
    check_utilization(design, report);
}

/// `AMS-E008`: the Eq. 5 disjunction would be empty — exactly the condition
/// under which [`crate::encode::region::assert_regions`] panics.
fn check_region_candidates(scale: &ScaleInfo, geoms: &[RegionGeometry], report: &mut LintReport) {
    for (ri, g) in geoms.iter().enumerate() {
        if g.candidates.is_empty() {
            report.push(
                Diagnostic::new(
                    DiagCode::RegionInfeasible,
                    format!(
                        "region '{}' has no feasible dimensions: target area {} (scaled) \
                         cannot fit between its widest/tallest cell and the {}x{} die \
                         minus its margins",
                        g.name, scale.region_target[ri], scale.scaled_w, scale.scaled_h
                    ),
                )
                .entity(&g.name)
                .suggest(
                    "raise die_slack, lower the region or global utilization, or shrink \
                     the region's edge reservation",
                ),
            );
        }
    }
}

/// `AMS-E009`: regions are disjoint rectangles, so the sum of their minimum
/// footprints (candidate area plus margin strips) must fit the die.
fn check_die_capacity(scale: &ScaleInfo, geoms: &[RegionGeometry], report: &mut LintReport) {
    let die = u64::from(scale.scaled_w) * u64::from(scale.scaled_h);
    let mut need = 0u64;
    for g in geoms {
        let (ml, mr, mb, mt) = g.margins;
        let footprint = g
            .candidates
            .iter()
            .map(|&(w, h)| (u64::from(w) + ml + mr) * (u64::from(h) + mb + mt))
            .min();
        match footprint {
            Some(f) => need += f,
            None => return, // E008 already reported; aggregate check is moot
        }
    }
    if need > die {
        report.push(
            Diagnostic::new(
                DiagCode::DieOverflow,
                format!(
                    "the regions' minimum footprints need {need} scaled sites but the die \
                     offers only {die} ({}x{})",
                    scale.scaled_w, scale.scaled_h
                ),
            )
            .entities(geoms.iter().map(|g| g.name.clone()))
            .suggest("raise die_slack or lower utilization to grow the die"),
        );
    }
}

/// `AMS-E010`: within a region, each power group occupies a band of full
/// rows (Eq. 12). For some candidate `(w, h)` the stacked band heights
/// `Σ_g ceil(area_g / w) · row_h` must fit `h`; if no candidate admits the
/// stack, the region is unsatisfiable.
fn check_power_bands(
    design: &Design,
    scale: &ScaleInfo,
    plan: &PowerPlan,
    geoms: &[RegionGeometry],
    report: &mut LintReport,
) {
    for p in &plan.regions {
        let ri = p.region.index();
        let g = &geoms[ri];
        if g.candidates.is_empty() {
            continue;
        }
        let row_h = u64::from(
            design
                .cells_in_region(p.region)
                .map(|c| scale.height_of(c))
                .max()
                .unwrap_or(1),
        );
        // Scaled cell area per band, in plan order.
        let band_area: Vec<u64> = p
            .bands
            .iter()
            .map(|&pg| {
                design
                    .cells_in_region(p.region)
                    .filter(|&c| design.cell(c).power_group == pg)
                    .map(|c| u64::from(scale.width_of(c)) * u64::from(scale.height_of(c)))
                    .sum()
            })
            .collect();
        let fits = g.candidates.iter().any(|&(w, h)| {
            let needed: u64 = band_area
                .iter()
                .map(|&a| a.div_ceil(u64::from(w)) * row_h)
                .sum();
            needed <= u64::from(h)
        });
        if !fits {
            let names: Vec<String> = p
                .bands
                .iter()
                .map(|&pg| design.power_groups()[pg.index()].name.clone())
                .collect();
            report.push(
                Diagnostic::new(
                    DiagCode::PowerRowOverflow,
                    format!(
                        "region '{}' must stack {} power bands ({}) in disjoint full rows, \
                         but no Eq. 5 dimension candidate is tall enough for the stack",
                        g.name,
                        p.bands.len(),
                        names.join(", ")
                    ),
                )
                .entity(&g.name)
                .entities(names)
                .suggest(
                    "lower the region utilization (taller candidates) or reduce the \
                     number of power groups in the region",
                ),
            );
        }
    }
}

/// `AMS-E012`: the QF_BV encoding caps terms at 64 bits; oversized die
/// dimensions or net-weight sums would silently truncate (Eq. 3).
fn check_bit_widths(
    design: &Design,
    config: &PlacerConfig,
    scale: &ScaleInfo,
    report: &mut LintReport,
) {
    // Mirrors encode::wirelength: Φ is span + log2(total weight) + 2 wide.
    let total_weight: u64 = design
        .net_ids()
        .filter(|&n| {
            design.net_degree(n) >= 2 && (config.toggles.clusters || !design.net(n).virtual_net)
        })
        .map(|n| u64::from(design.net(n).weight.max(1)))
        .sum();
    if total_weight > u64::from(u32::MAX) {
        report.push(
            Diagnostic::new(
                DiagCode::BitWidthOverflow,
                format!(
                    "total net weight {total_weight} exceeds the 32-bit range of the \
                     wirelength scaling; Φ's bit width would truncate",
                ),
            )
            .suggest("reduce net weights; only their ratios matter to the optimizer"),
        );
        return;
    }
    let span_w = scale.lx.max(scale.ly);
    let phi_w = span_w + bits_for(total_weight.max(1) as u32) + 2;
    // The widest auxiliary terms: Φ itself and the doubled symmetry axes.
    let widest = phi_w.max(scale.lx + 2).max(scale.ly + 2);
    if widest > 64 {
        report.push(
            Diagnostic::new(
                DiagCode::BitWidthOverflow,
                format!(
                    "the encoding needs {widest}-bit terms (die {}x{} scaled, total net \
                     weight {total_weight}) but QF_BV terms are capped at 64 bits",
                    scale.scaled_w, scale.scaled_h
                ),
            )
            .suggest("shrink the die (coarser grid pitch) or reduce net weights"),
        );
    }
}

/// `AMS-W004`: a region at utilization 1.0 admits only perfect packings.
fn check_utilization(design: &Design, report: &mut LintReport) {
    for rid in design.region_ids() {
        let r = design.region(rid);
        if r.utilization >= 1.0 && design.cells_in_region(rid).next().is_some() {
            report.push(
                Diagnostic::new(
                    DiagCode::TightUtilization,
                    format!(
                        "region '{}' is at utilization 1.0; only perfect rectangle \
                         packings of its cells are legal",
                        r.name
                    ),
                )
                .entity(&r.name)
                .suggest("allow some headroom, e.g. utilization 0.9"),
            );
        }
    }
}

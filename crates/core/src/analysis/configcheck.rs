//! Configuration robustness checks: non-finite or degenerate optimization
//! and supervision parameters that would make a solve meaningless (or
//! never-ending), reported with stable codes instead of failing deep in
//! the encode or solve phases.

use crate::config::PlacerConfig;
use ams_netlist::{DiagCode, Diagnostic, LintReport};
use std::time::Duration;

/// Lints the placer configuration itself (E015–E018).
pub(super) fn check(config: &PlacerConfig, report: &mut LintReport) {
    let o = &config.optimize;
    if !(0.0..=1.0).contains(&o.freeze_fraction) {
        report.push(
            Diagnostic::new(
                DiagCode::FreezeFractionInvalid,
                format!(
                    "freeze_fraction {} is not a finite value in [0, 1]",
                    o.freeze_fraction
                ),
            )
            .suggest("use a fraction like 0.25, or disable freezing with freeze = false"),
        );
    }
    let start_ok = o.zeta_start > 0.0 && o.zeta_start <= 1.0;
    let step_ok = o.zeta_step >= 0.0 && o.zeta_step.is_finite();
    let min_ok = o.zeta_min > 0.0 && o.zeta_min <= 1.0;
    if !(start_ok && step_ok && min_ok) {
        report.push(
            Diagnostic::new(
                DiagCode::ZetaScheduleInvalid,
                format!(
                    "wirelength ζ schedule (start {}, step {}, min {}) is not a finite \
                     decreasing schedule within (0, 1]",
                    o.zeta_start, o.zeta_step, o.zeta_min
                ),
            )
            .suggest("e.g. zeta_start 0.95, zeta_step 0.03, zeta_min 0.70"),
        );
    }
    if o.conflict_budget == Some(0) || o.first_conflict_budget == Some(0) {
        report.push(
            Diagnostic::new(
                DiagCode::ZeroBudget,
                "a conflict budget of 0 stops every solve before its first step",
            )
            .suggest("use None to disable budgeting, or a positive budget"),
        );
    }
    if config.solver.deadline == Some(Duration::ZERO) {
        report.push(
            Diagnostic::new(
                DiagCode::ZeroDeadline,
                "a zero wall-clock deadline expires before solving starts",
            )
            .suggest("use None to disable the deadline, or a positive duration"),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint_config(config: &PlacerConfig) -> LintReport {
        let mut report = LintReport::new();
        check(config, &mut report);
        report
    }

    #[test]
    fn default_config_is_clean() {
        assert!(lint_config(&PlacerConfig::default()).is_clean());
        assert!(lint_config(&PlacerConfig::fast()).is_clean());
    }

    #[test]
    fn robustness_codes_fire() {
        let mut c = PlacerConfig::default();
        c.optimize.freeze_fraction = f64::NAN;
        assert!(lint_config(&c).has_code(DiagCode::FreezeFractionInvalid));

        let mut c = PlacerConfig::default();
        c.optimize.zeta_min = f64::NEG_INFINITY;
        assert!(lint_config(&c).has_code(DiagCode::ZetaScheduleInvalid));

        let mut c = PlacerConfig::default();
        c.optimize.conflict_budget = Some(0);
        assert!(lint_config(&c).has_code(DiagCode::ZeroBudget));

        let mut c = PlacerConfig::default();
        c.solver.deadline = Some(Duration::ZERO);
        assert!(lint_config(&c).has_code(DiagCode::ZeroDeadline));
    }
}

//! Second-stage UNSAT explanation.
//!
//! When the linter finds nothing wrong but the solver still reports UNSAT,
//! the conflict spans constraint *families* rather than a single broken
//! constraint. This module re-encodes the instance with one selector
//! Boolean per family (every assertion of the family is guarded by it, see
//! [`ams_smt::Smt::set_guard`]) and solves under the selectors as
//! assumptions; the SAT core's failed assumptions then name exactly the
//! families whose combination is contradictory.

use crate::config::PlacerConfig;
use crate::encode;
use crate::power::PowerPlan;
use crate::scale::ScaleInfo;
use crate::vars::VarMap;
use ams_netlist::Design;
use ams_smt::{Smt, SmtResult, Term};
use std::fmt;

/// The constraint families of the encoding (Section IV.C), as attribution
/// units for UNSAT explanation.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum ConstraintFamily {
    /// Region sizing/separation, containment, and cell non-overlap
    /// (Eq. 4–7, 11) — the critical geometry.
    CoreGeometry,
    /// Hierarchical symmetry (Eq. 8).
    Symmetry,
    /// Arrays and matching patterns (Eq. 9–10).
    Arrays,
    /// Power-abutment row bands (Eq. 12).
    PowerAbutment,
    /// Window-based pin density (Eq. 13–14).
    PinDensity,
}

impl ConstraintFamily {
    /// Stable lowercase name, e.g. `"core-geometry"`.
    pub fn name(self) -> &'static str {
        match self {
            ConstraintFamily::CoreGeometry => "core-geometry",
            ConstraintFamily::Symmetry => "symmetry",
            ConstraintFamily::Arrays => "arrays",
            ConstraintFamily::PowerAbutment => "power-abutment",
            ConstraintFamily::PinDensity => "pin-density",
        }
    }
}

impl fmt::Display for ConstraintFamily {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Outcome of [`explain_unsat`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum UnsatOutcome {
    /// The instance is satisfiable — nothing to explain.
    Feasible,
    /// The conflict budget expired before a verdict.
    Unknown,
    /// Unsatisfiable; the listed family combination suffices for the
    /// conflict (sorted, deduplicated, non-empty).
    Conflict(Vec<ConstraintFamily>),
}

/// Re-encodes the design with per-family selectors and attributes an UNSAT
/// verdict to the smallest family set the SAT core reports.
///
/// Wirelength bookkeeping is omitted — it never constrains feasibility —
/// so this is cheaper than a placement attempt. The first-solve conflict
/// budget of `config.optimize` applies.
pub fn explain_unsat(design: &Design, config: &PlacerConfig) -> UnsatOutcome {
    let plan = if config.toggles.power_abutment {
        PowerPlan::analyze(design)
    } else {
        PowerPlan::default()
    };
    let scale = ScaleInfo::compute(design, config);

    // assert_regions panics on an empty Eq. 5 candidate set; that case is
    // a pure core-geometry conflict, already reportable without solving.
    for (ri, rid) in design.region_ids().enumerate() {
        let (ex, ey) = scale.region_edge[ri];
        let rm = encode::region::region_margins(design, &scale, config, rid);
        let min_w = design
            .cells_in_region(rid)
            .map(|c| scale.width_of(c))
            .max()
            .unwrap_or(1);
        let min_h = design
            .cells_in_region(rid)
            .map(|c| scale.height_of(c))
            .max()
            .unwrap_or(1);
        let max_w = scale.scaled_w.saturating_sub(2 * ex + rm.left + rm.right);
        let max_h = scale.scaled_h.saturating_sub(2 * ey + rm.bottom + rm.top);
        if encode::region::dimension_candidates(scale.region_target[ri], min_w, min_h, max_w, max_h)
            .is_empty()
        {
            return UnsatOutcome::Conflict(vec![ConstraintFamily::CoreGeometry]);
        }
    }

    let mut smt = Smt::new();
    let vars = VarMap::create(&mut smt, design, &scale, &plan, config);
    let mut selectors: Vec<(Term, ConstraintFamily)> = Vec::new();
    let mut family = |smt: &mut Smt, f: ConstraintFamily| -> Term {
        let sel = smt.bool_var(format!("sel_{}", f.name()));
        selectors.push((sel, f));
        sel
    };

    let core = family(&mut smt, ConstraintFamily::CoreGeometry);
    smt.set_guard(Some(core));
    encode::region::assert_regions(&mut smt, design, &scale, &vars, config);
    encode::region::assert_containment(&mut smt, design, &scale, &vars);
    let margins = encode::region::cell_margins(design, &scale, config);
    encode::region::assert_cell_non_overlap(&mut smt, design, &scale, &vars, config, &margins);

    if config.toggles.symmetry && !design.constraints().symmetry.is_empty() {
        let sel = family(&mut smt, ConstraintFamily::Symmetry);
        smt.set_guard(Some(sel));
        encode::symmetry::assert_symmetry(&mut smt, design, &scale, &vars);
    }
    if config.toggles.arrays && !design.constraints().arrays.is_empty() {
        let sel = family(&mut smt, ConstraintFamily::Arrays);
        smt.set_guard(Some(sel));
        encode::array::assert_arrays(&mut smt, design, &scale, &vars, config);
    }
    if config.toggles.power_abutment && !plan.regions.is_empty() {
        let sel = family(&mut smt, ConstraintFamily::PowerAbutment);
        smt.set_guard(Some(sel));
        encode::power_abut::assert_power_abutment(&mut smt, design, &scale, &vars, &plan);
    }
    if let Some(pd) = &config.pin_density {
        let sel = family(&mut smt, ConstraintFamily::PinDensity);
        smt.set_guard(Some(sel));
        encode::pin_density::assert_pin_density(&mut smt, design, &scale, &vars, pd);
    }
    smt.set_guard(None);

    smt.set_conflict_budget(config.optimize.first_conflict_budget);
    let assumptions: Vec<Term> = selectors.iter().map(|&(t, _)| t).collect();
    match smt.solve_with(&assumptions) {
        SmtResult::Sat => UnsatOutcome::Feasible,
        SmtResult::Unknown | SmtResult::Cancelled => UnsatOutcome::Unknown,
        SmtResult::Unsat => {
            let failed = smt.failed_assumptions();
            let mut families: Vec<ConstraintFamily> = selectors
                .iter()
                .filter(|(t, _)| failed.contains(t))
                .map(|&(_, f)| f)
                .collect();
            if families.is_empty() {
                // The core never names assumptions only if the conflict is
                // assumption-free, which guarded assertions rule out; be
                // defensive and blame every enabled family.
                families = selectors.iter().map(|&(_, f)| f).collect();
            }
            families.sort();
            families.dedup();
            UnsatOutcome::Conflict(families)
        }
    }
}

//! Second-stage UNSAT explanation over the shared constraint IR.
//!
//! When the linter finds nothing wrong but the solver still reports UNSAT,
//! the conflict spans constraint *families* rather than a single broken
//! constraint. This module builds the one encoding every consumer shares
//! ([`crate::ir`]: the encoders emit into a `ConstraintStore`, one
//! lowering pass guards each family with a selector literal) and solves
//! under the selectors as assumptions; the SAT core's failed assumptions
//! then name exactly the families whose combination is contradictory.
//!
//! A placement attempt that ends UNSAT gets the same attribution for free
//! from its own first solve ([`crate::PlaceError::Infeasible`]); this
//! standalone entry exists for `--explain`-style diagnosis without
//! running the optimization loop.

use crate::config::PlacerConfig;
use crate::encode;
use crate::ir::{conflict_families, ConstraintFamily};
use crate::power::PowerPlan;
use crate::scale::ScaleInfo;
use crate::vars::VarMap;
use ams_netlist::Design;
use ams_smt::{Smt, SmtResult, Term};

/// Outcome of [`explain_unsat`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum UnsatOutcome {
    /// The instance is satisfiable — nothing to explain.
    Feasible,
    /// The conflict budget expired before a verdict.
    Unknown,
    /// Unsatisfiable; the listed family combination suffices for the
    /// conflict (sorted, deduplicated, non-empty).
    Conflict(Vec<ConstraintFamily>),
}

/// Encodes the design once through the shared IR path, lowers it with
/// per-family selectors, and attributes an UNSAT verdict to the smallest
/// family set the SAT core reports.
///
/// The wirelength family never constrains feasibility and is excluded
/// from attribution. The first-solve conflict budget of `config.optimize`
/// applies.
pub fn explain_unsat(design: &Design, config: &PlacerConfig) -> UnsatOutcome {
    let plan = if config.toggles.power_abutment {
        PowerPlan::analyze(design)
    } else {
        PowerPlan::default()
    };
    let scale = ScaleInfo::compute(design, config);

    // The region encoder panics on an empty Eq. 5 candidate set; that case
    // is a pure core-geometry conflict, already reportable without solving.
    for (ri, rid) in design.region_ids().enumerate() {
        let (ex, ey) = scale.region_edge[ri];
        let rm = encode::region::region_margins(design, &scale, config, rid);
        let min_w = design
            .cells_in_region(rid)
            .map(|c| scale.width_of(c))
            .max()
            .unwrap_or(1);
        let min_h = design
            .cells_in_region(rid)
            .map(|c| scale.height_of(c))
            .max()
            .unwrap_or(1);
        let max_w = scale.scaled_w.saturating_sub(2 * ex + rm.left + rm.right);
        let max_h = scale.scaled_h.saturating_sub(2 * ey + rm.bottom + rm.top);
        if encode::region::dimension_candidates(scale.region_target[ri], min_w, min_h, max_w, max_h)
            .is_empty()
        {
            return UnsatOutcome::Conflict(vec![ConstraintFamily::CoreGeometry]);
        }
    }

    let mut smt = Smt::new();
    let vars = VarMap::create(&mut smt, design, &scale, &plan, config, None);
    let encoding = encode::encode_design(&mut smt, design, &scale, &plan, &vars, config);
    let lowering = encoding.store.lower(&mut smt, 0);

    smt.set_conflict_budget(config.optimize.first_conflict_budget);
    let assumptions: Vec<Term> = lowering.selectors.iter().map(|&(_, s)| s).collect();
    match smt.solve_with(&assumptions) {
        SmtResult::Sat => UnsatOutcome::Feasible,
        SmtResult::Unknown | SmtResult::Cancelled => UnsatOutcome::Unknown,
        SmtResult::Unsat => UnsatOutcome::Conflict(conflict_families(
            &lowering.selectors,
            smt.failed_assumptions(),
        )),
    }
}

//! Static presolve: decide or tighten an instance before the solver runs.
//!
//! Three cooperating passes over the design and [`crate::ir`] constraint
//! families:
//!
//! 1. **Interval domain analysis** (`domain`) — abstract interpretation
//!    of the core-geometry, symmetry, array, and power-abutment constraint
//!    families over coordinate intervals, run to a fixpoint. The narrowed
//!    upper bounds feed the variable allocator, which hands out fewer
//!    bit-vector bits per variable so the lowered CNF shrinks.
//! 2. **Capacity/counting proofs** (`capacity`) — area pigeonhole,
//!    pin-density window counting (Eq. 13–14), symmetry parity, and
//!    power-band stacking. Each is a *necessary* condition: a violation is
//!    a proof of infeasibility, reported with family + provenance so the
//!    placer can fail fast (or climb the recovery ladder) without a CDCL
//!    run.
//! 3. **Lowering well-formedness** (`validate_lowering`) — selector
//!    discipline after every lower/retire/re-lower, run under
//!    `debug_assertions` in the placer and as an explicit CI check.
//!
//! Soundness: every domain rule and capacity proof over-approximates the
//! feasible set, so presolve can never declare UNSAT on a satisfiable
//! instance, and pruning can never remove a legal placement.

mod capacity;
mod domain;
mod validate;

pub use domain::{Domains, Interval};

pub(crate) use capacity::check as capacity_check;
pub(crate) use validate::validate_lowering;

use crate::config::PlacerConfig;
use crate::ir::{ConstraintFamily, Provenance};
use crate::placement::PresolvePassStats;
use crate::power::PowerPlan;
use crate::scale::ScaleInfo;
use crate::vars::VarMap;
use ams_netlist::Design;
use ams_smt::Smt;

/// A static infeasibility proof: which constraint family is violated, at
/// which design site, and by which presolve pass.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PresolveConflict {
    /// The violated constraint family (blame unit, as in UNSAT cores).
    pub family: ConstraintFamily,
    /// The design object the violated constraint was derived from.
    pub site: Provenance,
    /// The pass that found the proof: `"domain"` or `"capacity"`.
    pub pass: &'static str,
    /// Human-readable proof sketch.
    pub detail: String,
}

impl PresolveConflict {
    /// A domain-pass conflict (an interval ran empty).
    pub(crate) fn new(
        family: ConstraintFamily,
        site: Provenance,
        detail: impl Into<String>,
    ) -> PresolveConflict {
        PresolveConflict {
            family,
            site,
            pass: "domain",
            detail: detail.into(),
        }
    }

    /// A capacity-pass conflict (a counting argument failed).
    pub(crate) fn capacity(
        family: ConstraintFamily,
        site: Provenance,
        detail: impl Into<String>,
    ) -> PresolveConflict {
        PresolveConflict {
            pass: "capacity",
            ..PresolveConflict::new(family, site, detail)
        }
    }

    /// The provenance line cited in [`crate::PlaceError::Infeasible`].
    pub fn message(&self) -> String {
        format!(
            "presolve {} pass: {} ({}, family {})",
            self.pass, self.detail, self.site, self.family
        )
    }
}

/// Presolve's overall answer for an instance.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PresolveVerdict {
    /// No pass found a proof of infeasibility (the instance may still be
    /// UNSAT — presolve is sound, not complete).
    Feasible,
    /// A static proof of infeasibility.
    Infeasible(PresolveConflict),
}

/// The result of running presolve on one instance.
#[derive(Clone, Debug)]
pub struct PresolveReport {
    /// Feasible-so-far or a static infeasibility proof.
    pub verdict: PresolveVerdict,
    /// Bit-vector bits the narrowed domains save versus Eq. 3 full-width
    /// allocation (0 when pruning is disabled or nothing narrowed).
    pub vars_saved_bits: u64,
    /// One entry per pass that ran, in order.
    pub passes: Vec<PresolvePassStats>,
    /// The fixpoint domains, for pruning (absent when the domain pass
    /// itself proved infeasibility).
    pub(crate) domains: Option<Domains>,
}

impl PresolveReport {
    /// True when some pass proved the instance infeasible.
    pub fn is_infeasible(&self) -> bool {
        matches!(self.verdict, PresolveVerdict::Infeasible(_))
    }

    /// The infeasibility proof, if any.
    pub fn conflict(&self) -> Option<&PresolveConflict> {
        match &self.verdict {
            PresolveVerdict::Infeasible(c) => Some(c),
            PresolveVerdict::Feasible => None,
        }
    }
}

/// Runs presolve standalone (the `amsplace lint --presolve` entry point).
///
/// Computes scaling and the power plan exactly as [`crate::Placer::new`]
/// would, runs the passes, and — when the domain pass succeeded and
/// pruning is enabled — measures the bit savings on a scratch solver
/// without bit-blasting any constraint.
pub fn presolve(design: &Design, config: &PlacerConfig) -> PresolveReport {
    let scale = ScaleInfo::compute(design, config);
    let plan = if config.toggles.power_abutment {
        PowerPlan::analyze(design)
    } else {
        PowerPlan::default()
    };
    let mut report = presolve_with(design, config, &scale, &plan);
    if config.presolve.domain_pruning {
        if let Some(domains) = &report.domains {
            let mut scratch = Smt::new();
            let vars = VarMap::create(&mut scratch, design, &scale, &plan, config, Some(domains));
            report.vars_saved_bits = vars.saved_bits;
        }
    }
    report
}

/// Runs the domain and capacity passes against precomputed scaling — the
/// placer-internal entry, which reuses its own `scale`/`plan`.
pub(crate) fn presolve_with(
    design: &Design,
    config: &PlacerConfig,
    scale: &ScaleInfo,
    plan: &PowerPlan,
) -> PresolveReport {
    let mut passes = Vec::new();
    let domains = match domain::analyze(design, config, scale, plan) {
        Ok(d) => {
            passes.push(PresolvePassStats {
                pass: "domain",
                verdict: "feasible".into(),
                detail: format!(
                    "{} of {} coordinate intervals narrowed",
                    narrowed_count(design, scale, &d),
                    2 * design.cells().len()
                ),
            });
            Some(d)
        }
        Err(c) => {
            passes.push(PresolvePassStats {
                pass: "domain",
                verdict: "infeasible".into(),
                detail: format!("{} ({})", c.detail, c.site),
            });
            return PresolveReport {
                verdict: PresolveVerdict::Infeasible(c),
                vars_saved_bits: 0,
                passes,
                domains: None,
            };
        }
    };
    match capacity::check(design, config, scale, plan) {
        Ok(()) => passes.push(PresolvePassStats {
            pass: "capacity",
            verdict: "feasible".into(),
            detail: "area, pin-density, symmetry-parity, and power-stacking proofs passed".into(),
        }),
        Err(c) => {
            passes.push(PresolvePassStats {
                pass: "capacity",
                verdict: "infeasible".into(),
                detail: format!("{} ({})", c.detail, c.site),
            });
            return PresolveReport {
                verdict: PresolveVerdict::Infeasible(c),
                vars_saved_bits: 0,
                passes,
                domains,
            };
        }
    }
    PresolveReport {
        verdict: PresolveVerdict::Feasible,
        vars_saved_bits: 0,
        passes,
        domains,
    }
}

/// How many cell-coordinate intervals the fixpoint narrowed past their
/// trivial die bounds (a cheap progress metric for the stats report).
fn narrowed_count(design: &Design, scale: &ScaleInfo, d: &Domains) -> usize {
    let die_w = u64::from(scale.scaled_w);
    let die_h = u64::from(scale.scaled_h);
    design
        .cell_ids()
        .map(|c| {
            let ci = c.index();
            let x0 = die_w.saturating_sub(u64::from(scale.width_of(c)));
            let y0 = die_h.saturating_sub(u64::from(scale.height_of(c)));
            usize::from(d.cell_x[ci].lo > 0 || d.cell_x[ci].hi < x0)
                + usize::from(d.cell_y[ci].lo > 0 || d.cell_y[ci].hi < y0)
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ams_netlist::benchmarks;

    #[test]
    fn buf_and_vco_presolve_feasible_by_default() {
        for design in [benchmarks::buf(), benchmarks::vco()] {
            let report = presolve(&design, &PlacerConfig::default());
            assert_eq!(report.verdict, PresolveVerdict::Feasible);
            assert_eq!(report.passes.len(), 2);
            assert!(
                report.vars_saved_bits > 0,
                "domain pruning found nothing to narrow on {}",
                design.name()
            );
        }
    }

    #[test]
    fn lambda_zero_is_proved_infeasible_by_counting() {
        let design = benchmarks::buf();
        let mut config = PlacerConfig::default();
        config.pin_density.as_mut().expect("default has pd").lambda = Some(0);
        let report = presolve(&design, &config);
        let c = report.conflict().expect("λ_th = 0 must be infeasible");
        assert_eq!(c.family, ConstraintFamily::PinDensity);
        assert_eq!(c.pass, "capacity");
        assert!(c.message().contains("presolve capacity pass"), "{c:?}");
    }

    #[test]
    fn disabling_pruning_reports_zero_savings() {
        let design = benchmarks::buf();
        let mut config = PlacerConfig::default();
        config.presolve.domain_pruning = false;
        let report = presolve(&design, &config);
        assert_eq!(report.vars_saved_bits, 0);
        assert_eq!(report.verdict, PresolveVerdict::Feasible);
    }
}

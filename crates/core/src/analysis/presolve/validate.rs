//! Lowering well-formedness: selector-literal discipline between the
//! constraint store and the live solver.
//!
//! The invariants checked here are exactly what solving and recovery rely
//! on: every family with records in the store is guarded by exactly one
//! *live* selector (so assumptions enable the whole family and UNSAT cores
//! attribute to it), no retired selector is still passed live (a retired
//! guard is permanently false — assuming it would poison every solve), and
//! no record carries a degenerate payload the blaster would mis-lower.
//! The placer runs this after every lower/retire/re-lower under
//! `debug_assertions`; CI runs the `validate_lowering` test filter
//! explicitly.

use crate::ir::{ConstraintFamily, ConstraintStore, Payload};
use ams_smt::Term;

/// Checks selector discipline for a store plus the live selector list and
/// retired-selector history.
///
/// # Errors
///
/// A human-readable description of the first violated invariant.
pub(crate) fn validate_lowering(
    store: &ConstraintStore,
    selectors: &[(ConstraintFamily, Term)],
    retired: &[Term],
) -> Result<(), String> {
    // No duplicate live selector terms (two families sharing a guard would
    // make attribution ambiguous; one family guarded twice would split it).
    for (i, &(fa, sa)) in selectors.iter().enumerate() {
        for &(fb, sb) in &selectors[i + 1..] {
            if sa == sb {
                return Err(format!("families {fa} and {fb} share one selector literal"));
            }
            if fa == fb {
                return Err(format!("family {fa} is guarded by two live selectors"));
            }
        }
    }

    // Retired selectors must not be passed as live assumptions.
    if let Some(&(family, _)) = selectors.iter().find(|&&(_, s)| retired.contains(&s)) {
        return Err(format!(
            "family {family} still lists a retired selector as live"
        ));
    }

    // Exactly the families with records are guarded.
    for family in ConstraintFamily::ALL {
        let has_records = store.records().iter().any(|c| c.family == family);
        let live = selectors.iter().filter(|&&(f, _)| f == family).count();
        if has_records && live == 0 {
            return Err(format!(
                "family {family} has store records but no live selector — its \
                 constraints are unreachable"
            ));
        }
        if !has_records && live > 0 {
            return Err(format!(
                "family {family} has a live selector but no store records — an \
                 orphan guard from a stale generation"
            ));
        }
    }

    // Degenerate payloads: an empty at-most sum lowers to nothing, so the
    // recorded constraint would silently vanish from the encoding.
    for c in store.records() {
        if let Payload::AtMost { items, .. } = &c.payload {
            if items.is_empty() {
                return Err(format!(
                    "family {} records an at-most bound over zero items at {}",
                    c.family, c.provenance
                ));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::Provenance;
    use ams_smt::Smt;

    fn store_with(families: &[ConstraintFamily]) -> (Smt, ConstraintStore) {
        let mut smt = Smt::new();
        let mut store = ConstraintStore::new();
        for &f in families {
            store.family(f);
            let t = smt.tru();
            store.assert(t);
        }
        (smt, store)
    }

    #[test]
    fn a_clean_lowering_validates() {
        let (mut smt, store) =
            store_with(&[ConstraintFamily::CoreGeometry, ConstraintFamily::Symmetry]);
        let lowering = store.lower(&mut smt, 0);
        assert_eq!(validate_lowering(&store, &lowering.selectors, &[]), Ok(()));
    }

    #[test]
    fn missing_and_orphan_selectors_are_flagged() {
        let (mut smt, store) = store_with(&[ConstraintFamily::CoreGeometry]);
        let lowering = store.lower(&mut smt, 0);

        // Records but no live selector.
        let err = validate_lowering(&store, &[], &[]).expect_err("unguarded records");
        assert!(err.contains("no live selector"), "{err}");

        // A selector for a family with no records.
        let stray = smt.bool_var("stray");
        let mut sels = lowering.selectors.clone();
        sels.push((ConstraintFamily::PinDensity, stray));
        let err = validate_lowering(&store, &sels, &[]).expect_err("orphan guard");
        assert!(err.contains("orphan guard"), "{err}");
    }

    #[test]
    fn retired_selectors_must_leave_the_live_set() {
        let (mut smt, store) = store_with(&[ConstraintFamily::PinDensity]);
        let lowering = store.lower(&mut smt, 0);
        let sel = lowering.selectors[0].1;
        let err =
            validate_lowering(&store, &lowering.selectors, &[sel]).expect_err("retired yet live");
        assert!(err.contains("retired selector"), "{err}");
    }

    #[test]
    fn duplicate_guards_are_flagged() {
        let (mut smt, store) =
            store_with(&[ConstraintFamily::CoreGeometry, ConstraintFamily::Symmetry]);
        let lowering = store.lower(&mut smt, 0);
        let shared = lowering.selectors[0].1;
        let sels = vec![
            (ConstraintFamily::CoreGeometry, shared),
            (ConstraintFamily::Symmetry, shared),
        ];
        let err = validate_lowering(&store, &sels, &[]).expect_err("shared literal");
        assert!(err.contains("share one selector"), "{err}");
    }

    #[test]
    fn empty_at_most_payloads_are_flagged() {
        let mut smt = Smt::new();
        let mut store = ConstraintStore::new();
        store.family(ConstraintFamily::PinDensity);
        store.at(Provenance::Window { x: 0, y: 0 });
        store.assert_at_most(Vec::new(), 3);
        let lowering = store.lower(&mut smt, 0);
        let err = validate_lowering(&store, &lowering.selectors, &[]).expect_err("empty sum");
        assert!(err.contains("zero items"), "{err}");
    }
}

//! Capacity/counting proofs: necessary conditions checkable in closed form.
//!
//! Each check derives a counting bound every model must satisfy; a
//! violation is therefore a proof of infeasibility, attributed to the
//! constraint family and provenance site it was derived from. All bounds
//! are taken at zero extension margins, so a verdict here survives the
//! recovery ladder's margin relaxations (the placer re-checks per rung
//! because the pin-density threshold itself can be raised).

use super::PresolveConflict;
use crate::config::PlacerConfig;
use crate::encode::pin_density::{resolve_lambda, window_origins};
use crate::encode::region::dimension_candidates;
use crate::ir::{ConstraintFamily, Provenance};
use crate::power::PowerPlan;
use crate::scale::ScaleInfo;
use ams_netlist::{Design, RegionId, SymmetryAxis};

/// Runs every counting proof; the first violation wins.
pub(crate) fn check(
    design: &Design,
    config: &PlacerConfig,
    scale: &ScaleInfo,
    plan: &PowerPlan,
) -> Result<(), PresolveConflict> {
    check_die_area(design, scale)?;
    check_pin_density(design, config, scale)?;
    if config.toggles.symmetry {
        check_symmetry_parity(design, scale)?;
    }
    if config.toggles.power_abutment {
        check_power_stacking(design, scale, plan)?;
    }
    Ok(())
}

/// Eq. 4–5 candidates of a region at zero extension margins.
fn zero_margin_candidates(
    design: &Design,
    scale: &ScaleInfo,
    ri: usize,
) -> Result<Vec<(u32, u32)>, PresolveConflict> {
    let rid = RegionId::from_index(ri);
    let (ex, ey) = scale.region_edge[ri];
    let min_w = design
        .cells_in_region(rid)
        .map(|c| scale.width_of(c))
        .max()
        .unwrap_or(1);
    let min_h = design
        .cells_in_region(rid)
        .map(|c| scale.height_of(c))
        .max()
        .unwrap_or(1);
    let max_w = u64::from(scale.scaled_w).saturating_sub(2 * u64::from(ex)) as u32;
    let max_h = u64::from(scale.scaled_h).saturating_sub(2 * u64::from(ey)) as u32;
    let cands = dimension_candidates(scale.region_target[ri], min_w, min_h, max_w, max_h);
    if cands.is_empty() {
        return Err(PresolveConflict::capacity(
            ConstraintFamily::CoreGeometry,
            Provenance::Region(rid),
            format!(
                "no feasible dimension candidates for target area {}",
                scale.region_target[ri]
            ),
        ));
    }
    Ok(cands)
}

/// Area pigeonhole: regions inflated by their edge reservations are
/// pairwise disjoint and inside the die (Eq. 6 separates regions by the
/// *sum* of both reservations), so the sum of minimal inflated footprints
/// must fit the die area.
fn check_die_area(design: &Design, scale: &ScaleInfo) -> Result<(), PresolveConflict> {
    let die = u64::from(scale.scaled_w) * u64::from(scale.scaled_h);
    let mut need = 0u64;
    for ri in 0..design.regions().len() {
        let (ex, ey) = scale.region_edge[ri];
        let cands = zero_margin_candidates(design, scale, ri)?;
        need += cands
            .iter()
            .map(|&(w, h)| (u64::from(w) + 2 * u64::from(ex)) * (u64::from(h) + 2 * u64::from(ey)))
            .min()
            .expect("nonempty candidates");
    }
    if need > die {
        return Err(PresolveConflict::capacity(
            ConstraintFamily::CoreGeometry,
            Provenance::Design,
            format!("region footprints need at least {need} scaled sites but the die offers {die}"),
        ));
    }
    Ok(())
}

/// Window-counting proofs (Eq. 13–14). Both need *coverage* — stride no
/// larger than the (die-clamped) window, so every cell overlaps at least
/// one check window; [`window_origins`] always includes the final origin.
///
/// * Per cell: a cell contributes every pin to each window it overlaps, so
///   `|P(v)| > λ_th` dooms whichever window ends up over it.
/// * Globally: summing the per-window bound over all windows gives
///   `Σ |P(v)| ≤ λ_th · #windows` — total pins beyond that cannot fit.
fn check_pin_density(
    design: &Design,
    config: &PlacerConfig,
    scale: &ScaleInfo,
) -> Result<(), PresolveConflict> {
    let Some(pd) = &config.pin_density else {
        return Ok(());
    };
    let beta_x = pd.beta_x.min(scale.scaled_w);
    let beta_y = pd.beta_y.min(scale.scaled_h);
    if pd.stride_x > beta_x || pd.stride_y > beta_y {
        // Striding past the window leaves uncovered gaps: a cell could sit
        // between windows, so neither counting argument applies.
        return Ok(());
    }
    let lambda = resolve_lambda(design, scale, pd);
    for c in design.cell_ids() {
        let pins = design.cell(c).pin_count() as u64;
        if pins > lambda {
            return Err(PresolveConflict::capacity(
                ConstraintFamily::PinDensity,
                Provenance::Cell(c),
                format!(
                    "cell carries {pins} pins but every {beta_x}x{beta_y} window admits \
                     at most λ_th = {lambda}"
                ),
            ));
        }
    }
    let windows = window_origins(scale.scaled_w, beta_x, pd.stride_x).len() as u64
        * window_origins(scale.scaled_h, beta_y, pd.stride_y).len() as u64;
    let total: u64 = design.cells().iter().map(|c| c.pin_count() as u64).sum();
    if total > lambda.saturating_mul(windows) {
        return Err(PresolveConflict::capacity(
            ConstraintFamily::PinDensity,
            Provenance::Design,
            format!(
                "{total} pins exceed the aggregate window capacity λ_th · #windows = \
                 {lambda} · {windows}"
            ),
        ));
    }
    Ok(())
}

/// Symmetry parity: a self-symmetric cell pins its axis parity via
/// `2·x + w = axis2`, so two self-symmetric cells on the same (shared)
/// axis with different width parities contradict (Eq. 8). Horizontal
/// groups constrain heights instead.
fn check_symmetry_parity(design: &Design, scale: &ScaleInfo) -> Result<(), PresolveConflict> {
    let groups = &design.constraints().symmetry;
    // Per resolved axis root: the parity pinned so far and who pinned it.
    let mut pinned: Vec<Option<(u64, usize)>> = vec![None; groups.len()];
    for (gi, g) in groups.iter().enumerate() {
        let mut root = gi;
        while let Some(parent) = groups[root].share_axis_with {
            root = parent;
        }
        for p in &g.pairs {
            if p.b.is_some() {
                continue;
            }
            let dim = match g.axis {
                SymmetryAxis::Vertical => u64::from(scale.width_of(p.a)),
                SymmetryAxis::Horizontal => u64::from(scale.height_of(p.a)),
            };
            match pinned[root] {
                None => pinned[root] = Some((dim % 2, gi)),
                Some((parity, by)) if parity != dim % 2 => {
                    return Err(PresolveConflict::capacity(
                        ConstraintFamily::Symmetry,
                        Provenance::SymmetryGroup(gi),
                        format!(
                            "self-symmetric cell #{} needs axis parity {} but group #{by} \
                             already pinned the shared axis to parity {parity}",
                            p.a.index(),
                            dim % 2,
                        ),
                    ));
                }
                Some(_) => {}
            }
        }
    }
    Ok(())
}

/// Power-band stacking: a mixed region must be at least as tall as the sum
/// of its bands' tallest cells (Eq. 12 stacks disjoint full-height bands),
/// but no Eq. 5 candidate may be that tall.
fn check_power_stacking(
    design: &Design,
    scale: &ScaleInfo,
    plan: &PowerPlan,
) -> Result<(), PresolveConflict> {
    for p in &plan.regions {
        let ri = p.region.index();
        let cands = zero_margin_candidates(design, scale, ri)?;
        let tallest = cands
            .iter()
            .map(|&(_, h)| u64::from(h))
            .max()
            .expect("nonempty candidates");
        let need: u64 = p
            .bands
            .iter()
            .map(|&g| {
                design
                    .cells_in_region(p.region)
                    .filter(|&c| design.cell(c).power_group == g)
                    .map(|c| u64::from(scale.height_of(c)))
                    .max()
                    .unwrap_or(0)
            })
            .sum();
        if need > tallest {
            return Err(PresolveConflict::capacity(
                ConstraintFamily::PowerAbutment,
                Provenance::PowerRegion(p.region),
                format!(
                    "stacking {} power bands needs height {need} but the tallest region \
                     candidate is {tallest}",
                    p.bands.len()
                ),
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ams_netlist::benchmarks;

    fn ctx(design: &Design, config: &PlacerConfig) -> (ScaleInfo, PowerPlan) {
        (
            ScaleInfo::compute(design, config),
            PowerPlan::analyze(design),
        )
    }

    #[test]
    fn default_fixtures_pass_every_proof() {
        for design in [benchmarks::buf(), benchmarks::vco()] {
            let config = PlacerConfig::default();
            let (scale, plan) = ctx(&design, &config);
            assert_eq!(check(&design, &config, &scale, &plan), Ok(()));
        }
    }

    #[test]
    fn lambda_zero_fails_the_per_cell_count() {
        let design = benchmarks::buf();
        let mut config = PlacerConfig::default();
        config.pin_density.as_mut().expect("default has pd").lambda = Some(0);
        let (scale, plan) = ctx(&design, &config);
        let c = check(&design, &config, &scale, &plan).expect_err("λ_th = 0");
        assert_eq!(c.family, ConstraintFamily::PinDensity);
        assert!(matches!(c.site, Provenance::Cell(_)));
    }

    #[test]
    fn aggregate_window_capacity_catches_low_lambda() {
        // λ_th = 1 passes no per-cell check only if every cell has ≤ 1 pin;
        // BUF cells have several, so the per-cell proof fires first — use a
        // wide stride-uncovered config to show the guard disables proofs.
        let design = benchmarks::buf();
        let mut config = PlacerConfig::default();
        {
            let pd = config.pin_density.as_mut().expect("default has pd");
            pd.lambda = Some(0);
            pd.stride_x = 1000; // beyond β_x: no coverage, proofs must not fire
        }
        let (scale, plan) = ctx(&design, &config);
        assert_eq!(check(&design, &config, &scale, &plan), Ok(()));
    }

    #[test]
    fn mismatched_self_symmetry_parity_is_caught() {
        use ams_netlist::{DesignBuilder, SymmetryGroup, SymmetryPair};
        let mut b = DesignBuilder::new("parity");
        let vdd = b.add_power_group("VDD");
        let r = b.add_region("top", 0.9);
        // Widths 2 and 3 share unit GCD 1 → scaled parities differ.
        let a = b.add_cell("a", r, 2, 1, vdd);
        let c = b.add_cell("c", r, 3, 1, vdd);
        b.add_symmetry(SymmetryGroup {
            name: "s".into(),
            axis: SymmetryAxis::Vertical,
            pairs: vec![
                SymmetryPair::self_symmetric(a),
                SymmetryPair::self_symmetric(c),
            ],
            share_axis_with: None,
        });
        let design = b.build().expect("valid design");
        let config = PlacerConfig::default();
        let (scale, plan) = ctx(&design, &config);
        let err = check(&design, &config, &scale, &plan).expect_err("parity conflict");
        assert_eq!(err.family, ConstraintFamily::Symmetry);
    }
}

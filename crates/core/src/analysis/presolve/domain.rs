//! Interval domain analysis: sound coordinate/dimension bounds propagated
//! to a fixpoint through the core-geometry, symmetry, array, and
//! power-abutment constraint families.
//!
//! Every rule is an *over-approximation* of the corresponding encoded
//! constraint: an interval only ever shrinks by intersection with a bound
//! that every model of the constraint system satisfies. Two consequences:
//!
//! * an empty interval is a proof of infeasibility (reported with the
//!   family and provenance site of the rule that emptied it), and
//! * feeding the narrowed upper bounds into [`crate::vars`] (allocating
//!   fewer bit-vector bits per variable, zero-extended back to the full
//!   width) removes only models *outside* the feasible set — the SAT/UNSAT
//!   verdict and the legal-model set are unchanged.
//!
//! Relaxation invariance: all bounds are computed with extension margins at
//! zero (`extension_scale = 0`), which the recovery ladder's
//! `RaisePinDensity` and `RelaxExtensions` rungs can only approach from
//! above — so domains computed here stay sound across every content-only
//! re-lowering. Die widening rebuilds the placer (and re-runs this
//! analysis) from scratch. Edge reservations are never relaxed and are
//! therefore kept.

use super::PresolveConflict;
use crate::config::PlacerConfig;
use crate::encode::region::dimension_candidates;
use crate::ir::{ConstraintFamily, Provenance};
use crate::power::PowerPlan;
use crate::scale::ScaleInfo;
use ams_netlist::{Design, RegionId, SymmetryAxis};

/// Inclusive bounds `[lo, hi]` on one scaled coordinate or dimension.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Interval {
    /// Smallest value any model may assign.
    pub lo: u64,
    /// Largest value any model may assign.
    pub hi: u64,
}

impl Interval {
    /// The whole range `[0, hi]`.
    fn upto(hi: u64) -> Interval {
        Interval { lo: 0, hi }
    }

    /// True when no value is admitted.
    pub fn is_empty(self) -> bool {
        self.lo > self.hi
    }
}

/// Bounding-box intervals of one array constraint.
#[derive(Clone, Copy, Debug)]
pub(crate) struct BoxIntervals {
    pub xl: Interval,
    pub xh: Interval,
    pub yl: Interval,
    pub yh: Interval,
}

/// Narrowed variable domains of one instance, aligned index-for-index with
/// the crate-internal variable map. Opaque outside the crate: consumers go
/// through [`super::presolve`] / the placer.
#[derive(Clone, Debug)]
pub struct Domains {
    pub(crate) cell_x: Vec<Interval>,
    pub(crate) cell_y: Vec<Interval>,
    pub(crate) region_x: Vec<Interval>,
    pub(crate) region_y: Vec<Interval>,
    pub(crate) region_w: Vec<Interval>,
    pub(crate) region_h: Vec<Interval>,
    /// Doubled axis position per symmetry group; children carry a copy of
    /// their root's interval (the variables alias the root's term).
    pub(crate) sym_axis2: Vec<Interval>,
    pub(crate) array_box: Vec<BoxIntervals>,
    /// Band boundaries per mixed region, aligned with
    /// [`PowerPlan::regions`]: `bands.len() - 1` intervals each.
    pub(crate) power_bounds: Vec<Vec<Interval>>,
}

/// Per-region static facts: edge reservations and the Eq. 4–5 candidate
/// set at zero extension margins (a superset of the candidate set under any
/// recovery-ladder margin scale — see the module docs).
struct RegionFacts {
    ex: u64,
    ey: u64,
    cands: Vec<(u32, u32)>,
}

/// Intersects `iv` with `[lo, hi]`; flags `changed` and reports emptiness.
fn meet(iv: &mut Interval, lo: u64, hi: u64, changed: &mut bool) -> bool {
    let nlo = iv.lo.max(lo);
    let nhi = iv.hi.min(hi);
    if nlo != iv.lo || nhi != iv.hi {
        iv.lo = nlo;
        iv.hi = nhi;
        *changed = true;
    }
    nlo <= nhi
}

/// Resolves a shared symmetry group to its axis root.
fn resolve_root(groups: &[ams_netlist::SymmetryGroup], mut gi: usize) -> usize {
    while let Some(parent) = groups[gi].share_axis_with {
        gi = parent;
    }
    gi
}

/// `[min, max]` of a projection over a nonempty candidate list.
fn interval_over(cands: &[(u32, u32)], f: impl Fn(&(u32, u32)) -> u64) -> Interval {
    let lo = cands.iter().map(&f).min().expect("nonempty candidates");
    let hi = cands.iter().map(&f).max().expect("nonempty candidates");
    Interval { lo, hi }
}

/// Runs the interval analysis to a fixpoint.
///
/// # Errors
///
/// A [`PresolveConflict`] naming the family and provenance site whose rule
/// emptied an interval — a static proof of infeasibility.
pub(crate) fn analyze(
    design: &Design,
    config: &PlacerConfig,
    scale: &ScaleInfo,
    plan: &PowerPlan,
) -> Result<Domains, PresolveConflict> {
    let die_w = u64::from(scale.scaled_w);
    let die_h = u64::from(scale.scaled_h);
    let nr = design.regions().len();

    let mut facts: Vec<RegionFacts> = Vec::with_capacity(nr);
    for ri in 0..nr {
        let rid = RegionId::from_index(ri);
        let (ex, ey) = scale.region_edge[ri];
        let min_w = design
            .cells_in_region(rid)
            .map(|c| scale.width_of(c))
            .max()
            .unwrap_or(1);
        let min_h = design
            .cells_in_region(rid)
            .map(|c| scale.height_of(c))
            .max()
            .unwrap_or(1);
        let max_w = die_w.saturating_sub(2 * u64::from(ex)) as u32;
        let max_h = die_h.saturating_sub(2 * u64::from(ey)) as u32;
        let cands = dimension_candidates(scale.region_target[ri], min_w, min_h, max_w, max_h);
        if cands.is_empty() {
            return Err(PresolveConflict::new(
                ConstraintFamily::CoreGeometry,
                Provenance::Region(rid),
                format!(
                    "no feasible dimension candidates: target area {} with cells up to \
                     {min_w}x{min_h} cannot fit a {max_w}x{max_h} bound even at zero \
                     extension margins",
                    scale.region_target[ri]
                ),
            ));
        }
        facts.push(RegionFacts {
            ex: u64::from(ex),
            ey: u64::from(ey),
            cands,
        });
    }

    let mut d = Domains {
        cell_x: design
            .cell_ids()
            .map(|c| Interval::upto(die_w.saturating_sub(u64::from(scale.width_of(c)))))
            .collect(),
        cell_y: design
            .cell_ids()
            .map(|c| Interval::upto(die_h.saturating_sub(u64::from(scale.height_of(c)))))
            .collect(),
        region_x: (0..nr).map(|_| Interval::upto(die_w)).collect(),
        region_y: (0..nr).map(|_| Interval::upto(die_h)).collect(),
        region_w: facts
            .iter()
            .map(|f| interval_over(&f.cands, |&(w, _)| u64::from(w)))
            .collect(),
        region_h: facts
            .iter()
            .map(|f| interval_over(&f.cands, |&(_, h)| u64::from(h)))
            .collect(),
        sym_axis2: design
            .constraints()
            .symmetry
            .iter()
            .map(|g| match g.axis {
                SymmetryAxis::Vertical => Interval::upto(2 * die_w),
                SymmetryAxis::Horizontal => Interval::upto(2 * die_h),
            })
            .collect(),
        array_box: design
            .constraints()
            .arrays
            .iter()
            .map(|_| BoxIntervals {
                xl: Interval::upto(die_w),
                xh: Interval::upto(die_w),
                yl: Interval::upto(die_h),
                yh: Interval::upto(die_h),
            })
            .collect(),
        power_bounds: plan
            .regions
            .iter()
            .map(|p| vec![Interval::upto(die_h); p.bands.len().saturating_sub(1)])
            .collect(),
    };

    // Rules only intersect, so the loop is monotone and terminates; the cap
    // is a safety net against pathological slow convergence.
    let mut changed = true;
    let mut iters = 0u32;
    while changed && iters < 64 {
        changed = false;
        iters += 1;
        propagate_regions(design, scale, &facts, &mut d, &mut changed)?;
        propagate_containment(design, scale, &mut d, &mut changed)?;
        if config.toggles.symmetry {
            propagate_symmetry(design, scale, &mut d, &mut changed)?;
        }
        if config.toggles.arrays {
            propagate_arrays(design, scale, &mut d, &mut changed)?;
        }
        if config.toggles.power_abutment {
            propagate_power(design, scale, plan, &mut d, &mut changed)?;
        }
    }
    Ok(d)
}

/// Region dimension-candidate filtering (Eq. 4–5) and the edge-reserved
/// in-die placement window: `x_r >= D_x` and `x_r + w_r + D_x <= W̃`.
fn propagate_regions(
    _design: &Design,
    scale: &ScaleInfo,
    facts: &[RegionFacts],
    d: &mut Domains,
    changed: &mut bool,
) -> Result<(), PresolveConflict> {
    let die_w = u64::from(scale.scaled_w);
    let die_h = u64::from(scale.scaled_h);
    for (ri, f) in facts.iter().enumerate() {
        let site = Provenance::Region(RegionId::from_index(ri));
        let conflict = |what: &str| {
            PresolveConflict::new(
                ConstraintFamily::CoreGeometry,
                site,
                format!("{what} interval is empty"),
            )
        };
        // Filter the candidate pairs by the current width/height intervals;
        // the disjunction (Eq. 5) forces the model onto one of them.
        let live: Vec<(u32, u32)> = f
            .cands
            .iter()
            .copied()
            .filter(|&(w, h)| {
                let (w, h) = (u64::from(w), u64::from(h));
                w >= d.region_w[ri].lo
                    && w <= d.region_w[ri].hi
                    && h >= d.region_h[ri].lo
                    && h <= d.region_h[ri].hi
            })
            .collect();
        if live.is_empty() {
            return Err(conflict("region dimension-candidate"));
        }
        let wb = interval_over(&live, |&(w, _)| u64::from(w));
        let hb = interval_over(&live, |&(_, h)| u64::from(h));
        if !meet(&mut d.region_w[ri], wb.lo, wb.hi, changed) {
            return Err(conflict("region width"));
        }
        if !meet(&mut d.region_h[ri], hb.lo, hb.hi, changed) {
            return Err(conflict("region height"));
        }
        // Placement window with edge reservations (never relaxed).
        let x_hi = die_w.saturating_sub(f.ex + d.region_w[ri].lo);
        if !meet(&mut d.region_x[ri], f.ex, x_hi, changed) {
            return Err(conflict("region x"));
        }
        let y_hi = die_h.saturating_sub(f.ey + d.region_h[ri].lo);
        if !meet(&mut d.region_y[ri], f.ey, y_hi, changed) {
            return Err(conflict("region y"));
        }
    }
    Ok(())
}

/// Cell-in-region containment (Eq. 7), forward and backward.
fn propagate_containment(
    design: &Design,
    scale: &ScaleInfo,
    d: &mut Domains,
    changed: &mut bool,
) -> Result<(), PresolveConflict> {
    for c in design.cell_ids() {
        let ci = c.index();
        let ri = design.cell(c).region.index();
        let w = u64::from(scale.width_of(c));
        let h = u64::from(scale.height_of(c));
        let site = Provenance::Cell(c);
        let conflict = |what: &str| {
            PresolveConflict::new(
                ConstraintFamily::CoreGeometry,
                site,
                format!("{what} interval is empty under region containment"),
            )
        };

        // Forward: x_r <= x_v and x_v + w_v <= x_r + w_r.
        let x_hi = (d.region_x[ri].hi + d.region_w[ri].hi).saturating_sub(w);
        if !meet(&mut d.cell_x[ci], d.region_x[ri].lo, x_hi, changed) {
            return Err(conflict("cell x"));
        }
        let y_hi = (d.region_y[ri].hi + d.region_h[ri].hi).saturating_sub(h);
        if !meet(&mut d.cell_y[ci], d.region_y[ri].lo, y_hi, changed) {
            return Err(conflict("cell y"));
        }

        // Backward: the region must reach the cell.
        let rx_lo = (d.cell_x[ci].lo + w).saturating_sub(d.region_w[ri].hi);
        if !meet(&mut d.region_x[ri], rx_lo, d.cell_x[ci].hi, changed) {
            return Err(conflict("region x"));
        }
        let ry_lo = (d.cell_y[ci].lo + h).saturating_sub(d.region_h[ri].hi);
        if !meet(&mut d.region_y[ri], ry_lo, d.cell_y[ci].hi, changed) {
            return Err(conflict("region y"));
        }
        let rw_lo = (d.cell_x[ci].lo + w).saturating_sub(d.region_x[ri].hi);
        if !meet(&mut d.region_w[ri], rw_lo, u64::MAX, changed) {
            return Err(conflict("region width"));
        }
        let rh_lo = (d.cell_y[ci].lo + h).saturating_sub(d.region_y[ri].hi);
        if !meet(&mut d.region_h[ri], rh_lo, u64::MAX, changed) {
            return Err(conflict("region height"));
        }
    }
    Ok(())
}

/// Hierarchical symmetry (Eq. 8): self pairs `2x + w = axis2`, mirror pairs
/// `x_a + x_b + w_a = axis2` with the cross coordinate equal.
fn propagate_symmetry(
    design: &Design,
    scale: &ScaleInfo,
    d: &mut Domains,
    changed: &mut bool,
) -> Result<(), PresolveConflict> {
    let groups = &design.constraints().symmetry;
    for (gi, g) in groups.iter().enumerate() {
        let root = resolve_root(groups, gi);
        let site = Provenance::SymmetryGroup(gi);
        let conflict = |what: &str| {
            PresolveConflict::new(
                ConstraintFamily::Symmetry,
                site,
                format!("{what} interval is empty under the symmetry axis"),
            )
        };
        for p in &g.pairs {
            let a = p.a.index();
            // Coordinates along the symmetry direction and across it.
            let vertical = g.axis == SymmetryAxis::Vertical;
            let (wa, main_a) = if vertical {
                (u64::from(scale.width_of(p.a)), a)
            } else {
                (u64::from(scale.height_of(p.a)), a)
            };
            // Split borrows: the main-axis cell intervals and the axis.
            macro_rules! main {
                ($i:expr) => {
                    if vertical {
                        &mut d.cell_x[$i]
                    } else {
                        &mut d.cell_y[$i]
                    }
                };
            }
            macro_rules! main_ro {
                ($i:expr) => {
                    if vertical {
                        d.cell_x[$i]
                    } else {
                        d.cell_y[$i]
                    }
                };
            }
            match p.b {
                None => {
                    // 2x + w = axis2.
                    let xa = main_ro!(main_a);
                    let ax = &mut d.sym_axis2[root];
                    if !meet(ax, 2 * xa.lo + wa, 2 * xa.hi + wa, changed) {
                        return Err(conflict("axis"));
                    }
                    let ax = d.sym_axis2[root];
                    if ax.hi < wa {
                        return Err(conflict("self-symmetric cell"));
                    }
                    let lo = ax.lo.saturating_sub(wa).div_ceil(2);
                    let hi = (ax.hi - wa) / 2;
                    if !meet(main!(main_a), lo, hi, changed) {
                        return Err(conflict("self-symmetric cell"));
                    }
                }
                Some(b) => {
                    let bi = b.index();
                    // x_a + x_b + w_a = axis2.
                    let (xa, xb) = (main_ro!(main_a), main_ro!(bi));
                    let ax = &mut d.sym_axis2[root];
                    if !meet(ax, xa.lo + xb.lo + wa, xa.hi + xb.hi + wa, changed) {
                        return Err(conflict("axis"));
                    }
                    let ax = d.sym_axis2[root];
                    let a_lo = ax.lo.saturating_sub(wa + xb.hi);
                    let a_hi = ax.hi.saturating_sub(wa + xb.lo);
                    if !meet(main!(main_a), a_lo, a_hi, changed) {
                        return Err(conflict("mirror cell"));
                    }
                    let xa = main_ro!(main_a);
                    let b_lo = ax.lo.saturating_sub(wa + xa.hi);
                    let b_hi = ax.hi.saturating_sub(wa + xa.lo);
                    if !meet(main!(bi), b_lo, b_hi, changed) {
                        return Err(conflict("mirror cell"));
                    }
                    // Across the axis the pair shares a coordinate.
                    let (ca, cb) = if vertical {
                        (d.cell_y[a], d.cell_y[bi])
                    } else {
                        (d.cell_x[a], d.cell_x[bi])
                    };
                    let (lo, hi) = (ca.lo.max(cb.lo), ca.hi.min(cb.hi));
                    fn cross(dd: &mut Domains, vertical: bool, i: usize) -> &mut Interval {
                        if vertical {
                            &mut dd.cell_y[i]
                        } else {
                            &mut dd.cell_x[i]
                        }
                    }
                    if !meet(cross(d, vertical, a), lo, hi, changed)
                        || !meet(cross(d, vertical, bi), lo, hi, changed)
                    {
                        return Err(conflict("mirror-pair row/column"));
                    }
                }
            }
        }
    }
    // Children alias their root's axis variable: keep their recorded
    // interval in sync so width narrowing (done at the root) stays exact.
    for gi in 0..groups.len() {
        let root = resolve_root(groups, gi);
        if root != gi && d.sym_axis2[gi] != d.sym_axis2[root] {
            d.sym_axis2[gi] = d.sym_axis2[root];
        }
    }
    Ok(())
}

/// Array bounding boxes (Eq. 9–10): members sit inside the box and touch
/// every edge, in both the slot-based and the literal encoding.
fn propagate_arrays(
    design: &Design,
    scale: &ScaleInfo,
    d: &mut Domains,
    changed: &mut bool,
) -> Result<(), PresolveConflict> {
    for (ai, arr) in design.constraints().arrays.iter().enumerate() {
        if arr.cells.is_empty() {
            continue;
        }
        let site = Provenance::Array(ai);
        let conflict = |what: &str| {
            PresolveConflict::new(
                ConstraintFamily::Arrays,
                site,
                format!("array {what} interval is empty"),
            )
        };
        let (mut xl_lo, mut xl_hi) = (u64::MAX, u64::MAX);
        let (mut xh_lo, mut xh_hi) = (0u64, 0u64);
        let (mut yl_lo, mut yl_hi) = (u64::MAX, u64::MAX);
        let (mut yh_lo, mut yh_hi) = (0u64, 0u64);
        for &c in &arr.cells {
            let ci = c.index();
            let w = u64::from(scale.width_of(c));
            let h = u64::from(scale.height_of(c));
            // xl = min x, xh = max (x + w) over members (touch-edge rules).
            xl_lo = xl_lo.min(d.cell_x[ci].lo);
            xl_hi = xl_hi.min(d.cell_x[ci].hi);
            xh_lo = xh_lo.max(d.cell_x[ci].lo + w);
            xh_hi = xh_hi.max(d.cell_x[ci].hi + w);
            yl_lo = yl_lo.min(d.cell_y[ci].lo);
            yl_hi = yl_hi.min(d.cell_y[ci].hi);
            yh_lo = yh_lo.max(d.cell_y[ci].lo + h);
            yh_hi = yh_hi.max(d.cell_y[ci].hi + h);
        }
        let b = &mut d.array_box[ai];
        if !meet(&mut b.xl, xl_lo, xl_hi, changed) {
            return Err(conflict("left-edge"));
        }
        if !meet(&mut b.xh, xh_lo, xh_hi, changed) {
            return Err(conflict("right-edge"));
        }
        if !meet(&mut b.yl, yl_lo, yl_hi, changed) {
            return Err(conflict("bottom-edge"));
        }
        if !meet(&mut b.yh, yh_lo, yh_hi, changed) {
            return Err(conflict("top-edge"));
        }
        // Feedback: every member stays inside the box.
        let (bxl, bxh, byl, byh) = (b.xl, b.xh, b.yl, b.yh);
        for &c in &arr.cells {
            let ci = c.index();
            let w = u64::from(scale.width_of(c));
            let h = u64::from(scale.height_of(c));
            if !meet(&mut d.cell_x[ci], bxl.lo, bxh.hi.saturating_sub(w), changed) {
                return Err(conflict("member x"));
            }
            if !meet(&mut d.cell_y[ci], byl.lo, byh.hi.saturating_sub(h), changed) {
                return Err(conflict("member y"));
            }
        }
    }
    Ok(())
}

/// Power-abutment band stacking (Eq. 12): bands are ordered slabs of the
/// region, each at least as tall as its tallest member cell.
fn propagate_power(
    design: &Design,
    scale: &ScaleInfo,
    plan: &PowerPlan,
    d: &mut Domains,
    changed: &mut bool,
) -> Result<(), PresolveConflict> {
    for (pi, p) in plan.regions.iter().enumerate() {
        let ri = p.region.index();
        let site = Provenance::PowerRegion(p.region);
        let conflict = |what: &str| {
            PresolveConflict::new(
                ConstraintFamily::PowerAbutment,
                site,
                format!("{what} interval is empty under power-band stacking"),
            )
        };
        // Tallest member per band; PowerPlan only lists present groups.
        let maxh: Vec<u64> = p
            .bands
            .iter()
            .map(|&g| {
                design
                    .cells_in_region(p.region)
                    .filter(|&c| design.cell(c).power_group == g)
                    .map(|c| u64::from(scale.height_of(c)))
                    .max()
                    .unwrap_or(0)
            })
            .collect();
        let total: u64 = maxh.iter().sum();
        if !meet(&mut d.region_h[ri], total, u64::MAX, changed) {
            return Err(conflict("region height"));
        }
        let region_top_hi = d.region_y[ri].hi + d.region_h[ri].hi;
        let last = p.bands.len() - 1;
        // Band boundaries: bounds[k] separates band k from band k + 1.
        for k in 0..last {
            let prefix: u64 = maxh[..=k].iter().sum();
            let suffix: u64 = maxh[k + 1..].iter().sum();
            let lo = d.region_y[ri].lo + prefix;
            let hi = region_top_hi.saturating_sub(suffix);
            if !meet(&mut d.power_bounds[pi][k], lo, hi, changed) {
                return Err(conflict("band boundary"));
            }
            if k > 0 {
                let below = d.power_bounds[pi][k - 1];
                let lo = below.lo + maxh[k];
                if !meet(&mut d.power_bounds[pi][k], lo, u64::MAX, changed) {
                    return Err(conflict("band boundary"));
                }
                let above_hi = d.power_bounds[pi][k].hi.saturating_sub(maxh[k]);
                if !meet(&mut d.power_bounds[pi][k - 1], 0, above_hi, changed) {
                    return Err(conflict("band boundary"));
                }
            }
        }
        // Member cells live in their band's slab.
        for c in design.cells_in_region(p.region) {
            let Some(band) = p
                .bands
                .iter()
                .position(|&g| g == design.cell(c).power_group)
            else {
                continue;
            };
            let ci = c.index();
            let h = u64::from(scale.height_of(c));
            let lo = if band == 0 {
                d.region_y[ri].lo
            } else {
                d.power_bounds[pi][band - 1].lo
            };
            let hi = if band == last {
                region_top_hi
            } else {
                d.power_bounds[pi][band].hi
            };
            if !meet(&mut d.cell_y[ci], lo, hi.saturating_sub(h), changed) {
                return Err(conflict("band-member y"));
            }
            // Backward: the boundaries must clear the member.
            if band > 0 {
                let y_hi = d.cell_y[ci].hi;
                if !meet(&mut d.power_bounds[pi][band - 1], 0, y_hi, changed) {
                    return Err(conflict("band boundary"));
                }
            }
            if band < last {
                let y_top = d.cell_y[ci].lo + h;
                if !meet(&mut d.power_bounds[pi][band], y_top, u64::MAX, changed) {
                    return Err(conflict("band boundary"));
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ams_netlist::benchmarks;

    fn domains_for(design: &Design, config: &PlacerConfig) -> Domains {
        let scale = ScaleInfo::compute(design, config);
        let plan = PowerPlan::analyze(design);
        analyze(design, config, &scale, &plan).expect("feasible fixture")
    }

    #[test]
    fn buf_domains_are_nonempty_and_inside_the_die() {
        let design = benchmarks::buf();
        let config = PlacerConfig::default();
        let scale = ScaleInfo::compute(&design, &config);
        let d = domains_for(&design, &config);
        for (i, iv) in d.cell_x.iter().enumerate() {
            assert!(!iv.is_empty(), "cell {i} x empty");
            assert!(iv.hi <= u64::from(scale.scaled_w));
        }
        for iv in &d.region_x {
            assert!(!iv.is_empty());
            // Edge reservations push regions off the die boundary.
            assert!(iv.lo >= 1, "BUF reserves edge sites");
        }
        // The analysis must actually narrow something relative to the die.
        assert!(
            d.cell_x.iter().any(|iv| iv.hi < u64::from(scale.scaled_w)),
            "no cell x-interval narrowed"
        );
    }

    #[test]
    fn vco_power_bands_stack_inside_the_core() {
        let design = benchmarks::vco();
        let config = PlacerConfig::default();
        let d = domains_for(&design, &config);
        // The VCO core mixes two power groups: one boundary variable whose
        // interval sits strictly inside the die height.
        assert_eq!(d.power_bounds.len(), 1);
        assert_eq!(d.power_bounds[0].len(), 1);
        let b = d.power_bounds[0][0];
        assert!(!b.is_empty());
        assert!(b.lo > 0, "boundary cleared the bottom band: {b:?}");
    }

    #[test]
    fn an_oversized_region_is_proved_infeasible() {
        // Shrink the die far below the cell area by cranking utilization
        // and removing slack headroom: candidate generation must fail.
        let design = benchmarks::buf();
        let config = PlacerConfig {
            utilization: 1.0,
            die_slack: 1.0,
            aspect_ratio: 40.0, // pathologically wide: height < tallest cell
            ..Default::default()
        };
        let scale = ScaleInfo::compute(&design, &config);
        let plan = PowerPlan::analyze(&design);
        match analyze(&design, &config, &scale, &plan) {
            Ok(_) => {
                // Extreme aspect ratios are clamped by die sizing; accept a
                // feasible verdict only if the die really admits the region.
                assert!(scale.scaled_h >= 3, "die too short yet presolve passed");
            }
            Err(c) => {
                assert_eq!(c.family, ConstraintFamily::CoreGeometry);
            }
        }
    }
}

//! Pre-solve constraint analysis: a static linter over a design, its
//! constraint set, and a placer configuration, plus an assumption-based
//! UNSAT explainer.
//!
//! The linter ([`lint`]) runs *before* any SMT encoding and emits
//! structured diagnostics ([`ams_netlist::LintReport`]) with stable
//! `AMS-Exxx`/`AMS-Wxxx`/`AMS-Hxxx` codes. Error-severity findings are
//! provable unsatisfiability or broken references — [`crate::Placer`]
//! refuses to encode such designs ([`crate::PlaceError::Lint`]), turning
//! late solver UNSATs and encode panics into early, actionable reports.
//!
//! When the linter is clean but the solver still answers UNSAT, the
//! second stage ([`explain_unsat`]) solves the shared constraint IR
//! encoding under per-family selector assumptions and names the
//! conflicting constraint-family combination.

mod capacity;
mod configcheck;
mod density;
mod explain;
pub mod presolve;
mod structure;

pub use crate::ir::ConstraintFamily;
pub use explain::{explain_unsat, UnsatOutcome};

use crate::config::PlacerConfig;
use crate::power::PowerPlan;
use crate::scale::ScaleInfo;
use ams_netlist::{ConstraintSet, Design, LintReport};

/// Lints a design's own constraint set under a configuration.
///
/// # Examples
///
/// ```
/// use ams_netlist::benchmarks;
/// use ams_place::{analysis, PlacerConfig};
///
/// let report = analysis::lint(&benchmarks::buf(), &PlacerConfig::default());
/// assert!(!report.has_errors());
/// ```
pub fn lint(design: &Design, config: &PlacerConfig) -> LintReport {
    lint_with(design, design.constraints(), config)
}

/// Lints a design against an explicit constraint set.
///
/// The structural checks run on `constraints` — which may differ from the
/// design's own set, e.g. a candidate set the
/// [`ams_netlist::DesignBuilder`] would reject — while the geometric
/// capacity checks use the design as built.
pub fn lint_with(
    design: &Design,
    constraints: &ConstraintSet,
    config: &PlacerConfig,
) -> LintReport {
    let mut report = LintReport::new();
    configcheck::check(config, &mut report);
    structure::check(design, constraints, &mut report);
    let scale = ScaleInfo::compute(design, config);
    let plan = if config.toggles.power_abutment {
        PowerPlan::analyze(design)
    } else {
        PowerPlan::default()
    };
    capacity::check(design, config, &scale, &plan, &mut report);
    density::check(design, config, &scale, &mut report);
    report
}

//! Structural well-formedness checks over a constraint set: dangling ids,
//! contradictory pairings, malformed array patterns, and dead constraints.
//!
//! These checks accept the constraint set separately from the design so
//! that sets the [`ams_netlist::DesignBuilder`] would reject can still be
//! diagnosed with a precise code instead of a single build error.

use ams_netlist::{
    ArrayPattern, CellId, ConstraintSet, Design, DiagCode, Diagnostic, ExtensionTarget, LintReport,
};
use std::collections::{HashMap, HashSet};

/// Name of a cell if its id is in range, else a placeholder with the index.
fn cell_name(design: &Design, c: CellId) -> String {
    if c.index() < design.cells().len() {
        design.cell(c).name.clone()
    } else {
        format!("<cell #{}>", c.index())
    }
}

pub(crate) fn check(design: &Design, cs: &ConstraintSet, report: &mut LintReport) {
    check_symmetry(design, cs, report);
    check_arrays(design, cs, report);
    check_clusters(design, cs, report);
    check_extensions(design, cs, report);
    check_unreferenced(design, cs, report);
}

fn check_symmetry(design: &Design, cs: &ConstraintSet, report: &mut LintReport) {
    let ncells = design.cells().len();
    // (unordered pair, axis) across all groups, for duplicate detection.
    let mut seen_pairs: HashMap<(CellId, CellId, bool), String> = HashMap::new();

    for (gi, g) in cs.symmetry.iter().enumerate() {
        if g.pairs.is_empty() {
            report.push(
                Diagnostic::new(
                    DiagCode::EmptyConstraint,
                    format!("symmetry group '{}' has no pairs", g.name),
                )
                .entity(&g.name)
                .suggest("remove the group or add mirrored pairs"),
            );
        }
        if let Some(parent) = g.share_axis_with {
            if parent >= cs.symmetry.len() {
                report.push(
                    Diagnostic::new(
                        DiagCode::SymmetryCyclicShare,
                        format!(
                            "symmetry group '{}' shares its axis with missing group #{parent}",
                            g.name
                        ),
                    )
                    .entity(&g.name)
                    .suggest("reference an existing earlier group"),
                );
            } else if parent >= gi {
                report.push(
                    Diagnostic::new(
                        DiagCode::SymmetryCyclicShare,
                        format!(
                            "symmetry group '{}' shares its axis with group '{}' which does \
                             not precede it; axis-sharing must be acyclic (parents first)",
                            g.name, cs.symmetry[parent].name
                        ),
                    )
                    .entity(&g.name)
                    .suggest("reorder the groups so every parent precedes its children"),
                );
            }
        }

        let mut members_in_group: HashSet<CellId> = HashSet::new();
        for p in &g.pairs {
            let mut ids = vec![p.a];
            ids.extend(p.b);
            let mut dangling = false;
            for &c in &ids {
                if c.index() >= ncells {
                    dangling = true;
                    report.push(
                        Diagnostic::new(
                            DiagCode::SymmetryDanglingCell,
                            format!(
                                "symmetry group '{}' references cell #{} but the design \
                                 has only {ncells} cells",
                                g.name,
                                c.index()
                            ),
                        )
                        .entity(&g.name)
                        .suggest("drop the pair or fix the cell id"),
                    );
                }
            }
            for &c in &ids {
                if c.index() < ncells && !members_in_group.insert(c) {
                    report.push(
                        Diagnostic::new(
                            DiagCode::SymmetryOverconstrained,
                            format!(
                                "cell '{}' appears in more than one pair of symmetry group \
                                 '{}'; its mirror partners would be forced onto the same \
                                 position",
                                cell_name(design, c),
                                g.name
                            ),
                        )
                        .entity(cell_name(design, c))
                        .entity(&g.name)
                        .suggest("keep each cell in at most one pair per group"),
                    );
                }
            }
            if dangling {
                continue;
            }
            if let Some(b) = p.b {
                if p.a == b {
                    report.push(
                        Diagnostic::new(
                            DiagCode::ContradictoryConstraint,
                            format!(
                                "cell '{}' is mirrored onto itself in group '{}'",
                                cell_name(design, p.a),
                                g.name
                            ),
                        )
                        .entity(cell_name(design, p.a))
                        .suggest("use a self-symmetric pair (b = None) instead"),
                    );
                    continue;
                }
                let (ca, cb) = (design.cell(p.a), design.cell(b));
                if ca.width != cb.width || ca.height != cb.height || ca.region != cb.region {
                    report.push(
                        Diagnostic::new(
                            DiagCode::SymmetryHeightMismatch,
                            format!(
                                "symmetry pair ('{}', '{}') in group '{}' joins cells of \
                                 {}x{} and {}x{} in {}; mirrored cells must share \
                                 dimensions and a region",
                                ca.name,
                                cb.name,
                                g.name,
                                ca.width,
                                ca.height,
                                cb.width,
                                cb.height,
                                if ca.region == cb.region {
                                    "the same region".to_string()
                                } else {
                                    "different regions".to_string()
                                },
                            ),
                        )
                        .entities([ca.name.clone(), cb.name.clone()])
                        .suggest("pair congruent cells of one region"),
                    );
                    continue;
                }
                let vertical = matches!(g.axis, ams_netlist::SymmetryAxis::Vertical);
                let key = if p.a < b {
                    (p.a, b, vertical)
                } else {
                    (b, p.a, vertical)
                };
                if let Some(first) = seen_pairs.get(&key) {
                    report.push(
                        Diagnostic::new(
                            DiagCode::DuplicateConstraint,
                            format!(
                                "pair ('{}', '{}') is constrained by both group '{first}' \
                                 and group '{}' about the same axis orientation",
                                ca.name, cb.name, g.name
                            ),
                        )
                        .entities([ca.name.clone(), cb.name.clone()])
                        .suggest("keep the pair in a single group"),
                    );
                } else {
                    seen_pairs.insert(key, g.name.clone());
                }
            }
        }
    }
}

fn check_arrays(design: &Design, cs: &ConstraintSet, report: &mut LintReport) {
    let ncells = design.cells().len();
    let mut array_of: HashMap<CellId, &str> = HashMap::new();

    for a in &cs.arrays {
        if a.cells.len() < 2 {
            report.push(
                Diagnostic::new(
                    DiagCode::EmptyConstraint,
                    format!("array '{}' has fewer than two cells", a.name),
                )
                .entity(&a.name)
                .suggest("remove the array or add members"),
            );
        }
        let mut members: HashSet<CellId> = HashSet::new();
        let mut dims: Option<(u32, u32, ams_netlist::RegionId)> = None;
        let mut ragged = false;
        for &c in &a.cells {
            if c.index() >= ncells {
                report.push(
                    Diagnostic::new(
                        DiagCode::ArrayDanglingCell,
                        format!(
                            "array '{}' references cell #{} but the design has only \
                             {ncells} cells",
                            a.name,
                            c.index()
                        ),
                    )
                    .entity(&a.name)
                    .suggest("drop the member or fix the cell id"),
                );
                continue;
            }
            if !members.insert(c) {
                report.push(
                    Diagnostic::new(
                        DiagCode::ContradictoryConstraint,
                        format!(
                            "cell '{}' is listed twice in array '{}'",
                            cell_name(design, c),
                            a.name
                        ),
                    )
                    .entity(cell_name(design, c))
                    .suggest("deduplicate the member list"),
                );
            }
            match array_of.get(&c) {
                Some(&other) if other != a.name => {
                    report.push(
                        Diagnostic::new(
                            DiagCode::ContradictoryConstraint,
                            format!(
                                "cell '{}' belongs to both array '{other}' and array '{}'; \
                                 two dense packings cannot hold simultaneously",
                                cell_name(design, c),
                                a.name
                            ),
                        )
                        .entity(cell_name(design, c))
                        .suggest("keep each cell in a single array"),
                    );
                }
                _ => {
                    array_of.insert(c, &a.name);
                }
            }
            let cell = design.cell(c);
            let d = (cell.width, cell.height, cell.region);
            match dims {
                None => dims = Some(d),
                Some(prev) if prev != d => ragged = true,
                _ => {}
            }
        }
        if ragged {
            report.push(
                Diagnostic::new(
                    DiagCode::ArrayRaggedCells,
                    format!(
                        "array '{}' mixes cells of different dimensions or regions; \
                         Eq. 9 packs congruent devices only",
                        a.name
                    ),
                )
                .entity(&a.name)
                .suggest("split the array per device size"),
            );
        }
        check_pattern(design, a, &members, report);
    }
}

fn check_pattern(
    design: &Design,
    a: &ams_netlist::ArrayConstraint,
    members: &HashSet<CellId>,
    report: &mut LintReport,
) {
    let bad = |msg: String, report: &mut LintReport| {
        report.push(
            Diagnostic::new(DiagCode::ArrayBadPattern, msg)
                .entity(&a.name)
                .suggest("make the pattern groups a valid partition of the array"),
        );
    };
    match &a.pattern {
        ArrayPattern::Dense => {}
        ArrayPattern::CommonCentroid { group_a, group_b } => {
            if group_a.is_empty() || group_b.is_empty() {
                bad(
                    format!(
                        "common-centroid array '{}' has an empty device group",
                        a.name
                    ),
                    report,
                );
            }
            if group_a.iter().any(|c| group_b.contains(c)) {
                bad(
                    format!(
                        "common-centroid array '{}' has overlapping device groups",
                        a.name
                    ),
                    report,
                );
            }
            for c in group_a.iter().chain(group_b) {
                if !members.contains(c) {
                    bad(
                        format!(
                            "common-centroid array '{}' groups cell '{}' which is not an \
                             array member",
                            a.name,
                            cell_name(design, *c)
                        ),
                        report,
                    );
                }
            }
        }
        ArrayPattern::Interdigitated { groups } => {
            if groups.is_empty() || groups.iter().any(Vec::is_empty) {
                bad(
                    format!(
                        "interdigitated array '{}' has an empty device group",
                        a.name
                    ),
                    report,
                );
                return;
            }
            let size = groups[0].len();
            if groups.iter().any(|g| g.len() != size) {
                bad(
                    format!(
                        "interdigitated array '{}' has unequal device groups (Eq. 9 \
                         interleaves equal cardinalities)",
                        a.name
                    ),
                    report,
                );
            }
            let mut seen = HashSet::new();
            for c in groups.iter().flatten() {
                if !seen.insert(*c) {
                    bad(
                        format!(
                            "interdigitated array '{}' repeats cell '{}' across groups",
                            a.name,
                            cell_name(design, *c)
                        ),
                        report,
                    );
                }
                if !members.contains(c) {
                    bad(
                        format!(
                            "interdigitated array '{}' groups cell '{}' which is not an \
                             array member",
                            a.name,
                            cell_name(design, *c)
                        ),
                        report,
                    );
                }
            }
            if seen.len() != members.len() {
                bad(
                    format!(
                        "interdigitated array '{}' groups {} of its {} members; the \
                         groups must exactly partition the array",
                        a.name,
                        seen.len(),
                        members.len()
                    ),
                    report,
                );
            }
        }
        ArrayPattern::CentralSymmetric { pairs } => {
            let mut seen = HashSet::new();
            for &(x, y) in pairs {
                if x == y {
                    bad(
                        format!(
                            "central-symmetric array '{}' pairs cell '{}' with itself",
                            a.name,
                            cell_name(design, x)
                        ),
                        report,
                    );
                    continue;
                }
                for c in [x, y] {
                    if !seen.insert(c) {
                        bad(
                            format!(
                                "central-symmetric array '{}' repeats cell '{}'",
                                a.name,
                                cell_name(design, c)
                            ),
                            report,
                        );
                    }
                    if !members.contains(&c) {
                        bad(
                            format!(
                                "central-symmetric array '{}' pairs cell '{}' which is \
                                 not an array member",
                                a.name,
                                cell_name(design, c)
                            ),
                            report,
                        );
                    }
                }
            }
        }
    }
}

fn check_clusters(design: &Design, cs: &ConstraintSet, report: &mut LintReport) {
    let ncells = design.cells().len();
    for cl in &cs.clusters {
        for &c in &cl.cells {
            if c.index() >= ncells {
                report.push(
                    Diagnostic::new(
                        DiagCode::DanglingReference,
                        format!(
                            "cluster '{}' references cell #{} but the design has only \
                             {ncells} cells",
                            cl.name,
                            c.index()
                        ),
                    )
                    .entity(&cl.name)
                    .suggest("drop the member or fix the cell id"),
                );
            }
        }
        if cl.cells.len() < 2 {
            report.push(
                Diagnostic::new(
                    DiagCode::EmptyConstraint,
                    format!("cluster '{}' has fewer than two cells", cl.name),
                )
                .entity(&cl.name)
                .suggest("remove the cluster or add members"),
            );
        }
        if cl.weight == 0 {
            report.push(
                Diagnostic::new(
                    DiagCode::IneffectiveCluster,
                    format!(
                        "cluster '{}' has weight 0; its virtual net exerts no pull",
                        cl.name
                    ),
                )
                .entity(&cl.name)
                .suggest("use a weight of at least 1"),
            );
        }
    }
}

fn check_extensions(design: &Design, cs: &ConstraintSet, report: &mut LintReport) {
    for (ei, e) in cs.extensions.iter().enumerate() {
        let (what, idx, len) = match e.target {
            ExtensionTarget::Cell(c) => ("cell", c.index(), design.cells().len()),
            ExtensionTarget::Region(r) => ("region", r.index(), design.regions().len()),
            ExtensionTarget::Array(a) => ("array", a, cs.arrays.len()),
        };
        if idx >= len {
            report.push(
                Diagnostic::new(
                    DiagCode::DanglingReference,
                    format!(
                        "extension #{ei} targets {what} #{idx} but the design has only \
                         {len} {what}s",
                    ),
                )
                .entity(format!("extension #{ei}"))
                .suggest("fix the target id or drop the extension"),
            );
        }
    }
}

/// `AMS-W003`: primitive cells with no net connection and no constraint
/// membership float to arbitrary positions.
fn check_unreferenced(design: &Design, cs: &ConstraintSet, report: &mut LintReport) {
    let mut constrained: HashSet<CellId> = HashSet::new();
    for g in &cs.symmetry {
        for p in &g.pairs {
            constrained.insert(p.a);
            constrained.extend(p.b);
        }
    }
    for a in &cs.arrays {
        constrained.extend(a.cells.iter().copied());
    }
    for cl in &cs.clusters {
        constrained.extend(cl.cells.iter().copied());
    }
    for e in &cs.extensions {
        if let ExtensionTarget::Cell(c) = e.target {
            constrained.insert(c);
        }
    }
    for c in design.cell_ids() {
        let cell = design.cell(c);
        if cell.kind != ams_netlist::CellKind::Primitive {
            continue;
        }
        let connected = cell.pins.iter().any(|p| p.net.is_some());
        if !connected && !constrained.contains(&c) {
            report.push(
                Diagnostic::new(
                    DiagCode::UnreferencedCell,
                    format!(
                        "cell '{}' connects to no net and appears in no constraint; the \
                         placer will park it anywhere legal",
                        cell.name
                    ),
                )
                .entity(&cell.name)
                .suggest("wire the cell, constrain it, or mark it a dummy"),
            );
        }
    }
}

//! The stable typed request/response surface shared by the `amsplace`
//! CLI and the job server (`amsplace serve`).
//!
//! Every document carries an explicit [`SCHEMA_VERSION`] so downstream
//! consumers (dashboards, the bench harness, remote clients) can detect
//! incompatible changes instead of misparsing them. Serialization goes
//! through the workspace's hand-rolled [`Json`] module — the build is
//! fully offline, so there is no serde.
//!
//! The same types drive both transports: `amsplace --stats-json` writes
//! the [`stats_to_json`] document, the CLI process exit code is
//! [`ErrorKind::exit_code`], and the server wraps everything in a
//! [`PlaceResponse`].

use crate::config::SolverOverrides;
use crate::placement::{PlaceOutcome, Placement, PresolveStats};
use crate::placer::PlaceError;
use crate::PlacerConfig;
use ams_netlist::json::Json;
use ams_netlist::{benchmarks, Design};
use std::time::Duration;

/// Version of every JSON document this module emits. Bump on any
/// breaking change to the field sets (the `stats_schema` goldens pin
/// them).
///
/// Version history: 1 = PR 7 service surface; 2 = crash-safe serving
/// (request `idempotency_key`, the `interrupted` job status and error
/// kind, `degraded` in the service health documents); 3 = routing
/// closure (the constant-shape `closure` object in the stats document,
/// `close`/`close_iters` job options).
pub const SCHEMA_VERSION: u64 = 3;

/// Lifecycle state of a placement job.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum JobStatus {
    /// Accepted, waiting for a worker.
    Queued,
    /// A worker is solving it.
    Running,
    /// Finished with a legal placement.
    Done,
    /// Finished with an error ([`PlaceResponse::error`] says which).
    Failed,
    /// Cancelled before completion.
    Cancelled,
    /// The serving process died mid-solve and the resume policy chose
    /// not to re-run the job. Terminal; resubmitting re-solves.
    Interrupted,
}

impl JobStatus {
    /// Wire name of this status.
    pub fn name(self) -> &'static str {
        match self {
            JobStatus::Queued => "queued",
            JobStatus::Running => "running",
            JobStatus::Done => "done",
            JobStatus::Failed => "failed",
            JobStatus::Cancelled => "cancelled",
            JobStatus::Interrupted => "interrupted",
        }
    }

    /// Parses a wire name back into a status.
    pub fn parse(name: &str) -> Option<JobStatus> {
        Some(match name {
            "queued" => JobStatus::Queued,
            "running" => JobStatus::Running,
            "done" => JobStatus::Done,
            "failed" => JobStatus::Failed,
            "cancelled" => JobStatus::Cancelled,
            "interrupted" => JobStatus::Interrupted,
            _ => return None,
        })
    }

    /// Whether the job can no longer change state.
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            JobStatus::Done | JobStatus::Failed | JobStatus::Cancelled | JobStatus::Interrupted
        )
    }
}

/// Classified placement failure — the API mirror of [`PlaceError`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ErrorKind {
    /// Invalid configuration.
    Config,
    /// The pre-solve linter proved the instance broken.
    Lint,
    /// No legal placement exists.
    Infeasible,
    /// Conflict budget exhausted before a first model.
    BudgetExhausted,
    /// Wall-clock deadline expired before a first model.
    DeadlineExpired,
    /// Cancelled by the caller.
    Cancelled,
    /// The serving process died while the job was running and the
    /// resume policy marked it rather than re-running it.
    Interrupted,
    /// Internal failure (solver infrastructure, I/O, …).
    Internal,
}

impl ErrorKind {
    /// Wire name of this kind.
    pub fn name(self) -> &'static str {
        match self {
            ErrorKind::Config => "config",
            ErrorKind::Lint => "lint",
            ErrorKind::Infeasible => "infeasible",
            ErrorKind::BudgetExhausted => "budget_exhausted",
            ErrorKind::DeadlineExpired => "deadline_expired",
            ErrorKind::Cancelled => "cancelled",
            ErrorKind::Interrupted => "interrupted",
            ErrorKind::Internal => "internal",
        }
    }

    /// Parses a wire name back into a kind.
    pub fn parse(name: &str) -> Option<ErrorKind> {
        Some(match name {
            "config" => ErrorKind::Config,
            "lint" => ErrorKind::Lint,
            "infeasible" => ErrorKind::Infeasible,
            "budget_exhausted" => ErrorKind::BudgetExhausted,
            "deadline_expired" => ErrorKind::DeadlineExpired,
            "cancelled" => ErrorKind::Cancelled,
            "interrupted" => ErrorKind::Interrupted,
            "internal" => ErrorKind::Internal,
            _ => return None,
        })
    }

    /// The documented `amsplace` process exit code for this failure:
    /// 2 infeasible, 3 cancelled, 4 deadline expired, 5 budget
    /// exhausted, 1 everything else. Success is 0.
    pub fn exit_code(self) -> u8 {
        match self {
            ErrorKind::Infeasible => 2,
            ErrorKind::Cancelled => 3,
            ErrorKind::DeadlineExpired => 4,
            ErrorKind::BudgetExhausted => 5,
            ErrorKind::Config | ErrorKind::Lint | ErrorKind::Interrupted | ErrorKind::Internal => 1,
        }
    }

    /// Classifies a [`PlaceError`].
    pub fn of(e: &PlaceError) -> ErrorKind {
        match e {
            PlaceError::Config(_) => ErrorKind::Config,
            PlaceError::Lint(_) => ErrorKind::Lint,
            PlaceError::Infeasible { .. } => ErrorKind::Infeasible,
            PlaceError::BudgetExhausted => ErrorKind::BudgetExhausted,
            PlaceError::DeadlineExpired => ErrorKind::DeadlineExpired,
            PlaceError::Cancelled => ErrorKind::Cancelled,
            PlaceError::Internal(_) => ErrorKind::Internal,
        }
    }
}

/// A structured placement failure as it appears on the wire.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ApiError {
    /// What class of failure.
    pub kind: ErrorKind,
    /// The human-readable message ([`PlaceError`]'s `Display`).
    pub message: String,
    /// For infeasibility: one line per blamed constraint family citing
    /// the design objects whose constraints conflict. Empty otherwise.
    pub provenance: Vec<String>,
}

impl ApiError {
    /// Builds the wire error from a [`PlaceError`].
    pub fn from_place_error(e: &PlaceError) -> ApiError {
        let provenance = match e {
            PlaceError::Infeasible { provenance, .. } => provenance.clone(),
            _ => Vec::new(),
        };
        ApiError {
            kind: ErrorKind::of(e),
            message: e.to_string(),
            provenance,
        }
    }

    /// Serializes to the wire shape.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("kind", Json::str(self.kind.name())),
            ("message", Json::str(&self.message)),
            ("exit_code", Json::uint(u64::from(self.kind.exit_code()))),
            (
                "provenance",
                Json::Arr(self.provenance.iter().map(Json::str).collect()),
            ),
        ])
    }

    /// Parses the wire shape.
    ///
    /// # Errors
    ///
    /// A message naming the missing or malformed field.
    pub fn from_json(doc: &Json) -> Result<ApiError, String> {
        let kind = doc
            .field("kind")
            .and_then(Json::as_str)
            .and_then(ErrorKind::parse)
            .ok_or("error.kind missing or unknown")?;
        let message = doc
            .field("message")
            .and_then(Json::as_str)
            .ok_or("error.message missing")?
            .to_string();
        let provenance = doc
            .field("provenance")
            .and_then(Json::items)
            .map(|items| {
                items
                    .iter()
                    .filter_map(Json::as_str)
                    .map(str::to_string)
                    .collect()
            })
            .unwrap_or_default();
        Ok(ApiError {
            kind,
            message,
            provenance,
        })
    }
}

/// Per-job solver knobs — the API mirror of the `amsplace` CLI flags.
/// [`JobOptions::to_config`] assembles the same [`PlacerConfig`] the CLI
/// would, so a request placed through the server and a local run with
/// the matching flags solve the identical instance.
#[derive(Clone, PartialEq, Debug)]
pub struct JobOptions {
    /// Small budgets for a fast smoke run (`--quick`).
    pub quick: bool,
    /// Optimization iterations `K_iter` (`--iters`).
    pub iters: usize,
    /// Conflict budget per optimization round (`--budget`).
    pub budget: u64,
    /// Portfolio worker threads (`--threads`). Explicit per-job value;
    /// on the server the process environment is *never* consulted
    /// ([`SolverOverrides::explicit_only`]).
    pub threads: Option<usize>,
    /// Wall-clock deadline in milliseconds (`--deadline-ms`).
    pub deadline_ms: Option<u64>,
    /// Relaxation rungs on infeasibility (`--max-relax`); 0 disables the
    /// recovery ladder.
    pub max_relax: Option<usize>,
    /// Pin-density threshold λ_th override (`--lambda-th`).
    pub lambda_th: Option<u64>,
    /// Drop the AMS constraint families (`--no-ams`).
    pub no_ams: bool,
    /// Certified solving (`--certify`).
    pub certify: bool,
    /// Static presolve (`--no-presolve` turns it off).
    pub presolve: bool,
    /// Run the routing-closure loop (`amsplace close` / the server's
    /// closure job option): place, route, tighten hot windows, re-solve.
    pub close: bool,
    /// Closure iteration budget when `close` is set (`--max-iters`);
    /// `None` takes [`crate::ClosureConfig`]'s default.
    pub close_iters: Option<u64>,
}

impl Default for JobOptions {
    fn default() -> JobOptions {
        JobOptions {
            quick: false,
            iters: 2,
            budget: 100_000,
            threads: None,
            deadline_ms: None,
            max_relax: None,
            lambda_th: None,
            no_ams: false,
            certify: false,
            presolve: true,
            close: false,
            close_iters: None,
        }
    }
}

impl JobOptions {
    /// Assembles the [`PlacerConfig`] these options describe — the exact
    /// construction the `amsplace` CLI performs from its flags. Thread
    /// count and deadline are *not* folded in here; apply them through
    /// [`JobOptions::overrides`] so the explicit > env > config
    /// precedence stays in one place ([`crate::SolverConfig::resolve`]).
    pub fn to_config(&self) -> PlacerConfig {
        let mut config = if self.quick {
            PlacerConfig::fast()
        } else {
            PlacerConfig::default()
        };
        config.optimize.k_iter = self.iters;
        config.optimize.conflict_budget = Some(self.budget);
        if self.quick {
            config.optimize.k_iter = config.optimize.k_iter.min(1);
            config.optimize.conflict_budget = Some(20_000);
        }
        if let Some(rungs) = self.max_relax {
            config.recovery.max_rungs = rungs;
            config.recovery.enabled = rungs > 0;
        }
        if let Some(lambda) = self.lambda_th {
            let mut density = config.pin_density.unwrap_or_default();
            density.lambda = Some(lambda);
            config.pin_density = Some(density);
        }
        if self.no_ams {
            config = config.without_ams_constraints();
        }
        if !self.presolve {
            config.presolve.enabled = false;
        }
        config.solver.certify = self.certify;
        config
    }

    /// The closure-loop knobs these options describe, or `None` when the
    /// job did not ask for routing closure.
    pub fn closure(&self) -> Option<crate::ClosureConfig> {
        self.close.then(|| {
            let mut c = crate::ClosureConfig::default();
            if let Some(n) = self.close_iters {
                c.max_iters = n as usize;
            }
            c
        })
    }

    /// The per-job execution overrides, environment-blind: a job's
    /// thread count and deadline come from the request or the config,
    /// never from `AMSPLACE_THREADS` / `AMSPLACE_DEADLINE_MS` in the
    /// server process.
    pub fn overrides(&self) -> SolverOverrides {
        SolverOverrides::explicit_only(self.threads, self.deadline_ms.map(Duration::from_millis))
    }

    /// Serializes to the wire shape. Every field is present (unset
    /// optionals are `null`), so the document doubles as the canonical
    /// input to [`options_hash`].
    pub fn to_json(&self) -> Json {
        let opt_uint = |v: Option<u64>| v.map_or(Json::Null, Json::uint);
        Json::obj([
            ("quick", Json::Bool(self.quick)),
            ("iters", Json::uint(self.iters as u64)),
            ("budget", Json::uint(self.budget)),
            ("threads", opt_uint(self.threads.map(|v| v as u64))),
            ("deadline_ms", opt_uint(self.deadline_ms)),
            ("max_relax", opt_uint(self.max_relax.map(|v| v as u64))),
            ("lambda_th", opt_uint(self.lambda_th)),
            ("no_ams", Json::Bool(self.no_ams)),
            ("certify", Json::Bool(self.certify)),
            ("presolve", Json::Bool(self.presolve)),
            ("close", Json::Bool(self.close)),
            ("close_iters", opt_uint(self.close_iters)),
        ])
    }

    /// Parses the wire shape; absent fields take their defaults, so a
    /// minimal request can say `"options": {}`.
    ///
    /// # Errors
    ///
    /// A message naming the malformed field.
    pub fn from_json(doc: &Json) -> Result<JobOptions, String> {
        let d = JobOptions::default();
        let get_bool = |key: &str, dflt: bool| -> Result<bool, String> {
            match doc.field(key) {
                None | Some(Json::Null) => Ok(dflt),
                Some(v) => v.as_bool().ok_or(format!("options.{key} must be a bool")),
            }
        };
        let get_uint = |key: &str| -> Result<Option<u64>, String> {
            match doc.field(key) {
                None | Some(Json::Null) => Ok(None),
                Some(v) => v
                    .as_u64()
                    .map(Some)
                    .ok_or(format!("options.{key} must be a non-negative integer")),
            }
        };
        Ok(JobOptions {
            quick: get_bool("quick", d.quick)?,
            iters: get_uint("iters")?.map_or(d.iters, |v| v as usize),
            budget: get_uint("budget")?.unwrap_or(d.budget),
            threads: get_uint("threads")?.map(|v| v as usize),
            deadline_ms: get_uint("deadline_ms")?,
            max_relax: get_uint("max_relax")?.map(|v| v as usize),
            lambda_th: get_uint("lambda_th")?,
            no_ams: get_bool("no_ams", d.no_ams)?,
            certify: get_bool("certify", d.certify)?,
            presolve: get_bool("presolve", d.presolve)?,
            close: get_bool("close", d.close)?,
            close_iters: get_uint("close_iters")?,
        })
    }
}

/// A placement job as submitted to the server (`POST /v1/jobs`).
#[derive(Clone, PartialEq, Debug)]
pub struct PlaceRequest {
    /// The design to place.
    pub design: Design,
    /// Per-job solver knobs.
    pub options: JobOptions,
    /// Client-supplied deduplication key. Two submissions carrying the
    /// same key within the server's dedup window resolve to the *same*
    /// job — a client that retries a submit after a dropped reply never
    /// double-solves. The key does not participate in the result-cache
    /// hashes: it names a submission, not a problem instance.
    pub idempotency_key: Option<String>,
}

impl PlaceRequest {
    /// The design the solver actually sees: `no_ams` strips the AMS
    /// constraint annotations, mirroring the CLI's `--no-ams`.
    pub fn effective_design(&self) -> Design {
        if self.options.no_ams {
            self.design.without_constraints()
        } else {
            self.design.clone()
        }
    }

    /// Serializes to the wire shape (the design inline as an object).
    pub fn to_json(&self) -> Json {
        let design = Json::parse(&self.design.to_json()).expect("Design::to_json emits valid JSON");
        Json::obj([
            ("schema_version", Json::uint(SCHEMA_VERSION)),
            ("design", design),
            ("options", self.options.to_json()),
            (
                "idempotency_key",
                self.idempotency_key.as_ref().map_or(Json::Null, Json::str),
            ),
        ])
    }

    /// Parses the wire shape. The `design` field is either an inline
    /// netlist object or a benchmark name (`"buf"`, `"vco"`,
    /// `"synthetic"`); `options` may be absent.
    ///
    /// # Errors
    ///
    /// A message naming the missing or malformed field.
    pub fn from_json(doc: &Json) -> Result<PlaceRequest, String> {
        if let Some(v) = doc.field("schema_version").and_then(Json::as_u64) {
            if v != SCHEMA_VERSION {
                return Err(format!(
                    "unsupported schema_version {v} (this build speaks {SCHEMA_VERSION})"
                ));
            }
        }
        let design = match doc.field("design") {
            Some(Json::Str(name)) => match name.as_str() {
                "buf" => benchmarks::buf(),
                "vco" => benchmarks::vco(),
                "synthetic" => benchmarks::synthetic(Default::default()),
                other => return Err(format!("unknown benchmark design {other:?}")),
            },
            Some(obj @ Json::Obj(_)) => {
                Design::from_json(&obj.pretty()).map_err(|e| format!("design: {e}"))?
            }
            Some(_) => return Err("design must be an object or a benchmark name".into()),
            None => return Err("design missing".into()),
        };
        let options = match doc.field("options") {
            None | Some(Json::Null) => JobOptions::default(),
            Some(opts) => JobOptions::from_json(opts)?,
        };
        let idempotency_key = match doc.field("idempotency_key") {
            None | Some(Json::Null) => None,
            Some(Json::Str(key)) if !key.is_empty() => Some(key.clone()),
            Some(_) => return Err("idempotency_key must be a non-empty string".into()),
        };
        Ok(PlaceRequest {
            design,
            options,
            idempotency_key,
        })
    }
}

/// The outcome of a placement job — what `GET /v1/jobs/<id>` embeds once
/// the job is terminal, and what `amsplace --stats-json` + the placement
/// output together encode for a local run.
#[derive(Clone, PartialEq, Debug)]
pub struct PlaceResponse {
    /// Document schema version ([`SCHEMA_VERSION`]).
    pub schema_version: u64,
    /// Name of the placed design.
    pub design: String,
    /// Terminal job status: [`JobStatus::Done`], [`JobStatus::Failed`],
    /// or [`JobStatus::Cancelled`].
    pub status: JobStatus,
    /// Whether this result came from the server's exact-result cache
    /// rather than a solve. Always `false` for local CLI runs.
    pub cached: bool,
    /// The failure, when `status` is not `Done`.
    pub error: Option<ApiError>,
    /// The run-statistics document ([`stats_to_json`]); present on
    /// success.
    pub stats: Option<Json>,
    /// Placed cell rectangles ([`cells_to_json`]); present on success.
    pub cells: Option<Json>,
}

impl PlaceResponse {
    /// A successful response carrying the placement.
    pub fn success(design: &Design, placement: &Placement) -> PlaceResponse {
        PlaceResponse {
            schema_version: SCHEMA_VERSION,
            design: design.name().to_string(),
            status: JobStatus::Done,
            cached: false,
            error: None,
            stats: Some(stats_to_json(design, placement)),
            cells: Some(cells_to_json(design, placement)),
        }
    }

    /// A failed response. Cancellation reports status `cancelled`; every
    /// other error reports `failed`.
    pub fn failure(design_name: &str, e: &PlaceError) -> PlaceResponse {
        let status = match e {
            PlaceError::Cancelled => JobStatus::Cancelled,
            _ => JobStatus::Failed,
        };
        PlaceResponse {
            schema_version: SCHEMA_VERSION,
            design: design_name.to_string(),
            status,
            cached: false,
            error: Some(ApiError::from_place_error(e)),
            stats: None,
            cells: None,
        }
    }

    /// The documented process exit code of this outcome: 0 on success,
    /// [`ErrorKind::exit_code`] otherwise.
    pub fn exit_code(&self) -> u8 {
        match (&self.status, &self.error) {
            (JobStatus::Done, _) => 0,
            (_, Some(err)) => err.kind.exit_code(),
            _ => 1,
        }
    }

    /// Serializes to the wire shape. Every field is always present.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("schema_version", Json::uint(self.schema_version)),
            ("design", Json::str(&self.design)),
            ("status", Json::str(self.status.name())),
            ("cached", Json::Bool(self.cached)),
            (
                "error",
                self.error.as_ref().map_or(Json::Null, ApiError::to_json),
            ),
            ("stats", self.stats.clone().unwrap_or(Json::Null)),
            ("cells", self.cells.clone().unwrap_or(Json::Null)),
        ])
    }

    /// Parses the wire shape.
    ///
    /// # Errors
    ///
    /// A message naming the missing or malformed field.
    pub fn from_json(doc: &Json) -> Result<PlaceResponse, String> {
        let schema_version = doc
            .field("schema_version")
            .and_then(Json::as_u64)
            .ok_or("schema_version missing")?;
        let design = doc
            .field("design")
            .and_then(Json::as_str)
            .ok_or("design missing")?
            .to_string();
        let status = doc
            .field("status")
            .and_then(Json::as_str)
            .and_then(JobStatus::parse)
            .ok_or("status missing or unknown")?;
        let cached = doc.field("cached").and_then(Json::as_bool).unwrap_or(false);
        let error = match doc.field("error") {
            None | Some(Json::Null) => None,
            Some(e) => Some(ApiError::from_json(e)?),
        };
        let non_null =
            |key: &str| -> Option<Json> { doc.field(key).filter(|v| !v.is_null()).cloned() };
        Ok(PlaceResponse {
            schema_version,
            design,
            status,
            cached,
            error,
            stats: non_null("stats"),
            cells: non_null("cells"),
        })
    }
}

/// Serializes run statistics (outcome, solver counters, per-worker
/// portfolio health, warm-reuse summary) — the `--stats-json` document
/// and the `stats` field of a [`PlaceResponse`]. The field set is a
/// schema contract pinned by the `stats_schema` golden tests.
pub fn stats_to_json(design: &Design, placement: &Placement) -> Json {
    let s = &placement.stats;
    let (kind, detail) = match &s.outcome {
        PlaceOutcome::Optimal => (Json::str("optimal"), Json::Null),
        PlaceOutcome::Anytime { rounds, reason } => (
            Json::str("anytime"),
            Json::obj([
                ("rounds", Json::uint(*rounds as u64)),
                ("reason", Json::str(reason.to_string())),
            ]),
        ),
        PlaceOutcome::Recovered { relaxations } => (
            Json::str("recovered"),
            Json::obj([(
                "relaxations",
                Json::Arr(
                    relaxations
                        .iter()
                        .map(|r| Json::str(r.to_string()))
                        .collect(),
                ),
            )]),
        ),
    };
    let families: Vec<Json> = s
        .families
        .iter()
        .map(|fs| {
            Json::obj([
                ("family", Json::str(fs.family.name())),
                ("constraints", Json::uint(fs.constraints as u64)),
                ("clauses", Json::uint(fs.clauses as u64)),
            ])
        })
        .collect();
    let rungs: Vec<Json> = s
        .rungs
        .iter()
        .map(|r| {
            Json::obj([
                ("relaxation", Json::str(r.relaxation.to_string())),
                ("learnts_carried", Json::uint(r.learnts_carried)),
                ("rebuilt", Json::Bool(r.rebuilt)),
            ])
        })
        .collect();
    let workers: Vec<Json> = s
        .workers
        .iter()
        .map(|w| {
            Json::obj([
                ("id", Json::uint(w.id as u64)),
                ("conflicts", Json::uint(w.conflicts)),
                ("decisions", Json::uint(w.decisions)),
                ("restarts", Json::uint(w.restarts)),
                ("exported", Json::uint(w.exported)),
                ("imported", Json::uint(w.imported)),
                ("panicked", Json::Bool(w.panicked)),
                (
                    "panic_message",
                    w.panic_message.as_ref().map_or(Json::Null, Json::str),
                ),
            ])
        })
        .collect();
    let warm = s.warm.as_ref().map_or(Json::Null, |w| {
        Json::obj([
            (
                "relowered",
                Json::Arr(
                    w.relowered
                        .iter()
                        .map(|fam| Json::str(fam.name()))
                        .collect(),
                ),
            ),
            ("learnts_carried", Json::uint(w.learnts_carried)),
        ])
    });
    Json::obj([
        ("schema_version", Json::uint(SCHEMA_VERSION)),
        ("design", Json::str(design.name())),
        ("outcome", kind),
        ("outcome_detail", detail),
        ("iterations", Json::uint(s.iterations as u64)),
        ("runtime_ms", Json::uint(s.runtime.as_millis() as u64)),
        ("conflicts", Json::uint(s.conflicts)),
        ("sat_vars", Json::uint(s.sat_vars as u64)),
        ("sat_clauses", Json::uint(s.sat_clauses as u64)),
        ("families", Json::Arr(families)),
        ("lowering_ms", Json::uint(s.lowering.as_millis() as u64)),
        ("rungs", Json::Arr(rungs)),
        ("threads", Json::uint(s.threads as u64)),
        (
            "winner",
            s.winner.map_or(Json::Null, |w| Json::uint(w as u64)),
        ),
        ("workers", Json::Arr(workers)),
        (
            "hpwl_trace",
            Json::Arr(s.hpwl_trace.iter().map(|&v| Json::uint(v)).collect()),
        ),
        (
            "die",
            Json::obj([
                ("w", Json::uint(u64::from(placement.die.w))),
                ("h", Json::uint(u64::from(placement.die.h))),
            ]),
        ),
        ("hpwl_um", Json::Num(placement.hpwl_um(design))),
        ("area_um2", Json::Num(placement.area_um2(design))),
        (
            "certify",
            s.certify.map_or(Json::Null, |c| {
                Json::obj([
                    ("cnf_clauses", Json::uint(c.cnf_clauses as u64)),
                    ("proof_steps", Json::uint(c.proof_steps as u64)),
                    ("model_violations", Json::uint(c.model_violations as u64)),
                ])
            }),
        ),
        ("presolve", presolve_to_json(s.presolve.as_ref())),
        ("warm", warm),
        ("closure", closure_to_json(s.closure.as_ref())),
    ])
}

/// Serializes the routing-closure summary with a constant shape: a run
/// without closure still yields every key (mirroring [`presolve_to_json`]),
/// so the stats schema stays stable.
pub fn closure_to_json(cs: Option<&crate::ClosureStats>) -> Json {
    match cs {
        Some(cs) => Json::obj([
            ("ran", Json::Bool(true)),
            ("iterations", Json::uint(cs.iterations as u64)),
            ("drc_clean", Json::Bool(cs.drc_clean)),
            (
                "hot_windows",
                Json::Arr(
                    cs.hot_windows
                        .iter()
                        .map(|&(x, y)| {
                            Json::obj([
                                ("x", Json::uint(u64::from(x))),
                                ("y", Json::uint(u64::from(y))),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "routed_wl_trend",
                Json::Arr(cs.routed_wl_trend.iter().map(|&v| Json::uint(v)).collect()),
            ),
        ]),
        None => Json::obj([
            ("ran", Json::Bool(false)),
            ("iterations", Json::uint(0)),
            ("drc_clean", Json::Bool(false)),
            ("hot_windows", Json::Arr(Vec::new())),
            ("routed_wl_trend", Json::Arr(Vec::new())),
        ]),
    }
}

/// Serializes the presolve summary with a constant shape: a disabled
/// presolve still yields every key, so the stats schema stays stable.
pub fn presolve_to_json(ps: Option<&PresolveStats>) -> Json {
    match ps {
        Some(ps) => Json::obj([
            ("ran", Json::Bool(ps.ran)),
            ("verdict", Json::str(&ps.verdict)),
            ("vars_saved_bits", Json::uint(ps.vars_saved_bits)),
            (
                "clauses_saved",
                ps.clauses_saved.map_or(Json::Null, Json::uint),
            ),
            (
                "passes",
                Json::Arr(
                    ps.passes
                        .iter()
                        .map(|p| {
                            Json::obj([
                                ("pass", Json::str(p.pass)),
                                ("verdict", Json::str(&p.verdict)),
                                ("detail", Json::str(&p.detail)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]),
        None => Json::obj([
            ("ran", Json::Bool(false)),
            ("verdict", Json::str("skipped")),
            ("vars_saved_bits", Json::uint(0)),
            ("clauses_saved", Json::Null),
            ("passes", Json::Arr(Vec::new())),
        ]),
    }
}

/// Serializes the placed cell rectangles (absolute grid coordinates) as
/// an array of `{cell, x, y, w, h}` — bit-identical placements yield
/// byte-identical documents, which is what the cache-determinism tests
/// compare.
pub fn cells_to_json(design: &Design, placement: &Placement) -> Json {
    Json::Arr(
        design
            .cells()
            .iter()
            .zip(&placement.cells)
            .map(|(c, r)| {
                Json::obj([
                    ("cell", Json::str(&c.name)),
                    ("x", Json::uint(u64::from(r.x))),
                    ("y", Json::uint(u64::from(r.y))),
                    ("w", Json::uint(u64::from(r.w))),
                    ("h", Json::uint(u64::from(r.h))),
                ])
            })
            .collect(),
    )
}

/// 64-bit FNV-1a — the workspace's dependency-free content hash.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x100000001b3);
    }
    hash
}

/// Content hash of a design: FNV-1a over its canonical JSON
/// serialization. Two designs hash equal iff their serialized forms are
/// byte-identical — the exact-result and warm-solver cache key half.
pub fn design_hash(design: &Design) -> u64 {
    fnv1a(design.to_json().as_bytes())
}

/// Content hash of a job's options: FNV-1a over the canonical
/// [`JobOptions::to_json`] document — the other cache key half.
pub fn options_hash(options: &JobOptions) -> u64 {
    fnv1a(options.to_json().pretty().as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn job_options_roundtrip_and_default_from_empty() {
        let opts = JobOptions {
            quick: true,
            iters: 7,
            budget: 5_000,
            threads: Some(2),
            deadline_ms: Some(1_500),
            max_relax: Some(0),
            lambda_th: Some(9),
            no_ams: true,
            certify: true,
            presolve: false,
            close: true,
            close_iters: Some(3),
        };
        let back = JobOptions::from_json(&opts.to_json()).expect("roundtrip");
        assert_eq!(back, opts);
        let empty = JobOptions::from_json(&Json::obj([])).expect("defaults");
        assert_eq!(empty, JobOptions::default());
        let closure = back.closure().expect("close requested");
        assert_eq!(closure.max_iters, 3);
        assert_eq!(JobOptions::default().closure(), None);
    }

    #[test]
    fn place_request_roundtrips_and_accepts_benchmark_names() {
        let req = PlaceRequest {
            design: benchmarks::buf(),
            options: JobOptions {
                quick: true,
                ..JobOptions::default()
            },
            idempotency_key: Some("submit-42".into()),
        };
        let back = PlaceRequest::from_json(&req.to_json()).expect("roundtrip");
        assert_eq!(back.design.to_json(), req.design.to_json());
        assert_eq!(back.options, req.options);
        assert_eq!(back.idempotency_key.as_deref(), Some("submit-42"));

        let named = Json::obj([("design", Json::str("buf"))]);
        let parsed = PlaceRequest::from_json(&named).expect("benchmark name");
        assert_eq!(parsed.design.to_json(), benchmarks::buf().to_json());
        assert_eq!(parsed.options, JobOptions::default());
        assert_eq!(parsed.idempotency_key, None);

        let blank_key = Json::obj([
            ("design", Json::str("buf")),
            ("idempotency_key", Json::str("")),
        ]);
        assert!(PlaceRequest::from_json(&blank_key).is_err());

        let wrong_version = Json::obj([
            ("design", Json::str("buf")),
            ("schema_version", Json::uint(999)),
        ]);
        assert!(PlaceRequest::from_json(&wrong_version).is_err());
    }

    #[test]
    fn error_kinds_map_to_documented_exit_codes() {
        assert_eq!(ErrorKind::Infeasible.exit_code(), 2);
        assert_eq!(ErrorKind::Cancelled.exit_code(), 3);
        assert_eq!(ErrorKind::DeadlineExpired.exit_code(), 4);
        assert_eq!(ErrorKind::BudgetExhausted.exit_code(), 5);
        assert_eq!(ErrorKind::Config.exit_code(), 1);
        assert_eq!(ErrorKind::Lint.exit_code(), 1);
        assert_eq!(ErrorKind::Interrupted.exit_code(), 1);
        assert_eq!(ErrorKind::Internal.exit_code(), 1);
        assert_eq!(ErrorKind::of(&PlaceError::Cancelled), ErrorKind::Cancelled);
    }

    #[test]
    fn interrupted_is_a_terminal_wire_status() {
        assert_eq!(
            JobStatus::parse("interrupted"),
            Some(JobStatus::Interrupted)
        );
        assert_eq!(JobStatus::Interrupted.name(), "interrupted");
        assert!(JobStatus::Interrupted.is_terminal());
        assert_eq!(
            ErrorKind::parse("interrupted"),
            Some(ErrorKind::Interrupted)
        );
    }

    #[test]
    fn failure_response_roundtrips_with_provenance() {
        let e = PlaceError::Infeasible {
            conflict: vec![crate::ConstraintFamily::PinDensity],
            provenance: vec!["pin density: window (0,0) over threshold".into()],
            certificate: None,
        };
        let resp = PlaceResponse::failure("buf", &e);
        assert_eq!(resp.status, JobStatus::Failed);
        assert_eq!(resp.exit_code(), 2);
        let back = PlaceResponse::from_json(&resp.to_json()).expect("roundtrip");
        assert_eq!(back, resp);
        assert_eq!(back.error.expect("error present").provenance.len(), 1,);

        let cancelled = PlaceResponse::failure("buf", &PlaceError::Cancelled);
        assert_eq!(cancelled.status, JobStatus::Cancelled);
        assert_eq!(cancelled.exit_code(), 3);
    }

    #[test]
    fn hashes_separate_content_not_representation() {
        let buf = benchmarks::buf();
        assert_eq!(design_hash(&buf), design_hash(&benchmarks::buf()));
        assert_ne!(design_hash(&buf), design_hash(&benchmarks::vco()));

        let a = JobOptions::default();
        let mut b = JobOptions::default();
        assert_eq!(options_hash(&a), options_hash(&b));
        b.lambda_th = Some(3);
        assert_ne!(options_hash(&a), options_hash(&b));
    }
}

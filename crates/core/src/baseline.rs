//! The manual-layout surrogate: a deterministic greedy row packer run at
//! conservative hand-layout utilization.
//!
//! The paper's "Manual" column is an expert layout whose area is larger
//! than the automated one (1.49× for BUF, 1.23× for VCO) with comparable
//! performance. This baseline reproduces that role: correct, row-based,
//! reasonably compact — but guard-banded the way careful hand layout is.
//! It is *not* an attempt to imitate a specific human layout and is labeled
//! a surrogate wherever it is reported.

use crate::placement::{placement_from_rects, Placement};
use crate::scale::ScaleInfo;
use ams_netlist::{CellId, Design, Rect, RegionId};

/// Configuration of the manual-surrogate packer.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BaselineConfig {
    /// Utilization the packer aims for. Hand layouts of AMS blocks
    /// typically sit well below automated utilization.
    pub utilization: f64,
    /// Aspect ratio of each packed region.
    pub aspect_ratio: f64,
}

impl Default for BaselineConfig {
    fn default() -> BaselineConfig {
        BaselineConfig {
            utilization: 0.40,
            aspect_ratio: 1.0,
        }
    }
}

/// Packs the design greedily row by row, one region at a time, regions
/// stacked horizontally with one-unit gaps.
///
/// Cells are sorted by descending width (ties by name) and placed
/// first-fit into rows; power groups are packed bottom-up in band order so
/// the result is power-abutment clean.
pub fn manual_surrogate(design: &Design, config: BaselineConfig) -> Placement {
    let scale = ScaleInfo::compute(design, &crate::PlacerConfig::default());
    let (uw, uh) = (scale.unit_w, scale.unit_h);

    let mut region_rects: Vec<Rect> = Vec::new();
    let mut cell_rects: Vec<Rect> = vec![Rect::default(); design.cells().len()];
    let mut cursor_x = uw; // leave an edge column

    for r in design.region_ids() {
        let cells = ordered_cells(design, r);
        let area: u64 = cells
            .iter()
            .map(|&c| u64::from(design.cell(c).width) * u64::from(design.cell(c).height))
            .sum();
        let target = (area as f64 / config.utilization).max(1.0);
        let width_f = (target * config.aspect_ratio).sqrt();
        // Round the row width up to whole sites.
        let row_width = ((width_f / uw as f64).ceil() as u32).max(
            cells
                .iter()
                .map(|&c| design.cell(c).width / uw)
                .max()
                .unwrap_or(1),
        ) * uw;

        let row_height = design.cell(cells[0]).height;
        let base_y = uh;
        let plan = crate::power::PowerPlan::analyze(design);
        let band_of = |c: CellId| -> usize {
            plan.for_region(r)
                .and_then(|p| {
                    p.bands
                        .iter()
                        .position(|&g| g == design.cell(c).power_group)
                })
                .unwrap_or(0)
        };
        // Hand layouts guard-band each device: every cell gets whitespace
        // proportional to its width so the region genuinely lands at the
        // configured utilization.
        let spread = (1.0 / config.utilization - 1.0).max(0.0);
        let gap_after = |w: u32| -> u32 {
            let raw = (f64::from(w) * spread / f64::from(uw)).round() as u32;
            raw * uw
        };
        let mut row = 0u32;
        let mut x = 0u32;
        let mut band = band_of(cells[0]);
        for &c in &cells {
            let w = design.cell(c).width;
            // Row break on overflow or on entering the next power band
            // (different supplies never share a row).
            if x + w > row_width || band_of(c) != band {
                row += 1;
                x = 0;
                band = band_of(c);
            }
            cell_rects[c.index()] =
                Rect::new(cursor_x + x, base_y + row * row_height, w, row_height);
            x += w + gap_after(w);
        }
        let used_rows = row + 1;
        let rect = Rect::new(cursor_x, base_y, row_width, used_rows * row_height);
        region_rects.push(rect);
        cursor_x = rect.right() + 2 * uw;
    }

    let die_w = cursor_x;
    let die_h = region_rects.iter().map(|r| r.top()).max().unwrap_or(uh) + uh;
    let die = Rect::new(0, 0, die_w, die_h);
    placement_from_rects(cell_rects, region_rects, die, &scale)
}

/// Cells of a region ordered: power bands bottom-up (largest band first to
/// mirror the SMT power plan), then by descending width, then name.
fn ordered_cells(design: &Design, r: RegionId) -> Vec<CellId> {
    let plan = crate::power::PowerPlan::analyze(design);
    let band_of = |c: CellId| -> usize {
        match plan.for_region(r) {
            Some(p) => p
                .bands
                .iter()
                .position(|&g| g == design.cell(c).power_group)
                .unwrap_or(0),
            None => 0,
        }
    };
    let mut cells: Vec<CellId> = design.cells_in_region(r).collect();
    cells.sort_by(|&a, &b| {
        band_of(a)
            .cmp(&band_of(b))
            .then(design.cell(b).width.cmp(&design.cell(a).width))
            .then(design.cell(a).name.cmp(&design.cell(b).name))
    });
    cells
}

#[cfg(test)]
mod tests {
    use super::*;
    use ams_netlist::benchmarks;

    #[test]
    fn buf_baseline_is_overlap_free_and_contained() {
        let d = benchmarks::buf();
        let p = manual_surrogate(&d, BaselineConfig::default());
        // Geometric sanity only: the surrogate ignores the AMS constraint
        // families, exactly like a verify restricted to geometry.
        for (i, a) in p.cells.iter().enumerate() {
            assert!(a.w > 0);
            assert!(p.die.contains_rect(*a), "cell {i} escapes die");
            for b in p.cells.iter().skip(i + 1) {
                assert!(!a.overlaps(*b), "cells overlap in baseline");
            }
        }
    }

    #[test]
    fn baseline_area_exceeds_smt_target() {
        // At 0.54 utilization the surrogate die must be meaningfully larger
        // than the cell area (the paper's manual layouts are ~1.2-1.5x the
        // automated area).
        let d = benchmarks::buf();
        let p = manual_surrogate(&d, BaselineConfig::default());
        let cell_area: u64 = d.total_cell_area();
        assert!(p.area_grid() as f64 > 1.3 * cell_area as f64);
    }

    #[test]
    fn vco_baseline_respects_power_bands() {
        let d = benchmarks::vco();
        let p = manual_surrogate(&d, BaselineConfig::default());
        // Check the power-abutment property directly.
        let mut v = Vec::new();
        // Reuse the placement checker's power logic through verify: filter
        // only power violations (symmetry and arrays are expectedly broken).
        if let Err(all) = p.verify(&d) {
            v = all
                .into_iter()
                .filter(|x| x.kind == crate::ViolationKind::PowerAbutment)
                .collect();
        }
        assert!(v.is_empty(), "baseline violates power abutment: {v:?}");
    }
}

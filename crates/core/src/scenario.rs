//! Deterministic parametric scenario generation for the closure corpus.
//!
//! The paper evaluates two hand-built designs (BUF, VCO); regression
//! coverage needs orders of magnitude more. This module sweeps the
//! structural dimensions those designs exercise — array matching patterns,
//! power-domain counts, symmetry-group mixes, asymmetric region loads, die
//! aspect — through a mixed-radix index decode, so scenario `i` is the same
//! design on every machine and every run. `scripts/corpus.sh` drives the
//! routing-closure loop over the whole corpus and records routed-WL /
//! iteration / DRC-clean trends in `BENCH_closure.json`; a 25-scenario
//! smoke slice runs on every CI push.
//!
//! Scenarios are sized for the quick solver profile: a handful of cells
//! per region, single-digit scaled dies, so one scenario places and routes
//! in well under a second even in debug builds.

use crate::config::PlacerConfig;
use ams_netlist::rng::SplitMix64;
use ams_netlist::{
    ArrayConstraint, ArrayPattern, CellId, Design, DesignBuilder, NetId, SymmetryAxis,
    SymmetryGroup, SymmetryPair,
};

/// Number of scenarios in the corpus: the full cross product of the sweep
/// dimensions times `SEEDS_PER_POINT` netlist seeds.
pub const CORPUS_SIZE: u32 =
    (TEMPLATES * REGIONS * DOMAINS * SYMMETRY * ARRAYS * MIX * ASPECT) * SEEDS_PER_POINT;

const TEMPLATES: u32 = 2; // buf-like, vco-like
const REGIONS: u32 = 3; // 1..=3 placement regions
const DOMAINS: u32 = 2; // 1..=2 power domains
const SYMMETRY: u32 = 3; // 0..=2 symmetry pairs per region
const ARRAYS: u32 = 3; // none, dense, common-centroid
const MIX: u32 = 2; // uniform vs asymmetric region loads
const ASPECT: u32 = 2; // square vs wide die
const SEEDS_PER_POINT: u32 = 3;

/// The decoded sweep point of one scenario.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ScenarioParams {
    /// Corpus index this point was decoded from.
    pub index: u32,
    /// 0 = buf-like (few wide cells, chain nets), 1 = vco-like (matched
    /// pairs plus a capacitor bank).
    pub template: u32,
    /// Placement regions (1..=3).
    pub regions: u32,
    /// Power domains (1..=2), assigned per region like the VCO.
    pub domains: u32,
    /// Mirrored symmetry pairs per region (0..=2).
    pub symmetry_pairs: u32,
    /// 0 = no array, 1 = dense array, 2 = common-centroid array.
    pub array: u32,
    /// 0 = uniform region utilization, 1 = asymmetric (one dense region,
    /// one sparse with wider cells).
    pub mix: u32,
    /// 0 = square die, 1 = wide (2:1) die.
    pub aspect: u32,
    /// Netlist randomization seed for this point.
    pub seed: u64,
}

/// A corpus entry: the generated design plus the placement knobs the sweep
/// point implies (currently the die aspect ratio).
#[derive(Clone, Debug, PartialEq)]
pub struct Scenario {
    /// Stable name, `scenario_<index>`.
    pub name: String,
    /// The decoded sweep point.
    pub params: ScenarioParams,
    /// The generated design.
    pub design: Design,
    /// Die aspect ratio the sweep point asks for; fold into
    /// [`PlacerConfig::aspect_ratio`] (see [`Scenario::config`]).
    pub aspect_ratio: f64,
}

impl Scenario {
    /// The base placement configuration for this scenario: `config` with
    /// the sweep point's die aspect applied.
    pub fn config(&self, mut config: PlacerConfig) -> PlacerConfig {
        config.aspect_ratio = self.aspect_ratio;
        config
    }
}

/// Decodes corpus index `index` into its sweep point.
///
/// # Panics
///
/// Panics if `index >= CORPUS_SIZE`.
pub fn params(index: u32) -> ScenarioParams {
    assert!(
        index < CORPUS_SIZE,
        "scenario index {index} out of range (corpus holds {CORPUS_SIZE})"
    );
    let mut rest = index;
    let mut take = |radix: u32| {
        let digit = rest % radix;
        rest /= radix;
        digit
    };
    let seed_slot = take(SEEDS_PER_POINT);
    let template = take(TEMPLATES);
    let regions = 1 + take(REGIONS);
    let domains = 1 + take(DOMAINS);
    let symmetry_pairs = take(SYMMETRY);
    let array = take(ARRAYS);
    let mix = take(MIX);
    let aspect = take(ASPECT);
    ScenarioParams {
        index,
        template,
        regions,
        domains,
        symmetry_pairs,
        array,
        mix,
        aspect,
        // Decorrelate the netlist RNG from the index arithmetic.
        seed: SplitMix64::new(u64::from(index) * 3 + u64::from(seed_slot)).next_u64(),
    }
}

/// Generates corpus scenario `index` (deterministic: same index, same
/// design, everywhere).
///
/// # Panics
///
/// Panics if `index >= CORPUS_SIZE`.
pub fn scenario(index: u32) -> Scenario {
    let p = params(index);
    let mut rng = SplitMix64::new(p.seed);
    let mut b = DesignBuilder::new(format!("scenario_{index}"));

    let groups: Vec<_> = (0..p.domains)
        .map(|g| b.add_power_group(format!("VDD{g}")))
        .collect();

    let mut all_cells: Vec<CellId> = Vec::new();
    let mut region_cells: Vec<Vec<CellId>> = Vec::new();
    for r in 0..p.regions {
        let utilization = match (p.mix, r) {
            (0, _) => 0.6 + 0.15 * rng.next_f64(),
            (_, 0) => 0.8, // the dense region of the asymmetric mix
            _ => 0.5,
        };
        let region = b.add_region(format!("r{r}"), utilization);
        // Each region lives on one power domain, VCO-style.
        let pg = groups[(r as usize) % groups.len()];
        let cells_here = match p.template {
            0 => 4 + rng.index(3),
            _ => 5 + rng.index(3),
        };
        let mut cells = Vec::new();
        for c in 0..cells_here {
            // buf-like scenarios lean on wide drivers; the sparse regions
            // of an asymmetric mix get extra-wide cells to stress aspect.
            let base_w = if p.template == 0 { 2 } else { 1 };
            let wide = u32::from(p.mix == 1 && r > 0);
            let width = 2 * (base_w + wide + rng.range_u64(0, 2) as u32);
            let cell = b.add_cell(format!("c{r}_{c}"), region, width, 2, pg);
            cells.push(cell);
            all_cells.push(cell);
        }
        region_cells.push(cells);
    }

    // Matched-array bank in region 0, vco-capbank-style: equal-dimension
    // cells added on top of the random ones.
    if p.array > 0 {
        let region0 = ams_netlist::RegionId::from_index(0);
        let pg = groups[0];
        let bank: Vec<CellId> = (0..4)
            .map(|k| {
                let cell = b.add_cell(format!("cap{k}"), region0, 2, 2, pg);
                all_cells.push(cell);
                cell
            })
            .collect();
        let pattern = if p.array == 1 {
            ArrayPattern::Dense
        } else {
            ArrayPattern::CommonCentroid {
                group_a: vec![bank[0], bank[3]],
                group_b: vec![bank[1], bank[2]],
            }
        };
        b.add_array(ArrayConstraint {
            name: "bank0".into(),
            cells: bank.clone(),
            pattern,
        });
        region_cells[0].extend(bank);
    }

    // Signal nets: a connectivity backbone chaining every cell (so routed
    // wirelength always means something), plus random fanout nets.
    let mut pin_count = vec![0u32; all_cells.len()];
    let wire = |b: &mut DesignBuilder,
                pin_count: &mut Vec<u32>,
                net: NetId,
                ends: &[CellId],
                tag: usize| {
        for (i, &c) in ends.iter().enumerate() {
            let k = &mut pin_count[c.index()];
            let w = b.cell_width(c);
            let (dx, dy) = (*k % w, (*k / w) % 2);
            *k += 1;
            b.add_pin(c, format!("p{tag}_{i}"), Some(net), dx, dy);
        }
    };
    for w in 0..all_cells.len().saturating_sub(1) {
        let net = b.add_net(format!("chain{w}"), 2);
        let ends = [all_cells[w], all_cells[w + 1]];
        wire(&mut b, &mut pin_count, net, &ends, w);
    }
    let fanout_nets = 2 + rng.index(4);
    for n in 0..fanout_nets {
        let degree = (2 + rng.index(3)).min(all_cells.len());
        let mut ends: Vec<CellId> = Vec::new();
        while ends.len() < degree {
            let c = all_cells[rng.index(all_cells.len())];
            if !ends.contains(&c) {
                ends.push(c);
            }
        }
        let net = b.add_net(format!("fan{n}"), 1 + rng.range_u64(0, 1) as u32);
        wire(&mut b, &mut pin_count, net, &ends, 1000 + n);
    }

    // Mirrored pairs among equal-width cells of each region.
    for (r, cells) in region_cells.iter().enumerate() {
        let mut pairs = Vec::new();
        let mut used = vec![false; cells.len()];
        'outer: for _ in 0..p.symmetry_pairs {
            for ai in 0..cells.len() {
                for bi in (ai + 1)..cells.len() {
                    if used[ai] || used[bi] || b.cell_width(cells[ai]) != b.cell_width(cells[bi]) {
                        continue;
                    }
                    pairs.push(SymmetryPair::mirrored(cells[ai], cells[bi]));
                    used[ai] = true;
                    used[bi] = true;
                    continue 'outer;
                }
            }
            break;
        }
        if !pairs.is_empty() {
            b.add_symmetry(SymmetryGroup {
                name: format!("sym_r{r}"),
                axis: SymmetryAxis::Vertical,
                pairs,
                share_axis_with: None,
            });
        }
    }

    Scenario {
        name: format!("scenario_{index}"),
        params: p,
        design: b
            .build()
            .expect("scenario generator produces valid designs"),
        aspect_ratio: if p.aspect == 0 { 1.0 } else { 2.0 },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_is_at_least_a_thousand_scenarios() {
        // Recomputed from the radices so the assertion isn't a constant
        // expression: the corpus contract is ≥ 1000 scenarios.
        let radices = [TEMPLATES, REGIONS, DOMAINS, SYMMETRY, ARRAYS, MIX, ASPECT];
        let n: u32 = radices.iter().product::<u32>() * SEEDS_PER_POINT;
        assert_eq!(n, CORPUS_SIZE);
        assert!(n >= 1000, "corpus holds {n}");
    }

    #[test]
    fn scenarios_are_deterministic() {
        for index in [0, 1, 17, 431, CORPUS_SIZE - 1] {
            let a = scenario(index);
            let b = scenario(index);
            assert_eq!(a, b, "scenario {index} must be reproducible");
        }
    }

    #[test]
    fn neighboring_indices_differ() {
        assert_ne!(scenario(0).design, scenario(1).design);
        assert_ne!(scenario(0).design, scenario(SEEDS_PER_POINT).design);
    }

    #[test]
    fn sweep_dimensions_are_exercised() {
        let all: Vec<ScenarioParams> = (0..CORPUS_SIZE).map(params).collect();
        assert!(all.iter().any(|p| p.domains == 2));
        assert!(all.iter().any(|p| p.array == 2));
        assert!(all.iter().any(|p| p.regions == 3));
        assert!(all.iter().any(|p| p.symmetry_pairs == 2));
        assert!(all.iter().any(|p| p.mix == 1));
        assert!(all.iter().any(|p| p.aspect == 1));
        // Every index decodes to a unique point.
        let mut seen = std::collections::HashSet::new();
        for p in &all {
            assert!(seen.insert((
                p.template,
                p.regions,
                p.domains,
                p.symmetry_pairs,
                p.array,
                p.mix,
                p.aspect,
                p.seed
            )));
        }
    }

    #[test]
    fn generated_scenarios_build_and_describe_their_point() {
        for index in (0..CORPUS_SIZE).step_by((CORPUS_SIZE / 40) as usize) {
            let s = scenario(index);
            assert!(!s.design.cells().is_empty());
            assert_eq!(s.design.regions().len(), s.params.regions as usize);
            assert_eq!(s.design.power_groups().len() as u32, s.params.domains);
            let has_array = !s.design.constraints().arrays.is_empty();
            assert_eq!(has_array, s.params.array > 0, "scenario {index}");
        }
    }

    #[test]
    fn out_of_range_index_panics() {
        assert!(std::panic::catch_unwind(|| params(CORPUS_SIZE)).is_err());
    }
}

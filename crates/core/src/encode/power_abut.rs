//! Power-abutment constraints (Eq. 12, Fig. 4).
//!
//! Within a region that mixes power groups, cells of each group are
//! confined to a horizontal band; bands are separated by auxiliary
//! boundary variables `y_pow^1 < y_pow^2 < …`, so rows never abut cells of
//! different supplies.

use super::{lifted, off_const, off_var};
use crate::ir::{ConstraintFamily, ConstraintStore, Provenance};
use crate::power::PowerPlan;
use crate::scale::ScaleInfo;
use crate::vars::VarMap;
use ams_netlist::Design;
use ams_smt::Smt;

/// Asserts the band structure for every mixed region of the plan.
pub(crate) fn assert_power_abutment(
    smt: &mut Smt,
    store: &mut ConstraintStore,
    design: &Design,
    scale: &ScaleInfo,
    vars: &VarMap,
    plan: &PowerPlan,
) {
    store.family(ConstraintFamily::PowerAbutment);
    let (_, lwy) = lifted(scale);
    for (pi, rp) in plan.regions.iter().enumerate() {
        store.at(Provenance::PowerRegion(rp.region));
        let ri = rp.region.index();
        let bounds = &vars.power_bounds[pi];
        debug_assert_eq!(bounds.len() + 1, rp.bands.len());

        // Boundaries are ordered and lie inside the region.
        let region_bottom = vars.region_y[ri];
        let region_top = off_var(smt, vars.region_y[ri], vars.region_h[ri], lwy);
        for (k, &b) in bounds.iter().enumerate() {
            let ge = smt.ule(region_bottom, b);
            store.assert(ge);
            let bl = smt.zext(b, lwy);
            let le = smt.ule(bl, region_top);
            store.assert(le);
            if k + 1 < bounds.len() {
                let next = bounds[k + 1];
                let ord = smt.ule(b, next);
                store.assert(ord);
            }
        }

        // Band membership per cell (Eq. 12). Band k spans
        // [bound_{k-1}, bound_k] with the region edges as outer bounds.
        for c in design.cells_in_region(rp.region) {
            let group = design.cell(c).power_group;
            let band = rp
                .bands
                .iter()
                .position(|&g| g == group)
                .expect("power plan covers every group in the region");
            let y = vars.cell_y[c.index()];
            let h = scale.height_of(c);
            if band > 0 {
                let lower = bounds[band - 1];
                let ge = smt.ule(lower, y);
                store.assert(ge);
            }
            if band < bounds.len() {
                let upper = bounds[band];
                let top = off_const(smt, y, u64::from(h), lwy);
                let ub = smt.zext(upper, lwy);
                let le = smt.ule(top, ub);
                store.assert(le);
            }
        }
    }
}
